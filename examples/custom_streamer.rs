//! Reusability scenario: drive a single DataMaestro directly, without the
//! GeMM system around it — the paper's "reusable design" claim in action.
//!
//! We instantiate one read streamer against a banked scratchpad and program
//! it, purely through runtime CSRs, to stream a strided 2-D tile pattern
//! out of a matrix — the kind of access a pooling or stencil accelerator
//! would need. No code in the streamer knows anything about GeMM.
//!
//! ```text
//! cargo run --release --example custom_streamer
//! ```

use datamaestro_repro::mem::{Addr, AddressRemapper, AddressingMode, MemConfig, MemorySubsystem};
use datamaestro_repro::streamer::{DesignConfig, ReadStreamer, RuntimeConfig, StreamerMode};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small memory: 8 banks × 64 bit.
    let mem_cfg = MemConfig::new(8, 8, 1024)?;
    let mut mem = MemorySubsystem::new(mem_cfg);

    // Host-side preload: a 16×16 byte matrix, row-major, value = r*16 + c.
    let view = AddressRemapper::new(&mem_cfg, AddressingMode::FullyInterleaved)?;
    let matrix: Vec<u8> = (0..256).map(|i| i as u8).collect();
    mem.scratchpad_mut()
        .host_write(&view, Addr::ZERO, &matrix)?;

    // Design time: a 4-channel reader with a 2-D temporal AGU.
    let design = DesignConfig::builder("stencil", StreamerMode::Read)
        .spatial_bounds([2, 2])
        .temporal_dims(2)
        .build()?;

    // Runtime: stream 2×2 blocks of 8-byte rows — every block covers rows
    // (r, r+1) at columns (c, c+8): spatial strides {row pitch, 8}, and the
    // temporal nest hops 2 rows down then to the next block row.
    let runtime = RuntimeConfig::builder()
        .base(0)
        .temporal([8], [32]) // 8 steps of 2 row-pairs (2 rows × 16 B)
        .spatial_strides([8, 16]) // channel grid: col halves × row pair
        .addressing_mode(AddressingMode::FullyInterleaved)
        .build();
    let mut streamer = ReadStreamer::new(&design, &runtime, &mut mem)?;

    println!(
        "streaming {} wide words of {} bytes each…",
        streamer.total_wide_words(),
        streamer.output_width()
    );
    let mut words = Vec::new();
    let mut cycles = 0;
    while !streamer.is_done() {
        streamer.begin_cycle();
        for resp in mem.take_responses() {
            streamer.accept_response(resp);
        }
        if streamer.can_pop_wide() {
            words.push(streamer.pop_wide().to_vec());
        }
        streamer.generate_and_issue(&mut mem);
        let grants = mem.arbitrate().to_vec();
        streamer.handle_grants(&grants);
        cycles += 1;
    }
    println!("done in {cycles} cycles ({} words)", words.len());
    for (i, word) in words.iter().take(3).enumerate() {
        println!("word {i}: first bytes {:?}…", &word[..8]);
    }
    // Each wide word gathers the four channels: base row, same row +8 B,
    // next row, next row +8 B — i.e. one full 2-row stripe.
    assert_eq!(&words[0][0..8], &matrix[0..8]);
    assert_eq!(&words[0][8..16], &matrix[8..16]);
    assert_eq!(&words[0][16..24], &matrix[16..24]);
    assert_eq!(&words[1][0..8], &matrix[32..40]);
    println!("pattern verified: the streamer delivered the stencil stripes in order");
    Ok(())
}
