//! Quickstart: run one GeMM workload through the fully featured
//! DataMaestro evaluation system and print its report.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use datamaestro_repro::system::{run_workload, SystemConfig};
use datamaestro_repro::workloads::{GemmSpec, WorkloadData};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 64×64×64 int8 GeMM with per-column bias and int8 quantized output —
    // the paper's GeMM-64 reference workload.
    let workload = GemmSpec::new(64, 64, 64);
    let data = WorkloadData::generate(workload.into(), 42);

    // The default system is the paper's evaluation platform: 32-bank
    // scratchpad, five DataMaestros, an 8×8×8 GeMM array and the
    // quantization accelerator, all features enabled.
    let config = SystemConfig::default();
    let report = run_workload(&config, &data)?;

    println!("workload            : {}", report.workload);
    println!("ideal cycles        : {}", report.ideal_cycles);
    println!("simulated cycles    : {}", report.total_cycles());
    println!(
        "utilization         : {:.2} %",
        100.0 * report.utilization()
    );
    println!("memory reads        : {} words", report.mem_reads);
    println!("memory writes       : {} words", report.mem_writes);
    println!("bank conflicts      : {}", report.conflicts);
    println!(
        "stalls (A/B/C/out)  : {}/{}/{}/{}",
        report.stalls.a, report.stalls.b, report.stalls.c, report.stalls.out
    );
    println!(
        "output verified against the scalar golden model: {}",
        report.checked
    );
    Ok(())
}
