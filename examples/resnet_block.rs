//! CNN scenario: stream a ResNet-18 downsampling block (strided 3×3 conv,
//! 1×1 projection shortcut, then a stride-1 3×3 conv) through the
//! evaluation system and inspect where cycles go.
//!
//! This is the workload family where the paper's "unavoidable bank
//! conflicts" appear: the strided layers fetch non-contiguous input pixels
//! whose bank mapping cannot be fixed by any addressing mode.
//!
//! ```text
//! cargo run --release --example resnet_block
//! ```

use datamaestro_repro::system::{run_workload, SystemConfig};
use datamaestro_repro::workloads::{ConvSpec, WorkloadData};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let layers = [
        (
            "3x3/2 conv (56->28)",
            ConvSpec::new(58, 58, 64, 128, 3, 3, 2),
        ),
        ("1x1/2 shortcut", ConvSpec::new(56, 56, 64, 128, 1, 1, 2)),
        ("3x3 conv (28x28)", ConvSpec::new(30, 30, 128, 128, 3, 3, 1)),
    ];
    let config = SystemConfig::default();
    println!(
        "{:<22} {:>8} {:>10} {:>10} {:>10} {:>12}",
        "layer", "util", "cycles", "ideal", "conflicts", "A-stalls"
    );
    for (name, spec) in layers {
        let data = WorkloadData::generate(spec.into(), 3);
        let report = run_workload(&config, &data)?;
        println!(
            "{:<22} {:>7.1}% {:>10} {:>10} {:>10} {:>12}",
            name,
            100.0 * report.utilization(),
            report.total_cycles(),
            report.ideal_cycles,
            report.conflicts,
            report.stalls.a,
        );
    }
    println!(
        "\nThe strided layers sit at ~50-75% utilization: their input fan-out \
         \ncollides inside the A stream's bank group on every cycle, while the \
         \nstride-1 conv streams conflict-free at ~100%. All outputs above were \
         \nverified against the scalar convolution reference."
    );
    Ok(())
}
