//! Feature ablation on a handful of representative workloads: reproduces
//! the mechanism of Fig. 7 at a glance (the full 260-workload sweep lives
//! in `cargo run -p dm-bench --bin fig7 --release`).
//!
//! ```text
//! cargo run --release --example ablation
//! ```

use datamaestro_repro::compiler::FeatureSet;
use datamaestro_repro::system::{run_workload, SystemConfig};
use datamaestro_repro::workloads::{ConvSpec, GemmSpec, Workload, WorkloadData};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workloads: Vec<(&str, Workload)> = vec![
        ("GeMM 64^3", GemmSpec::new(64, 64, 64).into()),
        ("GeMM 128x64x96", GemmSpec::new(128, 64, 96).into()),
        ("tGeMM 64^3", GemmSpec::transposed(64, 64, 64).into()),
        ("conv 3x3 s1", ConvSpec::new(34, 34, 32, 32, 3, 3, 1).into()),
        ("conv 3x3 s2", ConvSpec::new(33, 33, 32, 32, 3, 3, 2).into()),
    ];

    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "workload", "1:base", "2:pref", "3:transp", "4:bcast", "5:im2col", "6:modes"
    );
    for (name, workload) in &workloads {
        let data = WorkloadData::generate(*workload, 7);
        print!("{name:<16}");
        for step in 1..=6 {
            let cfg = SystemConfig::default().with_features(FeatureSet::ablation_step(step));
            let report = run_workload(&cfg, &data)?;
            print!(" {:>9.1}%", 100.0 * report.utilization());
        }
        println!();
    }

    println!("\naccess counts (words), same sweep:");
    for (name, workload) in &workloads {
        let data = WorkloadData::generate(*workload, 7);
        print!("{name:<16}");
        for step in 1..=6 {
            let cfg = SystemConfig::default().with_features(FeatureSet::ablation_step(step));
            let report = run_workload(&cfg, &data)?;
            print!(" {:>10}", report.accesses());
        }
        println!();
    }
    Ok(())
}
