//! Transformer scenario: run one BERT-Base encoder layer's GeMMs (QKV
//! projection, per-head attention, output projection, FFN) and aggregate
//! the layer's GeMM-core utilization — the per-layer version of the
//! Table III measurement.
//!
//! ```text
//! cargo run --release --example transformer_layer
//! ```

use datamaestro_repro::system::{run_workload, SystemConfig};
use datamaestro_repro::workloads::{GemmSpec, WorkloadData};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (seq, hidden, head_dim, heads, ffn) = (128, 768, 64, 12u64, 3072);
    let sublayers: [(&str, GemmSpec, u64); 6] = [
        ("QKV projection", GemmSpec::new(seq, 3 * hidden, hidden), 1),
        ("attention scores", GemmSpec::new(seq, seq, head_dim), heads),
        (
            "attention context",
            GemmSpec::new(seq, head_dim, seq),
            heads,
        ),
        ("output projection", GemmSpec::new(seq, hidden, hidden), 1),
        ("FFN up", GemmSpec::new(seq, ffn, hidden), 1),
        ("FFN down", GemmSpec::new(seq, hidden, ffn), 1),
    ];
    let config = SystemConfig {
        check_output: false, // large GeMMs; correctness is covered by tests
        ..SystemConfig::default()
    };
    let mut ideal = 0u64;
    let mut total = 0u64;
    println!(
        "{:<20} {:>8} {:>12} {:>8}",
        "sub-layer", "runs", "cycles/run", "util"
    );
    for (name, spec, repeat) in sublayers {
        let data = WorkloadData::generate(spec.into(), 11);
        let report = run_workload(&config, &data)?;
        ideal += report.ideal_cycles * repeat;
        total += report.total_cycles() * repeat;
        println!(
            "{:<20} {:>8} {:>12} {:>7.2}%",
            name,
            repeat,
            report.total_cycles(),
            100.0 * report.utilization()
        );
    }
    println!(
        "\nencoder layer utilization: {:.2}%  (BERT-Base in Table III: 97.85%)",
        100.0 * ideal as f64 / total as f64
    );
    println!(
        "Small per-head attention GeMMs pay relatively more pipeline fill, \
         \nwhich is why the transformer lands just below 100%."
    );
    Ok(())
}
