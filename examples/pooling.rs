//! Reusability scenario 2: a complete max-pooling accelerator assembled
//! from the same DataMaestro streamers as the GeMM system — nothing inside
//! the streaming engine changes, only the ~40-line reduction unit and a
//! small compiler function are pooling-specific.
//!
//! ```text
//! cargo run --release --example pooling
//! ```

use datamaestro_repro::compiler::FeatureSet;
use datamaestro_repro::mem::MemConfig;
use datamaestro_repro::system::run_pool;
use datamaestro_repro::workloads::PoolSpec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mem = MemConfig::new(32, 8, 65_536)?;
    let mut rng = StdRng::seed_from_u64(7);
    let pools = [
        ("2x2/2 (VGG-style)", PoolSpec::new(56, 56, 64, 2, 2)),
        ("3x3/1", PoolSpec::new(30, 30, 32, 3, 1)),
        ("3x3/2 (ResNet stem)", PoolSpec::new(113, 113, 64, 3, 2)),
    ];
    println!(
        "{:<22} {:>8} {:>10} {:>10} {:>10}",
        "pooling layer", "util", "cycles", "ideal", "accesses"
    );
    for (name, spec) in pools {
        let input: Vec<i8> = (0..spec.h * spec.w * spec.c)
            .map(|_| rng.gen_range(i8::MIN..=i8::MAX))
            .collect();
        let report = run_pool(&mem, &FeatureSet::full(), spec, &input)?;
        println!(
            "{:<22} {:>7.1}% {:>10} {:>10} {:>10}",
            name,
            100.0 * report.utilization(),
            report.cycles,
            report.ideal_cycles,
            report.accesses
        );
        assert!(report.checked);
    }
    println!("\nall outputs verified against the scalar max-pooling reference");
    Ok(())
}
