//! Visualize why addressing-mode switching works: per-bank access heatmaps
//! of the same GeMM under FIMA (everything interleaved over all banks,
//! operands colliding) and under GIMA bank groups (each operand confined
//! to its own eight banks).
//!
//! ```text
//! cargo run --release --example bank_heatmap
//! ```

use datamaestro_repro::compiler::FeatureSet;
use datamaestro_repro::system::{run_workload, SystemConfig};
use datamaestro_repro::workloads::{GemmSpec, WorkloadData};

fn bar(value: u64, max: u64) -> String {
    let width = (value * 40 / max.max(1)) as usize;
    "#".repeat(width)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let data = WorkloadData::generate(GemmSpec::new(64, 64, 64).into(), 1);
    for (name, step) in [("FIMA (step 5)", 5usize), ("GIMA groups (step 6)", 6)] {
        let cfg = SystemConfig {
            check_output: false,
            ..SystemConfig::default()
        }
        .with_features(FeatureSet::ablation_step(step));
        let report = run_workload(&cfg, &data)?;
        println!(
            "\n{name}: utilization {:.1}%, {} conflicts",
            100.0 * report.utilization(),
            report.conflicts
        );
        let max = report.per_bank_accesses.iter().copied().max().unwrap_or(1);
        for (bank, &count) in report.per_bank_accesses.iter().enumerate() {
            println!("  bank {bank:>2} {count:>6} {}", bar(count, max));
        }
    }
    println!(
        "\nUnder GIMA the four operand groups (A: banks 0-7, B: 8-15, E: 16-23, \
         \nbias: 24-31) are visible as plateaus — and never collide."
    );
    Ok(())
}
