//! Cross-crate tests of the causal blame profiler: conservation against
//! the stall attribution across workload groups, ablation steps and read
//! latencies; phase segmentation consistency; byte-identical profiles with
//! fast-forward on and off; and the analyzer cross-check (a configuration
//! proven conflict-free must carry zero bank-conflict blame).

use datamaestro_repro::compiler::FeatureSet;
use datamaestro_repro::sim::{BlamePhase, OperandPort, StallCause};
use datamaestro_repro::system::{run_workload, RunReport, SystemConfig};
use datamaestro_repro::workloads::{ConvSpec, GemmSpec, Workload, WorkloadData};

/// One workload per group: plain GeMM, transposed GeMM, convolution.
fn workload_zoo() -> Vec<Workload> {
    vec![
        GemmSpec::new(24, 16, 32).into(),
        GemmSpec::transposed(16, 16, 16).into(),
        ConvSpec::new(10, 10, 8, 8, 3, 3, 1).into(),
    ]
}

fn run(cfg: &SystemConfig, workload: Workload, seed: u64) -> RunReport {
    let data = WorkloadData::generate(workload, seed);
    run_workload(cfg, &data).unwrap_or_else(|e| panic!("{workload}: {e}"))
}

/// The acceptance invariant, exhaustively: for every workload group ×
/// ablation step × read latency, the blame profile charges exactly the
/// stalls the attribution counted — per cause, hence per port — and counts
/// exactly the fires, with fast-forward on and off producing byte-identical
/// profiles.
#[test]
fn blame_conserves_across_zoo_steps_and_latencies() {
    for step in 1..=6 {
        for latency in [1u64, 4, 16] {
            for (i, workload) in workload_zoo().into_iter().enumerate() {
                let config = |fast_forward| SystemConfig {
                    read_latency: latency,
                    fast_forward,
                    ..SystemConfig::default().with_features(FeatureSet::ablation_step(step))
                };
                let seed = 500 + i as u64;
                let ff = run(&config(true), workload, seed);
                let ls = run(&config(false), workload, seed);
                let label = format!("step {step}, latency {latency}, {workload}");
                for report in [&ff, &ls] {
                    assert!(
                        report.blame.conserves(&report.attribution),
                        "{label}: conservation"
                    );
                    for &cause in &StallCause::ALL {
                        assert_eq!(
                            report.blame.cause_total(cause),
                            report.attribution.count(cause),
                            "{label}: cause {cause}"
                        );
                    }
                    assert_eq!(report.blame.fired(), report.active_cycles, "{label}: fires");
                    assert_eq!(
                        report.blame.stalled(),
                        report.stalls.total(),
                        "{label}: stalls"
                    );
                }
                assert_eq!(ff.blame, ls.blame, "{label}: profiles");
                assert_eq!(
                    ff.blame.to_json().to_json(),
                    ls.blame.to_json().to_json(),
                    "{label}: profile JSON bytes"
                );
            }
        }
    }
}

/// Phase segmentation is internally consistent: fill carries no fires (it
/// ends at the first fire, which is steady by definition), drain carries no
/// fires, phase cycle counts sum to the compute cycles, and the fire
/// bounds sit inside the run.
#[test]
fn phase_segmentation_is_consistent() {
    for step in [1, 5, 6] {
        let cfg = SystemConfig::default().with_features(FeatureSet::ablation_step(step));
        let report = run(&cfg, GemmSpec::new(32, 32, 32).into(), 600);
        let blame = &report.blame;
        assert_eq!(
            blame.fired_in(BlamePhase::Fill),
            0,
            "step {step}: fill fires"
        );
        assert_eq!(
            blame.fired_in(BlamePhase::Drain),
            0,
            "step {step}: drain fires"
        );
        assert_eq!(
            blame.fired_in(BlamePhase::Steady),
            report.active_cycles,
            "step {step}: steady fires"
        );
        let phase_cycles: u64 = BlamePhase::ALL
            .iter()
            .map(|&p| blame.fired_in(p) + blame.phase(p).total())
            .sum();
        assert_eq!(
            phase_cycles, report.compute_cycles,
            "step {step}: phases partition the compute window"
        );
        let first = blame.first_fire().expect("the PE fired");
        let last = blame.last_fire().expect("the PE fired");
        assert!(first <= last, "step {step}: fire bounds ordered");
        // Fill stalled at least one cycle (operands take >= 1 cycle to
        // arrive) and everything the fill phase charged is a stall.
        assert!(
            blame.phase(BlamePhase::Fill).total() >= 1,
            "step {step}: fill is nonempty"
        );
    }
}

/// FIMA placement (step 5) is the conflict-heavy configuration: its blame
/// profile must put bank-conflict cycles on *named banks*, and bank-aware
/// remapping (step 6) must eliminate them — the Fig. 7a story at the
/// component level.
#[test]
fn bank_conflict_blame_names_banks_and_collapses_at_step_6() {
    let workload: Workload = GemmSpec::new(64, 64, 64).into();
    let fima = run(
        &SystemConfig::default().with_features(FeatureSet::ablation_step(5)),
        workload,
        601,
    );
    let conflict_blame: u64 = OperandPort::ALL
        .iter()
        .map(|&p| fima.blame.cause_total(StallCause::BankConflict(p)))
        .sum();
    assert!(conflict_blame > 0, "step 5 must see bank-conflict stalls");
    // Every bank-conflict cycle is charged to a concrete bank instance.
    let named: u64 = fima
        .blame
        .total()
        .leaves()
        .iter()
        .filter(|(cause, leaf, _)| {
            matches!(cause, StallCause::BankConflict(_))
                && matches!(leaf, datamaestro_repro::sim::BlameLeaf::Bank(_))
        })
        .map(|&(_, _, n)| n)
        .sum();
    assert_eq!(
        named, conflict_blame,
        "bank-conflict blame must name bank instances"
    );

    let remapped = run(
        &SystemConfig::default().with_features(FeatureSet::ablation_step(6)),
        workload,
        601,
    );
    let after: u64 = OperandPort::ALL
        .iter()
        .map(|&p| remapped.blame.cause_total(StallCause::BankConflict(p)))
        .sum();
    assert!(
        after < conflict_blame / 10,
        "bank-aware remapping must collapse bank-conflict blame \
         ({conflict_blame} -> {after})"
    );
}

/// Blame rides the RunReport JSON surface consumed by the harnesses: the
/// regress entry carries the subtree and its totals agree with the report.
#[test]
fn blame_json_totals_agree_with_report() {
    let report = run(
        &SystemConfig::default().with_features(FeatureSet::ablation_step(5)),
        GemmSpec::new(32, 32, 32).into(),
        602,
    );
    let json = report.blame.to_json();
    let stalled: u64 = BlamePhase::ALL
        .iter()
        .map(|&p| {
            json.get("phases")
                .and_then(|phases| phases.get(p.label()))
                .and_then(|phase| phase.get("stalled"))
                .and_then(datamaestro_repro::sim::JsonValue::as_u64)
                .unwrap_or(0)
        })
        .sum();
    assert_eq!(stalled, report.stalls.total());
    let total = json.get("total").expect("total subtree");
    let mut total_cycles = 0u64;
    if let datamaestro_repro::sim::JsonValue::Object(causes) = total {
        for (_, leaves) in causes {
            if let datamaestro_repro::sim::JsonValue::Object(leaves) = leaves {
                for (_, n) in leaves {
                    total_cycles += n.as_u64().unwrap_or(0);
                }
            }
        }
    }
    assert_eq!(total_cycles, report.stalls.total());
}
