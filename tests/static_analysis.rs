//! Differential validation of the static analyzer against the simulator.
//!
//! The `dm-analyze` conflict-freedom verdict is supposed to be *sound*:
//! whenever the analyzer proves a compiled workload conflict-free, the
//! cycle-level simulator must observe exactly zero bank conflicts, and the
//! analyzer's event-count bounds must bracket the observed count whenever
//! conflicts are predicted. These tests check both directions on real
//! configurations from the paper's evaluation suites.

use datamaestro_repro::analyze::{analyze_program, LintCode};
use datamaestro_repro::compiler::{compile, BufferDepths, FeatureSet};
use datamaestro_repro::sim::{OperandPort, StallCause};
use datamaestro_repro::system::{run_workload, RunReport, SystemConfig};
use datamaestro_repro::workloads::{
    synthetic_suite, table3_models, GemmSpec, Workload, WorkloadData,
};

/// Runs one workload under one feature set, returning the static analysis
/// and the full simulation report.
fn analyze_and_run(
    workload: Workload,
    features: FeatureSet,
    seed: u64,
) -> (datamaestro_repro::analyze::Analysis, RunReport) {
    let cfg = SystemConfig {
        check_output: false,
        ..SystemConfig::default()
    }
    .with_features(features);
    let data = WorkloadData::generate(workload, seed);
    let program = compile(&data, &features, &cfg.mem, cfg.quantized, cfg.depths)
        .unwrap_or_else(|e| panic!("{workload} does not compile: {e}"));
    let analysis = analyze_program(&program, &cfg.mem);
    let report = run_workload(&cfg, &data).unwrap_or_else(|e| panic!("{workload}: {e}"));
    (analysis, report)
}

/// Stall cycles the blame profiler charged to bank conflicts, all ports.
fn bank_conflict_blame(report: &RunReport) -> u64 {
    OperandPort::ALL
        .iter()
        .map(|&p| report.blame.cause_total(StallCause::BankConflict(p)))
        .sum()
}

#[test]
fn conflict_free_verdict_is_sound_across_the_ablation() {
    // A slice of the Fig. 7 suite through all six ablation steps: whenever
    // the analyzer proves conflict-freedom, the simulator must agree.
    let suite = synthetic_suite();
    let sampled: Vec<Workload> = suite.iter().step_by(25).copied().collect();
    let mut proven = 0;
    let mut conflicting = 0;
    for (i, &workload) in sampled.iter().enumerate() {
        for step in 1..=6 {
            let features = FeatureSet::ablation_step(step);
            let (analysis, report) = analyze_and_run(workload, features, i as u64);
            let observed = report.conflicts;
            if analysis.conflict_free {
                proven += 1;
                assert_eq!(
                    observed, 0,
                    "{workload} step {step}: proven conflict-free but the \
                     simulator observed {observed} conflicts"
                );
                // The cross-layer theorem: a statically proven placement
                // must also leave the causal profiler with nothing to
                // charge to any bank under a conflict cause.
                assert_eq!(
                    bank_conflict_blame(&report),
                    0,
                    "{workload} step {step}: proven conflict-free but the \
                     blame profile charges bank-conflict cycles"
                );
            } else {
                conflicting += 1;
                // Predicted-conflict direction: the bounds must bracket the
                // observation.
                assert!(
                    analysis.guaranteed_min_conflicts <= observed,
                    "{workload} step {step}: guaranteed {} > observed {observed}",
                    analysis.guaranteed_min_conflicts
                );
                if let Some(max) = analysis.worst_case_max_conflicts {
                    assert!(
                        observed <= max,
                        "{workload} step {step}: observed {observed} > bound {max}"
                    );
                }
            }
        }
    }
    assert!(proven > 0, "sample proved nothing — sampling is broken");
    assert!(conflicting > 0, "sample never predicted conflicts");
}

#[test]
fn full_feature_placements_are_proven_free_and_observe_zero() {
    // The Fig. 7a ⑤→⑥ claim as a theorem: the full-feature (step 6) GIMA
    // placements of the Table III ResNet-18 layers and a GeMM mix are
    // either *proven* conflict-free — and then observe zero — or carry
    // only unavoidable-conflict notes that still pass `--deny-warnings`.
    let resnet = &table3_models()[0];
    assert_eq!(resnet.name, "ResNet-18");
    let mut workloads: Vec<Workload> = resnet.layers.iter().map(|l| l.workload).collect();
    workloads.push(GemmSpec::new(64, 64, 64).into());
    workloads.push(GemmSpec::transposed(32, 32, 32).into());
    for (i, workload) in workloads.into_iter().enumerate() {
        let (analysis, report) = analyze_and_run(workload, FeatureSet::full(), i as u64);
        let observed = report.conflicts;
        assert!(
            analysis.report.passes(true),
            "{workload}: committed config fails --deny-warnings: {:?}",
            analysis.report
        );
        if analysis.conflict_free {
            assert_eq!(
                observed, 0,
                "{workload}: proven free but observed {observed}"
            );
            assert_eq!(
                bank_conflict_blame(&report),
                0,
                "{workload}: proven free but bank-conflict blame is nonzero"
            );
        } else {
            assert!(
                analysis.guaranteed_min_conflicts <= observed,
                "{workload}: guaranteed {} > observed {observed}",
                analysis.guaranteed_min_conflicts
            );
        }
    }
}

#[test]
fn shared_fima_gemm_bounds_bracket_the_observation() {
    // The deliberately mismatched configuration of the addressing-mode
    // sweep: GeMM-64 at ablation step 5 places all four operands in one
    // shared FIMA space. The analyzer must refuse to prove freedom and its
    // bounds must bracket the (heavy) observed conflict count.
    let (analysis, report) = analyze_and_run(
        GemmSpec::new(64, 64, 64).into(),
        FeatureSet::ablation_step(5),
        1,
    );
    let observed = report.conflicts;
    assert!(!analysis.conflict_free);
    assert!(analysis.report.has_code(LintCode::BankConflict));
    assert!(observed > 0, "step-5 FIMA GeMM-64 is known conflict-heavy");
    assert!(
        bank_conflict_blame(&report) > 0,
        "a conflict-heavy run must charge bank-conflict blame"
    );
    assert!(analysis.guaranteed_min_conflicts <= observed);
    let max = analysis
        .worst_case_max_conflicts
        .expect("bounded nest must give a bound");
    assert!(observed <= max, "observed {observed} > worst case {max}");
}

#[test]
fn step_six_eliminates_the_conflicts_step_five_predicts() {
    // The lint-before-simulate story of EXPERIMENTS.md: on the same GeMM,
    // step 5 must draw conflict warnings with a mode-switch advisory,
    // step 6 must be proven free — predicting Fig. 7a's ⑤→⑥ jump without
    // running either simulation.
    let workload: Workload = GemmSpec::new(64, 64, 64).into();
    let mem = SystemConfig::default().mem;
    let data = WorkloadData::generate(workload, 1);
    let five = compile(
        &data,
        &FeatureSet::ablation_step(5),
        &mem,
        true,
        BufferDepths::default(),
    )
    .unwrap();
    let six = compile(
        &data,
        &FeatureSet::ablation_step(6),
        &mem,
        true,
        BufferDepths::default(),
    )
    .unwrap();
    let five = analyze_program(&five, &mem);
    let six = analyze_program(&six, &mem);
    assert!(!five.conflict_free);
    assert!(five.report.has_code(LintCode::BankConflict));
    assert!(six.conflict_free, "{:?}", six.report);
    assert!(six.report.passes(true), "{:?}", six.report);
}
