//! Guard-rail tests for the paper's headline claims: these pin the *shape*
//! of every reproduced result so a regression in the simulator or compiler
//! cannot silently break the evaluation story.

use datamaestro_repro::baselines::{utilization, Baseline};
use datamaestro_repro::compiler::FeatureSet;
use datamaestro_repro::cost::area::system_area;
use datamaestro_repro::cost::energy::{power_breakdown, EnergyEvents, EnergyModel};
use datamaestro_repro::cost::fpga::fpga_report;
use datamaestro_repro::cost::{EvaluationSystemSpec, UnitAreas};
use datamaestro_repro::system::{run_workload, RunReport, SystemConfig};
use datamaestro_repro::workloads::{ConvSpec, GemmSpec, Workload, WorkloadData};

fn run(features: FeatureSet, workload: Workload, seed: u64) -> RunReport {
    let cfg = SystemConfig {
        check_output: false,
        ..SystemConfig::default()
    }
    .with_features(features);
    run_workload(&cfg, &WorkloadData::generate(workload, seed))
        .unwrap_or_else(|e| panic!("{workload}: {e}"))
}

/// §IV headline: nearly 100 % utilization on GeMM with the full system.
#[test]
fn full_system_gemm_utilization_is_nearly_perfect() {
    for (m, n, k) in [(64, 64, 64), (128, 64, 96), (32, 96, 64)] {
        let r = run(FeatureSet::full(), GemmSpec::new(m, n, k).into(), 1);
        assert!(
            r.utilization() > 0.97,
            "GeMM {m}x{n}x{k}: {:.3}",
            r.utilization()
        );
    }
}

/// Fig. 7: fine-grained prefetch alone gains 1.65–2.21× over the baseline.
/// We accept a slightly wider band (1.4–2.6×) across shapes.
#[test]
fn prefetch_gain_in_paper_band() {
    for workload in [
        GemmSpec::new(64, 64, 64).into(),
        GemmSpec::new(96, 32, 64).into(),
        Workload::Conv(ConvSpec::new(34, 34, 32, 32, 3, 3, 1)),
    ] {
        let base = run(FeatureSet::ablation_step(1), workload, 2);
        let pref = run(FeatureSet::ablation_step(2), workload, 2);
        let gain = pref.utilization() / base.utilization();
        assert!((1.4..2.6).contains(&gain), "{workload}: gain {gain:.2}");
    }
}

/// Fig. 7: the Transposer lifts transposed-GeMM utilization and removes
/// the explicit transpose traffic.
#[test]
fn transposer_helps_transposed_gemm_only() {
    let w: Workload = GemmSpec::transposed(64, 64, 64).into();
    let without = run(FeatureSet::ablation_step(2), w, 3);
    let with = run(FeatureSet::ablation_step(3), w, 3);
    assert!(with.utilization() > 1.05 * without.utilization());
    assert!(with.accesses() < without.accesses());
    // …and is neutral for plain GeMM.
    let plain: Workload = GemmSpec::new(64, 64, 64).into();
    let a = run(FeatureSet::ablation_step(2), plain, 3);
    let b = run(FeatureSet::ablation_step(3), plain, 3);
    assert_eq!(a.accesses(), b.accesses());
}

/// Fig. 7: the Broadcaster cuts bias traffic (paper: up to 14.58 %) with a
/// modest utilization gain (paper: up to 1.09×).
#[test]
fn broadcaster_cuts_accesses() {
    let w: Workload = GemmSpec::new(64, 64, 64).into();
    let without = run(FeatureSet::ablation_step(3), w, 4);
    let with = run(FeatureSet::ablation_step(4), w, 4);
    let cut = 1.0 - with.accesses() as f64 / without.accesses() as f64;
    assert!((0.05..0.30).contains(&cut), "access cut {cut:.3}");
    let gain = with.utilization() / without.utilization();
    assert!((1.0..1.25).contains(&gain), "gain {gain:.3}");
}

/// Fig. 7: implicit im2col removes the explicit pass for convolutions
/// (paper: 1.19× utilization).
#[test]
fn implicit_im2col_helps_convs() {
    let w: Workload = ConvSpec::new(34, 34, 32, 32, 3, 3, 1).into();
    let without = run(FeatureSet::ablation_step(4), w, 5);
    let with = run(FeatureSet::ablation_step(5), w, 5);
    assert!(without.prepass_cycles > 0);
    assert_eq!(with.prepass_cycles, 0);
    assert!(with.utilization() > 1.05 * without.utilization());
    assert!(with.accesses() < without.accesses());
}

/// Fig. 7 / §IV-B: addressing-mode switching eliminates inter-operand
/// conflicts — GeMM reaches ~100 % — while strided 1×1 convolutions keep
/// their unavoidable intra-stream conflicts (~50 %).
#[test]
fn mode_switching_story() {
    let gemm: Workload = GemmSpec::new(64, 64, 64).into();
    let fima = run(FeatureSet::ablation_step(5), gemm, 6);
    let gima = run(FeatureSet::ablation_step(6), gemm, 6);
    assert!(gima.utilization() > 0.97);
    assert!(gima.conflicts < fima.conflicts / 10);

    let shortcut: Workload = ConvSpec::new(56, 56, 64, 128, 1, 1, 2).into();
    let r = run(FeatureSet::full(), shortcut, 6);
    assert!(
        (0.40..0.65).contains(&r.utilization()),
        "strided 1x1 shortcut: {:.3}",
        r.utilization()
    );
    assert!(
        r.conflicts > 1000,
        "conflicts are structural, got {}",
        r.conflicts
    );
}

/// Fig. 10: DataMaestro beats every baseline on every representative
/// kernel, with gains in the paper's 1.05–21.39× regime.
#[test]
fn fig10_gains_in_paper_regime() {
    let kernels: Vec<(&str, Workload)> = vec![
        ("gemm-big", GemmSpec::new(128, 768, 768).into()),
        ("conv-stem", ConvSpec::new(58, 58, 8, 64, 3, 3, 1).into()),
        (
            "conv-shortcut",
            ConvSpec::new(56, 56, 64, 128, 1, 1, 2).into(),
        ),
    ];
    let mut min_gain = f64::MAX;
    let mut max_gain = 0.0f64;
    for (name, w) in kernels {
        let ours = run(FeatureSet::full(), w, 7).utilization();
        for b in Baseline::ALL {
            let gain = ours / utilization(b, &w);
            assert!(gain > 1.0, "{name} vs {b}: {gain:.2}");
            min_gain = min_gain.min(gain);
            max_gain = max_gain.max(gain);
        }
    }
    assert!(min_gain < 1.6, "min gain {min_gain:.2} (paper: 1.05)");
    assert!(
        (8.0..40.0).contains(&max_gain),
        "max gain {max_gain:.2} (paper: 21.39)"
    );
}

/// Fig. 9: area/power cost of the streamers stays in the paper's regime
/// (6.43 % area, 15.06 % power) and the totals land near 0.61 mm² and
/// 329.4 mW.
#[test]
fn cost_model_matches_paper_regime() {
    let spec = EvaluationSystemSpec::paper();
    let areas = system_area(&spec, &UnitAreas::default());
    assert!((0.45..0.75).contains(&areas.total_mm2()));
    let dm_share = areas.share_pct(areas.datamaestro_total());
    assert!((4.0..13.0).contains(&dm_share), "area share {dm_share:.2}");

    let report = run(FeatureSet::full(), GemmSpec::new(64, 64, 64).into(), 8);
    let events = EnergyEvents {
        sram_reads: report.mem_reads,
        sram_writes: report.mem_writes,
        macs: report.active_cycles * 512,
        rescales: 64 * 64,
        fifo_words: report.mem_reads + report.mem_writes,
        agu_steps: report
            .streamer_stats
            .iter()
            .map(|s| s.temporal_addresses.get())
            .sum(),
        cycles: report.total_cycles(),
    };
    let power = power_breakdown(&events, &EnergyModel::default(), 1e9);
    assert!(
        (250.0..420.0).contains(&power.total_mw()),
        "{}",
        power.total_mw()
    );
    let share = power.share_pct(power.datamaestros_mw);
    assert!((10.0..20.0).contains(&share), "power share {share:.2}");
}

/// Fig. 8: the FPGA estimate keeps the paper's proportions (GeMM ≈ 47 % of
/// LUTs, DataMaestros ≈ 5 %).
#[test]
fn fpga_estimate_matches_paper_regime() {
    let report = fpga_report(&EvaluationSystemSpec::paper());
    let gemm_share = report.lut_share_pct(report.gemm);
    let dm_share = report.lut_share_pct(report.datamaestros);
    assert!((38.0..56.0).contains(&gemm_share), "{gemm_share:.2}");
    assert!((3.0..10.0).contains(&dm_share), "{dm_share:.2}");
}

/// Table III's mechanism: a ResNet downsampling stage mixes ~100 %
/// stride-1 layers with ~50 % strided shortcuts, landing the network in
/// the mid-90s.
#[test]
fn resnet_block_mix() {
    let body = run(
        FeatureSet::full(),
        ConvSpec::new(30, 30, 128, 128, 3, 3, 1).into(),
        9,
    );
    let shortcut = run(
        FeatureSet::full(),
        ConvSpec::new(56, 56, 64, 128, 1, 1, 2).into(),
        9,
    );
    assert!(body.utilization() > 0.97);
    assert!(shortcut.utilization() < 0.6);
}
