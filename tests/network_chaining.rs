//! Multi-layer chaining: feed each layer's *simulated* (quantized) output
//! forward as the next layer's input and verify the whole chain against
//! the chained scalar golden models. This exercises the property the
//! blocked `C/8·H·W·c8` layout was designed for — a convolution's output
//! image is directly a valid input image for the next convolution, with no
//! reshuffling in between.

use datamaestro_repro::accel::reference::{conv2d_ref, maxpool2d_ref, quantize_ref};
use datamaestro_repro::accel::RescaleParams;
use datamaestro_repro::compiler::FeatureSet;
use datamaestro_repro::mem::MemConfig;
use datamaestro_repro::system::{run_pool, run_workload, SystemConfig};
use datamaestro_repro::workloads::{ConvSpec, PoolSpec, WorkloadData};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs one conv layer through the simulator using explicit input/weight
/// data, returning the simulated int8 output (channels-last).
fn simulate_conv(cfg: &SystemConfig, spec: ConvSpec, input: &[i8], seed: u64) -> Vec<i8> {
    // Generate weights/bias deterministically, then substitute the chained
    // input.
    let mut data = WorkloadData::generate(spec.into(), seed);
    data.a = input.to_vec();
    let report = run_workload(cfg, &data).expect("layer runs");
    assert!(report.checked, "layer output verified in-simulation");
    // The report verified the memory image; recompute the golden output to
    // hand forward (identical bytes by the check above).
    data.expected_e()
}

#[test]
fn three_layer_conv_chain_matches_chained_golden() {
    let cfg = SystemConfig::default();
    let mut rng = StdRng::seed_from_u64(99);

    // Layer specs: 3×3 conv → 1×1 conv → 1×1 stride-2 projection.
    let l1 = ConvSpec::new(18, 18, 8, 16, 3, 3, 1); // → 16×16×16
    let l2 = ConvSpec::new(16, 16, 16, 16, 1, 1, 1); // → 16×16×16
    let l3 = ConvSpec::new(16, 16, 16, 8, 1, 1, 2); // → 8×8×8 (floor)

    let input: Vec<i8> = (0..18 * 18 * 8).map(|_| rng.gen_range(-16..=16)).collect();

    // Simulated chain.
    let out1 = simulate_conv(&cfg, l1, &input, 1);
    let out2 = simulate_conv(&cfg, l2, &out1, 2);
    let out3 = simulate_conv(&cfg, l3, &out2, 3);

    // Golden chain computed independently with the scalar references.
    let golden = {
        let mut acts = input.clone();
        for (spec, seed) in [(l1, 1u64), (l2, 2), (l3, 3)] {
            let data = WorkloadData::generate(spec.into(), seed);
            let d = conv2d_ref(
                &acts,
                &data.b,
                &data.bias,
                spec.h,
                spec.w,
                spec.c_in,
                spec.c_out,
                spec.kh,
                spec.kw,
                spec.stride,
            );
            acts = quantize_ref(
                &d,
                &vec![data.rescale; spec.c_out],
                spec.oh() * spec.ow(),
                spec.c_out,
            );
        }
        acts
    };
    assert_eq!(
        out3, golden,
        "three simulated layers match the golden chain"
    );
}

#[test]
fn conv_then_pool_chain() {
    // conv 3×3 → maxpool 2×2/2, both through the streamer-built systems.
    let cfg = SystemConfig::default();
    let mem = MemConfig::default();
    let mut rng = StdRng::seed_from_u64(7);
    let conv = ConvSpec::new(18, 18, 8, 8, 3, 3, 1); // → 16×16×8
    let pool = PoolSpec::new(16, 16, 8, 2, 2); // → 8×8×8

    let input: Vec<i8> = (0..18 * 18 * 8).map(|_| rng.gen_range(-16..=16)).collect();
    let conv_out = simulate_conv(&cfg, conv, &input, 4);
    let report = run_pool(&mem, &FeatureSet::full(), pool, &conv_out).expect("pool runs");
    assert!(report.checked);
    // Independent golden: conv ref → quantize → maxpool ref.
    let data = {
        let mut d = WorkloadData::generate(conv.into(), 4);
        d.a = input;
        d
    };
    let pooled_golden = maxpool2d_ref(&data.expected_e(), 16, 16, 8, 2, 2);
    // `run_pool` already verified its memory image against this reference
    // internally; re-derive here to pin the chain end to end.
    let expected = maxpool2d_ref(&conv_out, 16, 16, 8, 2, 2);
    assert_eq!(pooled_golden, expected);
}

#[test]
fn chain_works_across_feature_sets() {
    // The chained numerics are feature-independent: baseline hardware is
    // slower but byte-identical.
    let l1 = ConvSpec::new(10, 10, 8, 8, 3, 3, 1);
    let l2 = ConvSpec::new(8, 8, 8, 8, 1, 1, 1);
    let mut rng = StdRng::seed_from_u64(17);
    let input: Vec<i8> = (0..10 * 10 * 8).map(|_| rng.gen_range(-16..=16)).collect();
    let mut outputs = Vec::new();
    for step in [1usize, 6] {
        let cfg = SystemConfig::default().with_features(FeatureSet::ablation_step(step));
        let out1 = simulate_conv(&cfg, l1, &input, 5);
        outputs.push(simulate_conv(&cfg, l2, &out1, 6));
    }
    assert_eq!(outputs[0], outputs[1]);
}

#[test]
fn identity_rescale_preserves_small_values_through_a_layer() {
    // A 1×1 identity-ish conv with IDENTITY rescale acts as a saturating
    // passthrough — a numerics sanity anchor for the whole path.
    let spec = ConvSpec::new(8, 8, 8, 8, 1, 1, 1);
    let mut data = WorkloadData::generate(spec.into(), 20);
    // Identity weights: out channel o takes in channel o.
    data.b = (0..8 * 8)
        .map(|i| if i % 8 == i / 8 { 1i8 } else { 0 })
        .collect();
    data.bias = vec![0; 8];
    data.rescale = RescaleParams::IDENTITY;
    data.a = (0..8 * 8 * 8).map(|i| (i % 100) as i8 - 50).collect();
    let report = run_workload(&SystemConfig::default(), &data).expect("runs");
    assert!(report.checked);
    assert_eq!(
        data.expected_e(),
        data.a,
        "identity layer passes data through"
    );
}
