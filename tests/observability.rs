//! Cross-crate tests of the instrumentation layer: stall attribution,
//! metric snapshots, trace capture and the Perfetto/JSONL exporters.

use std::collections::BTreeMap;

use datamaestro_repro::compiler::FeatureSet;
use datamaestro_repro::sim::{perfetto, JsonValue, MetricsRegistry, TraceMode};
use datamaestro_repro::system::{run_workload, RunReport, SystemConfig};
use datamaestro_repro::workloads::{ConvSpec, GemmSpec, Workload, WorkloadData};

fn workload_zoo() -> Vec<Workload> {
    vec![
        GemmSpec::new(16, 16, 16).into(),
        GemmSpec::new(24, 8, 32).into(),
        GemmSpec::transposed(16, 16, 16).into(),
        ConvSpec::new(10, 10, 8, 8, 3, 3, 1).into(),
        ConvSpec::new(16, 16, 8, 8, 1, 1, 2).into(),
    ]
}

fn run(cfg: &SystemConfig, workload: Workload, seed: u64) -> RunReport {
    let data = WorkloadData::generate(workload, seed);
    run_workload(cfg, &data).unwrap_or_else(|e| panic!("{workload}: {e}"))
}

/// The acceptance invariant: fired cycles plus attributed stall cycles
/// account for every compute cycle, on every workload and feature step,
/// and the coarse per-port stall counters agree with the cause taxonomy.
#[test]
fn attribution_covers_every_cycle_across_zoo_and_features() {
    for step in 1..=6 {
        let cfg = SystemConfig::default().with_features(FeatureSet::ablation_step(step));
        for (i, workload) in workload_zoo().into_iter().enumerate() {
            let report = run(&cfg, workload, 400 + i as u64);
            let at = &report.attribution;
            assert_eq!(
                at.total_cycles(),
                report.compute_cycles,
                "step {step}, {workload}"
            );
            assert_eq!(at.fired(), report.active_cycles, "step {step}, {workload}");
            assert_eq!(
                at.stalled(),
                report.stalls.total(),
                "step {step}, {workload}"
            );
        }
    }
}

#[test]
fn metrics_snapshot_round_trips_through_json() {
    let report = run(
        &SystemConfig::default(),
        GemmSpec::new(16, 24, 16).into(),
        7,
    );
    assert!(!report.metrics.is_empty());
    let text = report.metrics.to_json().to_json();
    JsonValue::parse(&text).expect("metrics JSON must parse");
    let restored = MetricsRegistry::from_json(&text).expect("metrics JSON must convert");
    // Kinds are recovered heuristically (integral number → counter), so an
    // integral-valued gauge may come back as a counter; keys and numeric
    // values round-trip exactly.
    assert_eq!(restored.len(), report.metrics.len());
    for ((key, value), (restored_key, restored_value)) in report.metrics.iter().zip(restored.iter())
    {
        assert_eq!(key, restored_key);
        assert_eq!(
            value.as_f64(),
            restored_value.as_f64(),
            "value mismatch for {key}"
        );
    }
}

#[test]
fn metrics_cover_all_component_scopes() {
    let report = run(
        &SystemConfig::default(),
        GemmSpec::new(16, 16, 16).into(),
        8,
    );
    for key in [
        "system.compute_cycles",
        "system.stall.fired",
        "mem.reads",
        "streamer.A.granted",
        "streamer.OUT.granted",
    ] {
        assert!(report.metrics.get(key).is_some(), "missing metric {key}");
    }
    let fired = report.metrics.get("system.stall.fired").unwrap().as_f64();
    assert!((fired - report.active_cycles as f64).abs() < 0.5);
}

/// The Perfetto export of a small traced GeMM run obeys the
/// `trace_event` schema: known phases only, per-track monotonic and
/// globally sorted timestamps, balanced B/E span nesting, and
/// non-decreasing cumulative blame counters.
#[test]
fn perfetto_export_is_valid_trace_event_schema() {
    let cfg = SystemConfig {
        trace: TraceMode::Full,
        ..SystemConfig::default()
    };
    let report = run(&cfg, GemmSpec::new(16, 16, 16).into(), 9);
    assert!(!report.traces.is_empty());
    let doc = perfetto::chrome_trace(&report.traces);
    let events = doc
        .get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array");
    assert!(!events.is_empty());
    let mut last_ts = 0.0f64;
    let mut open_spans: BTreeMap<u64, u64> = BTreeMap::new();
    let mut counters: BTreeMap<String, u64> = BTreeMap::new();
    for event in events {
        let ph = event
            .get("ph")
            .and_then(JsonValue::as_str)
            .expect("every event has a phase");
        assert!(
            ["M", "X", "B", "E", "C"].contains(&ph),
            "unexpected phase {ph}"
        );
        let ts = event
            .get("ts")
            .and_then(JsonValue::as_f64)
            .expect("every event has a timestamp");
        assert!(
            ts >= last_ts,
            "timestamps must be sorted ({ts} < {last_ts})"
        );
        last_ts = ts;
        let tid = event
            .get("tid")
            .and_then(JsonValue::as_u64)
            .expect("every event has a track");
        match ph {
            "B" => *open_spans.entry(tid).or_insert(0) += 1,
            "E" => {
                let open = open_spans.entry(tid).or_insert(0);
                assert!(*open > 0, "span end without begin on track {tid}");
                *open -= 1;
            }
            "X" => {
                let dur = event
                    .get("dur")
                    .and_then(JsonValue::as_u64)
                    .expect("complete events have a duration");
                assert!(dur >= 1);
            }
            "C" => {
                let name = event
                    .get("name")
                    .and_then(JsonValue::as_str)
                    .expect("counter events have a name");
                assert!(name.starts_with("blame: "), "unexpected counter {name}");
                let cycles = event
                    .get("args")
                    .and_then(|args| args.get("cycles"))
                    .and_then(JsonValue::as_u64)
                    .expect("blame counters carry a cycle count");
                let prev = counters.entry(name.to_string()).or_insert(0);
                assert!(
                    cycles >= *prev,
                    "cumulative counter {name} went backwards ({cycles} < {prev})"
                );
                *prev = cycles;
            }
            _ => {}
        }
    }
    assert!(
        !counters.is_empty(),
        "a stalling run must emit blame counters"
    );
    assert!(
        open_spans.values().all(|&open| open == 0),
        "every span must be closed"
    );
    // Round-trip: the serialized document is valid JSON.
    let text = perfetto::chrome_trace_json(&report.traces);
    JsonValue::parse(&text).expect("exported trace must parse");
}

/// Instrumentation is purely observational: tracing on/off and repeated
/// runs produce identical measurements, and metric snapshots are
/// deterministic.
#[test]
fn instrumentation_is_deterministic_and_nonperturbing() {
    let workload: Workload = ConvSpec::new(10, 10, 8, 8, 3, 3, 1).into();
    let plain = SystemConfig::default();
    let traced = SystemConfig {
        trace: TraceMode::Full,
        ..plain
    };
    let r1 = run(&traced, workload, 11);
    let r2 = run(&traced, workload, 11);
    assert_eq!(r1.metrics, r2.metrics);
    assert_eq!(r1.attribution, r2.attribution);
    let off = run(&plain, workload, 11);
    assert_eq!(off.compute_cycles, r1.compute_cycles);
    assert_eq!(off.stalls, r1.stalls);
    assert_eq!(off.attribution, r1.attribution);
    assert_eq!(off.metrics, r1.metrics);
    assert!(off.traces.is_empty());
    assert!(r1.traces.iter().any(|(_, t)| !t.is_empty()));
}

/// Ring-buffer capture bounds every track while leaving measurements
/// untouched, and records how much it dropped.
#[test]
fn ring_mode_bounds_trace_memory() {
    let workload: Workload = GemmSpec::new(64, 64, 64).into();
    let full = run(
        &SystemConfig {
            trace: TraceMode::Full,
            ..SystemConfig::default()
        },
        workload,
        12,
    );
    let ring = run(
        &SystemConfig {
            trace: TraceMode::Ring(32),
            ..SystemConfig::default()
        },
        workload,
        12,
    );
    assert_eq!(full.compute_cycles, ring.compute_cycles);
    assert_eq!(full.metrics, ring.metrics);
    let mut dropped_somewhere = false;
    for ((name, full_trace), (_, ring_trace)) in full.traces.iter().zip(&ring.traces) {
        assert!(ring_trace.len() <= 32, "{name} exceeds ring capacity");
        if full_trace.len() > 32 {
            dropped_somewhere = true;
            assert!(ring_trace.dropped() > 0, "{name} must report drops");
            // The ring keeps the newest events: its first retained event
            // must not precede the equally-truncated tail of the full
            // capture.
            let full_tail_start = full_trace.iter().nth(full_trace.len() - 32).unwrap();
            assert!(ring_trace.iter().next().unwrap().cycle >= full_tail_start.cycle);
        }
    }
    assert!(dropped_somewhere, "workload too small to exercise the ring");
}

/// The latency observatory's core invariant, system-wide on a
/// conflict-heavy run: every request's queueing plus service time equals
/// its end-to-end time, so the histogram sums agree exactly.
#[test]
fn latency_observatory_invariant_holds_system_wide() {
    // FIMA placement (step 5) keeps all streamers in one shared address
    // space: bank conflicts, retries, and real queueing delay.
    let cfg = SystemConfig::default().with_features(FeatureSet::ablation_step(5));
    let report = run(&cfg, GemmSpec::new(64, 64, 64).into(), 13);
    assert!(report.conflicts > 0, "expected a conflict-heavy run");
    let counter = |path: &str| {
        report
            .metrics
            .get(path)
            .unwrap_or_else(|| panic!("missing metric {path}"))
            .as_f64() as u64
    };
    let count = counter("mem.latency.end_to_end.count");
    assert_eq!(counter("mem.latency.queueing.count"), count);
    assert_eq!(counter("mem.latency.service.count"), count);
    assert_eq!(
        counter("mem.latency.queueing.sum") + counter("mem.latency.service.sum"),
        counter("mem.latency.end_to_end.sum"),
        "queueing + service must equal end-to-end, request by request"
    );
    // Percentiles are monotone and bounded by the exact extremes.
    for component in ["queueing", "service", "end_to_end"] {
        let p50 = counter(&format!("mem.latency.{component}.p50"));
        let p90 = counter(&format!("mem.latency.{component}.p90"));
        let p99 = counter(&format!("mem.latency.{component}.p99"));
        let max = counter(&format!("mem.latency.{component}.max"));
        assert!(p50 <= p90 && p90 <= p99 && p99 <= max, "{component}");
    }
    assert!(
        counter("mem.latency.queueing.max") >= 1,
        "conflicts imply at least one request queued for a cycle"
    );
}

/// Per-bank and per-requester latency scopes and per-channel FIFO
/// occupancy telemetry all surface in the run's metric snapshot.
#[test]
fn occupancy_and_scoped_latency_metrics_are_published() {
    let report = run(
        &SystemConfig::default(),
        GemmSpec::new(32, 32, 32).into(),
        14,
    );
    for key in [
        "mem.latency.end_to_end.p99",
        "mem.requester.A.ch0.latency.queueing.count",
        "streamer.A.fifo_occupancy.max",
        "streamer.A.ch0.fifo_occupancy.count",
        "streamer.OUT.fifo_occupancy.max",
    ] {
        assert!(report.metrics.get(key).is_some(), "missing metric {key}");
    }
    assert!(
        report
            .metrics
            .iter()
            .any(|(path, _)| path.starts_with("mem.bank") && path.contains(".latency.")),
        "at least one trafficked bank publishes a latency scope"
    );
    // Occupancy was sampled once per streamer-active cycle, so the A
    // streamer saw at least as many samples as compute cycles.
    let samples = report
        .metrics
        .get("streamer.A.fifo_occupancy.count")
        .unwrap()
        .as_f64() as u64;
    assert!(
        samples >= report.compute_cycles,
        "samples {samples} < compute cycles {}",
        report.compute_cycles
    );
}

/// Provenance stamps every report; host phase timings appear only when
/// requested and never perturb the simulated measurement.
#[test]
fn provenance_and_host_timings_ride_the_report() {
    let workload: Workload = GemmSpec::new(16, 16, 16).into();
    let plain = run(&SystemConfig::default(), workload, 15);
    assert!(plain.host.is_none());
    assert_eq!(plain.provenance.fingerprint.len(), 16);
    assert!(plain
        .provenance
        .fingerprint
        .chars()
        .all(|c| c.is_ascii_hexdigit()));
    assert_eq!(plain.provenance.workload, workload.to_string());

    let timed = run(
        &SystemConfig {
            time_phases: true,
            ..SystemConfig::default()
        },
        workload,
        15,
    );
    let host = timed.host.expect("time_phases captures host timings");
    assert_eq!(host.cycles, timed.compute_cycles);
    assert!(host.compute_loop_ns > 0);
    assert!(
        host.streamers_ns + host.memory_ns + host.pe_ns <= host.compute_loop_ns,
        "phase laps cannot exceed the whole loop"
    );
    // Same fingerprint (timing is a diagnostic) and identical measurement.
    assert_eq!(timed.provenance, plain.provenance);
    assert_eq!(timed.metrics, plain.metrics);
    assert_eq!(timed.compute_cycles, plain.compute_cycles);
}
