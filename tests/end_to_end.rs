//! Cross-crate integration tests: full evaluation-system runs with golden
//! verification across workload groups, feature sets and system
//! configurations.

use datamaestro_repro::compiler::FeatureSet;
use datamaestro_repro::mem::MemConfig;
use datamaestro_repro::system::{run_workload, SystemConfig, SystemError};
use datamaestro_repro::workloads::{ConvSpec, GemmSpec, Workload, WorkloadData};

fn workload_zoo() -> Vec<Workload> {
    vec![
        GemmSpec::new(8, 8, 8).into(),
        GemmSpec::new(16, 32, 8).into(),
        GemmSpec::new(40, 16, 24).into(),
        GemmSpec::transposed(16, 16, 32).into(),
        GemmSpec::transposed(24, 8, 8).into(),
        ConvSpec::new(10, 10, 8, 8, 3, 3, 1).into(),
        ConvSpec::new(10, 10, 16, 8, 3, 3, 1).into(),
        ConvSpec::new(8, 8, 8, 16, 1, 1, 1).into(),
        ConvSpec::new(18, 18, 8, 8, 3, 3, 2).into(),
        ConvSpec::new(16, 16, 8, 8, 1, 1, 2).into(),
        ConvSpec::new(12, 12, 8, 8, 5, 5, 1).into(),
        ConvSpec::new(22, 22, 8, 8, 7, 7, 1).into(),
    ]
}

#[test]
fn zoo_verifies_on_the_full_system() {
    let cfg = SystemConfig::default();
    for (i, workload) in workload_zoo().into_iter().enumerate() {
        let data = WorkloadData::generate(workload, 100 + i as u64);
        let report = run_workload(&cfg, &data).unwrap_or_else(|e| panic!("{workload}: {e}"));
        assert!(report.checked, "{workload}");
        assert!(report.utilization() > 0.3, "{workload}");
    }
}

#[test]
fn zoo_verifies_on_every_ablation_step() {
    for step in 1..=6 {
        let cfg = SystemConfig::default().with_features(FeatureSet::ablation_step(step));
        for (i, workload) in workload_zoo().into_iter().enumerate() {
            let data = WorkloadData::generate(workload, 200 + i as u64);
            let report = run_workload(&cfg, &data)
                .unwrap_or_else(|e| panic!("step {step}, {workload}: {e}"));
            assert!(report.checked, "step {step}, {workload}");
        }
    }
}

#[test]
fn zoo_verifies_without_quantization() {
    let cfg = SystemConfig {
        quantized: false,
        ..SystemConfig::default()
    };
    for (i, workload) in workload_zoo().into_iter().enumerate() {
        let data = WorkloadData::generate(workload, 300 + i as u64);
        let report = run_workload(&cfg, &data).unwrap_or_else(|e| panic!("{workload}: {e}"));
        assert!(report.checked, "{workload}");
    }
}

#[test]
fn zoo_verifies_on_smaller_memories() {
    // 16 banks and 8 banks still verify (placement adapts its group sizes).
    for banks in [16usize, 8] {
        let cfg = SystemConfig {
            mem: MemConfig::new(banks, 8, 65_536).expect("geometry"),
            ..SystemConfig::default()
        };
        for (i, workload) in workload_zoo().into_iter().enumerate() {
            let data = WorkloadData::generate(workload, 400 + i as u64);
            let report = run_workload(&cfg, &data)
                .unwrap_or_else(|e| panic!("{banks} banks, {workload}: {e}"));
            assert!(report.checked, "{banks} banks, {workload}");
        }
    }
}

#[test]
fn deeper_memory_latency_still_verifies_and_prefetch_hides_it() {
    // The ORM reserves a slot per in-flight request, so multi-cycle bank
    // latency must neither deadlock nor corrupt data; with fine-grained
    // prefetch the extra latency is hidden almost entirely.
    let data = WorkloadData::generate(GemmSpec::new(32, 32, 32).into(), 7);
    for latency in [1u64, 2, 4] {
        let cfg = SystemConfig {
            read_latency: latency,
            ..SystemConfig::default()
        };
        let report = run_workload(&cfg, &data).expect("runs");
        assert!(report.checked, "latency {latency}");
        assert!(
            report.utilization() > 0.9,
            "latency {latency}: {:.3}",
            report.utilization()
        );
    }
    // The coarse baseline cannot hide it: utilization degrades with latency.
    let coarse = SystemConfig {
        read_latency: 4,
        ..SystemConfig::default()
    }
    .with_features(datamaestro_repro::compiler::FeatureSet::ablation_step(1));
    let report = run_workload(&coarse, &data).expect("runs");
    assert!(report.checked);
    assert!(report.utilization() < 0.4, "{:.3}", report.utilization());
}

#[test]
fn determinism_same_seed_same_report() {
    let cfg = SystemConfig::default();
    let data = WorkloadData::generate(GemmSpec::new(24, 24, 24).into(), 5);
    let a = run_workload(&cfg, &data).expect("runs");
    let b = run_workload(&cfg, &data).expect("runs");
    assert_eq!(a.total_cycles(), b.total_cycles());
    assert_eq!(a.conflicts, b.conflicts);
    assert_eq!(a.mem_reads, b.mem_reads);
    assert_eq!(a.mem_writes, b.mem_writes);
    assert_eq!(a.stalls, b.stalls);
}

#[test]
fn golden_checker_detects_wrong_outputs() {
    // Negative test of the checker itself: compile a program from one
    // data set but verify against another — the byte comparison must fail
    // with OutputMismatch, proving the pass results are not vacuous.
    use datamaestro_repro::compiler::{compile, BufferDepths};
    use datamaestro_repro::system::run_compiled;

    let cfg = SystemConfig::default();
    let data = WorkloadData::generate(GemmSpec::new(8, 8, 8).into(), 9);
    let other = WorkloadData::generate(GemmSpec::new(8, 8, 8).into(), 10);
    let program = compile(
        &data,
        &cfg.features,
        &cfg.mem,
        cfg.quantized,
        BufferDepths::default(),
    )
    .expect("compiles");
    assert!(matches!(
        run_compiled(&cfg, &other, &program),
        Err(SystemError::OutputMismatch { .. })
    ));
    // …while the matching data verifies.
    assert!(run_compiled(&cfg, &data, &program).expect("runs").checked);
}

#[test]
fn deadlock_budget_is_generous_enough_for_pathological_contention() {
    // All operands forced into one bank group's worth of linear space by a
    // tiny memory: heavy conflicts, but it must still complete.
    let cfg = SystemConfig {
        mem: MemConfig::new(4, 8, 16_384).expect("geometry"),
        ..SystemConfig::default()
    };
    let data = WorkloadData::generate(GemmSpec::new(16, 16, 16).into(), 11);
    match run_workload(&cfg, &data) {
        Ok(report) => assert!(report.checked),
        Err(SystemError::Compile(_)) => { /* placement may refuse: fine */ }
        Err(e) => panic!("unexpected error: {e}"),
    }
}
