//! Differential soundness suite for the static performance prover
//! (`dm_analyze::predict`): across the workload zoo × all six ablation
//! steps × read latencies {1, 4, 16},
//!
//! 1. the proven utilization roofline is an *upper bound* on the observed
//!    utilization — never a single violation;
//! 2. wherever the bound is tight (within 2 points of observed), the
//!    predicted bottleneck class agrees with the dominant blame family
//!    the causal profiler measured;
//! 3. the predicted per-step ranking tracks the observed ranking
//!    (Spearman ≥ 0.9 per latency, average ranks for ties);
//! 4. on the full-featured design point the proven steady-state period is
//!    a weak period of the observed fire-gap digest wherever the machine
//!    settles into steady state inside the run.

use datamaestro_repro::analyze::{self, Prediction};
use datamaestro_repro::compiler::{compile, FeatureSet};
use datamaestro_repro::sim::{
    is_periodic_with, minimal_period, CritClass, OperandPort, StallCause,
};
use datamaestro_repro::system::{run_workload, RunReport, SystemConfig};
use datamaestro_repro::workloads::{synthetic_suite, ConvSpec, GemmSpec, Workload, WorkloadData};

/// Plain GeMM, a larger GeMM, transposed GeMM, and two convolutions
/// (stride 1 and stride 2) — one representative per workload family,
/// sized large enough for a steady state to exist.
fn zoo() -> Vec<Workload> {
    vec![
        GemmSpec::new(24, 16, 32).into(),
        GemmSpec::new(32, 32, 64).into(),
        GemmSpec::transposed(32, 32, 32).into(),
        ConvSpec::new(26, 26, 8, 8, 3, 3, 1).into(),
        ConvSpec::new(18, 18, 8, 16, 3, 3, 2).into(),
    ]
}

fn config(step: usize, latency: u64) -> SystemConfig {
    SystemConfig {
        read_latency: latency,
        check_output: false,
        ..SystemConfig::default().with_features(FeatureSet::ablation_step(step))
    }
}

/// Lower the workload exactly as `run_workload` does and prove it.
fn prove(cfg: &SystemConfig, data: &WorkloadData) -> Prediction {
    let program = compile(data, &cfg.features, &cfg.mem, cfg.quantized, cfg.depths)
        .unwrap_or_else(|d| panic!("compile failed: {d:?}"));
    analyze::predict(&program, &cfg.mem, cfg.read_latency)
        .unwrap_or_else(|d| panic!("predict failed: {d:?}"))
}

/// Spearman rank correlation with average ranks for ties.
fn spearman(xs: &[f64], ys: &[f64]) -> f64 {
    fn ranks(values: &[f64]) -> Vec<f64> {
        let mut order: Vec<usize> = (0..values.len()).collect();
        order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).unwrap());
        let mut out = vec![0.0; values.len()];
        let mut lo = 0;
        while lo < order.len() {
            let mut hi = lo;
            while hi + 1 < order.len() && values[order[hi + 1]] == values[order[lo]] {
                hi += 1;
            }
            let avg = (lo + hi) as f64 / 2.0 + 1.0;
            for &idx in &order[lo..=hi] {
                out[idx] = avg;
            }
            lo = hi + 1;
        }
        out
    }
    let (rx, ry) = (ranks(xs), ranks(ys));
    let mean = (xs.len() as f64 + 1.0) / 2.0;
    let (mut num, mut dx, mut dy) = (0.0, 0.0, 0.0);
    for i in 0..xs.len() {
        num += (rx[i] - mean) * (ry[i] - mean);
        dx += (rx[i] - mean).powi(2);
        dy += (ry[i] - mean).powi(2);
    }
    num / (dx * dy).sqrt()
}

/// Stall cycles charged to the exposed-latency family (empty FIFO while
/// the streamer was not losing arbitration).
fn no_operand_total(report: &RunReport) -> u64 {
    [OperandPort::A, OperandPort::B, OperandPort::C]
        .into_iter()
        .map(|p| report.blame.cause_total(StallCause::NoOperand(p)))
        .sum()
}

/// Stall cycles charged to scratchpad bank contention.
fn bank_conflict_total(report: &RunReport) -> u64 {
    [OperandPort::A, OperandPort::B, OperandPort::C]
        .into_iter()
        .map(|p| report.blame.cause_total(StallCause::BankConflict(p)))
        .sum()
}

/// The acceptance invariant for the roofline, exhaustively: for every
/// zoo workload × ablation step × read latency the proven bound never
/// under-states the observed utilization; where it is tight the predicted
/// bottleneck matches the measured dominant blame family; and per
/// latency, ranking the six steps by predicted bound reproduces the
/// observed ranking to Spearman ≥ 0.9.
#[test]
fn roofline_is_sound_tight_and_rank_faithful() {
    let mut tight_matches = 0usize;
    for latency in [1u64, 4, 16] {
        let (mut predicted, mut observed) = (Vec::new(), Vec::new());
        for step in 1..=6usize {
            let cfg = config(step, latency);
            let (mut ideal, mut total, mut lower) = (0u64, 0u64, 0u64);
            for (i, workload) in zoo().into_iter().enumerate() {
                let data = WorkloadData::generate(workload, i as u64);
                let report =
                    run_workload(&cfg, &data).unwrap_or_else(|e| panic!("{workload}: {e}"));
                let p = prove(&cfg, &data);
                let util = report.utilization();
                let label = format!("step {step}, latency {latency}, {workload}");

                // (1) Soundness: the proof is an upper bound, always.
                assert!(
                    p.bound + 1e-12 >= util,
                    "{label}: proven bound {} under-states observed utilization {}",
                    p.bound,
                    util
                );

                // (2) Tightness ⇒ the predicted bottleneck class names the
                // blame family the causal profiler actually measured as
                // dominant. A loose bound proves nothing about causes, so
                // only tight configs are held to this.
                if p.bound - util <= 0.02 {
                    let no_op = no_operand_total(&report);
                    let bank = bank_conflict_total(&report);
                    match p.bottleneck {
                        CritClass::PeIssue => assert!(
                            report.blame.fired() >= report.blame.stalled(),
                            "{label}: predicted pe-issue but the run stalled \
                             more than it fired"
                        ),
                        CritClass::MemLatency | CritClass::AguThroughput => assert!(
                            no_op >= bank,
                            "{label}: predicted {} but bank-conflict blame \
                             {bank} exceeds exposed-latency blame {no_op}",
                            p.bottleneck.label()
                        ),
                        CritClass::BankConflict => assert!(
                            bank >= no_op,
                            "{label}: predicted bank-conflict but exposed-latency \
                             blame {no_op} exceeds bank-conflict blame {bank}"
                        ),
                        other => panic!(
                            "{label}: tight bound with unexpected class {}",
                            other.label()
                        ),
                    }
                    tight_matches += 1;
                }

                ideal += report.ideal_cycles;
                total += report.total_cycles();
                lower += p.prepass_lb + p.compute_lb;
            }
            predicted.push(ideal as f64 / lower as f64);
            observed.push(ideal as f64 / total as f64);
        }

        // (3) Rank fidelity across the ablation ladder.
        let rho = spearman(&predicted, &observed);
        assert!(
            rho >= 0.9,
            "latency {latency}: Spearman {rho:.4} < 0.9 \
             (predicted {predicted:?}, observed {observed:?})"
        );
    }
    // The tightness check must not be vacuous: the full-featured step is
    // near-peak and the latency-starved step-1 points are latency-exact.
    assert!(
        tight_matches >= 6,
        "only {tight_matches} tight configs — tightness check is vacuous"
    );
}

/// On the full-featured design point (ablation step 6) the proven
/// fire period divides the observed steady-state fire-gap digest: take
/// the gap sequence between consecutive PE fires, trim the fill quarter
/// and the drain eighth, and wherever the remaining window has settled
/// into a periodic steady state (its minimal weak period fits twice),
/// some small multiple of the proven period must be a weak period of it.
///
/// At read latency 16 the two convolutions spend most of these bounded
/// runs still converging — their windows are provably unsettled and are
/// skipped — so the test also pins a floor on how many configurations
/// *do* settle, keeping the divisibility check non-vacuous.
#[test]
fn steady_state_period_divides_the_fire_digest() {
    let mut settled_configs = 0usize;
    for latency in [1u64, 4, 16] {
        let cfg = SystemConfig {
            record_fire_cycles: true,
            ..config(6, latency)
        };
        for (i, workload) in zoo().into_iter().enumerate() {
            let data = WorkloadData::generate(workload, i as u64);
            let report = run_workload(&cfg, &data).unwrap_or_else(|e| panic!("{workload}: {e}"));
            let p = prove(&cfg, &data);
            let period = p.period.fire_period as usize;
            assert!(period > 0, "{workload}: degenerate proven period");

            let gaps: Vec<u64> = report.fire_cycles.windows(2).map(|w| w[1] - w[0]).collect();
            // Trim the fill transient (first quarter) and the drain ramp
            // (last eighth); what remains is the candidate steady window.
            let window = &gaps[gaps.len() / 4..gaps.len() - gaps.len() / 8];
            let settled = 2 * minimal_period(window) as usize <= window.len();
            if !settled {
                continue;
            }
            settled_configs += 1;

            // At low latency the digest is periodic with the proven period
            // itself (m = 1, many periods of support). At high latency the
            // FIFO-refill cadence overlays a depth-periodic fine structure
            // and the joint period is a small multiple of the proven one
            // (e.g. lcm(8, 108) = 2·108); m stays capped so a wrong proof
            // cannot hide behind ever-larger multiples.
            let divides = (1..=4usize).any(|m| {
                m * period < window.len() && is_periodic_with(window, (m * period) as u64)
            });
            assert!(
                divides,
                "latency {latency}, {workload}: settled fire digest \
                 (minimal period {}) is not periodic with any small multiple \
                 of the proven period {period}",
                minimal_period(window)
            );
        }
    }
    assert!(
        settled_configs >= 12,
        "only {settled_configs} settled configurations — divisibility \
         check is vacuous"
    );
}

/// Release-mode sweep over the committed fig. 7 suite slice: the same
/// soundness invariant as the zoo sweep, over every fifth synthetic suite
/// workload. Too slow for debug tier-1; CI runs it in release via
/// `cargo test --release --test predict_soundness -- --include-ignored`.
#[test]
#[ignore = "slow: run in release (CI predict-soundness step)"]
fn roofline_is_sound_across_the_suite_slice() {
    for latency in [1u64, 4, 16] {
        for step in 1..=6usize {
            let cfg = config(step, latency);
            for (i, workload) in synthetic_suite().into_iter().enumerate() {
                if i % 5 != 0 {
                    continue;
                }
                let data = WorkloadData::generate(workload, i as u64);
                let report =
                    run_workload(&cfg, &data).unwrap_or_else(|e| panic!("{workload}: {e}"));
                let p = prove(&cfg, &data);
                assert!(
                    p.bound + 1e-12 >= report.utilization(),
                    "step {step}, latency {latency}, {workload}: bound {} \
                     under-states utilization {}",
                    p.bound,
                    report.utilization()
                );
            }
        }
    }
}
