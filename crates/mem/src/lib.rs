//! Multi-banked scratchpad memory subsystem for the DataMaestro simulator.
//!
//! This crate models the memory side of Fig. 2(a) of the DataMaestro paper
//! (DAC 2025): an `N_BF`-banked scratchpad providing one `W_B`-byte word per
//! bank per cycle, reached through an interleaved crossbar with per-bank
//! round-robin arbitration. Bank conflicts — several requesters targeting
//! the same bank in the same cycle — are the *only* source of stalls in the
//! whole simulator, exactly as in the modelled hardware.
//!
//! The crate also implements the paper's §III-D **address remapper**: the
//! runtime-selectable bit permutation that maps a linear word address onto a
//! `(bank, row)` location under one of three addressing modes
//! ([`AddressingMode`]): fully interleaved (FIMA), grouped-interleaved
//! (GIMA) and non-interleaved (NIMA).
//!
//! # Examples
//!
//! ```
//! use dm_mem::{AddressingMode, AddressRemapper, MemConfig};
//!
//! let cfg = MemConfig::new(32, 8, 1024)?;
//! let remap = AddressRemapper::new(&cfg, AddressingMode::FullyInterleaved)?;
//! // Consecutive words land in consecutive banks under FIMA.
//! assert_eq!(remap.map_word(0).bank, 0);
//! assert_eq!(remap.map_word(1).bank, 1);
//! # Ok::<(), dm_mem::MemError>(())
//! ```

// The cycle kernel lives here: performance lints are errors, not hints.

pub mod addr;
pub mod error;
pub mod remap;
pub mod scratchpad;
pub mod subsystem;
pub mod word;

pub use addr::{Addr, BankLocation};
pub use error::MemError;
pub use remap::{AddressRemapper, AddressingMode};
pub use scratchpad::{MemConfig, Scratchpad};
pub use subsystem::{
    LatencyTelemetry, MemOp, MemRequest, MemResponse, MemStats, MemorySubsystem, RequesterId,
};
pub use word::Word;
