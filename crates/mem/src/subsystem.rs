//! The interleaved crossbar: per-bank arbitration, grants and responses.
//!
//! Every DataMaestro channel (and the DMA engine used for explicit
//! pre-passes) registers as a *requester*. Each simulated cycle proceeds as:
//!
//! 1. [`MemorySubsystem::take_responses`] — collect read data whose latency
//!    elapsed (fixed single-cycle bank latency by default);
//! 2. requesters [`submit`](MemorySubsystem::submit) at most one request
//!    each;
//! 3. [`MemorySubsystem::arbitrate`] — per bank, a round-robin arbiter
//!    grants exactly one request; granted writes commit immediately, granted
//!    reads capture data and schedule a response. Losing requests are simply
//!    dropped — the requester observes the missing grant and retries, which
//!    is precisely how bank conflicts turn into stall cycles.
//!
//! The subsystem counts granted reads/writes (the paper's "data access
//! counts"), submissions and conflict events, and stamps every request's
//! lifetime — issue, arbitration grant, response delivery — into per-bank
//! and per-requester [`LatencyTelemetry`] histograms. Queueing latency
//! (issue → grant) measures arbitration pressure; service latency (grant →
//! delivery) the bank pipeline; their sum is the end-to-end latency the
//! streamer FIFOs must hide for the PE array to run stall-free.

use std::collections::VecDeque;
use std::fmt;

use dm_sim::{
    Counter, Cycle, Distribution, Instrumented, LatencyHistogram, MetricsRegistry, NextActivity,
    RoundRobinArbiter, StableHasher, Trace, TraceEventKind, TraceMode,
};
use serde::{Deserialize, Serialize};

use crate::addr::BankLocation;
use crate::error::MemError;
use crate::scratchpad::{MemConfig, Scratchpad};
use crate::word::Word;

/// Identifier of a registered requester (one per streamer channel).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RequesterId(usize);

impl RequesterId {
    /// Raw index, usable to address per-requester tables.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for RequesterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "requester {}", self.0)
    }
}

/// A memory operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MemOp {
    /// Read one full word.
    Read,
    /// Write one full word (optionally byte-masked).
    Write {
        /// The word to store; must be exactly one bank word wide.
        data: Word,
        /// Optional byte strobes; `None` writes all bytes.
        mask: Option<Vec<bool>>,
    },
}

impl MemOp {
    /// Returns `true` for reads.
    #[must_use]
    pub fn is_read(&self) -> bool {
        matches!(self, MemOp::Read)
    }
}

/// One request submitted to the crossbar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MemRequest {
    /// Who is asking.
    pub requester: RequesterId,
    /// Physical target location (already remapped by the streamer).
    pub loc: BankLocation,
    /// Opaque tag echoed in the response; channels use it to sanity-check
    /// response ordering.
    pub tag: u64,
    /// The operation.
    pub op: MemOp,
}

/// A read response delivered after the bank latency.
///
/// `Copy`: the payload is an inline [`Word`], so handing a response to a
/// channel is a fixed-size move with no heap traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemResponse {
    /// The requester the data belongs to.
    pub requester: RequesterId,
    /// Tag of the originating request.
    pub tag: u64,
    /// The full word read.
    pub data: Word,
}

/// Access statistics maintained by the subsystem.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemStats {
    /// Granted read word accesses.
    pub reads: Counter,
    /// Granted write word accesses.
    pub writes: Counter,
    /// Unique requests submitted. A request retried after a lost
    /// arbitration is *not* counted again, so at drain
    /// `submissions == reads + writes` exactly (Fig. 7 access accounting).
    pub submissions: Counter,
    /// Retry submissions of an already-issued request after a lost
    /// arbitration. `submissions + resubmissions` is the total crossbar
    /// port pressure.
    pub resubmissions: Counter,
    /// Conflict events: for each bank and cycle with `k > 1` requests,
    /// `k - 1` conflicts are recorded.
    pub conflicts: Counter,
}

impl MemStats {
    /// Total granted accesses (the paper's "data access count").
    #[must_use]
    pub fn total_accesses(&self) -> u64 {
        self.reads.get() + self.writes.get()
    }
}

/// Request-lifetime histograms for one bank or one requester.
///
/// Per request, `queueing + service == end_to_end` exactly: all three are
/// stamped from the same cycle counter, and the histograms' `sum`/`count`
/// fields are exact even though individual samples are log-bucketed.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct LatencyTelemetry {
    /// Issue (first submit) → arbitration grant. Retries after a lost
    /// arbitration do not re-stamp the issue cycle.
    pub queueing: LatencyHistogram,
    /// Grant → response delivery. Writes commit at the grant, so their
    /// service latency is zero by definition.
    pub service: LatencyHistogram,
    /// Issue → delivery (grant, for writes).
    pub end_to_end: LatencyHistogram,
}

impl LatencyTelemetry {
    /// Merges another telemetry block into this one.
    pub fn merge(&mut self, other: &LatencyTelemetry) {
        self.queueing.merge(&other.queueing);
        self.service.merge(&other.service);
        self.end_to_end.merge(&other.end_to_end);
    }

    /// `true` when no request completed against this bank/requester.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.end_to_end.is_empty()
    }
}

impl Instrumented for LatencyTelemetry {
    fn register_metrics(&self, registry: &mut MetricsRegistry) {
        registry.set_histogram("queueing", &self.queueing);
        registry.set_histogram("service", &self.service);
        registry.set_histogram("end_to_end", &self.end_to_end);
    }
}

/// A read response scheduled for delivery, with its lifetime stamps.
#[derive(Debug)]
struct InFlightRead {
    due: Cycle,
    issued: Cycle,
    granted: Cycle,
    bank: usize,
    /// Causal flow token id stamped at the request's first submit.
    flow: u64,
    response: MemResponse,
}

/// The banked scratchpad behind an interleaved crossbar.
pub struct MemorySubsystem {
    scratchpad: Scratchpad,
    read_latency: u64,
    arbiters: Vec<RoundRobinArbiter>,
    requester_names: Vec<String>,
    /// Requests submitted in the current cycle.
    submissions: Vec<MemRequest>,
    submitted: Vec<bool>,
    /// Read responses in flight, stamped for latency attribution.
    in_flight: VecDeque<InFlightRead>,
    /// Grant flags from the last arbitration, indexed by requester.
    grants: Vec<bool>,
    /// Persistent arbitration scratch: per-bank submission-index buckets.
    /// Only the banks listed in `touched_banks` hold entries; they are
    /// cleared at the start of the next arbitration, so a quiet bank costs
    /// nothing and no per-cycle allocation happens.
    bank_buckets: Vec<Vec<usize>>,
    /// Banks with at least one submission this cycle (unsorted until
    /// arbitration, which processes them in ascending bank order).
    touched_banks: Vec<usize>,
    /// Persistent scratch for one bank's contending requester indices.
    requester_scratch: Vec<usize>,
    per_bank_accesses: Vec<u64>,
    /// Issue cycle of each requester's currently pending request. Set on
    /// the first submit, cleared at the grant; retries keep the original
    /// stamp. Sound because a requester has at most one request in the
    /// submit/retry phase at a time (enforced by `DuplicateRequest`).
    issue_cycle: Vec<Option<Cycle>>,
    /// Flow token id of each requester's currently pending request, valid
    /// while the matching `issue_cycle` slot is `Some`. Fixed per-requester
    /// storage (sized with `issue_cycle`): token ids ride existing lifetime
    /// stamps, never a per-token allocation.
    pending_flow: Vec<u64>,
    /// Next flow token id; ids are assigned in submit order, so they are
    /// deterministic and unique within a run.
    next_flow_id: u64,
    /// Emit `FlowIssue`/`FlowGrant`/`FlowDeliver` trace stamps (opt-in on
    /// top of tracing: flow events inflate traces).
    flow_events: bool,
    per_bank_latency: Vec<LatencyTelemetry>,
    per_requester_latency: Vec<LatencyTelemetry>,
    stats: MemStats,
    cycle: Cycle,
    traffic_started: bool,
    trace: Trace,
}

impl MemorySubsystem {
    /// Default single-cycle bank read latency.
    pub const DEFAULT_READ_LATENCY: u64 = 1;

    /// Creates a subsystem over a fresh zeroed scratchpad.
    #[must_use]
    pub fn new(config: MemConfig) -> Self {
        Self::with_scratchpad(Scratchpad::new(config))
    }

    /// Creates a subsystem over an existing (possibly preloaded) scratchpad.
    #[must_use]
    pub fn with_scratchpad(scratchpad: Scratchpad) -> Self {
        let banks = scratchpad.config().num_banks();
        MemorySubsystem {
            scratchpad,
            read_latency: Self::DEFAULT_READ_LATENCY,
            arbiters: vec![RoundRobinArbiter::new(1); banks],
            requester_names: Vec::new(),
            submissions: Vec::new(),
            submitted: Vec::new(),
            in_flight: VecDeque::new(),
            grants: Vec::new(),
            bank_buckets: vec![Vec::new(); banks],
            touched_banks: Vec::new(),
            requester_scratch: Vec::new(),
            per_bank_accesses: vec![0; banks],
            issue_cycle: Vec::new(),
            pending_flow: Vec::new(),
            next_flow_id: 0,
            flow_events: false,
            per_bank_latency: vec![LatencyTelemetry::default(); banks],
            per_requester_latency: Vec::new(),
            stats: MemStats::default(),
            cycle: Cycle::ZERO,
            traffic_started: false,
            trace: Trace::new(),
        }
    }

    /// Configures event tracing (disabled by default; costs one branch per
    /// conflict when off).
    pub fn set_trace_mode(&mut self, mode: TraceMode) {
        self.trace = mode.build();
    }

    /// The captured event trace.
    #[must_use]
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Takes the captured event trace, leaving a disabled one behind.
    pub fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.trace)
    }

    /// Opts into causal flow stamps ([`TraceEventKind::FlowIssue`] /
    /// [`TraceEventKind::FlowGrant`] / [`TraceEventKind::FlowDeliver`]) on
    /// the event trace. Off by default — every request emits three events,
    /// which inflates traces — and a no-op unless tracing is enabled.
    /// Never affects simulated behaviour.
    pub fn set_flow_events(&mut self, on: bool) {
        self.flow_events = on;
    }

    /// Registers a requester (e.g. `"streamer-A/ch0"`).
    ///
    /// # Panics
    ///
    /// Panics if called after traffic has started; the hardware crossbar's
    /// port count is fixed at design time.
    pub fn register_requester(&mut self, name: impl Into<String>) -> RequesterId {
        assert!(
            !self.traffic_started,
            "requesters must be registered before any traffic"
        );
        let id = RequesterId(self.requester_names.len());
        self.requester_names.push(name.into());
        id
    }

    /// Name given at registration.
    #[must_use]
    pub fn requester_name(&self, id: RequesterId) -> &str {
        &self.requester_names[id.0]
    }

    /// Number of registered requesters.
    #[must_use]
    pub fn num_requesters(&self) -> usize {
        self.requester_names.len()
    }

    /// Sets the bank read latency in cycles (≥ 1).
    ///
    /// # Panics
    ///
    /// Panics if `latency` is zero (combinational reads are not modelled) or
    /// if traffic already started.
    pub fn set_read_latency(&mut self, latency: u64) {
        assert!(latency >= 1, "read latency must be at least one cycle");
        assert!(!self.traffic_started, "latency is a design-time parameter");
        self.read_latency = latency;
    }

    /// Access to the scratchpad (host preload / result inspection).
    #[must_use]
    pub fn scratchpad(&self) -> &Scratchpad {
        &self.scratchpad
    }

    /// Mutable access to the scratchpad for host-side preloading.
    pub fn scratchpad_mut(&mut self) -> &mut Scratchpad {
        &mut self.scratchpad
    }

    /// Current simulated cycle (advances once per [`arbitrate`]).
    ///
    /// [`arbitrate`]: Self::arbitrate
    #[must_use]
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Statistics so far.
    #[must_use]
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Granted word accesses per bank (for load-balance inspection).
    #[must_use]
    pub fn per_bank_accesses(&self) -> &[u64] {
        &self.per_bank_accesses
    }

    /// Request-lifetime histograms per bank (indexed by bank number).
    #[must_use]
    pub fn latency_by_bank(&self) -> &[LatencyTelemetry] {
        &self.per_bank_latency
    }

    /// Request-lifetime histograms per requester (indexed by
    /// [`RequesterId::index`]). Empty until traffic starts.
    #[must_use]
    pub fn latency_by_requester(&self) -> &[LatencyTelemetry] {
        &self.per_requester_latency
    }

    /// Request-lifetime histograms merged over all banks.
    #[must_use]
    pub fn latency_totals(&self) -> LatencyTelemetry {
        let mut total = LatencyTelemetry::default();
        for tel in &self.per_bank_latency {
            total.merge(tel);
        }
        total
    }

    /// Resets statistics (not memory contents or cycle count).
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
        self.per_bank_accesses.fill(0);
        self.per_bank_latency.fill(LatencyTelemetry::default());
        self.per_requester_latency.fill(LatencyTelemetry::default());
    }

    /// Step 1 of a cycle: deliver read responses whose latency has elapsed,
    /// in issue order, to `deliver` — the allocation-free drain used by the
    /// tick kernel.
    ///
    /// Responses are `Copy`, so the callback receives each one by value.
    pub fn drain_responses(&mut self, mut deliver: impl FnMut(MemResponse)) {
        while let Some(front) = self.in_flight.front() {
            if front.due > self.cycle {
                break;
            }
            let read = self.in_flight.pop_front().expect("front exists");
            // Delivery stamp: the response leaves the subsystem now.
            let service = self.cycle.saturating_sub(read.granted).get();
            let end_to_end = self.cycle.saturating_sub(read.issued).get();
            self.per_bank_latency[read.bank].service.record(service);
            self.per_bank_latency[read.bank]
                .end_to_end
                .record(end_to_end);
            let requester = &mut self.per_requester_latency[read.response.requester.0];
            requester.service.record(service);
            requester.end_to_end.record(end_to_end);
            if self.flow_events {
                self.trace.emit(
                    self.cycle,
                    "xbar",
                    TraceEventKind::FlowDeliver { id: read.flow },
                );
            }
            deliver(read.response);
        }
    }

    /// Step 1 of a cycle: collect read responses whose latency has elapsed.
    ///
    /// Convenience wrapper over [`drain_responses`](Self::drain_responses)
    /// that allocates a fresh `Vec`; tests and one-shot tools use it, the
    /// tick kernel drains in place.
    pub fn take_responses(&mut self) -> Vec<MemResponse> {
        let mut out = Vec::new();
        self.drain_responses(|response| out.push(response));
        out
    }

    /// Step 2 of a cycle: submit one request for a requester.
    ///
    /// # Errors
    ///
    /// [`MemError::UnknownRequester`] for an unregistered id,
    /// [`MemError::DuplicateRequest`] if this requester already submitted in
    /// the current cycle.
    pub fn submit(&mut self, request: MemRequest) -> Result<(), MemError> {
        let idx = request.requester.0;
        if idx >= self.requester_names.len() {
            return Err(MemError::UnknownRequester { requester: idx });
        }
        self.ensure_traffic_started();
        if self.submitted[idx] {
            return Err(MemError::DuplicateRequest { requester: idx });
        }
        debug_assert!(
            request.loc.bank < self.scratchpad.config().num_banks()
                && request.loc.row < self.scratchpad.config().rows_per_bank(),
            "request target outside memory geometry"
        );
        self.submitted[idx] = true;
        // Issue stamp: only the first submit of a request counts; a retry
        // after a lost arbitration resubmits the same request and keeps
        // accruing queueing latency against the original issue cycle. The
        // same distinction drives the stats split: `submissions` counts
        // unique requests, `resubmissions` the retries.
        if self.issue_cycle[idx].is_none() {
            self.issue_cycle[idx] = Some(self.cycle);
            // Flow token birth: one id per unique request, assigned in
            // submit order. Retries keep the stamp, like the issue cycle.
            self.pending_flow[idx] = self.next_flow_id;
            self.next_flow_id += 1;
            self.stats.submissions.inc();
            if self.flow_events {
                self.trace.emit(
                    self.cycle,
                    "xbar",
                    TraceEventKind::FlowIssue {
                        id: self.pending_flow[idx],
                        bank: request.loc.bank,
                    },
                );
            }
        } else {
            self.stats.resubmissions.inc();
        }
        self.submissions.push(request);
        Ok(())
    }

    /// Step 3 of a cycle: arbitrate all submissions, perform granted
    /// operations and advance the clock.
    ///
    /// Returns the grant flags indexed by requester; requesters that
    /// submitted and find their flag `false` lost arbitration and should
    /// retry next cycle.
    pub fn arbitrate(&mut self) -> &[bool] {
        self.ensure_traffic_started();
        self.grants.fill(false);
        // Group submissions into the persistent per-bank buckets; only the
        // banks touched last cycle need clearing, so a quiet crossbar does
        // no work and nothing is allocated on the hot path.
        for &bank in &self.touched_banks {
            self.bank_buckets[bank].clear();
        }
        self.touched_banks.clear();
        for (i, req) in self.submissions.iter().enumerate() {
            let bucket = &mut self.bank_buckets[req.loc.bank];
            if bucket.is_empty() {
                self.touched_banks.push(req.loc.bank);
            }
            bucket.push(i);
        }
        // Ascending bank order, matching the hardware's fixed port scan and
        // keeping response issue order (and traces) deterministic.
        self.touched_banks.sort_unstable();
        for t in 0..self.touched_banks.len() {
            let bank = self.touched_banks[t];
            let contenders = self.bank_buckets[bank].len();
            if contenders > 1 {
                self.stats.conflicts.add(contenders as u64 - 1);
                self.trace.emit(
                    self.cycle,
                    "xbar",
                    TraceEventKind::BankConflict {
                        bank,
                        contenders: contenders as u64,
                    },
                );
            }
            self.requester_scratch.clear();
            for &i in &self.bank_buckets[bank] {
                self.requester_scratch.push(self.submissions[i].requester.0);
            }
            let winner = self.arbiters[bank]
                .grant_sparse(&self.requester_scratch)
                .expect("non-empty request list always grants");
            let submission_idx = self.bank_buckets[bank][self
                .requester_scratch
                .iter()
                .position(|&r| r == winner)
                .expect("winner requested")];
            self.grants[winner] = true;
            self.per_bank_accesses[bank] += 1;
            let request = &self.submissions[submission_idx];
            // Grant stamp: the pending request leaves the arbitration phase.
            let issued = self.issue_cycle[winner]
                .take()
                .expect("granted request was submitted, so it was stamped");
            let flow = self.pending_flow[winner];
            if self.flow_events {
                self.trace.emit(
                    self.cycle,
                    "xbar",
                    TraceEventKind::FlowGrant { id: flow, bank },
                );
            }
            let queueing = self.cycle.saturating_sub(issued).get();
            self.per_bank_latency[bank].queueing.record(queueing);
            self.per_requester_latency[winner].queueing.record(queueing);
            match &request.op {
                MemOp::Read => {
                    self.stats.reads.inc();
                    let data = Word::from_slice(self.scratchpad.read_row(request.loc));
                    self.in_flight.push_back(InFlightRead {
                        due: self.cycle + self.read_latency,
                        issued,
                        granted: self.cycle,
                        bank,
                        flow,
                        response: MemResponse {
                            requester: request.requester,
                            tag: request.tag,
                            data,
                        },
                    });
                }
                MemOp::Write { data, mask } => {
                    self.stats.writes.inc();
                    // A write's token retires at its grant: the commit *is*
                    // the delivery, so the flow closes here.
                    if self.flow_events {
                        self.trace.emit(
                            self.cycle,
                            "xbar",
                            TraceEventKind::FlowDeliver { id: flow },
                        );
                    }
                    // Writes commit at the grant: service is zero and the
                    // request's whole lifetime is its queueing delay.
                    self.per_bank_latency[bank].service.record(0);
                    self.per_bank_latency[bank].end_to_end.record(queueing);
                    self.per_requester_latency[winner].service.record(0);
                    self.per_requester_latency[winner]
                        .end_to_end
                        .record(queueing);
                    match mask {
                        Some(mask) => self.scratchpad.write_row(request.loc, data, mask),
                        None => self.scratchpad.write_row_full(request.loc, data),
                    }
                }
            }
        }
        self.submissions.clear();
        self.submitted.fill(false);
        self.cycle.advance();
        &self.grants
    }

    /// Returns `true` when no read response is still in flight.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.in_flight.is_empty() && self.submissions.is_empty()
    }

    /// The bank serving `requester`'s oldest in-flight (granted,
    /// undelivered) read, if any. The blame-chain walk uses this to charge
    /// a latency-bound stall to the bank the missing word is coming from;
    /// the `in_flight` queue is due-ordered, so the first match is the
    /// response the requester is waiting on.
    #[must_use]
    pub fn oldest_inflight_bank(&self, requester: RequesterId) -> Option<usize> {
        self.in_flight
            .iter()
            .find(|read| read.response.requester == requester)
            .map(|read| read.bank)
    }

    /// Fast-forward support: advances the clock across `span` cycles in
    /// which the subsystem provably does nothing — no submissions pending
    /// and no in-flight response due before `cycle + span`.
    ///
    /// Equivalent to `span` consecutive [`arbitrate`](Self::arbitrate) calls
    /// with zero submissions: those only clear already-empty scratch and
    /// advance the clock, so skipping them is invisible to every statistic
    /// and histogram.
    pub fn advance_idle(&mut self, span: u64) {
        debug_assert!(
            self.submissions.is_empty(),
            "advance_idle with submissions pending would drop arbitration"
        );
        debug_assert!(
            self.in_flight
                .front()
                .is_none_or(|read| read.due >= self.cycle + span),
            "advance_idle span crosses an in-flight response delivery"
        );
        self.cycle += span;
    }

    fn ensure_traffic_started(&mut self) {
        if !self.traffic_started {
            self.traffic_started = true;
            let n = self.requester_names.len().max(1);
            self.arbiters = vec![RoundRobinArbiter::new(n); self.scratchpad.config().num_banks()];
            self.submitted = vec![false; self.requester_names.len()];
            self.grants = vec![false; self.requester_names.len()];
            self.issue_cycle = vec![None; self.requester_names.len()];
            self.pending_flow = vec![0; self.requester_names.len()];
            self.per_requester_latency =
                vec![LatencyTelemetry::default(); self.requester_names.len()];
        }
    }
}

impl NextActivity for MemorySubsystem {
    /// In-flight responses make the subsystem active at the earliest `due`
    /// cycle (the `in_flight` queue is due-ordered: grants happen in cycle
    /// order with a fixed latency, so the front is the minimum). Pending
    /// submissions pin activity to `now`; an empty crossbar is idle until a
    /// requester pokes it.
    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        if !self.submissions.is_empty() {
            return Some(now);
        }
        self.in_flight.front().map(|read| read.due)
    }

    /// Digest over the state a skipped span must leave untouched: access
    /// statistics and queue depths. Deliberately excludes the clock (the
    /// replay advances it) and the latency histograms (recorded only at
    /// grants/deliveries, which a skippable span cannot contain).
    fn activity_digest(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_u64(self.stats.reads.get());
        h.write_u64(self.stats.writes.get());
        h.write_u64(self.stats.submissions.get());
        h.write_u64(self.stats.resubmissions.get());
        h.write_u64(self.stats.conflicts.get());
        h.write_usize(self.submissions.len());
        h.write_usize(self.in_flight.len());
        h.finish()
    }
}

impl fmt::Debug for MemorySubsystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MemorySubsystem")
            .field("config", self.scratchpad.config())
            .field("requesters", &self.requester_names.len())
            .field("cycle", &self.cycle)
            .field("stats", &self.stats)
            .finish()
    }
}

impl Instrumented for MemorySubsystem {
    fn register_metrics(&self, registry: &mut MetricsRegistry) {
        registry.set_counter("reads", self.stats.reads.get());
        registry.set_counter("writes", self.stats.writes.get());
        registry.set_counter("submissions", self.stats.submissions.get());
        registry.set_counter("resubmissions", self.stats.resubmissions.get());
        registry.set_counter("conflicts", self.stats.conflicts.get());
        registry.set_counter("cycles", self.cycle.get());
        // Conflict rate is per submission *attempt* (unique + retries), the
        // crossbar port pressure — matching the pre-split semantics.
        let attempts = self.stats.submissions.get() + self.stats.resubmissions.get();
        if attempts > 0 {
            registry.set_gauge(
                "conflict_rate",
                self.stats.conflicts.get() as f64 / attempts as f64,
            );
        }
        if self.per_bank_accesses.iter().any(|&n| n > 0) {
            let d: Distribution = self.per_bank_accesses.iter().map(|&n| n as f64).collect();
            registry.set_summary("bank_accesses", &d.summary());
        }
        registry.with_scope("latency", |r| self.latency_totals().register_metrics(r));
        for (bank, tel) in self.per_bank_latency.iter().enumerate() {
            if !tel.is_empty() || !tel.queueing.is_empty() {
                registry.with_scope(&format!("bank{bank}"), |r| {
                    r.with_scope("latency", |r| tel.register_metrics(r));
                });
            }
        }
        for (idx, tel) in self.per_requester_latency.iter().enumerate() {
            if tel.is_empty() && tel.queueing.is_empty() {
                continue;
            }
            // Requester names look like "A/ch0"; fold the separator into the
            // dotted metric path: mem.requester.A.ch0.latency.queueing.p99.
            let name = self.requester_names[idx].replace('/', ".");
            registry.with_scope("requester", |r| {
                r.with_scope(&name, |r| {
                    r.with_scope("latency", |r| tel.register_metrics(r));
                });
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn subsystem() -> MemorySubsystem {
        MemorySubsystem::new(MemConfig::new(4, 8, 16).unwrap())
    }

    fn read(requester: RequesterId, bank: usize, row: usize, tag: u64) -> MemRequest {
        MemRequest {
            requester,
            loc: BankLocation { bank, row },
            tag,
            op: MemOp::Read,
        }
    }

    #[test]
    fn read_after_write_roundtrip() {
        let mut mem = subsystem();
        let r = mem.register_requester("t");
        let word = Word::from_slice(&[1, 2, 3, 4, 5, 6, 7, 8]);
        mem.submit(MemRequest {
            requester: r,
            loc: BankLocation { bank: 1, row: 2 },
            tag: 0,
            op: MemOp::Write {
                data: word,
                mask: None,
            },
        })
        .unwrap();
        let grants = mem.arbitrate();
        assert!(grants[r.index()]);
        mem.submit(read(r, 1, 2, 1)).unwrap();
        mem.arbitrate();
        let responses = mem.take_responses();
        assert_eq!(responses.len(), 1);
        assert_eq!(responses[0].data, word);
        assert_eq!(responses[0].tag, 1);
        assert_eq!(mem.stats().reads.get(), 1);
        assert_eq!(mem.stats().writes.get(), 1);
    }

    #[test]
    fn read_latency_is_respected() {
        let mut mem = subsystem();
        let r = mem.register_requester("t");
        mem.submit(read(r, 0, 0, 7)).unwrap();
        mem.arbitrate();
        // Latency 1: response is available at the *next* cycle boundary,
        // i.e. after this arbitrate the cycle has advanced and the response
        // is due.
        let responses = mem.take_responses();
        assert_eq!(responses.len(), 1);
    }

    #[test]
    fn longer_latency_delays_response() {
        let mut mem = subsystem();
        mem.set_read_latency(3);
        let r = mem.register_requester("t");
        mem.submit(read(r, 0, 0, 0)).unwrap();
        mem.arbitrate(); // cycle 0 -> 1, due at cycle 3
        assert!(mem.take_responses().is_empty());
        mem.arbitrate(); // -> 2
        assert!(mem.take_responses().is_empty());
        mem.arbitrate(); // -> 3
        assert_eq!(mem.take_responses().len(), 1);
    }

    #[test]
    fn bank_conflict_grants_exactly_one() {
        let mut mem = subsystem();
        let a = mem.register_requester("a");
        let b = mem.register_requester("b");
        mem.submit(read(a, 2, 0, 0)).unwrap();
        mem.submit(read(b, 2, 1, 0)).unwrap();
        let grants = mem.arbitrate().to_vec();
        assert_eq!(grants.iter().filter(|&&g| g).count(), 1);
        assert_eq!(mem.stats().conflicts.get(), 1);
        assert_eq!(mem.stats().reads.get(), 1);
    }

    #[test]
    fn conflict_arbitration_is_fair_over_time() {
        let mut mem = subsystem();
        let a = mem.register_requester("a");
        let b = mem.register_requester("b");
        let mut wins = [0u32; 2];
        for _ in 0..10 {
            mem.submit(read(a, 0, 0, 0)).unwrap();
            mem.submit(read(b, 0, 0, 0)).unwrap();
            let grants = mem.arbitrate().to_vec();
            if grants[a.index()] {
                wins[0] += 1;
            }
            if grants[b.index()] {
                wins[1] += 1;
            }
            mem.take_responses();
        }
        assert_eq!(wins, [5, 5]);
    }

    #[test]
    fn requests_to_distinct_banks_all_granted() {
        let mut mem = subsystem();
        let ids: Vec<_> = (0..4)
            .map(|i| mem.register_requester(format!("r{i}")))
            .collect();
        for (i, &id) in ids.iter().enumerate() {
            mem.submit(read(id, i, 0, 0)).unwrap();
        }
        let grants = mem.arbitrate();
        assert!(grants.iter().all(|&g| g));
        assert_eq!(mem.stats().conflicts.get(), 0);
    }

    #[test]
    fn duplicate_submission_rejected() {
        let mut mem = subsystem();
        let r = mem.register_requester("t");
        mem.submit(read(r, 0, 0, 0)).unwrap();
        assert!(matches!(
            mem.submit(read(r, 1, 0, 1)),
            Err(MemError::DuplicateRequest { .. })
        ));
    }

    #[test]
    fn unknown_requester_rejected() {
        let mut mem = subsystem();
        let _ = mem.register_requester("t");
        let bogus = RequesterId(5);
        assert!(matches!(
            mem.submit(read(bogus, 0, 0, 0)),
            Err(MemError::UnknownRequester { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "before any traffic")]
    fn registration_after_traffic_panics() {
        let mut mem = subsystem();
        let r = mem.register_requester("t");
        mem.submit(read(r, 0, 0, 0)).unwrap();
        mem.arbitrate();
        let _ = mem.register_requester("late");
    }

    #[test]
    fn masked_write_through_subsystem() {
        let mut mem = subsystem();
        let r = mem.register_requester("t");
        mem.submit(MemRequest {
            requester: r,
            loc: BankLocation { bank: 0, row: 0 },
            tag: 0,
            op: MemOp::Write {
                data: Word::from_slice(&[0xFF; 8]),
                mask: Some(vec![true, false, false, false, false, false, false, true]),
            },
        })
        .unwrap();
        mem.arbitrate();
        let row = mem.scratchpad().read_row(BankLocation { bank: 0, row: 0 });
        assert_eq!(row, &[0xFF, 0, 0, 0, 0, 0, 0, 0xFF]);
    }

    #[test]
    fn per_bank_accounting() {
        let mut mem = subsystem();
        let r = mem.register_requester("t");
        for i in 0..3 {
            mem.submit(read(r, 1, i, 0)).unwrap();
            mem.arbitrate();
            mem.take_responses();
        }
        assert_eq!(mem.per_bank_accesses(), &[0, 3, 0, 0]);
        mem.reset_stats();
        assert_eq!(mem.stats().total_accesses(), 0);
        assert_eq!(mem.per_bank_accesses(), &[0, 0, 0, 0]);
    }

    #[test]
    fn responses_preserve_issue_order_per_requester() {
        let mut mem = subsystem();
        let r = mem.register_requester("t");
        // Two reads to different banks in consecutive cycles.
        mem.scratchpad_mut()
            .write_row_full(BankLocation { bank: 0, row: 0 }, &[1; 8]);
        mem.scratchpad_mut()
            .write_row_full(BankLocation { bank: 1, row: 0 }, &[2; 8]);
        mem.submit(read(r, 0, 0, 100)).unwrap();
        mem.arbitrate();
        mem.submit(read(r, 1, 0, 101)).unwrap();
        mem.arbitrate();
        let mut tags = Vec::new();
        tags.extend(mem.take_responses().into_iter().map(|r| r.tag));
        mem.arbitrate();
        tags.extend(mem.take_responses().into_iter().map(|r| r.tag));
        assert_eq!(tags, vec![100, 101]);
    }

    #[test]
    fn is_idle_reflects_in_flight_state() {
        let mut mem = subsystem();
        let r = mem.register_requester("t");
        assert!(mem.is_idle());
        mem.submit(read(r, 0, 0, 0)).unwrap();
        mem.arbitrate();
        assert!(!mem.is_idle());
        mem.take_responses();
        assert!(mem.is_idle());
    }

    #[test]
    fn next_activity_tracks_in_flight_due_and_advance_idle_skips_to_it() {
        let mut mem = subsystem();
        mem.set_read_latency(4);
        let r = mem.register_requester("t");
        assert_eq!(mem.next_activity(mem.cycle()), None, "empty crossbar idles");
        mem.submit(read(r, 0, 0, 0)).unwrap();
        assert_eq!(
            mem.next_activity(mem.cycle()),
            Some(mem.cycle()),
            "pending submission pins activity to now"
        );
        mem.arbitrate(); // cycle 0 -> 1, response due at cycle 4
        assert_eq!(mem.next_activity(mem.cycle()), Some(Cycle::new(4)));
        let digest = mem.activity_digest();
        mem.advance_idle(3); // 1 -> 4, exactly up to the delivery
        assert_eq!(mem.cycle(), Cycle::new(4));
        assert_eq!(mem.activity_digest(), digest, "idle skip changes nothing");
        assert_eq!(mem.take_responses().len(), 1);
        assert_eq!(mem.next_activity(mem.cycle()), None);
    }

    #[test]
    fn conflicts_emit_trace_events() {
        let mut mem = subsystem();
        let a = mem.register_requester("a");
        let b = mem.register_requester("b");
        mem.set_trace_mode(TraceMode::Full);
        mem.submit(read(a, 2, 0, 0)).unwrap();
        mem.submit(read(b, 2, 1, 0)).unwrap();
        mem.arbitrate();
        let trace = mem.take_trace();
        let event = trace.iter().next().expect("conflict traced");
        assert_eq!(event.source, "xbar");
        assert_eq!(
            event.kind,
            TraceEventKind::BankConflict {
                bank: 2,
                contenders: 2
            }
        );
        assert!(!mem.trace().is_enabled(), "take_trace leaves tracing off");
    }

    #[test]
    fn flow_stamps_cover_a_read_token_lifecycle() {
        let mut mem = subsystem();
        mem.set_read_latency(2);
        let r = mem.register_requester("t");
        mem.set_trace_mode(TraceMode::Full);
        mem.set_flow_events(true);
        mem.submit(read(r, 1, 0, 0)).unwrap(); // issued at cycle 0
        mem.arbitrate(); // granted at cycle 0, due at cycle 2
        mem.arbitrate(); // -> cycle 2
        assert_eq!(mem.take_responses().len(), 1);
        let trace = mem.take_trace();
        let flows: Vec<_> = trace
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    TraceEventKind::FlowIssue { .. }
                        | TraceEventKind::FlowGrant { .. }
                        | TraceEventKind::FlowDeliver { .. }
                )
            })
            .collect();
        assert_eq!(flows.len(), 3, "issue, grant, delivery");
        assert_eq!(flows[0].kind, TraceEventKind::FlowIssue { id: 0, bank: 1 });
        assert_eq!(flows[0].cycle, Cycle::new(0));
        assert_eq!(flows[1].kind, TraceEventKind::FlowGrant { id: 0, bank: 1 });
        assert_eq!(flows[2].kind, TraceEventKind::FlowDeliver { id: 0 });
        assert_eq!(flows[2].cycle, Cycle::new(2));
    }

    #[test]
    fn flow_stamps_retire_writes_at_the_grant() {
        let mut mem = subsystem();
        let r = mem.register_requester("t");
        mem.set_trace_mode(TraceMode::Full);
        mem.set_flow_events(true);
        mem.submit(MemRequest {
            requester: r,
            loc: BankLocation { bank: 0, row: 0 },
            tag: 0,
            op: MemOp::Write {
                data: Word::from_slice(&[1; 8]),
                mask: None,
            },
        })
        .unwrap();
        mem.arbitrate();
        let kinds: Vec<_> = mem.take_trace().iter().map(|e| e.kind.clone()).collect();
        assert_eq!(
            kinds,
            vec![
                TraceEventKind::FlowIssue { id: 0, bank: 0 },
                TraceEventKind::FlowGrant { id: 0, bank: 0 },
                TraceEventKind::FlowDeliver { id: 0 },
            ]
        );
    }

    #[test]
    fn flow_stamps_are_opt_in_and_ids_survive_retries() {
        let mut mem = subsystem();
        let a = mem.register_requester("a");
        let b = mem.register_requester("b");
        mem.set_trace_mode(TraceMode::Full);
        // Without the opt-in, tracing alone emits no flow stamps.
        mem.submit(read(a, 0, 0, 0)).unwrap();
        mem.arbitrate();
        assert!(!mem
            .take_trace()
            .iter()
            .any(|e| matches!(e.kind, TraceEventKind::FlowIssue { .. })));
        mem.set_trace_mode(TraceMode::Full);
        mem.set_flow_events(true);
        // Conflict: the loser's retry keeps its original token id.
        mem.submit(read(a, 2, 0, 0)).unwrap();
        mem.submit(read(b, 2, 1, 0)).unwrap();
        let grants = mem.arbitrate().to_vec();
        let loser = if grants[a.index()] { b } else { a };
        let loser_bank = 2;
        mem.submit(read(loser, loser_bank, 0, 0)).unwrap();
        mem.arbitrate();
        let trace = mem.take_trace();
        let issues: Vec<u64> = trace
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::FlowIssue { id, .. } => Some(id),
                _ => None,
            })
            .collect();
        // Two unique requests this round (ids continue from the pre-opt-in
        // request, which consumed id 0); the retry stamps no new issue.
        assert_eq!(issues, vec![1, 2]);
        let grants_traced: Vec<u64> = trace
            .iter()
            .filter_map(|e| match e.kind {
                TraceEventKind::FlowGrant { id, .. } => Some(id),
                _ => None,
            })
            .collect();
        assert_eq!(grants_traced.len(), 2, "winner then retried loser");
        assert!(grants_traced.contains(&1) && grants_traced.contains(&2));
    }

    #[test]
    fn metrics_snapshot_covers_stats() {
        let mut mem = subsystem();
        let a = mem.register_requester("a");
        let b = mem.register_requester("b");
        mem.submit(read(a, 2, 0, 0)).unwrap();
        mem.submit(read(b, 2, 1, 0)).unwrap();
        mem.arbitrate();
        let mut reg = MetricsRegistry::new();
        mem.register_metrics(&mut reg);
        assert_eq!(reg.get("reads").unwrap().as_f64(), 1.0);
        assert_eq!(reg.get("conflicts").unwrap().as_f64(), 1.0);
        assert_eq!(reg.get("submissions").unwrap().as_f64(), 2.0);
        assert_eq!(reg.get("resubmissions").unwrap().as_f64(), 0.0);
        assert!(reg.get("conflict_rate").is_some());
        assert!(reg.get("bank_accesses.max").is_some());
    }

    #[test]
    fn uncontended_read_lifetime_is_stamped() {
        let mut mem = subsystem();
        let r = mem.register_requester("t");
        mem.submit(read(r, 0, 0, 0)).unwrap();
        mem.arbitrate();
        assert_eq!(mem.take_responses().len(), 1);
        let tel = &mem.latency_by_requester()[r.index()];
        // Granted in the issue cycle, delivered after the 1-cycle latency.
        assert_eq!(tel.queueing.max(), 0);
        assert_eq!(tel.service.max(), MemorySubsystem::DEFAULT_READ_LATENCY);
        assert_eq!(tel.end_to_end.max(), MemorySubsystem::DEFAULT_READ_LATENCY);
        assert_eq!(mem.latency_by_bank()[0].end_to_end.count(), 1);
    }

    #[test]
    fn conflict_retries_accrue_queueing_latency() {
        let mut mem = subsystem();
        let a = mem.register_requester("a");
        let b = mem.register_requester("b");
        // Both hit bank 0; the loser retries and wins one cycle later.
        mem.submit(read(a, 0, 0, 0)).unwrap();
        mem.submit(read(b, 0, 1, 0)).unwrap();
        let grants = mem.arbitrate().to_vec();
        let loser = if grants[a.index()] { b } else { a };
        mem.take_responses();
        mem.submit(read(loser, 0, if loser == a { 0 } else { 1 }, 0))
            .unwrap();
        assert!(mem.arbitrate()[loser.index()]);
        mem.take_responses();
        let tel = &mem.latency_by_requester()[loser.index()];
        assert_eq!(tel.queueing.max(), 1, "one lost arbitration = one cycle");
        assert_eq!(
            tel.end_to_end.max(),
            1 + MemorySubsystem::DEFAULT_READ_LATENCY
        );
        // The winner paid no queueing delay.
        let winner = if loser == a { b } else { a };
        assert_eq!(mem.latency_by_requester()[winner.index()].queueing.max(), 0);
    }

    #[test]
    fn write_lifetime_has_zero_service() {
        let mut mem = subsystem();
        let r = mem.register_requester("t");
        mem.submit(MemRequest {
            requester: r,
            loc: BankLocation { bank: 3, row: 0 },
            tag: 0,
            op: MemOp::Write {
                data: Word::zeroed(8),
                mask: None,
            },
        })
        .unwrap();
        mem.arbitrate();
        let tel = &mem.latency_by_bank()[3];
        assert_eq!(tel.service.max(), 0);
        assert_eq!(tel.queueing.count(), 1);
        assert_eq!(tel.end_to_end.count(), 1);
    }

    #[test]
    fn lifetime_invariant_queueing_plus_service_is_end_to_end() {
        let mut mem = subsystem();
        let ids: Vec<_> = (0..3)
            .map(|i| mem.register_requester(format!("r{i}")))
            .collect();
        // Conflict-heavy: everyone hammers bank 0, interleaved with writes.
        let mut pending: Vec<Option<MemRequest>> = ids
            .iter()
            .map(|&id| Some(read(id, 0, id.index(), 0)))
            .collect();
        let mut issued = [0u32; 3];
        for cycle in 0..40 {
            mem.take_responses();
            for (i, slot) in pending.iter_mut().enumerate() {
                if slot.is_none() && issued[i] < 5 {
                    issued[i] += 1;
                    *slot = Some(if (cycle + i) % 3 == 0 {
                        MemRequest {
                            requester: ids[i],
                            loc: BankLocation { bank: 0, row: i },
                            tag: 0,
                            op: MemOp::Write {
                                data: Word::from_slice(&[i as u8; 8]),
                                mask: None,
                            },
                        }
                    } else {
                        read(ids[i], 0, i, 0)
                    });
                }
                if let Some(req) = slot.clone() {
                    mem.submit(req).unwrap();
                }
            }
            let grants = mem.arbitrate().to_vec();
            for (i, slot) in pending.iter_mut().enumerate() {
                if grants[ids[i].index()] {
                    *slot = None;
                }
            }
        }
        // Drain.
        for _ in 0..4 {
            mem.take_responses();
            mem.arbitrate();
        }
        mem.take_responses();
        let total = mem.latency_totals();
        assert!(total.queueing.max() > 0, "workload must actually conflict");
        assert_eq!(total.queueing.count(), total.end_to_end.count());
        assert_eq!(total.service.count(), total.end_to_end.count());
        assert_eq!(
            total.queueing.sum() + total.service.sum(),
            total.end_to_end.sum(),
            "per-request lifetimes must decompose exactly"
        );
        // Per-requester telemetry merges to the same totals.
        let merged =
            mem.latency_by_requester()
                .iter()
                .fold(LatencyTelemetry::default(), |mut acc, tel| {
                    acc.merge(tel);
                    acc
                });
        assert_eq!(merged, total);
    }

    #[test]
    fn latency_metrics_appear_under_scoped_paths() {
        let mut mem = subsystem();
        let r = mem.register_requester("A/ch0");
        mem.submit(read(r, 1, 0, 0)).unwrap();
        mem.arbitrate();
        mem.take_responses();
        let mut reg = MetricsRegistry::new();
        mem.register_metrics(&mut reg);
        for path in [
            "latency.queueing.p50",
            "latency.service.p99",
            "latency.end_to_end.max",
            "bank1.latency.end_to_end.count",
            "requester.A.ch0.latency.queueing.count",
        ] {
            assert!(reg.get(path).is_some(), "missing {path}");
        }
        // Banks that saw no traffic publish nothing.
        assert!(reg.get("bank0.latency.end_to_end.count").is_none());
    }

    #[test]
    fn reset_stats_clears_latency_telemetry() {
        let mut mem = subsystem();
        let r = mem.register_requester("t");
        mem.submit(read(r, 0, 0, 0)).unwrap();
        mem.arbitrate();
        mem.take_responses();
        assert!(!mem.latency_totals().is_empty());
        mem.reset_stats();
        assert!(mem.latency_totals().is_empty());
        assert!(mem
            .latency_by_requester()
            .iter()
            .all(LatencyTelemetry::is_empty));
    }

    /// Drives one subsystem with a conflict-heavy mixed workload and
    /// returns the `(tag, data)` stream a given drain strategy delivers.
    fn run_scripted(drain: impl Fn(&mut MemorySubsystem) -> Vec<MemResponse>) -> Vec<(u64, Word)> {
        let mut mem = subsystem();
        let ids: Vec<_> = (0..3)
            .map(|i| mem.register_requester(format!("r{i}")))
            .collect();
        for (bank, value) in [(0usize, 11u8), (1, 22), (2, 33)] {
            mem.scratchpad_mut()
                .write_row_full(BankLocation { bank, row: 0 }, &[value; 8]);
        }
        let mut delivered = Vec::new();
        let mut pending: Vec<Option<MemRequest>> = ids
            .iter()
            .enumerate()
            .map(|(i, &id)| Some(read(id, i % 2, 0, i as u64)))
            .collect();
        let mut issued = [1u64; 3];
        for _ in 0..30 {
            delivered.extend(drain(&mut mem).into_iter().map(|r| (r.tag, r.data)));
            for (i, slot) in pending.iter_mut().enumerate() {
                if slot.is_none() && issued[i] < 6 {
                    issued[i] += 1;
                    *slot = Some(read(ids[i], i % 2, 0, 10 * i as u64 + issued[i]));
                }
                if let Some(req) = slot.clone() {
                    mem.submit(req).unwrap();
                }
            }
            let grants = mem.arbitrate().to_vec();
            for (i, slot) in pending.iter_mut().enumerate() {
                if grants[ids[i].index()] {
                    *slot = None;
                }
            }
        }
        delivered.extend(drain(&mut mem).into_iter().map(|r| (r.tag, r.data)));
        delivered
    }

    #[test]
    fn drain_callback_matches_take_responses_order() {
        let via_take = run_scripted(MemorySubsystem::take_responses);
        let via_drain = run_scripted(|mem| {
            let mut out = Vec::new();
            mem.drain_responses(|response| out.push(response));
            out
        });
        assert!(!via_take.is_empty(), "workload must deliver responses");
        assert_eq!(via_take, via_drain);
    }

    #[test]
    fn submissions_count_unique_requests_and_resubmissions_count_retries() {
        let mut mem = subsystem();
        let a = mem.register_requester("a");
        let b = mem.register_requester("b");
        // Both hit bank 0; the loser retries once.
        mem.submit(read(a, 0, 0, 0)).unwrap();
        mem.submit(read(b, 0, 1, 0)).unwrap();
        let grants = mem.arbitrate().to_vec();
        let loser = if grants[a.index()] { b } else { a };
        mem.take_responses();
        mem.submit(read(loser, 0, if loser == a { 0 } else { 1 }, 0))
            .unwrap();
        mem.arbitrate();
        mem.take_responses();
        assert_eq!(mem.stats().submissions.get(), 2, "two unique requests");
        assert_eq!(mem.stats().resubmissions.get(), 1, "one retry");
        assert_eq!(
            mem.stats().submissions.get(),
            mem.stats().reads.get() + mem.stats().writes.get(),
            "at drain, unique submissions equal granted accesses"
        );
    }

    #[test]
    fn arbitration_scratch_reuse_is_invisible_across_cycles() {
        // Alternate which banks are touched so the persistent buckets must
        // be cleared correctly between cycles.
        let mut mem = subsystem();
        let a = mem.register_requester("a");
        let b = mem.register_requester("b");
        for cycle in 0..8u64 {
            let bank = (cycle % 3) as usize;
            mem.submit(read(a, bank, 0, cycle)).unwrap();
            mem.submit(read(b, (bank + 1) % 4, 0, cycle)).unwrap();
            let grants = mem.arbitrate().to_vec();
            assert!(grants[a.index()] && grants[b.index()], "no conflicts here");
            assert_eq!(mem.take_responses().len(), 2);
        }
        assert_eq!(mem.stats().conflicts.get(), 0);
        assert_eq!(mem.stats().reads.get(), 16);
    }
}
