//! Address newtypes.

use std::fmt;
use std::ops::{Add, AddAssign};

use serde::{Deserialize, Serialize};

/// A byte address in the scratchpad's linear address space.
///
/// Addresses are plain byte offsets; the [`AddressRemapper`] decides which
/// physical `(bank, row)` a word-aligned address lands in.
///
/// # Examples
///
/// ```
/// use dm_mem::Addr;
///
/// let a = Addr::new(64);
/// assert_eq!((a + 8).get(), 72);
/// assert!(a.is_aligned(8));
/// assert!(!Addr::new(5).is_aligned(8));
/// ```
///
/// [`AddressRemapper`]: crate::AddressRemapper
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Addr(u64);

impl Addr {
    /// The null (zero) address.
    pub const ZERO: Addr = Addr(0);

    /// Creates a byte address.
    #[must_use]
    pub const fn new(value: u64) -> Self {
        Addr(value)
    }

    /// Returns the raw byte offset.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns `true` if the address is a multiple of `alignment`.
    #[must_use]
    pub const fn is_aligned(self, alignment: u64) -> bool {
        self.0.is_multiple_of(alignment)
    }

    /// Word index of this address for a given word size in bytes.
    #[must_use]
    pub const fn word_index(self, word_bytes: u64) -> u64 {
        self.0 / word_bytes
    }

    /// Byte offset within the containing word.
    #[must_use]
    pub const fn word_offset(self, word_bytes: u64) -> u64 {
        self.0 % word_bytes
    }

    /// Checked addition of a byte offset.
    #[must_use]
    pub fn checked_add(self, rhs: u64) -> Option<Addr> {
        self.0.checked_add(rhs).map(Addr)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(value: u64) -> Self {
        Addr(value)
    }
}

impl From<Addr> for u64 {
    fn from(value: Addr) -> Self {
        value.0
    }
}

impl Add<u64> for Addr {
    type Output = Addr;

    fn add(self, rhs: u64) -> Addr {
        Addr(self.0 + rhs)
    }
}

impl AddAssign<u64> for Addr {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

/// A physical location in the banked scratchpad: which bank, which row.
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct BankLocation {
    /// Bank index, `0..num_banks`.
    pub bank: usize,
    /// Row (wordline) index inside the bank.
    pub row: usize,
}

impl fmt::Display for BankLocation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bank {} row {}", self.bank, self.row)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_and_word_math() {
        let a = Addr::new(26);
        assert!(!a.is_aligned(8));
        assert_eq!(a.word_index(8), 3);
        assert_eq!(a.word_offset(8), 2);
    }

    #[test]
    fn addition() {
        let mut a = Addr::new(8);
        a += 8;
        assert_eq!(a + 16, Addr::new(32));
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert_eq!(Addr::new(u64::MAX).checked_add(1), None);
        assert_eq!(Addr::new(1).checked_add(1), Some(Addr::new(2)));
    }

    #[test]
    fn display_formats_hex() {
        assert_eq!(Addr::new(255).to_string(), "0xff");
        assert_eq!(format!("{:x}", Addr::new(255)), "ff");
        assert_eq!(BankLocation { bank: 2, row: 9 }.to_string(), "bank 2 row 9");
    }
}
