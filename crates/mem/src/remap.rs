//! Addressing modes and the address remapper (§III-D, Fig. 5 of the paper).
//!
//! Two addressing modes are common for multi-banked memories: fully
//! interleaved (FIMA — consecutive words in consecutive banks) and
//! non-interleaved (NIMA — consecutive words in the same bank). The paper
//! introduces the intermediate *grouped-interleaved* mode (GIMA): banks are
//! partitioned into groups of `N_BG`; addresses interleave across the banks
//! *inside* a group and are contiguous *across* groups. FIMA and NIMA are
//! the two extremes of GIMA (`N_BG = N_BF` and `N_BG = 1` respectively).
//!
//! When every size is a power of two, the mapping is a pure bit permutation
//! of the word address — which is why the hardware remapper of the paper
//! costs only a multiplexer of permuted wires. This module implements the
//! same permutation arithmetically and verifies the power-of-two
//! preconditions at construction time.

use serde::{Deserialize, Serialize};

use crate::addr::{Addr, BankLocation};
use crate::error::MemError;
use crate::scratchpad::MemConfig;

/// Runtime-selectable addressing mode (the `R_S` configuration of Table II).
///
/// # Examples
///
/// ```
/// use dm_mem::AddressingMode;
///
/// let gima = AddressingMode::GroupedInterleaved { group_banks: 8 };
/// assert_eq!(gima.group_banks(32), 8);
/// assert_eq!(AddressingMode::FullyInterleaved.group_banks(32), 32);
/// assert_eq!(AddressingMode::NonInterleaved.group_banks(32), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AddressingMode {
    /// FIMA: word addresses interleave across all banks.
    FullyInterleaved,
    /// GIMA: interleaved within a group of `group_banks` banks, contiguous
    /// across groups.
    GroupedInterleaved {
        /// Banks per group (`N_BG`); must be a power of two dividing the
        /// total bank count.
        group_banks: usize,
    },
    /// NIMA: consecutive word addresses stay within one bank.
    NonInterleaved,
}

impl AddressingMode {
    /// The effective group size for a memory with `num_banks` banks.
    #[must_use]
    pub fn group_banks(self, num_banks: usize) -> usize {
        match self {
            AddressingMode::FullyInterleaved => num_banks,
            AddressingMode::GroupedInterleaved { group_banks } => group_banks,
            AddressingMode::NonInterleaved => 1,
        }
    }

    /// Short human-readable name matching the paper's terminology.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AddressingMode::FullyInterleaved => "FIMA",
            AddressingMode::GroupedInterleaved { .. } => "GIMA",
            AddressingMode::NonInterleaved => "NIMA",
        }
    }
}

impl Default for AddressingMode {
    /// FIMA is the conventional default of general-purpose systems.
    fn default() -> Self {
        AddressingMode::FullyInterleaved
    }
}

impl std::fmt::Display for AddressingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AddressingMode::GroupedInterleaved { group_banks } => {
                write!(f, "GIMA({group_banks})")
            }
            other => write!(f, "{}", other.name()),
        }
    }
}

/// Maps linear word addresses to physical `(bank, row)` locations under a
/// given [`AddressingMode`].
///
/// One remapper is instantiated per DataMaestro; its mode is part of the
/// streamer's runtime configuration.
///
/// # Examples
///
/// ```
/// use dm_mem::{AddressRemapper, AddressingMode, MemConfig};
///
/// let cfg = MemConfig::new(4, 8, 16)?;
/// let nima = AddressRemapper::new(&cfg, AddressingMode::NonInterleaved)?;
/// // Under NIMA the first 16 words all live in bank 0.
/// assert!((0..16).all(|w| nima.map_word(w).bank == 0));
/// assert_eq!(nima.map_word(16).bank, 1);
/// # Ok::<(), dm_mem::MemError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressRemapper {
    mode: AddressingMode,
    num_banks: usize,
    rows_per_bank: usize,
    word_bytes: u64,
    group_banks: usize,
}

impl AddressRemapper {
    /// Creates a remapper for the given memory geometry and mode.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NotPowerOfTwo`] if the group size is not a power
    /// of two, or [`MemError::GroupTooLarge`] if it exceeds or does not
    /// divide the bank count — the hardware bit permutation only exists for
    /// power-of-two groupings.
    pub fn new(config: &MemConfig, mode: AddressingMode) -> Result<Self, MemError> {
        let group_banks = mode.group_banks(config.num_banks());
        if !group_banks.is_power_of_two() {
            return Err(MemError::NotPowerOfTwo {
                parameter: "group_banks",
                value: group_banks,
            });
        }
        if group_banks > config.num_banks() || !config.num_banks().is_multiple_of(group_banks) {
            return Err(MemError::GroupTooLarge {
                group: group_banks,
                banks: config.num_banks(),
            });
        }
        Ok(AddressRemapper {
            mode,
            num_banks: config.num_banks(),
            rows_per_bank: config.rows_per_bank(),
            word_bytes: config.bank_width_bytes() as u64,
            group_banks,
        })
    }

    /// The addressing mode this remapper implements.
    #[must_use]
    pub fn mode(&self) -> AddressingMode {
        self.mode
    }

    /// Word size in bytes.
    #[must_use]
    pub fn word_bytes(&self) -> u64 {
        self.word_bytes
    }

    /// Total capacity in words.
    #[must_use]
    pub fn capacity_words(&self) -> u64 {
        (self.num_banks * self.rows_per_bank) as u64
    }

    /// Maps a linear *word* index to its physical location.
    ///
    /// # Panics
    ///
    /// Panics if the word index exceeds the scratchpad capacity; simulated
    /// components validate bounds before issuing, so an out-of-range word
    /// here is a compiler/AGU bug worth failing loudly on.
    #[must_use]
    pub fn map_word(&self, word: u64) -> BankLocation {
        assert!(
            word < self.capacity_words(),
            "word index {word} beyond scratchpad capacity {}",
            self.capacity_words()
        );
        let g = self.group_banks as u64;
        let rows = self.rows_per_bank as u64;
        let group_capacity = g * rows;
        let group = word / group_capacity;
        let local = word % group_capacity;
        let bank_in_group = local % g;
        let row = local / g;
        BankLocation {
            bank: (group * g + bank_in_group) as usize,
            row: row as usize,
        }
    }

    /// Maps a word-aligned *byte* address to its physical location.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Misaligned`] for a non-word-aligned address and
    /// [`MemError::OutOfBounds`] for an address beyond capacity.
    pub fn map_byte(&self, addr: Addr) -> Result<BankLocation, MemError> {
        if !addr.is_aligned(self.word_bytes) {
            return Err(MemError::Misaligned {
                addr: addr.get(),
                alignment: self.word_bytes,
            });
        }
        let word = addr.word_index(self.word_bytes);
        if word >= self.capacity_words() {
            return Err(MemError::OutOfBounds {
                addr: addr.get(),
                capacity: self.capacity_words() * self.word_bytes,
            });
        }
        Ok(self.map_word(word))
    }

    /// Inverse mapping: physical location back to the linear word index.
    ///
    /// # Panics
    ///
    /// Panics if the location is outside the memory geometry.
    #[must_use]
    pub fn unmap(&self, loc: BankLocation) -> u64 {
        assert!(loc.bank < self.num_banks && loc.row < self.rows_per_bank);
        let g = self.group_banks as u64;
        let rows = self.rows_per_bank as u64;
        let group = loc.bank as u64 / g;
        let bank_in_group = loc.bank as u64 % g;
        group * g * rows + loc.row as u64 * g + bank_in_group
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn cfg() -> MemConfig {
        MemConfig::new(8, 8, 64).expect("valid test geometry")
    }

    #[test]
    fn fima_interleaves_all_banks() {
        let r = AddressRemapper::new(&cfg(), AddressingMode::FullyInterleaved).unwrap();
        for w in 0..16 {
            let loc = r.map_word(w);
            assert_eq!(loc.bank as u64, w % 8);
            assert_eq!(loc.row as u64, w / 8);
        }
    }

    #[test]
    fn nima_fills_banks_sequentially() {
        let r = AddressRemapper::new(&cfg(), AddressingMode::NonInterleaved).unwrap();
        assert_eq!(r.map_word(0), BankLocation { bank: 0, row: 0 });
        assert_eq!(r.map_word(63), BankLocation { bank: 0, row: 63 });
        assert_eq!(r.map_word(64), BankLocation { bank: 1, row: 0 });
    }

    #[test]
    fn gima_interleaves_within_group() {
        let mode = AddressingMode::GroupedInterleaved { group_banks: 4 };
        let r = AddressRemapper::new(&cfg(), mode).unwrap();
        // First group: banks 0..4 interleaved.
        assert_eq!(r.map_word(0).bank, 0);
        assert_eq!(r.map_word(1).bank, 1);
        assert_eq!(r.map_word(3).bank, 3);
        assert_eq!(r.map_word(4), BankLocation { bank: 0, row: 1 });
        // Second group starts after the first group's full capacity.
        let group_capacity = 4 * 64;
        assert_eq!(r.map_word(group_capacity as u64).bank, 4);
    }

    #[test]
    fn extremes_match_special_modes() {
        let fima = AddressRemapper::new(&cfg(), AddressingMode::FullyInterleaved).unwrap();
        let gima8 = AddressRemapper::new(
            &cfg(),
            AddressingMode::GroupedInterleaved { group_banks: 8 },
        )
        .unwrap();
        let nima = AddressRemapper::new(&cfg(), AddressingMode::NonInterleaved).unwrap();
        let gima1 = AddressRemapper::new(
            &cfg(),
            AddressingMode::GroupedInterleaved { group_banks: 1 },
        )
        .unwrap();
        for w in 0..fima.capacity_words() {
            assert_eq!(fima.map_word(w), gima8.map_word(w));
            assert_eq!(nima.map_word(w), gima1.map_word(w));
        }
    }

    #[test]
    fn invalid_group_rejected() {
        let err = AddressRemapper::new(
            &cfg(),
            AddressingMode::GroupedInterleaved { group_banks: 3 },
        )
        .unwrap_err();
        assert!(matches!(err, MemError::NotPowerOfTwo { .. }));
        let err = AddressRemapper::new(
            &cfg(),
            AddressingMode::GroupedInterleaved { group_banks: 16 },
        )
        .unwrap_err();
        assert!(matches!(err, MemError::GroupTooLarge { .. }));
    }

    #[test]
    fn map_byte_validates() {
        let r = AddressRemapper::new(&cfg(), AddressingMode::FullyInterleaved).unwrap();
        assert!(matches!(
            r.map_byte(Addr::new(3)),
            Err(MemError::Misaligned { .. })
        ));
        let capacity = r.capacity_words() * r.word_bytes();
        assert!(matches!(
            r.map_byte(Addr::new(capacity)),
            Err(MemError::OutOfBounds { .. })
        ));
        assert_eq!(
            r.map_byte(Addr::new(8)).unwrap(),
            BankLocation { bank: 1, row: 0 }
        );
    }

    #[test]
    fn mode_display_and_default() {
        assert_eq!(AddressingMode::default(), AddressingMode::FullyInterleaved);
        assert_eq!(AddressingMode::FullyInterleaved.to_string(), "FIMA");
        assert_eq!(
            AddressingMode::GroupedInterleaved { group_banks: 4 }.to_string(),
            "GIMA(4)"
        );
        assert_eq!(AddressingMode::NonInterleaved.to_string(), "NIMA");
    }

    /// Reference implementation of §III-D's insight: for power-of-two
    /// geometry, the (bank, row) mapping is a pure permutation of the word
    /// address bits. GIMA(g) with `b` bank bits and group bits `gb =
    /// log2(g)`: the row is formed from the address bits *above* the group
    /// bits with the inter-group bits moved below the intra-group row bits:
    ///
    /// ```text
    /// word = [ group | row-within-group | bank-in-group ]
    /// bank = [ group | bank-in-group ]
    /// row  = [ row-within-group ]
    /// ```
    // Referenced only inside `proptest!` blocks, which the vendored
    // stand-in discards wholesale.
    #[allow(dead_code)]
    fn bit_permuted(word: u64, num_banks: u64, group: u64, rows: u64) -> BankLocation {
        let gb = group.trailing_zeros();
        let rb = rows.trailing_zeros();
        let bank_in_group = word & (group - 1);
        let row = (word >> gb) & (rows - 1);
        let group_idx = (word >> (gb + rb)) & (num_banks / group - 1);
        BankLocation {
            bank: ((group_idx << gb) | bank_in_group) as usize,
            row: row as usize,
        }
    }

    proptest! {
        /// The arithmetic remapper equals the explicit bit permutation for
        /// every power-of-two grouping — the property that makes the
        /// hardware remapper a mux of rewired address bits.
        #[test]
        fn remapper_is_a_bit_permutation(group_log2 in 0u32..4, word in 0u64..512) {
            let g = 1u64 << group_log2;
            let r = AddressRemapper::new(
                &cfg(),
                AddressingMode::GroupedInterleaved { group_banks: g as usize },
            ).unwrap();
            prop_assert_eq!(r.map_word(word), bit_permuted(word, 8, g, 64));
        }

        /// Every mode is a bijection word ↔ (bank, row): unmap(map(w)) == w
        /// and all mapped locations are unique.
        #[test]
        fn mapping_is_bijective(group_log2 in 0u32..4) {
            let mode = AddressingMode::GroupedInterleaved {
                group_banks: 1 << group_log2,
            };
            let r = AddressRemapper::new(&cfg(), mode).unwrap();
            let mut seen = std::collections::HashSet::new();
            for w in 0..r.capacity_words() {
                let loc = r.map_word(w);
                prop_assert!(loc.bank < 8 && loc.row < 64);
                prop_assert!(seen.insert(loc), "duplicate location for word {}", w);
                prop_assert_eq!(r.unmap(loc), w);
            }
        }

        /// A burst of `group_banks` consecutive words never collides on a
        /// bank — the property the compiler relies on when laying out an
        /// operand inside one bank group.
        #[test]
        fn consecutive_words_spread_across_group(
            group_log2 in 0u32..4,
            start in 0u64..400,
        ) {
            let g = 1usize << group_log2;
            let r = AddressRemapper::new(
                &cfg(),
                AddressingMode::GroupedInterleaved { group_banks: g },
            ).unwrap();
            let start = start.min(r.capacity_words() - g as u64);
            let banks: std::collections::HashSet<usize> =
                (start..start + g as u64).map(|w| r.map_word(w).bank).collect();
            prop_assert_eq!(banks.len(), g);
        }
    }
}
