//! Addressing modes and the address remapper (§III-D, Fig. 5 of the paper).
//!
//! Two addressing modes are common for multi-banked memories: fully
//! interleaved (FIMA — consecutive words in consecutive banks) and
//! non-interleaved (NIMA — consecutive words in the same bank). The paper
//! introduces the intermediate *grouped-interleaved* mode (GIMA): banks are
//! partitioned into groups of `N_BG`; addresses interleave across the banks
//! *inside* a group and are contiguous *across* groups. FIMA and NIMA are
//! the two extremes of GIMA (`N_BG = N_BF` and `N_BG = 1` respectively).
//!
//! When every size is a power of two, the mapping is a pure bit permutation
//! of the word address — which is why the hardware remapper of the paper
//! costs only a multiplexer of permuted wires. This module implements the
//! same permutation arithmetically and verifies the power-of-two
//! preconditions at construction time.

use serde::{Deserialize, Serialize};

use crate::addr::{Addr, BankLocation};
use crate::error::MemError;
use crate::scratchpad::MemConfig;

/// Runtime-selectable addressing mode (the `R_S` configuration of Table II).
///
/// # Examples
///
/// ```
/// use dm_mem::AddressingMode;
///
/// let gima = AddressingMode::GroupedInterleaved { group_banks: 8 };
/// assert_eq!(gima.group_banks(32), 8);
/// assert_eq!(AddressingMode::FullyInterleaved.group_banks(32), 32);
/// assert_eq!(AddressingMode::NonInterleaved.group_banks(32), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AddressingMode {
    /// FIMA: word addresses interleave across all banks.
    FullyInterleaved,
    /// GIMA: interleaved within a group of `group_banks` banks, contiguous
    /// across groups.
    GroupedInterleaved {
        /// Banks per group (`N_BG`); must be a power of two dividing the
        /// total bank count.
        group_banks: usize,
    },
    /// NIMA: consecutive word addresses stay within one bank.
    NonInterleaved,
}

impl AddressingMode {
    /// The effective group size for a memory with `num_banks` banks.
    ///
    /// # Contract
    ///
    /// The result is only meaningful when it is a power of two that
    /// divides `num_banks` — exactly the groupings for which the hardware
    /// bit permutation exists. `FullyInterleaved` and `NonInterleaved`
    /// satisfy this for any power-of-two bank count, but
    /// `GroupedInterleaved` carries an arbitrary user value: callers that
    /// have not validated it must use [`checked_group_banks`] instead.
    ///
    /// # Panics
    ///
    /// Debug builds assert the contract; a violation means a configuration
    /// escaped validation ([`AddressRemapper::new`] is the checked path).
    ///
    /// [`checked_group_banks`]: AddressingMode::checked_group_banks
    #[must_use]
    pub fn group_banks(self, num_banks: usize) -> usize {
        let g = self.raw_group_banks(num_banks);
        debug_assert!(
            g > 0 && g.is_power_of_two() && g <= num_banks && num_banks.is_multiple_of(g),
            "group size {g} is not a power-of-two divisor of {num_banks} banks"
        );
        g
    }

    /// The effective group size, or `None` when it is not a power of two
    /// dividing `num_banks` (no bit permutation exists for such groupings).
    #[must_use]
    pub fn checked_group_banks(self, num_banks: usize) -> Option<usize> {
        let g = self.raw_group_banks(num_banks);
        (g > 0 && g.is_power_of_two() && g <= num_banks && num_banks.is_multiple_of(g)).then_some(g)
    }

    /// The configured group size with no validity checking.
    fn raw_group_banks(self, num_banks: usize) -> usize {
        match self {
            AddressingMode::FullyInterleaved => num_banks,
            AddressingMode::GroupedInterleaved { group_banks } => group_banks,
            AddressingMode::NonInterleaved => 1,
        }
    }

    /// Short human-readable name matching the paper's terminology.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            AddressingMode::FullyInterleaved => "FIMA",
            AddressingMode::GroupedInterleaved { .. } => "GIMA",
            AddressingMode::NonInterleaved => "NIMA",
        }
    }
}

impl Default for AddressingMode {
    /// FIMA is the conventional default of general-purpose systems.
    fn default() -> Self {
        AddressingMode::FullyInterleaved
    }
}

impl std::fmt::Display for AddressingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AddressingMode::GroupedInterleaved { group_banks } => {
                write!(f, "GIMA({group_banks})")
            }
            other => write!(f, "{}", other.name()),
        }
    }
}

/// Maps linear word addresses to physical `(bank, row)` locations under a
/// given [`AddressingMode`].
///
/// One remapper is instantiated per DataMaestro; its mode is part of the
/// streamer's runtime configuration.
///
/// # Examples
///
/// ```
/// use dm_mem::{AddressRemapper, AddressingMode, MemConfig};
///
/// let cfg = MemConfig::new(4, 8, 16)?;
/// let nima = AddressRemapper::new(&cfg, AddressingMode::NonInterleaved)?;
/// // Under NIMA the first 16 words all live in bank 0.
/// assert!((0..16).all(|w| nima.map_word(w).bank == 0));
/// assert_eq!(nima.map_word(16).bank, 1);
/// # Ok::<(), dm_mem::MemError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AddressRemapper {
    mode: AddressingMode,
    num_banks: usize,
    rows_per_bank: usize,
    word_bytes: u64,
    group_banks: usize,
    /// Precomputed bit-permutation table, built once at construction. Every
    /// geometry parameter is a validated power of two, so the mapping
    ///
    /// ```text
    /// word = [ group | row-within-group | bank-in-group ]
    /// bank = [ group | bank-in-group ]
    /// row  = [ row-within-group ]
    /// ```
    ///
    /// reduces to shifts and masks — the software equivalent of the paper's
    /// mux-of-rewired-wires remapper. This keeps per-access division off the
    /// hottest address path; the original div/mod arithmetic survives under
    /// `#[cfg(test)]` as the equivalence oracle.
    group_shift: u32,
    row_shift: u32,
    group_mask: u64,
    row_mask: u64,
}

impl AddressRemapper {
    /// Creates a remapper for the given memory geometry and mode.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NotPowerOfTwo`] if the group size is not a power
    /// of two, or [`MemError::GroupTooLarge`] if it exceeds or does not
    /// divide the bank count — the hardware bit permutation only exists for
    /// power-of-two groupings.
    pub fn new(config: &MemConfig, mode: AddressingMode) -> Result<Self, MemError> {
        // Deliberately the unchecked accessor: this constructor *is* the
        // validation path, and reports which precondition failed.
        let group_banks = mode.raw_group_banks(config.num_banks());
        if !group_banks.is_power_of_two() {
            return Err(MemError::NotPowerOfTwo {
                parameter: "group_banks",
                value: group_banks,
            });
        }
        if group_banks > config.num_banks() || !config.num_banks().is_multiple_of(group_banks) {
            return Err(MemError::GroupTooLarge {
                group: group_banks,
                banks: config.num_banks(),
            });
        }
        Ok(AddressRemapper {
            mode,
            num_banks: config.num_banks(),
            rows_per_bank: config.rows_per_bank(),
            word_bytes: config.bank_width_bytes() as u64,
            group_banks,
            group_shift: group_banks.trailing_zeros(),
            row_shift: config.rows_per_bank().trailing_zeros(),
            group_mask: group_banks as u64 - 1,
            row_mask: config.rows_per_bank() as u64 - 1,
        })
    }

    /// The addressing mode this remapper implements.
    #[must_use]
    pub fn mode(&self) -> AddressingMode {
        self.mode
    }

    /// Word size in bytes.
    #[must_use]
    pub fn word_bytes(&self) -> u64 {
        self.word_bytes
    }

    /// Total capacity in words.
    #[must_use]
    pub fn capacity_words(&self) -> u64 {
        (self.num_banks * self.rows_per_bank) as u64
    }

    /// Maps a linear *word* index to its physical location.
    ///
    /// # Panics
    ///
    /// Panics if the word index exceeds the scratchpad capacity; simulated
    /// components validate bounds before issuing, so an out-of-range word
    /// here is a compiler/AGU bug worth failing loudly on.
    #[must_use]
    #[inline]
    pub fn map_word(&self, word: u64) -> BankLocation {
        assert!(
            word < self.capacity_words(),
            "word index {word} beyond scratchpad capacity {}",
            self.capacity_words()
        );
        // Pure bit permutation via the precomputed shift/mask table; the
        // group index needs no mask because the bounds assert above caps it.
        let bank_in_group = word & self.group_mask;
        let row = (word >> self.group_shift) & self.row_mask;
        let group_idx = word >> (self.group_shift + self.row_shift);
        BankLocation {
            bank: ((group_idx << self.group_shift) | bank_in_group) as usize,
            row: row as usize,
        }
    }

    /// Maps a word-aligned *byte* address to its physical location.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::Misaligned`] for a non-word-aligned address and
    /// [`MemError::OutOfBounds`] for an address beyond capacity.
    pub fn map_byte(&self, addr: Addr) -> Result<BankLocation, MemError> {
        if !addr.is_aligned(self.word_bytes) {
            return Err(MemError::Misaligned {
                addr: addr.get(),
                alignment: self.word_bytes,
            });
        }
        let word = addr.word_index(self.word_bytes);
        if word >= self.capacity_words() {
            return Err(MemError::OutOfBounds {
                addr: addr.get(),
                capacity: self.capacity_words() * self.word_bytes,
            });
        }
        Ok(self.map_word(word))
    }

    /// Inverse mapping: physical location back to the linear word index.
    ///
    /// # Panics
    ///
    /// Panics if the location is outside the memory geometry.
    #[must_use]
    #[inline]
    pub fn unmap(&self, loc: BankLocation) -> u64 {
        assert!(loc.bank < self.num_banks && loc.row < self.rows_per_bank);
        let bank = loc.bank as u64;
        let group_idx = bank >> self.group_shift;
        let bank_in_group = bank & self.group_mask;
        (group_idx << (self.group_shift + self.row_shift))
            | ((loc.row as u64) << self.group_shift)
            | bank_in_group
    }
}

/// The pre-table per-access arithmetic, kept only as the test oracle: the
/// div/mod bit gathering the precomputed shift/mask path replaced. Dead on
/// the hot path by construction — the equivalence test below proves the
/// table path reproduces it exhaustively.
#[cfg(test)]
impl AddressRemapper {
    fn map_word_arith(&self, word: u64) -> BankLocation {
        assert!(word < self.capacity_words());
        let g = self.group_banks as u64;
        let rows = self.rows_per_bank as u64;
        let group_capacity = g * rows;
        let group = word / group_capacity;
        let local = word % group_capacity;
        let bank_in_group = local % g;
        let row = local / g;
        BankLocation {
            bank: (group * g + bank_in_group) as usize,
            row: row as usize,
        }
    }

    fn unmap_arith(&self, loc: BankLocation) -> u64 {
        assert!(loc.bank < self.num_banks && loc.row < self.rows_per_bank);
        let g = self.group_banks as u64;
        let rows = self.rows_per_bank as u64;
        let group = loc.bank as u64 / g;
        let bank_in_group = loc.bank as u64 % g;
        group * g * rows + loc.row as u64 * g + bank_in_group
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MemConfig {
        MemConfig::new(8, 8, 64).expect("valid test geometry")
    }

    /// All modes legal for `num_banks`: NIMA, every power-of-two GIMA group
    /// up to the bank count, and FIMA.
    fn all_legal_modes(num_banks: usize) -> Vec<AddressingMode> {
        let mut modes = vec![
            AddressingMode::NonInterleaved,
            AddressingMode::FullyInterleaved,
        ];
        let mut g = 1;
        while g <= num_banks {
            modes.push(AddressingMode::GroupedInterleaved { group_banks: g });
            g *= 2;
        }
        modes
    }

    #[test]
    fn fima_interleaves_all_banks() {
        let r = AddressRemapper::new(&cfg(), AddressingMode::FullyInterleaved).unwrap();
        for w in 0..16 {
            let loc = r.map_word(w);
            assert_eq!(loc.bank as u64, w % 8);
            assert_eq!(loc.row as u64, w / 8);
        }
    }

    #[test]
    fn nima_fills_banks_sequentially() {
        let r = AddressRemapper::new(&cfg(), AddressingMode::NonInterleaved).unwrap();
        assert_eq!(r.map_word(0), BankLocation { bank: 0, row: 0 });
        assert_eq!(r.map_word(63), BankLocation { bank: 0, row: 63 });
        assert_eq!(r.map_word(64), BankLocation { bank: 1, row: 0 });
    }

    #[test]
    fn gima_interleaves_within_group() {
        let mode = AddressingMode::GroupedInterleaved { group_banks: 4 };
        let r = AddressRemapper::new(&cfg(), mode).unwrap();
        // First group: banks 0..4 interleaved.
        assert_eq!(r.map_word(0).bank, 0);
        assert_eq!(r.map_word(1).bank, 1);
        assert_eq!(r.map_word(3).bank, 3);
        assert_eq!(r.map_word(4), BankLocation { bank: 0, row: 1 });
        // Second group starts after the first group's full capacity.
        let group_capacity = 4 * 64;
        assert_eq!(r.map_word(group_capacity as u64).bank, 4);
    }

    #[test]
    fn extremes_match_special_modes() {
        let fima = AddressRemapper::new(&cfg(), AddressingMode::FullyInterleaved).unwrap();
        let gima8 = AddressRemapper::new(
            &cfg(),
            AddressingMode::GroupedInterleaved { group_banks: 8 },
        )
        .unwrap();
        let nima = AddressRemapper::new(&cfg(), AddressingMode::NonInterleaved).unwrap();
        let gima1 = AddressRemapper::new(
            &cfg(),
            AddressingMode::GroupedInterleaved { group_banks: 1 },
        )
        .unwrap();
        for w in 0..fima.capacity_words() {
            assert_eq!(fima.map_word(w), gima8.map_word(w));
            assert_eq!(nima.map_word(w), gima1.map_word(w));
        }
    }

    #[test]
    fn invalid_group_rejected() {
        let err = AddressRemapper::new(
            &cfg(),
            AddressingMode::GroupedInterleaved { group_banks: 3 },
        )
        .unwrap_err();
        assert!(matches!(err, MemError::NotPowerOfTwo { .. }));
        let err = AddressRemapper::new(
            &cfg(),
            AddressingMode::GroupedInterleaved { group_banks: 16 },
        )
        .unwrap_err();
        assert!(matches!(err, MemError::GroupTooLarge { .. }));
    }

    #[test]
    fn map_byte_validates() {
        let r = AddressRemapper::new(&cfg(), AddressingMode::FullyInterleaved).unwrap();
        assert!(matches!(
            r.map_byte(Addr::new(3)),
            Err(MemError::Misaligned { .. })
        ));
        let capacity = r.capacity_words() * r.word_bytes();
        assert!(matches!(
            r.map_byte(Addr::new(capacity)),
            Err(MemError::OutOfBounds { .. })
        ));
        assert_eq!(
            r.map_byte(Addr::new(8)).unwrap(),
            BankLocation { bank: 1, row: 0 }
        );
    }

    #[test]
    fn mode_display_and_default() {
        assert_eq!(AddressingMode::default(), AddressingMode::FullyInterleaved);
        assert_eq!(AddressingMode::FullyInterleaved.to_string(), "FIMA");
        assert_eq!(
            AddressingMode::GroupedInterleaved { group_banks: 4 }.to_string(),
            "GIMA(4)"
        );
        assert_eq!(AddressingMode::NonInterleaved.to_string(), "NIMA");
    }

    /// Reference implementation of §III-D's insight: for power-of-two
    /// geometry, the (bank, row) mapping is a pure permutation of the word
    /// address bits. GIMA(g) with `b` bank bits and group bits `gb =
    /// log2(g)`: the row is formed from the address bits *above* the group
    /// bits with the inter-group bits moved below the intra-group row bits:
    ///
    /// ```text
    /// word = [ group | row-within-group | bank-in-group ]
    /// bank = [ group | bank-in-group ]
    /// row  = [ row-within-group ]
    /// ```
    fn bit_permuted(word: u64, num_banks: u64, group: u64, rows: u64) -> BankLocation {
        let gb = group.trailing_zeros();
        let rb = rows.trailing_zeros();
        let bank_in_group = word & (group - 1);
        let row = (word >> gb) & (rows - 1);
        let group_idx = (word >> (gb + rb)) & (num_banks / group - 1);
        BankLocation {
            bank: ((group_idx << gb) | bank_in_group) as usize,
            row: row as usize,
        }
    }

    /// Small power-of-two geometries exercised exhaustively below: every
    /// bank count from 1 to 16 with a couple of row depths each.
    fn small_geometries() -> Vec<MemConfig> {
        let mut cfgs = Vec::new();
        for banks in [1usize, 2, 4, 8, 16] {
            for rows in [4usize, 64] {
                cfgs.push(MemConfig::new(banks, 8, rows).expect("valid geometry"));
            }
        }
        cfgs
    }

    #[test]
    fn remapper_is_a_bit_permutation_for_every_legal_mode() {
        // The arithmetic remapper equals the explicit bit permutation for
        // every legal grouping of every small geometry — the property that
        // makes the hardware remapper a mux of rewired address bits.
        for cfg in small_geometries() {
            let (banks, rows) = (cfg.num_banks() as u64, cfg.rows_per_bank() as u64);
            for mode in all_legal_modes(cfg.num_banks()) {
                let r = AddressRemapper::new(&cfg, mode).unwrap();
                let g = mode.group_banks(cfg.num_banks()) as u64;
                for w in 0..r.capacity_words() {
                    assert_eq!(
                        r.map_word(w),
                        bit_permuted(w, banks, g, rows),
                        "banks={banks} rows={rows} mode={mode} word={w}"
                    );
                }
            }
        }
    }

    #[test]
    fn table_path_matches_the_arithmetic_oracle_for_every_legal_mode() {
        // The precomputed shift/mask tables reproduce the original div/mod
        // bit gathering exhaustively: every word of every legal mode on
        // every small power-of-two geometry, in both directions.
        for cfg in small_geometries() {
            for mode in all_legal_modes(cfg.num_banks()) {
                let r = AddressRemapper::new(&cfg, mode).unwrap();
                for w in 0..r.capacity_words() {
                    let loc = r.map_word(w);
                    assert_eq!(
                        loc,
                        r.map_word_arith(w),
                        "map_word diverges from oracle: {mode} word {w}"
                    );
                    assert_eq!(
                        r.unmap(loc),
                        r.unmap_arith(loc),
                        "unmap diverges from oracle: {mode} loc {loc:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn mapping_is_bijective_for_every_legal_mode() {
        // Every mode is a bijection word ↔ (bank, row): unmap(map(w)) == w
        // and all mapped locations are distinct.
        for cfg in small_geometries() {
            for mode in all_legal_modes(cfg.num_banks()) {
                let r = AddressRemapper::new(&cfg, mode).unwrap();
                let mut seen = std::collections::HashSet::new();
                for w in 0..r.capacity_words() {
                    let loc = r.map_word(w);
                    assert!(loc.bank < cfg.num_banks() && loc.row < cfg.rows_per_bank());
                    assert!(
                        seen.insert(loc),
                        "duplicate location for word {w} under {mode}"
                    );
                    assert_eq!(r.unmap(loc), w, "round trip of word {w} under {mode}");
                }
                assert_eq!(seen.len() as u64, r.capacity_words());
            }
        }
    }

    #[test]
    fn consecutive_words_spread_across_group() {
        // A burst of `group_banks` consecutive words never collides on a
        // bank — the property the compiler relies on when laying out an
        // operand inside one bank group.
        for cfg in small_geometries() {
            for mode in all_legal_modes(cfg.num_banks()) {
                let r = AddressRemapper::new(&cfg, mode).unwrap();
                let g = mode.group_banks(cfg.num_banks()) as u64;
                for start in 0..r.capacity_words() - (g - 1) {
                    let banks: std::collections::HashSet<usize> =
                        (start..start + g).map(|w| r.map_word(w).bank).collect();
                    assert_eq!(banks.len() as u64, g, "start={start} mode={mode}");
                }
            }
        }
    }

    #[test]
    fn checked_group_banks_accepts_exactly_the_legal_groupings() {
        for (num_banks, group, expect) in [
            (8usize, 1usize, Some(1usize)),
            (8, 2, Some(2)),
            (8, 8, Some(8)),
            (8, 3, None),  // not a power of two
            (8, 16, None), // exceeds the bank count
            (16, 16, Some(16)),
        ] {
            let mode = AddressingMode::GroupedInterleaved { group_banks: group };
            assert_eq!(mode.checked_group_banks(num_banks), expect);
        }
        assert_eq!(
            AddressingMode::FullyInterleaved.checked_group_banks(32),
            Some(32)
        );
        assert_eq!(
            AddressingMode::NonInterleaved.checked_group_banks(32),
            Some(1)
        );
    }

    /// A GIMA group that does not divide the bank count violates the
    /// documented contract; debug builds catch it at the accessor. (Release
    /// builds return the raw value, so the test only exists under debug
    /// assertions.)
    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "power-of-two divisor")]
    fn group_banks_asserts_its_contract_on_non_dividing_groups() {
        let _ = AddressingMode::GroupedInterleaved { group_banks: 3 }.group_banks(8);
    }
}
