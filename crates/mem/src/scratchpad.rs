//! Scratchpad geometry and backing store.

use serde::{Deserialize, Serialize};

use crate::addr::{Addr, BankLocation};
use crate::error::MemError;
use crate::remap::AddressRemapper;

/// Geometry of the multi-banked scratchpad: `N_BF` banks of
/// `W_B`-byte-wide words, `rows_per_bank` wordlines each.
///
/// # Examples
///
/// ```
/// use dm_mem::MemConfig;
///
/// let cfg = MemConfig::new(32, 8, 4096)?;
/// assert_eq!(cfg.capacity_bytes(), 32 * 8 * 4096);
/// assert_eq!(cfg.bandwidth_bytes_per_cycle(), 256);
/// # Ok::<(), dm_mem::MemError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct MemConfig {
    num_banks: usize,
    bank_width_bytes: usize,
    rows_per_bank: usize,
}

impl MemConfig {
    /// Creates a memory geometry.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::NotPowerOfTwo`] if any dimension is not a
    /// non-zero power of two (the address remapper's bit permutation
    /// requires power-of-two geometry), or [`MemError::WordTooWide`] if the
    /// bank width exceeds [`Word::CAPACITY`](crate::Word::CAPACITY) — the
    /// crossbar carries words inline, never on the heap.
    pub fn new(
        num_banks: usize,
        bank_width_bytes: usize,
        rows_per_bank: usize,
    ) -> Result<Self, MemError> {
        for (name, value) in [
            ("num_banks", num_banks),
            ("bank_width_bytes", bank_width_bytes),
            ("rows_per_bank", rows_per_bank),
        ] {
            if !value.is_power_of_two() {
                return Err(MemError::NotPowerOfTwo {
                    parameter: name,
                    value,
                });
            }
        }
        if bank_width_bytes > crate::word::Word::CAPACITY {
            return Err(MemError::WordTooWide {
                width: bank_width_bytes,
                max: crate::word::Word::CAPACITY,
            });
        }
        Ok(MemConfig {
            num_banks,
            bank_width_bytes,
            rows_per_bank,
        })
    }

    /// Number of banks (`N_BF`).
    #[must_use]
    pub fn num_banks(&self) -> usize {
        self.num_banks
    }

    /// Word width of one bank in bytes (`W_B`).
    #[must_use]
    pub fn bank_width_bytes(&self) -> usize {
        self.bank_width_bytes
    }

    /// Wordlines per bank.
    #[must_use]
    pub fn rows_per_bank(&self) -> usize {
        self.rows_per_bank
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        (self.num_banks * self.bank_width_bytes * self.rows_per_bank) as u64
    }

    /// Peak bandwidth: one word per bank per cycle.
    #[must_use]
    pub fn bandwidth_bytes_per_cycle(&self) -> u64 {
        (self.num_banks * self.bank_width_bytes) as u64
    }
}

impl Default for MemConfig {
    /// The evaluation-system default: 32 banks × 64-bit, sized at 16 MiB so
    /// whole DNN layers fit without modelling a DRAM back side (the paper
    /// measures utilization over DataMaestro-active cycles only, excluding
    /// off-chip refill; see DESIGN.md §3).
    fn default() -> Self {
        MemConfig::new(32, 8, 65_536).expect("default geometry is valid")
    }
}

/// The scratchpad backing store: `num_banks` banks of raw bytes.
///
/// The scratchpad itself is address-space agnostic — it only understands
/// physical `(bank, row)` locations. Linear views are provided by pairing it
/// with an [`AddressRemapper`], which is how the simulated host preloads
/// operands and reads back results.
#[derive(Debug, Clone)]
pub struct Scratchpad {
    config: MemConfig,
    banks: Vec<Vec<u8>>,
}

impl Scratchpad {
    /// Allocates a zero-initialized scratchpad.
    #[must_use]
    pub fn new(config: MemConfig) -> Self {
        let bank_bytes = config.bank_width_bytes * config.rows_per_bank;
        // Allocate each bank with `vec![0; n]` individually: that form hits
        // the zeroed-allocation fast path (lazy zero pages), whereas
        // `vec![inner; num_banks]` would clone the first bank with an eager
        // memcpy per copy — at the default 16 MiB geometry that one-time
        // memset costs more host time than simulating a small workload.
        Scratchpad {
            config,
            banks: (0..config.num_banks).map(|_| vec![0; bank_bytes]).collect(),
        }
    }

    /// The geometry.
    #[must_use]
    pub fn config(&self) -> &MemConfig {
        &self.config
    }

    /// Reads the full word at a physical location.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-geometry location (simulator-internal bug).
    #[must_use]
    pub fn read_row(&self, loc: BankLocation) -> &[u8] {
        let w = self.config.bank_width_bytes;
        &self.banks[loc.bank][loc.row * w..(loc.row + 1) * w]
    }

    /// Writes bytes into the word at a physical location under a byte mask.
    ///
    /// `mask[i] == true` writes `data[i]`; other bytes are preserved.
    ///
    /// # Panics
    ///
    /// Panics if `data`/`mask` lengths differ from the bank width or the
    /// location is out of geometry.
    pub fn write_row(&mut self, loc: BankLocation, data: &[u8], mask: &[bool]) {
        let w = self.config.bank_width_bytes;
        assert_eq!(data.len(), w, "write data must be one full word");
        assert_eq!(mask.len(), w, "write mask must cover the word");
        let row = &mut self.banks[loc.bank][loc.row * w..(loc.row + 1) * w];
        for ((dst, &src), &m) in row.iter_mut().zip(data).zip(mask) {
            if m {
                *dst = src;
            }
        }
    }

    /// Writes a full word (all bytes) at a physical location.
    pub fn write_row_full(&mut self, loc: BankLocation, data: &[u8]) {
        let w = self.config.bank_width_bytes;
        assert_eq!(data.len(), w, "write data must be one full word");
        let row = &mut self.banks[loc.bank][loc.row * w..(loc.row + 1) * w];
        row.copy_from_slice(data);
    }

    /// Host-side (non-simulated) linear write through a remapper view.
    ///
    /// Used to preload operands before a run; does not consume simulated
    /// cycles or count as memory accesses.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the span exceeds capacity.
    pub fn host_write(
        &mut self,
        remapper: &AddressRemapper,
        addr: Addr,
        bytes: &[u8],
    ) -> Result<(), MemError> {
        let w = self.config.bank_width_bytes as u64;
        let end = addr
            .checked_add(bytes.len() as u64)
            .ok_or(MemError::OutOfBounds {
                addr: addr.get(),
                capacity: self.config.capacity_bytes(),
            })?;
        if end.get() > self.config.capacity_bytes() {
            return Err(MemError::OutOfBounds {
                addr: addr.get(),
                capacity: self.config.capacity_bytes(),
            });
        }
        for (i, &byte) in bytes.iter().enumerate() {
            let byte_addr = addr + i as u64;
            let loc = remapper.map_word(byte_addr.word_index(w));
            let offset = byte_addr.word_offset(w) as usize;
            self.banks[loc.bank][loc.row * w as usize + offset] = byte;
        }
        Ok(())
    }

    /// Host-side (non-simulated) linear read through a remapper view.
    ///
    /// # Errors
    ///
    /// Returns [`MemError::OutOfBounds`] if the span exceeds capacity.
    pub fn host_read(
        &self,
        remapper: &AddressRemapper,
        addr: Addr,
        len: usize,
    ) -> Result<Vec<u8>, MemError> {
        let w = self.config.bank_width_bytes as u64;
        let end = addr.checked_add(len as u64).ok_or(MemError::OutOfBounds {
            addr: addr.get(),
            capacity: self.config.capacity_bytes(),
        })?;
        if end.get() > self.config.capacity_bytes() {
            return Err(MemError::OutOfBounds {
                addr: addr.get(),
                capacity: self.config.capacity_bytes(),
            });
        }
        let mut out = Vec::with_capacity(len);
        for i in 0..len {
            let byte_addr = addr + i as u64;
            let loc = remapper.map_word(byte_addr.word_index(w));
            let offset = byte_addr.word_offset(w) as usize;
            out.push(self.banks[loc.bank][loc.row * w as usize + offset]);
        }
        Ok(out)
    }

    /// Zeroes the whole scratchpad.
    pub fn clear(&mut self) {
        for bank in &mut self.banks {
            bank.fill(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::remap::AddressingMode;
    use proptest::prelude::*;

    fn small() -> MemConfig {
        MemConfig::new(4, 8, 16).unwrap()
    }

    #[test]
    fn config_rejects_non_power_of_two() {
        assert!(matches!(
            MemConfig::new(3, 8, 16),
            Err(MemError::NotPowerOfTwo { .. })
        ));
        assert!(matches!(
            MemConfig::new(4, 6, 16),
            Err(MemError::NotPowerOfTwo { .. })
        ));
        assert!(matches!(
            MemConfig::new(4, 8, 0),
            Err(MemError::NotPowerOfTwo { .. })
        ));
    }

    #[test]
    fn config_rejects_word_wider_than_inline_capacity() {
        assert!(MemConfig::new(4, crate::word::Word::CAPACITY, 16).is_ok());
        assert!(matches!(
            MemConfig::new(4, 2 * crate::word::Word::CAPACITY, 16),
            Err(MemError::WordTooWide { .. })
        ));
    }

    #[test]
    fn capacity_and_bandwidth() {
        let cfg = small();
        assert_eq!(cfg.capacity_bytes(), 4 * 8 * 16);
        assert_eq!(cfg.bandwidth_bytes_per_cycle(), 32);
    }

    #[test]
    fn row_write_read_roundtrip() {
        let mut sp = Scratchpad::new(small());
        let loc = BankLocation { bank: 2, row: 5 };
        sp.write_row_full(loc, &[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(sp.read_row(loc), &[1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn masked_write_preserves_bytes() {
        let mut sp = Scratchpad::new(small());
        let loc = BankLocation { bank: 0, row: 0 };
        sp.write_row_full(loc, &[9; 8]);
        let mask = [true, false, true, false, true, false, true, false];
        sp.write_row(loc, &[1; 8], &mask);
        assert_eq!(sp.read_row(loc), &[1, 9, 1, 9, 1, 9, 1, 9]);
    }

    #[test]
    fn host_rw_roundtrip_unaligned_span() {
        let cfg = small();
        let mut sp = Scratchpad::new(cfg);
        let remap = AddressRemapper::new(&cfg, AddressingMode::FullyInterleaved).unwrap();
        let data: Vec<u8> = (0..40).collect();
        sp.host_write(&remap, Addr::new(13), &data).unwrap();
        assert_eq!(sp.host_read(&remap, Addr::new(13), 40).unwrap(), data);
    }

    #[test]
    fn host_access_bounds_checked() {
        let cfg = small();
        let mut sp = Scratchpad::new(cfg);
        let remap = AddressRemapper::new(&cfg, AddressingMode::FullyInterleaved).unwrap();
        let capacity = cfg.capacity_bytes();
        assert!(sp
            .host_write(&remap, Addr::new(capacity - 1), &[0, 0])
            .is_err());
        assert!(sp.host_read(&remap, Addr::new(capacity), 1).is_err());
    }

    #[test]
    fn clear_zeroes() {
        let mut sp = Scratchpad::new(small());
        sp.write_row_full(BankLocation { bank: 1, row: 1 }, &[7; 8]);
        sp.clear();
        assert_eq!(sp.read_row(BankLocation { bank: 1, row: 1 }), &[0; 8]);
    }

    proptest! {
        /// Data written linearly under one addressing mode reads back
        /// identically under the same mode, for any mode and offset — the
        /// scratchpad plus remapper is a faithful linear memory.
        #[test]
        fn linear_view_roundtrip(
            group_log2 in 0u32..3,
            offset in 0u64..64,
            data in proptest::collection::vec(any::<u8>(), 1..100),
        ) {
            let cfg = small();
            let remap = AddressRemapper::new(
                &cfg,
                AddressingMode::GroupedInterleaved { group_banks: 1 << group_log2 },
            ).unwrap();
            let mut sp = Scratchpad::new(cfg);
            let offset = offset.min(cfg.capacity_bytes() - data.len() as u64);
            sp.host_write(&remap, Addr::new(offset), &data).unwrap();
            prop_assert_eq!(
                sp.host_read(&remap, Addr::new(offset), data.len()).unwrap(),
                data
            );
        }

        /// Writes through two *different* views do not alias as long as the
        /// linear ranges are bank-group disjoint regions of the same mode —
        /// sanity for mixed-mode operand placement.
        #[test]
        fn different_rows_do_not_alias(
            data_a in proptest::collection::vec(any::<u8>(), 8),
            data_b in proptest::collection::vec(any::<u8>(), 8),
        ) {
            let cfg = small();
            let remap = AddressRemapper::new(&cfg, AddressingMode::NonInterleaved).unwrap();
            let mut sp = Scratchpad::new(cfg);
            sp.host_write(&remap, Addr::new(0), &data_a).unwrap();
            sp.host_write(&remap, Addr::new(256), &data_b).unwrap();
            prop_assert_eq!(sp.host_read(&remap, Addr::new(0), 8).unwrap(), data_a);
            prop_assert_eq!(sp.host_read(&remap, Addr::new(256), 8).unwrap(), data_b);
        }
    }
}
