//! A fixed-capacity inline memory word.
//!
//! The per-cycle kernel moves one bank-word of data per granted read or
//! write. Carrying those words as `Vec<u8>` puts a heap allocation on the
//! hot path of every simulated access; [`Word`] instead stores the bytes
//! inline (up to [`Word::CAPACITY`]) so responses, write payloads and
//! channel FIFO entries are plain `Copy` values. [`MemConfig`] rejects bank
//! widths beyond the capacity at construction, so inside the simulator a
//! word always fits.
//!
//! [`MemConfig`]: crate::MemConfig
//!
//! # Examples
//!
//! ```
//! use dm_mem::Word;
//!
//! let w = Word::from_slice(&[1, 2, 3, 4]);
//! assert_eq!(w.len(), 4);
//! assert_eq!(&w[..], &[1, 2, 3, 4]);
//! assert_eq!(w, Word::from_slice(&[1, 2, 3, 4]));
//! ```

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};

/// One memory word: an inline byte array of at most [`Word::CAPACITY`]
/// bytes, as wide as the configured bank word (`W_B`).
///
/// `Word` is `Copy`; moving one between the crossbar, the outstanding
/// request manager and a channel FIFO is a fixed-size memcpy with no heap
/// traffic. Unused tail bytes are always zero, which keeps derived-style
/// equality and hashing consistent with the live prefix.
#[derive(Clone, Copy)]
pub struct Word {
    len: u8,
    bytes: [u8; Self::CAPACITY],
}

impl Word {
    /// Maximum width of a word in bytes. Covers every power-of-two bank
    /// width up to 512-bit; [`MemConfig::new`](crate::MemConfig::new)
    /// rejects wider geometries.
    pub const CAPACITY: usize = 64;

    /// An empty (zero-length) word.
    pub const EMPTY: Word = Word {
        len: 0,
        bytes: [0; Self::CAPACITY],
    };

    /// Builds a word from a byte slice.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` is longer than [`Word::CAPACITY`].
    #[must_use]
    #[inline]
    pub fn from_slice(bytes: &[u8]) -> Self {
        assert!(
            bytes.len() <= Self::CAPACITY,
            "word of {} bytes exceeds inline capacity of {}",
            bytes.len(),
            Self::CAPACITY
        );
        let mut word = Self::EMPTY;
        word.len = bytes.len() as u8;
        word.bytes[..bytes.len()].copy_from_slice(bytes);
        word
    }

    /// A zero-filled word of the given width.
    ///
    /// # Panics
    ///
    /// Panics if `len` exceeds [`Word::CAPACITY`].
    #[must_use]
    #[inline]
    pub fn zeroed(len: usize) -> Self {
        assert!(
            len <= Self::CAPACITY,
            "word of {len} bytes exceeds inline capacity of {}",
            Self::CAPACITY
        );
        let mut word = Self::EMPTY;
        word.len = len as u8;
        word
    }

    /// Width of this word in bytes.
    #[must_use]
    #[inline]
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` for a zero-width word.
    #[must_use]
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The live bytes.
    #[must_use]
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes[..self.len as usize]
    }

    /// Mutable access to the live bytes.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.bytes[..self.len as usize]
    }

    /// Copies the live bytes into a fresh `Vec` (host-side use only; the
    /// simulated hot path never needs this).
    #[must_use]
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }
}

impl Default for Word {
    fn default() -> Self {
        Self::EMPTY
    }
}

impl Deref for Word {
    type Target = [u8];

    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl DerefMut for Word {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u8] {
        self.as_mut_slice()
    }
}

impl AsRef<[u8]> for Word {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl PartialEq for Word {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Word {}

impl Hash for Word {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Word {
    #[inline]
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Word {
    #[inline]
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl PartialEq<Vec<u8>> for Word {
    #[inline]
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Word {
    #[inline]
    fn eq(&self, other: &[u8; N]) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl From<&[u8]> for Word {
    fn from(bytes: &[u8]) -> Self {
        Self::from_slice(bytes)
    }
}

impl fmt::Debug for Word {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_length() {
        let w = Word::from_slice(&[9, 8, 7]);
        assert_eq!(w.len(), 3);
        assert!(!w.is_empty());
        assert_eq!(w.as_slice(), &[9, 8, 7]);
        assert_eq!(w.to_vec(), vec![9, 8, 7]);
    }

    #[test]
    fn equality_ignores_capacity_tail() {
        let a = Word::from_slice(&[1, 2]);
        let mut b = Word::zeroed(2);
        b.as_mut_slice().copy_from_slice(&[1, 2]);
        assert_eq!(a, b);
        assert_ne!(a, Word::from_slice(&[1, 2, 0]));
    }

    #[test]
    fn compares_against_slices_and_vecs() {
        let w = Word::from_slice(&[5; 8]);
        assert_eq!(w, [5u8; 8]);
        assert_eq!(w, vec![5u8; 8]);
        assert_eq!(w, &[5u8; 8][..]);
    }

    #[test]
    fn full_capacity_word_is_accepted() {
        let w = Word::from_slice(&[0xAA; Word::CAPACITY]);
        assert_eq!(w.len(), Word::CAPACITY);
        assert!(w.iter().all(|&b| b == 0xAA));
    }

    #[test]
    #[should_panic(expected = "exceeds inline capacity")]
    fn oversized_word_panics() {
        let _ = Word::from_slice(&[0; Word::CAPACITY + 1]);
    }

    #[test]
    fn mutation_through_deref_mut() {
        let mut w = Word::zeroed(4);
        w[2] = 3;
        assert_eq!(w, [0, 0, 3, 0]);
    }

    #[test]
    fn empty_word() {
        assert!(Word::EMPTY.is_empty());
        assert_eq!(Word::default(), Word::EMPTY);
        assert_eq!(Word::EMPTY.as_slice(), &[] as &[u8]);
    }
}
