//! Error type for the memory subsystem.

use std::error::Error;
use std::fmt;

/// Errors raised while configuring or accessing the scratchpad memory.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MemError {
    /// A size parameter (bank count, bank width, group size) must be a
    /// non-zero power of two to be realizable as a bit permutation.
    NotPowerOfTwo {
        /// Which parameter was invalid.
        parameter: &'static str,
        /// The offending value.
        value: usize,
    },
    /// The bank word width exceeds the fixed inline [`Word`] capacity the
    /// allocation-free response path relies on.
    ///
    /// [`Word`]: crate::Word
    WordTooWide {
        /// Requested bank width in bytes.
        width: usize,
        /// Maximum supported width ([`crate::Word::CAPACITY`]).
        max: usize,
    },
    /// The GIMA group size must divide the total bank count.
    GroupTooLarge {
        /// Banks per group requested.
        group: usize,
        /// Total banks available.
        banks: usize,
    },
    /// A byte address was not aligned to the bank word width.
    Misaligned {
        /// The offending byte address.
        addr: u64,
        /// Required alignment in bytes.
        alignment: u64,
    },
    /// An address fell outside the scratchpad capacity.
    OutOfBounds {
        /// The offending byte address.
        addr: u64,
        /// Scratchpad capacity in bytes.
        capacity: u64,
    },
    /// A requester identifier was not registered with the subsystem.
    UnknownRequester {
        /// The offending requester index.
        requester: usize,
    },
    /// A requester submitted more than one request in a single cycle.
    DuplicateRequest {
        /// The offending requester index.
        requester: usize,
    },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::NotPowerOfTwo { parameter, value } => {
                write!(
                    f,
                    "{parameter} must be a non-zero power of two, got {value}"
                )
            }
            MemError::WordTooWide { width, max } => {
                write!(f, "bank width of {width} bytes exceeds the {max}-byte word")
            }
            MemError::GroupTooLarge { group, banks } => {
                write!(f, "bank group of {group} does not divide {banks} banks")
            }
            MemError::Misaligned { addr, alignment } => {
                write!(f, "address 0x{addr:x} not aligned to {alignment} bytes")
            }
            MemError::OutOfBounds { addr, capacity } => {
                write!(f, "address 0x{addr:x} beyond capacity of {capacity} bytes")
            }
            MemError::UnknownRequester { requester } => {
                write!(f, "requester {requester} is not registered")
            }
            MemError::DuplicateRequest { requester } => {
                write!(f, "requester {requester} submitted twice in one cycle")
            }
        }
    }
}

impl Error for MemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_specific() {
        let e = MemError::NotPowerOfTwo {
            parameter: "num_banks",
            value: 3,
        };
        assert_eq!(
            e.to_string(),
            "num_banks must be a non-zero power of two, got 3"
        );
        let e = MemError::Misaligned {
            addr: 0x11,
            alignment: 8,
        };
        assert!(e.to_string().contains("0x11"));
        let e = MemError::OutOfBounds {
            addr: 0x100,
            capacity: 0x80,
        };
        assert!(e.to_string().contains("capacity"));
    }

    #[test]
    fn implements_std_error() {
        fn assert_error<E: Error + Send + Sync + 'static>() {}
        assert_error::<MemError>();
    }
}
