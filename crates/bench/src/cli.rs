//! Shared command-line plumbing for the analysis-tool binaries.
//!
//! `dm-profile`, `dm-critical`, `dm-lint` and `dm-predict` all speak the
//! same `run`/`diff` dialect; this module holds the one copy of the flag
//! parsing so the binaries stay thin shims. Parsers return `Err(message)`
//! instead of exiting so each binary can wrap the message in its own usage
//! text (and so the parsing is unit-testable).

use dm_sim::JsonValue;
use dm_system::SystemConfig;

/// The flags of a `<tool> run` invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunFlags {
    /// Ablation step (1 = baseline … 6 = fully featured).
    pub step: usize,
    /// Run the complete Fig. 7 suite instead of the every-5th slice.
    pub full: bool,
    /// Worker threads (documents are byte-identical for any value).
    pub jobs: usize,
    /// Scratchpad bank read latency in cycles.
    pub read_latency: u64,
    /// Idle-cycle elision (`--no-fast-forward` disables; only offered by
    /// the simulating tools).
    pub fast_forward: bool,
    /// Emit the canonical JSON document instead of the human table.
    pub json: bool,
    /// Write the JSON document to this path (implies `json`).
    pub out: Option<String>,
}

impl Default for RunFlags {
    fn default() -> Self {
        RunFlags {
            step: 6,
            full: false,
            jobs: 1,
            read_latency: SystemConfig::default().read_latency,
            fast_forward: true,
            json: false,
            out: None,
        }
    }
}

/// Parses the standard `run` flags: `--step <1..6>`, `--full`/`--quick`,
/// `--jobs <n>`, `--latency <cycles>`, `--json`, `--out <path>`, and —
/// only when `accept_fast_forward` (the simulating tools) —
/// `--no-fast-forward`.
///
/// # Errors
///
/// Returns a one-line message naming the offending flag.
pub fn parse_run_flags(args: &[String], accept_fast_forward: bool) -> Result<RunFlags, String> {
    let mut flags = RunFlags::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--step" => {
                flags.step = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .filter(|&n| (1..=6).contains(&n))
                    .ok_or("--step requires an integer in 1..=6")?;
            }
            "--full" => flags.full = true,
            // The default selection; accepted so scripts can be explicit.
            "--quick" => flags.full = false,
            "--jobs" => {
                flags.jobs = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or("--jobs requires a positive integer")?;
            }
            "--latency" => {
                flags.read_latency = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .filter(|&n| n >= 1)
                    .ok_or("--latency requires a positive integer")?;
            }
            "--no-fast-forward" if accept_fast_forward => flags.fast_forward = false,
            "--json" => flags.json = true,
            "--out" => {
                flags.out = Some(it.next().cloned().ok_or("--out requires a path argument")?);
                flags.json = true;
            }
            other => return Err(format!("unknown option: {other}")),
        }
    }
    Ok(flags)
}

/// Parses the standard `diff` arguments: `[--allow-mismatch] <old> <new>`.
///
/// # Errors
///
/// Returns a one-line message when the two paths are missing or extra
/// flags appear.
pub fn parse_diff_flags(args: &[String]) -> Result<(bool, String, String), String> {
    let mut allow_mismatch = false;
    let mut paths: Vec<&String> = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--allow-mismatch" => allow_mismatch = true,
            other if other.starts_with("--") => {
                return Err(format!("unknown option: {other}"));
            }
            _ => paths.push(arg),
        }
    }
    let [old_path, new_path] = paths[..] else {
        return Err("diff requires exactly two document paths".to_owned());
    };
    Ok((allow_mismatch, old_path.clone(), new_path.clone()))
}

/// Loads and parses a JSON document, exiting loudly on failure (the diff
/// paths of all four tools treat an unreadable document as fatal).
///
/// # Panics
///
/// Panics with the path and the underlying error on I/O or parse failure.
#[must_use]
pub fn load_json(path: &str) -> JsonValue {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    JsonValue::parse(&text).unwrap_or_else(|e| panic!("{path}: malformed JSON: {}", e.message))
}

/// Emits a document per the shared output contract: human rendering by
/// default, canonical JSON with `--json`, written to `--out` when given.
pub fn emit_document(
    flags: &RunFlags,
    what: &str,
    doc: &JsonValue,
    render: impl FnOnce(&JsonValue) -> String,
) {
    if flags.json {
        match flags.out.as_deref() {
            Some(path) => {
                std::fs::write(path, doc.to_json())
                    .unwrap_or_else(|e| panic!("writing {path}: {e}"));
                println!("wrote {what} to {path}");
            }
            None => println!("{}", doc.to_json()),
        }
    } else {
        print!("{}", render(doc));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| (*a).to_owned()).collect()
    }

    #[test]
    fn run_flags_parse_the_full_dialect() {
        let flags = parse_run_flags(
            &args(&[
                "--step",
                "3",
                "--full",
                "--jobs",
                "4",
                "--latency",
                "16",
                "--no-fast-forward",
                "--out",
                "x.json",
            ]),
            true,
        )
        .unwrap();
        assert_eq!(flags.step, 3);
        assert!(flags.full);
        assert_eq!(flags.jobs, 4);
        assert_eq!(flags.read_latency, 16);
        assert!(!flags.fast_forward);
        assert!(flags.json, "--out implies --json");
        assert_eq!(flags.out.as_deref(), Some("x.json"));
    }

    #[test]
    fn defaults_match_the_simulator() {
        let flags = parse_run_flags(&[], true).unwrap();
        assert_eq!(flags, RunFlags::default());
        assert_eq!(
            flags.read_latency,
            SystemConfig::default().read_latency,
            "latency default tracks the simulator's"
        );
    }

    #[test]
    fn static_tools_reject_fast_forward() {
        let err = parse_run_flags(&args(&["--no-fast-forward"]), false).unwrap_err();
        assert!(err.contains("--no-fast-forward"), "{err}");
        assert!(parse_run_flags(&args(&["--no-fast-forward"]), true).is_ok());
    }

    #[test]
    fn bad_values_are_one_line_errors() {
        for bad in [
            ["--step", "7"],
            ["--jobs", "0"],
            ["--latency", "x"],
            ["--bogus", "1"],
        ] {
            assert!(parse_run_flags(&args(&bad), true).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn diff_flags_require_two_paths() {
        let (allow, old, new) =
            parse_diff_flags(&args(&["--allow-mismatch", "a.json", "b.json"])).unwrap();
        assert!(allow);
        assert_eq!((old.as_str(), new.as_str()), ("a.json", "b.json"));
        assert!(parse_diff_flags(&args(&["a.json"])).is_err());
        assert!(parse_diff_flags(&args(&["a", "b", "c"])).is_err());
        assert!(parse_diff_flags(&args(&["--frobnicate", "a", "b"])).is_err());
    }
}
