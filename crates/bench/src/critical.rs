//! The critical-path analyzer behind the `dm-critical` binary.
//!
//! `critical run` simulates the Fig. 7 ablation slice at one feature step,
//! merges every run's [`CriticalProfile`] and emits one canonical document:
//! how the end-to-end critical path decomposes across resource classes
//! (memory latency, bank conflicts, FIFO capacity, AGU throughput, PE
//! issue, writeback flush), plus the ranked what-if projections — the
//! predicted total-cycle saving if one resource constraint were relaxed.
//! `critical diff` compares two documents and names the dominant path
//! shift, e.g. the collapse of on-path memory-latency cycles when going
//! from the coupled baseline (step ①) to full decoupling (step ⑥) at read
//! latency 16 — which *is* the Fig. 7(a) explanation.
//!
//! Every run is re-checked against the critical-path contract in release
//! builds: the composition must refine the [`StallAttribution`] class by
//! class and the path length must equal the compute cycle count. A
//! violation is a hard error (non-zero exit from the CLI), not a warning —
//! an analyzer that loses path cycles is lying.
//!
//! The document deliberately excludes anything host- or scheduling-
//! dependent: the same step analyzed with any `--jobs` count and with
//! fast-forward on or off is byte-identical, which CI exploits as a
//! determinism gate.
//!
//! [`StallAttribution`]: dm_sim::StallAttribution

use std::fmt;

use dm_compiler::FeatureSet;
use dm_sim::{CritClass, CriticalProfile, JsonValue};
use dm_system::{RunReport, SystemConfig, SystemError};
use dm_workloads::{synthetic_suite, Workload};

/// Document format identifier; `diff` refuses to compare across schemas.
pub const SCHEMA: &str = "datamaestro-critical-v1";

/// What went wrong while building a critical-path document.
#[derive(Debug)]
pub enum CriticalError {
    /// A simulated run failed outright.
    Sim(SystemError),
    /// A run violated the critical-path contract (an analyzer bug; the
    /// message names the run and the first broken invariant).
    Contract(String),
}

impl fmt::Display for CriticalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CriticalError::Sim(e) => write!(f, "simulation failed: {e}"),
            CriticalError::Contract(msg) => write!(f, "critical-path contract violated: {msg}"),
        }
    }
}

impl std::error::Error for CriticalError {}

impl From<SystemError> for CriticalError {
    fn from(e: SystemError) -> Self {
        CriticalError::Sim(e)
    }
}

/// Options of one `critical run`.
#[derive(Debug, Clone, Copy)]
pub struct CriticalOptions {
    /// Ablation step (1 = baseline … 6 = fully featured).
    pub step: usize,
    /// Run the complete Fig. 7 suite instead of the every-5th slice.
    pub full: bool,
    /// Worker threads for the independent runs (output is byte-identical
    /// for any value).
    pub jobs: usize,
    /// Idle-cycle elision (output is byte-identical either way).
    pub fast_forward: bool,
    /// Scratchpad bank read latency in cycles.
    pub read_latency: u64,
}

impl Default for CriticalOptions {
    fn default() -> Self {
        CriticalOptions {
            step: 6,
            full: false,
            jobs: 1,
            fast_forward: true,
            read_latency: SystemConfig::default().read_latency,
        }
    }
}

impl CriticalOptions {
    fn config(&self) -> SystemConfig {
        SystemConfig {
            fast_forward: self.fast_forward,
            read_latency: self.read_latency,
            ..SystemConfig::default().with_features(FeatureSet::ablation_step(self.step))
        }
    }
}

/// Release-build re-check of the critical-path contract on one run: the
/// composition refines the stall attribution class by class
/// ([`CriticalProfile::conserves`]), the path length equals the compute
/// cycle count (single-issue in-order execution puts every compute cycle on
/// the path), and the path never exceeds the run's total cycle count.
///
/// # Errors
///
/// Returns [`CriticalError::Contract`] naming `label` and the first broken
/// invariant.
pub fn check_path(label: &str, report: &RunReport) -> Result<(), CriticalError> {
    let crit = &report.critical;
    if !crit.conserves(&report.attribution) {
        return Err(CriticalError::Contract(format!(
            "{label}: the path composition does not refine the stall \
             attribution (path {} vs {} attributed cycles)",
            crit.path_length(),
            report.attribution.total_cycles()
        )));
    }
    if crit.path_length() != report.compute_cycles {
        return Err(CriticalError::Contract(format!(
            "{label}: path length is {} but the run had {} compute cycles",
            crit.path_length(),
            report.compute_cycles
        )));
    }
    let total = report.prepass_cycles + report.compute_cycles;
    if crit.path_length() > total {
        return Err(CriticalError::Contract(format!(
            "{label}: path length {} exceeds the total cycle count {total}",
            crit.path_length()
        )));
    }
    Ok(())
}

/// Builds a critical-path document from explicit `(label, workload, seed)`
/// runs.
///
/// This is the core `critical_document` delegates to; tests and callers
/// with their own workload selection use it directly.
///
/// # Errors
///
/// Propagates the first [`SystemError`], or a [`CriticalError::Contract`]
/// if any run breaks the contract.
pub fn document_for_workloads(
    opts: &CriticalOptions,
    items: &[(String, Workload, u64)],
) -> Result<JsonValue, CriticalError> {
    let cfg = opts.config();
    let reports = crate::run_ordered(items, opts.jobs, |_, (_, workload, seed)| {
        crate::measure(&cfg, *workload, *seed)
    })
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;

    let mut critical = CriticalProfile::new(cfg.read_latency.max(1));
    let (mut prepass, mut compute, mut ideal) = (0u64, 0u64, 0u64);
    for ((label, _, _), report) in items.iter().zip(&reports) {
        check_path(label, report)?;
        critical.merge(&report.critical);
        prepass += report.prepass_cycles;
        compute += report.compute_cycles;
        ideal += report.ideal_cycles;
    }
    Ok(JsonValue::object([
        ("schema".to_owned(), JsonValue::from(SCHEMA)),
        ("step".to_owned(), JsonValue::from(opts.step as u64)),
        (
            "mode".to_owned(),
            JsonValue::from(if opts.full { "full" } else { "quick" }),
        ),
        (
            "read_latency".to_owned(),
            JsonValue::from(opts.read_latency),
        ),
        ("workloads".to_owned(), JsonValue::from(items.len() as u64)),
        (
            "cycles".to_owned(),
            JsonValue::object([
                ("prepass".to_owned(), JsonValue::from(prepass)),
                ("compute".to_owned(), JsonValue::from(compute)),
                ("ideal".to_owned(), JsonValue::from(ideal)),
            ]),
        ),
        ("critical".to_owned(), critical.to_json()),
    ]))
}

/// Analyzes the Fig. 7 ablation slice at `opts.step` and returns the
/// canonical document. Workload labels and seeds match `regress run` and
/// `dm-profile`, so a critical-path document is directly relatable to the
/// benchmark baselines and blame profiles.
///
/// # Errors
///
/// Propagates the first [`SystemError`], or a [`CriticalError::Contract`]
/// if any run breaks the contract.
pub fn critical_document(
    opts: &CriticalOptions,
    mut progress: impl FnMut(&str),
) -> Result<JsonValue, CriticalError> {
    let suite = synthetic_suite();
    let items: Vec<(String, Workload, u64)> = suite
        .iter()
        .enumerate()
        .filter(|(i, _)| opts.full || i % 5 == 0)
        .map(|(i, w)| (format!("{w}|step{}", opts.step), *w, i as u64))
        .collect();
    progress(&format!(
        "tracing {} workloads at ablation step {} ({} jobs)",
        items.len(),
        opts.step,
        opts.jobs
    ));
    document_for_workloads(opts, &items)
}

fn doc_u64(doc: &JsonValue, path: &[&str]) -> u64 {
    let mut value = doc;
    for key in path {
        match value.get(key) {
            Some(v) => value = v,
            None => return 0,
        }
    }
    value.as_u64().unwrap_or(0)
}

/// The six-class path composition of a document, in reporting order.
#[must_use]
pub fn composition(doc: &JsonValue) -> Vec<(&'static str, u64)> {
    CritClass::ALL
        .iter()
        .map(|&c| {
            (
                c.label(),
                doc_u64(doc, &["critical", "composition", c.label()]),
            )
        })
        .collect()
}

/// Renders the human-readable analysis: headline cycle counts, the path
/// composition table, and the what-if projection table ranked by predicted
/// saving.
#[must_use]
pub fn render(doc: &JsonValue) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let step = doc_u64(doc, &["step"]);
    let mode = doc
        .get("mode")
        .and_then(JsonValue::as_str)
        .unwrap_or("quick");
    let latency = doc_u64(doc, &["read_latency"]);
    let workloads = doc_u64(doc, &["workloads"]);
    let compute = doc_u64(doc, &["cycles", "compute"]);
    let ideal = doc_u64(doc, &["cycles", "ideal"]);
    let path = doc_u64(doc, &["critical", "path"]);
    let _ = writeln!(
        out,
        "dm-critical: ablation step {step} ({mode}, read latency {latency}) — \
         {workloads} workload(s)"
    );
    let _ = writeln!(
        out,
        "  critical path: {path} cycle(s) over {compute} compute cycle(s) \
         (ideal {ideal})"
    );
    let _ = writeln!(out, "  composition (cycles bound by each resource):");
    for (label, cycles) in composition(doc) {
        let share = if path == 0 {
            0.0
        } else {
            100.0 * cycles as f64 / path as f64
        };
        let _ = writeln!(out, "    {label:<18} {cycles:>12} {share:>6.1}%");
    }
    let Some(JsonValue::Array(what_ifs)) = doc.get("critical").and_then(|c| c.get("what_ifs"))
    else {
        return out;
    };
    let mut ranked: Vec<(&str, u64, u64, bool)> = what_ifs
        .iter()
        .map(|w| {
            (
                w.get("name").and_then(JsonValue::as_str).unwrap_or("?"),
                w.get("delta").and_then(JsonValue::as_u64).unwrap_or(0),
                w.get("projected").and_then(JsonValue::as_u64).unwrap_or(0),
                matches!(w.get("simulable"), Some(JsonValue::Bool(true))),
            )
        })
        .collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(b.0)));
    let _ = writeln!(
        out,
        "  what-if projections (* = validated by re-simulation in tests):"
    );
    for (name, delta, projected, simulable) in ranked {
        let mark = if simulable { " *" } else { "" };
        let _ = writeln!(
            out,
            "    {name:<18} saves {delta:>12} cycle(s) -> path {projected}{mark}"
        );
    }
    out
}

/// One per-class delta between two critical-path documents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassDelta {
    /// Resource class label, e.g. `memory-latency`.
    pub class: &'static str,
    /// On-path cycles in the old document.
    pub old: u64,
    /// On-path cycles in the new document.
    pub new: u64,
}

impl ClassDelta {
    /// Signed change in on-path cycles (new − old).
    #[must_use]
    pub fn delta(&self) -> i64 {
        self.new as i64 - self.old as i64
    }
}

/// The outcome of comparing two critical-path documents.
#[derive(Debug)]
pub struct CriticalDiff {
    /// Per-class deltas, largest absolute change first.
    pub rows: Vec<ClassDelta>,
    /// Critical path length on the old side.
    pub old_path: u64,
    /// Critical path length on the new side.
    pub new_path: u64,
    /// Read latency of the old document.
    pub old_latency: u64,
    /// Read latency of the new document.
    pub new_latency: u64,
}

impl CriticalDiff {
    /// The dominant path shift: the resource class whose on-path cycle
    /// count changed the most (in absolute cycles). `None` when nothing
    /// changed.
    #[must_use]
    pub fn dominant(&self) -> Option<(&'static str, i64)> {
        self.rows
            .first()
            .filter(|row| row.delta() != 0)
            .map(|row| (row.class, row.delta()))
    }
}

/// Compares two critical-path documents.
///
/// # Errors
///
/// Refuses (with a descriptive message) to compare documents whose schema
/// is not exactly [`SCHEMA`], or — unless `allow_mismatch` — that were
/// recorded under different read latencies. A cross-latency comparison is
/// sometimes exactly the question (the Fig. 7(a) axis), so
/// `--allow-mismatch` proceeds, and [`render_diff`] prints a loud warning
/// banner in that case.
pub fn diff(
    old: &JsonValue,
    new: &JsonValue,
    allow_mismatch: bool,
) -> Result<CriticalDiff, String> {
    let schema = |doc: &JsonValue| {
        doc.get("schema")
            .and_then(JsonValue::as_str)
            .unwrap_or("<missing>")
            .to_owned()
    };
    let (old_schema, new_schema) = (schema(old), schema(new));
    if old_schema != SCHEMA || new_schema != SCHEMA {
        return Err(format!(
            "schema mismatch: old '{old_schema}', new '{new_schema}', expected '{SCHEMA}'; \
             regenerate both documents with this dm-critical"
        ));
    }
    let (old_latency, new_latency) = (
        doc_u64(old, &["read_latency"]),
        doc_u64(new, &["read_latency"]),
    );
    if old_latency != new_latency && !allow_mismatch {
        return Err(format!(
            "read latency differs ({old_latency} vs {new_latency}); path deltas across \
             latencies conflate physics with configuration (pass --allow-mismatch to \
             compare anyway)"
        ));
    }
    let (old_comp, new_comp) = (composition(old), composition(new));
    let mut rows: Vec<ClassDelta> = old_comp
        .iter()
        .zip(&new_comp)
        .map(|(&(class, old), &(_, new))| ClassDelta { class, old, new })
        .collect();
    rows.sort_by(|a, b| {
        b.delta()
            .abs()
            .cmp(&a.delta().abs())
            .then_with(|| a.class.cmp(b.class))
    });
    Ok(CriticalDiff {
        rows,
        old_path: doc_u64(old, &["critical", "path"]),
        new_path: doc_u64(new, &["critical", "path"]),
        old_latency,
        new_latency,
    })
}

/// Renders a diff: path-length movement, per-class deltas and the dominant
/// path shift. A cross-latency comparison gets a loud warning banner first.
#[must_use]
pub fn render_diff(d: &CriticalDiff, old_label: &str, new_label: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "dm-critical diff: {old_label} -> {new_label}");
    if d.old_latency != d.new_latency {
        let _ = writeln!(out, "  {}", "=".repeat(68));
        let _ = writeln!(
            out,
            "  WARNING: read latency differs ({} vs {}) — the deltas below\n\
             \x20 conflate memory physics with configuration changes; proceeding\n\
             \x20 because --allow-mismatch was given",
            d.old_latency, d.new_latency
        );
        let _ = writeln!(out, "  {}", "=".repeat(68));
    }
    let path_delta = d.new_path as i64 - d.old_path as i64;
    let _ = writeln!(
        out,
        "  critical path: {} -> {} ({path_delta:+})",
        d.old_path, d.new_path
    );
    if d.rows.iter().all(|row| row.delta() == 0) {
        let _ = writeln!(out, "  no path cycles moved between the two documents");
        return out;
    }
    let _ = writeln!(out, "  by resource class:");
    for row in &d.rows {
        if row.delta() != 0 {
            let _ = writeln!(
                out,
                "    {:<18} {:>12} -> {:<12} ({:+})",
                row.class,
                row.old,
                row.new,
                row.delta()
            );
        }
    }
    if let Some((class, delta)) = d.dominant() {
        let verb = if delta < 0 { "collapsed" } else { "grew" };
        let _ = writeln!(
            out,
            "  dominant path shift: {class} {verb} by {} cycles",
            delta.unsigned_abs()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_workloads::GemmSpec;

    fn doc_for(step: usize, read_latency: u64) -> JsonValue {
        let opts = CriticalOptions {
            step,
            read_latency,
            ..CriticalOptions::default()
        };
        let items = vec![(
            format!("GeMM-64|step{step}"),
            Workload::from(GemmSpec::new(64, 64, 64)),
            1,
        )];
        document_for_workloads(&opts, &items).unwrap()
    }

    #[test]
    fn document_is_deterministic_across_jobs_and_fast_forward() {
        let items: Vec<(String, Workload, u64)> = (0..3)
            .map(|i| {
                (
                    format!("g{i}"),
                    Workload::from(GemmSpec::new(32, 32, 32)),
                    i,
                )
            })
            .collect();
        let doc = |jobs: usize, fast_forward: bool| {
            let opts = CriticalOptions {
                step: 5,
                jobs,
                fast_forward,
                read_latency: 4,
                ..CriticalOptions::default()
            };
            document_for_workloads(&opts, &items).unwrap().to_json()
        };
        let canonical = doc(1, true);
        assert_eq!(canonical, doc(4, true), "jobs must not change the bytes");
        assert_eq!(
            canonical,
            doc(1, false),
            "fast-forward must not change the bytes"
        );
    }

    #[test]
    fn composition_sums_to_the_path_and_path_matches_compute() {
        let doc = doc_for(1, 16);
        let path = doc_u64(&doc, &["critical", "path"]);
        let compute = doc_u64(&doc, &["cycles", "compute"]);
        assert_eq!(path, compute, "every compute cycle lies on the path");
        let total: u64 = composition(&doc).iter().map(|&(_, n)| n).sum();
        assert_eq!(total, path, "composition must sum to the path length");
    }

    #[test]
    fn step1_to_step6_diff_at_latency_16_names_memory_latency() {
        // The Fig. 7(a) story: the coupled baseline (step 1) pays the full
        // read round trip on the critical path; full decoupling (step 6)
        // hides it behind prefetch. The analyzer must name memory latency
        // as the dominant path shift.
        let old = doc_for(1, 16);
        let new = doc_for(6, 16);
        let d = diff(&old, &new, false).unwrap();
        let (class, delta) = d.dominant().expect("the path must have moved");
        assert_eq!(class, "memory-latency", "rows: {:?}", d.rows);
        assert!(
            delta < 0,
            "on-path memory latency must collapse, got {delta:+}"
        );
        let rendered = render_diff(&d, "step1", "step6");
        assert!(rendered.contains("dominant path shift: memory-latency collapsed"));
        assert!(!rendered.contains("WARNING"), "same latency, no banner");
    }

    #[test]
    fn diff_refuses_mismatches_unless_allowed() {
        let doc = doc_for(6, 4);
        let bogus = JsonValue::object([(
            "schema".to_owned(),
            JsonValue::from("datamaestro-critical-v0"),
        )]);
        let err = diff(&bogus, &doc, false).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");

        let slow = doc_for(6, 16);
        let err = diff(&doc, &slow, false).unwrap_err();
        assert!(err.contains("read latency differs"), "{err}");

        // --allow-mismatch proceeds, and the rendering carries the banner.
        let d = diff(&doc, &slow, true).unwrap();
        assert_eq!((d.old_latency, d.new_latency), (4, 16));
        let rendered = render_diff(&d, "fast", "slow");
        assert!(rendered.contains("WARNING: read latency differs (4 vs 16)"));
    }

    #[test]
    fn contract_check_accepts_real_runs_and_rejects_forgeries() {
        let opts = CriticalOptions {
            step: 5,
            ..CriticalOptions::default()
        };
        let mut report =
            crate::measure(&opts.config(), GemmSpec::new(32, 32, 32).into(), 1).unwrap();
        check_path("g32", &report).unwrap();
        // Forge one extra compute cycle: the path-length cross-check fires.
        report.compute_cycles += 1;
        let err = check_path("g32", &report).unwrap_err();
        assert!(matches!(err, CriticalError::Contract(_)), "{err}");
    }

    #[test]
    fn render_names_the_composition_and_ranks_what_ifs() {
        let doc = doc_for(1, 16);
        let rendered = render(&doc);
        assert!(rendered.contains("ablation step 1"));
        for class in CritClass::ALL {
            assert!(
                rendered.contains(class.label()),
                "composition must show {}",
                class.label()
            );
        }
        assert!(rendered.contains("what-if projections"));
        assert!(rendered.contains("read-latency->1"));
        // At latency 16 on the coupled baseline the latency projection must
        // rank first (largest predicted saving).
        let latency_pos = rendered.find("read-latency->1").unwrap();
        let conflict_pos = rendered.find("conflicts-free").unwrap();
        assert!(latency_pos < conflict_pos, "{rendered}");
    }
}
