//! The static-lint document behind the `dm-lint` binary.
//!
//! `dm-lint` compiles the committed workload suites onto the paper's
//! evaluation geometry and runs the full static analysis — bank conflicts,
//! footprint bounds, hazards, deadlock, and the performance proofs
//! (`DM-PERF-*`, see [`dm_analyze::roofline`]) — on each program,
//! **without simulating**. This module builds the canonical document
//! (schema-versioned, like the profiler/critical-path documents), renders
//! it for humans, and diffs two documents by lint-code counts, refusing
//! cross-schema comparisons.

use dm_analyze::{analyze_program, Report, Severity};
use dm_mem::MemConfig;
use dm_sim::JsonValue;
use dm_system::SystemConfig;
use dm_workloads::{synthetic_suite, table3_models, Workload, WorkloadData};

/// Document format identifier; `diff` refuses to compare across schemas.
pub const SCHEMA: &str = "datamaestro-lint-v1";

/// The committed workloads of one suite, labelled. Returns `None` for an
/// unknown suite name.
#[must_use]
pub fn suite_workloads(suite: &str, quick: bool) -> Option<Vec<(String, Workload)>> {
    if !["fig7", "table3", "kernels", "all"].contains(&suite) {
        return None;
    }
    let mut out = Vec::new();
    if suite == "fig7" || suite == "all" {
        for (i, w) in synthetic_suite().into_iter().enumerate() {
            if !quick || i % 5 == 0 {
                out.push((format!("fig7[{i}] {w}"), w));
            }
        }
    }
    if suite == "table3" || suite == "all" {
        for model in table3_models() {
            for layer in &model.layers {
                out.push((format!("{}/{}", model.name, layer.name), layer.workload));
            }
        }
    }
    if suite == "kernels" || suite == "all" {
        for (name, w) in crate::representative_kernels() {
            out.push((format!("kernel/{name}"), w));
        }
    }
    Some(out)
}

/// Lints explicit `(label, workload)` items on the evaluation geometry:
/// compiles each with the full feature set, runs the static analysis plus
/// the performance proofs, and returns the canonical document. Workloads
/// that do not compile become `DM-CONFIG` errors rather than aborting the
/// document.
#[must_use]
pub fn document_for_workloads(workloads: &[(String, Workload)], deny_warnings: bool) -> JsonValue {
    let mem = MemConfig::default();
    let read_latency = SystemConfig::default().read_latency;
    let mut report = Report::new();
    let mut proven_free = 0usize;
    for (label, workload) in workloads {
        let data = WorkloadData::generate(*workload, 0);
        match dm_compiler::compile(
            &data,
            &dm_compiler::FeatureSet::full(),
            &mem,
            true,
            dm_compiler::BufferDepths::default(),
        ) {
            Ok(program) => {
                let analysis = analyze_program(&program, &mem);
                proven_free += usize::from(analysis.conflict_free);
                let perf = match dm_analyze::predict(&program, &mem, read_latency) {
                    Ok(prediction) => dm_analyze::perf_diagnostics(&prediction),
                    Err(diags) => diags,
                };
                for mut diag in analysis.report.diagnostics.into_iter().chain(perf) {
                    diag.component = format!("{label}: {}", diag.component);
                    report.push(diag);
                }
            }
            Err(e) => {
                report.push(dm_analyze::Diagnostic::error(
                    dm_analyze::LintCode::Config,
                    label.clone(),
                    format!("does not compile onto the evaluation system: {e}"),
                ));
            }
        }
    }
    document_for_report(&report, workloads.len(), proven_free, deny_warnings)
}

/// Wraps an already-built [`Report`] (e.g. a demo fixture's) in the
/// canonical document.
#[must_use]
pub fn document_for_report(
    report: &Report,
    analyzed: usize,
    proven_free: usize,
    deny_warnings: bool,
) -> JsonValue {
    let passed = report.passes(deny_warnings);
    JsonValue::object([
        ("schema".to_owned(), JsonValue::from(SCHEMA)),
        ("analyzed".to_owned(), JsonValue::from(analyzed as u64)),
        (
            "proven_conflict_free".to_owned(),
            JsonValue::from(proven_free as u64),
        ),
        ("passed".to_owned(), JsonValue::Bool(passed)),
        (
            "counts".to_owned(),
            JsonValue::object([
                (
                    "error".to_owned(),
                    JsonValue::from(report.count(Severity::Error) as u64),
                ),
                (
                    "warning".to_owned(),
                    JsonValue::from(report.count(Severity::Warning) as u64),
                ),
                (
                    "info".to_owned(),
                    JsonValue::from(report.count(Severity::Info) as u64),
                ),
            ]),
        ),
        ("diagnostics".to_owned(), report.to_json()),
    ])
}

fn doc_u64(doc: &JsonValue, path: &[&str]) -> u64 {
    let mut value = doc;
    for key in path {
        match value.get(key) {
            Some(v) => value = v,
            None => return 0,
        }
    }
    value.as_u64().unwrap_or(0)
}

fn diagnostics(doc: &JsonValue) -> Vec<String> {
    let Some(JsonValue::Array(items)) = doc.get("diagnostics") else {
        return Vec::new();
    };
    items
        .iter()
        .map(|d| {
            let field = |k: &str| d.get(k).and_then(JsonValue::as_str).unwrap_or("");
            format!(
                "{}[{}] {}: {}",
                field("severity"),
                field("code"),
                field("component"),
                field("message")
            )
        })
        .collect()
}

fn code_counts(doc: &JsonValue) -> Vec<(String, u64)> {
    let mut counts: Vec<(String, u64)> = Vec::new();
    let Some(JsonValue::Array(items)) = doc.get("diagnostics") else {
        return counts;
    };
    for d in items {
        let code = d
            .get("code")
            .and_then(JsonValue::as_str)
            .unwrap_or("<missing>")
            .to_owned();
        match counts.iter_mut().find(|(c, _)| *c == code) {
            Some((_, n)) => *n += 1,
            None => counts.push((code, 1)),
        }
    }
    counts.sort_by(|a, b| a.0.cmp(&b.0));
    counts
}

/// Renders the document: one compiler-style line per diagnostic and the
/// summary/gate line.
#[must_use]
pub fn render(doc: &JsonValue) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for line in diagnostics(doc) {
        let _ = writeln!(out, "{line}");
    }
    let passed = matches!(doc.get("passed"), Some(JsonValue::Bool(true)));
    let _ = writeln!(
        out,
        "dm-lint: {} configuration(s) analyzed, {} proven conflict-free; \
         {} error(s), {} warning(s), {} note(s) — {}",
        doc_u64(doc, &["analyzed"]),
        doc_u64(doc, &["proven_conflict_free"]),
        doc_u64(doc, &["counts", "error"]),
        doc_u64(doc, &["counts", "warning"]),
        doc_u64(doc, &["counts", "info"]),
        if passed { "PASS" } else { "FAIL" }
    );
    out
}

/// The outcome of comparing two lint documents.
#[derive(Debug, Default)]
pub struct LintDiff {
    /// Per-lint-code `(code, old count, new count)` rows, sorted by code.
    pub code_rows: Vec<(String, u64, u64)>,
    /// Diagnostics present only in the new document (rendered form).
    pub added: Vec<String>,
    /// Diagnostics present only in the old document (rendered form).
    pub removed: Vec<String>,
    /// Gate outcome on each side.
    pub old_passed: bool,
    /// Gate outcome of the new document.
    pub new_passed: bool,
}

/// Compares two lint documents by code counts and diagnostic set.
///
/// # Errors
///
/// Refuses to compare documents whose schema is not exactly [`SCHEMA`]
/// (pre-schema documents report `<missing>`); there is no
/// `--allow-mismatch` escape — a format mismatch is never a lint insight.
pub fn diff(old: &JsonValue, new: &JsonValue) -> Result<LintDiff, String> {
    let schema = |doc: &JsonValue| {
        doc.get("schema")
            .and_then(JsonValue::as_str)
            .unwrap_or("<missing>")
            .to_owned()
    };
    let (old_schema, new_schema) = (schema(old), schema(new));
    if old_schema != SCHEMA || new_schema != SCHEMA {
        return Err(format!(
            "schema mismatch: old '{old_schema}', new '{new_schema}', expected '{SCHEMA}'; \
             regenerate both documents with this dm-lint"
        ));
    }

    let mut codes: Vec<String> = Vec::new();
    for (code, _) in code_counts(old).into_iter().chain(code_counts(new)) {
        if !codes.contains(&code) {
            codes.push(code);
        }
    }
    codes.sort();
    let count_of = |doc: &JsonValue, code: &str| {
        code_counts(doc)
            .into_iter()
            .find(|(c, _)| c == code)
            .map_or(0, |(_, n)| n)
    };
    let code_rows = codes
        .into_iter()
        .map(|code| {
            let (old_n, new_n) = (count_of(old, &code), count_of(new, &code));
            (code, old_n, new_n)
        })
        .collect();

    let (old_lines, new_lines) = (diagnostics(old), diagnostics(new));
    let added = new_lines
        .iter()
        .filter(|l| !old_lines.contains(l))
        .cloned()
        .collect();
    let removed = old_lines
        .iter()
        .filter(|l| !new_lines.contains(l))
        .cloned()
        .collect();

    Ok(LintDiff {
        code_rows,
        added,
        removed,
        old_passed: matches!(old.get("passed"), Some(JsonValue::Bool(true))),
        new_passed: matches!(new.get("passed"), Some(JsonValue::Bool(true))),
    })
}

/// Renders a diff: gate movement, per-code count deltas, and the added and
/// removed diagnostics.
#[must_use]
pub fn render_diff(d: &LintDiff, old_label: &str, new_label: &str) -> String {
    use std::fmt::Write as _;
    let gate = |passed: bool| if passed { "PASS" } else { "FAIL" };
    let mut out = String::new();
    let _ = writeln!(out, "dm-lint diff: {old_label} -> {new_label}");
    let _ = writeln!(
        out,
        "  gate: {} -> {}",
        gate(d.old_passed),
        gate(d.new_passed)
    );
    let changed: Vec<_> = d.code_rows.iter().filter(|(_, o, n)| o != n).collect();
    if changed.is_empty() && d.added.is_empty() && d.removed.is_empty() {
        let _ = writeln!(out, "  no findings changed");
        return out;
    }
    for (code, old_n, new_n) in changed {
        let _ = writeln!(
            out,
            "    {code:<20} {old_n:>5} -> {new_n:<5} ({:+})",
            *new_n as i64 - *old_n as i64
        );
    }
    for line in &d.added {
        let _ = writeln!(out, "  + {line}");
    }
    for line in &d.removed {
        let _ = writeln!(out, "  - {line}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_analyze::{Diagnostic, LintCode};
    use dm_workloads::{ConvSpec, GemmSpec};

    /// Small fixed workload pair the golden file pins: a clean GeMM and a
    /// strided conv that emits unavoidable-conflict and `DM-PERF-*` notes.
    fn golden_workloads() -> Vec<(String, Workload)> {
        vec![
            ("gemm-32".to_owned(), GemmSpec::new(32, 32, 32).into()),
            (
                "conv3x3-s2".to_owned(),
                ConvSpec::new(18, 18, 8, 16, 3, 3, 2).into(),
            ),
        ]
    }

    const GOLDEN: &str = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/lint_document.json"
    );

    #[test]
    fn json_shape_matches_the_golden_file() {
        let doc = document_for_workloads(&golden_workloads(), false);
        let rendered = doc.to_json();
        if std::env::var_os("DM_BLESS_GOLDEN").is_some() {
            std::fs::write(GOLDEN, &rendered).unwrap();
            return;
        }
        let golden = std::fs::read_to_string(GOLDEN)
            .expect("golden file missing; run with DM_BLESS_GOLDEN=1 to create it");
        assert_eq!(
            rendered, golden,
            "dm-lint --json shape drifted; if intentional, bump SCHEMA and \
             regenerate with DM_BLESS_GOLDEN=1"
        );
    }

    #[test]
    fn document_carries_schema_and_counts() {
        let doc = document_for_workloads(&golden_workloads(), false);
        assert_eq!(doc.get("schema").and_then(JsonValue::as_str), Some(SCHEMA));
        assert_eq!(doc_u64(&doc, &["analyzed"]), 2);
        let total = doc_u64(&doc, &["counts", "error"])
            + doc_u64(&doc, &["counts", "warning"])
            + doc_u64(&doc, &["counts", "info"]);
        assert_eq!(total, diagnostics(&doc).len() as u64);
        assert!(matches!(doc.get("passed"), Some(JsonValue::Bool(true))));
    }

    #[test]
    fn diff_refuses_cross_schema_documents() {
        let doc = document_for_workloads(&golden_workloads(), false);
        // A pre-schema document (the old dm-lint --json shape).
        let legacy = JsonValue::object([
            ("analyzed".to_owned(), JsonValue::from(1u64)),
            ("passed".to_owned(), JsonValue::Bool(true)),
        ]);
        let err = diff(&legacy, &doc).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
        assert!(err.contains("<missing>"), "{err}");
        assert!(diff(&doc, &doc).is_ok());
    }

    #[test]
    fn diff_names_added_and_removed_findings() {
        let mut clean = Report::new();
        clean.push(Diagnostic::info(LintCode::BankConflict, "A", "note"));
        let mut dirty = clean.clone();
        dirty.push(Diagnostic::warning(LintCode::ModeMismatch, "B", "slow"));
        let old = document_for_report(&clean, 1, 1, true);
        let new = document_for_report(&dirty, 1, 1, true);
        let d = diff(&old, &new).unwrap();
        assert!(d.old_passed && !d.new_passed);
        assert_eq!(d.added.len(), 1);
        assert!(d.added[0].contains("DM-MODE-MISMATCH"));
        assert!(d.removed.is_empty());
        assert!(d
            .code_rows
            .iter()
            .any(|(c, o, n)| c == "DM-MODE-MISMATCH" && *o == 0 && *n == 1));
        let rendered = render_diff(&d, "clean", "dirty");
        assert!(rendered.contains("gate: PASS -> FAIL"));
        assert!(rendered.contains("+ warning[DM-MODE-MISMATCH]"));
    }

    #[test]
    fn unknown_suite_is_rejected_known_suites_are_not_empty() {
        assert!(suite_workloads("bogus", false).is_none());
        for suite in ["fig7", "table3", "kernels", "all"] {
            assert!(!suite_workloads(suite, true).unwrap().is_empty());
        }
    }
}
