//! The static performance prover behind the `dm-predict` binary.
//!
//! `predict run` compiles the Fig. 7 ablation slice at one feature step —
//! exactly as the simulator would — and, **without simulating**, proves
//! for each workload a steady-state period for every port's request stream
//! and a sound utilization roofline ([`dm_analyze::predict`]): an upper
//! bound the observed PE utilization can never exceed, plus the predicted
//! dominant bottleneck in the same taxonomy the blame/critical profilers
//! use. `predict diff` compares two documents — typically adjacent
//! ablation steps — so the static prediction is directly diffable against
//! the dynamic measurement.
//!
//! The document is a pure function of the configuration: any `--jobs`
//! count produces byte-identical output (there is no simulation to
//! schedule, only independent proofs run in a deterministic order).

use dm_sim::{CritClass, JsonValue};
use dm_system::SystemConfig;
use dm_workloads::{synthetic_suite, Workload, WorkloadData};

/// Document format identifier; `diff` refuses to compare across schemas.
pub const SCHEMA: &str = "datamaestro-predict-v1";

/// How many workload rows the rendered diff shows.
pub const TOP_ROWS: usize = 12;

/// Options of one `predict run`.
#[derive(Debug, Clone)]
pub struct PredictOptions {
    /// Ablation step (1 = baseline … 6 = fully featured).
    pub step: usize,
    /// Prove the complete Fig. 7 suite instead of the every-5th slice.
    pub full: bool,
    /// Worker threads for the independent proofs (output is byte-identical
    /// for any value).
    pub jobs: usize,
    /// Scratchpad bank read latency in cycles.
    pub read_latency: u64,
}

impl Default for PredictOptions {
    fn default() -> Self {
        PredictOptions {
            step: 6,
            full: false,
            jobs: 1,
            read_latency: SystemConfig::default().read_latency,
        }
    }
}

impl PredictOptions {
    /// The system configuration whose runs this prediction bounds — the
    /// same lowering `run_workload` performs, so predicted and observed
    /// numbers describe the identical program.
    #[must_use]
    pub fn config(&self) -> SystemConfig {
        SystemConfig {
            read_latency: self.read_latency,
            ..SystemConfig::default()
                .with_features(dm_compiler::FeatureSet::ablation_step(self.step))
        }
    }
}

/// Proves one workload under the given system configuration: compiles it
/// exactly as the simulator would, then derives the period proof and
/// utilization roofline.
///
/// # Errors
///
/// Returns a one-line message when the workload does not compile onto the
/// configuration or the period prover rejects the lowered program.
pub fn prove_workload(
    cfg: &SystemConfig,
    workload: Workload,
    seed: u64,
) -> Result<dm_analyze::Prediction, String> {
    let data = WorkloadData::generate(workload, seed);
    let program = dm_compiler::compile(&data, &cfg.features, &cfg.mem, cfg.quantized, cfg.depths)
        .map_err(|e| format!("does not compile: {e}"))?;
    dm_analyze::predict(&program, &cfg.mem, cfg.read_latency).map_err(|diags| {
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("; ")
    })
}

fn port_json(port: &dm_analyze::PortPeriodProof) -> JsonValue {
    JsonValue::object([
        ("name".to_owned(), JsonValue::from(&*port.name)),
        ("steps".to_owned(), JsonValue::from(port.steps)),
        ("period".to_owned(), JsonValue::from(port.period)),
        (
            "requests_per_period".to_owned(),
            JsonValue::from(port.requests_per_period()),
        ),
        (
            "per_bank_per_period".to_owned(),
            JsonValue::Array(
                port.per_bank_per_period
                    .iter()
                    .map(|&n| JsonValue::from(n))
                    .collect(),
            ),
        ),
        ("exhaustive".to_owned(), JsonValue::Bool(port.exhaustive)),
    ])
}

fn entry_json(label: &str, p: &dm_analyze::Prediction) -> JsonValue {
    JsonValue::object([
        ("label".to_owned(), JsonValue::from(label)),
        ("ideal".to_owned(), JsonValue::from(p.ideal)),
        ("prepass_lb".to_owned(), JsonValue::from(p.prepass_lb)),
        ("compute_lb".to_owned(), JsonValue::from(p.compute_lb)),
        ("bank_term".to_owned(), JsonValue::from(p.bank_term)),
        ("bound".to_owned(), JsonValue::from(p.bound)),
        (
            "bottleneck".to_owned(),
            JsonValue::from(p.bottleneck.label()),
        ),
        (
            "fire_period".to_owned(),
            JsonValue::from(p.period.fire_period),
        ),
        (
            "exhaustive".to_owned(),
            JsonValue::Bool(p.period.exhaustive),
        ),
        (
            "ports".to_owned(),
            JsonValue::Array(p.period.ports.iter().map(port_json).collect()),
        ),
    ])
}

/// Builds a prediction document from explicit `(label, workload, seed)`
/// items. This is the core `predict_document` delegates to; tests and
/// callers with their own workload selection use it directly.
///
/// # Errors
///
/// Returns the first proof failure, prefixed with its workload label.
pub fn document_for_workloads(
    opts: &PredictOptions,
    items: &[(String, Workload, u64)],
) -> Result<JsonValue, String> {
    let cfg = opts.config();
    let predictions = crate::run_ordered(items, opts.jobs, |_, (label, workload, seed)| {
        prove_workload(&cfg, *workload, *seed).map_err(|e| format!("{label}: {e}"))
    })
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;

    let (mut ideal, mut cycles_lb) = (0u64, 0u64);
    let mut per_class = vec![0u64; CritClass::ALL.len()];
    for p in &predictions {
        ideal += p.ideal;
        cycles_lb += p.prepass_lb + p.compute_lb;
        let slot = CritClass::ALL
            .iter()
            .position(|c| *c == p.bottleneck)
            .unwrap_or(0);
        per_class[slot] += 1;
    }
    let bound = if cycles_lb == 0 {
        1.0
    } else {
        ideal as f64 / cycles_lb as f64
    };
    // Dominant class: most entries, ties toward the front of the taxonomy
    // (pe-issue first) — the same resolution the per-program roofline uses.
    let dominant = per_class
        .iter()
        .enumerate()
        .max_by_key(|(i, n)| (**n, std::cmp::Reverse(*i)))
        .map_or(CritClass::PeIssue, |(i, _)| CritClass::ALL[i]);

    let entries: Vec<JsonValue> = items
        .iter()
        .zip(&predictions)
        .map(|((label, _, _), p)| entry_json(label, p))
        .collect();
    Ok(JsonValue::object([
        ("schema".to_owned(), JsonValue::from(SCHEMA)),
        ("step".to_owned(), JsonValue::from(opts.step as u64)),
        (
            "mode".to_owned(),
            JsonValue::from(if opts.full { "full" } else { "quick" }),
        ),
        (
            "read_latency".to_owned(),
            JsonValue::from(opts.read_latency),
        ),
        ("workloads".to_owned(), JsonValue::from(items.len() as u64)),
        (
            "aggregate".to_owned(),
            JsonValue::object([
                ("ideal".to_owned(), JsonValue::from(ideal)),
                ("cycles_lb".to_owned(), JsonValue::from(cycles_lb)),
                ("bound".to_owned(), JsonValue::from(bound)),
                ("bottleneck".to_owned(), JsonValue::from(dominant.label())),
            ]),
        ),
        ("entries".to_owned(), JsonValue::Array(entries)),
    ]))
}

/// Proves the Fig. 7 ablation slice at `opts.step` and returns the
/// canonical document. Workload labels and seeds match `profile run` and
/// `regress run`, so predictions are directly relatable to measurements.
///
/// # Errors
///
/// Returns the first proof failure, prefixed with its workload label.
pub fn predict_document(
    opts: &PredictOptions,
    mut progress: impl FnMut(&str),
) -> Result<JsonValue, String> {
    let suite = synthetic_suite();
    let items: Vec<(String, Workload, u64)> = suite
        .iter()
        .enumerate()
        .filter(|(i, _)| opts.full || i % 5 == 0)
        .map(|(i, w)| (format!("{w}|step{}", opts.step), *w, i as u64))
        .collect();
    progress(&format!(
        "proving {} workloads at ablation step {} ({} jobs)",
        items.len(),
        opts.step,
        opts.jobs
    ));
    document_for_workloads(opts, &items)
}

fn doc_u64(doc: &JsonValue, path: &[&str]) -> u64 {
    let mut value = doc;
    for key in path {
        match value.get(key) {
            Some(v) => value = v,
            None => return 0,
        }
    }
    value.as_u64().unwrap_or(0)
}

fn doc_f64(doc: &JsonValue, path: &[&str]) -> f64 {
    let mut value = doc;
    for key in path {
        match value.get(key) {
            Some(v) => value = v,
            None => return 0.0,
        }
    }
    value.as_f64().unwrap_or(0.0)
}

fn doc_str<'a>(doc: &'a JsonValue, path: &[&str]) -> &'a str {
    let mut value = doc;
    for key in path {
        match value.get(key) {
            Some(v) => value = v,
            None => return "",
        }
    }
    value.as_str().unwrap_or("")
}

fn entries(doc: &JsonValue) -> &[JsonValue] {
    match doc.get("entries") {
        Some(JsonValue::Array(items)) => items,
        _ => &[],
    }
}

/// Renders the human-readable prediction: the aggregate roofline and one
/// row per workload with its proven bound, predicted bottleneck and fire
/// period.
#[must_use]
pub fn render(doc: &JsonValue) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "dm-predict: ablation step {} ({}, read latency {}) — {} workload(s)",
        doc_u64(doc, &["step"]),
        doc_str(doc, &["mode"]),
        doc_u64(doc, &["read_latency"]),
        doc_u64(doc, &["workloads"])
    );
    let _ = writeln!(
        out,
        "  proven utilization ≤ {:.3} (ideal {} / ≥{} cycles; predicted bottleneck: {})",
        doc_f64(doc, &["aggregate", "bound"]),
        doc_u64(doc, &["aggregate", "ideal"]),
        doc_u64(doc, &["aggregate", "cycles_lb"]),
        doc_str(doc, &["aggregate", "bottleneck"])
    );
    let _ = writeln!(
        out,
        "  {:<34} {:>8} {:>9} {:>7}  {:<16} {:>10}",
        "workload", "ideal", "cycles≥", "bound", "bottleneck", "period"
    );
    for e in entries(doc) {
        let lb = doc_u64(e, &["prepass_lb"]) + doc_u64(e, &["compute_lb"]);
        let exhaustive = matches!(e.get("exhaustive"), Some(JsonValue::Bool(true)));
        let _ = writeln!(
            out,
            "  {:<34} {:>8} {:>9} {:>7.3}  {:<16} {:>9}{}",
            doc_str(e, &["label"]),
            doc_u64(e, &["ideal"]),
            lb,
            doc_f64(e, &["bound"]),
            doc_str(e, &["bottleneck"]),
            doc_u64(e, &["fire_period"]),
            if exhaustive { "" } else { "*" }
        );
    }
    if entries(doc)
        .iter()
        .any(|e| !matches!(e.get("exhaustive"), Some(JsonValue::Bool(true))))
    {
        let _ = writeln!(out, "  * period proven for the walked prefix only");
    }
    out
}

/// One per-workload delta between two prediction documents.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Workload label, with any `|step<k>` suffix stripped so the same
    /// workload pairs with itself across ablation steps.
    pub label: String,
    /// Proven bound in the old document (`None` when the row is new).
    pub old_bound: Option<f64>,
    /// Proven bound in the new document (`None` when the row vanished).
    pub new_bound: Option<f64>,
    /// Predicted bottleneck on each side.
    pub old_bottleneck: String,
    /// Predicted bottleneck in the new document.
    pub new_bottleneck: String,
}

impl DiffRow {
    /// Signed change in the proven bound (new − old), 0 for one-sided rows.
    #[must_use]
    pub fn delta(&self) -> f64 {
        match (self.old_bound, self.new_bound) {
            (Some(old), Some(new)) => new - old,
            _ => 0.0,
        }
    }
}

/// The outcome of comparing two prediction documents.
#[derive(Debug, Default)]
pub struct PredictDiff {
    /// Per-workload rows, largest absolute bound change first.
    pub rows: Vec<DiffRow>,
    /// Aggregate proven bound on each side.
    pub old_bound: f64,
    /// Aggregate proven bound on the new side.
    pub new_bound: f64,
    /// Aggregate predicted bottleneck on each side.
    pub old_bottleneck: String,
    /// Aggregate predicted bottleneck on the new side.
    pub new_bottleneck: String,
    /// Read latency of the old document.
    pub old_latency: u64,
    /// Read latency of the new document.
    pub new_latency: u64,
}

/// Compares two prediction documents.
///
/// # Errors
///
/// Refuses to compare documents whose schema is not exactly [`SCHEMA`],
/// or — unless `allow_mismatch` — that predicted different read latencies
/// (a latency change moves every bound for physical reasons;
/// [`render_diff`] prints a warning banner when the comparison proceeds).
pub fn diff(old: &JsonValue, new: &JsonValue, allow_mismatch: bool) -> Result<PredictDiff, String> {
    let schema = |doc: &JsonValue| {
        doc.get("schema")
            .and_then(JsonValue::as_str)
            .unwrap_or("<missing>")
            .to_owned()
    };
    let (old_schema, new_schema) = (schema(old), schema(new));
    if old_schema != SCHEMA || new_schema != SCHEMA {
        return Err(format!(
            "schema mismatch: old '{old_schema}', new '{new_schema}', expected '{SCHEMA}'; \
             regenerate both documents with this dm-predict"
        ));
    }
    let (old_lat, new_lat) = (
        doc_u64(old, &["read_latency"]),
        doc_u64(new, &["read_latency"]),
    );
    if old_lat != new_lat && !allow_mismatch {
        return Err(format!(
            "read latency differs ({old_lat} vs {new_lat}); bound deltas across \
             latencies conflate physics with configuration (pass --allow-mismatch \
             to compare anyway)"
        ));
    }

    // Workload labels embed the ablation step (`…|step5`); pair rows on
    // the step-stripped base so a cross-step diff compares each workload
    // against itself instead of producing one-sided rows.
    let base_label = |label: &str| -> String {
        match label.rsplit_once("|step") {
            Some((base, step)) if !step.is_empty() && step.bytes().all(|b| b.is_ascii_digit()) => {
                base.to_owned()
            }
            _ => label.to_owned(),
        }
    };
    let mut labels: Vec<String> = Vec::new();
    let mut side = |doc: &JsonValue| {
        let mut map = std::collections::BTreeMap::new();
        for e in entries(doc) {
            let label = base_label(doc_str(e, &["label"]));
            if !labels.contains(&label) {
                labels.push(label.clone());
            }
            map.insert(
                label,
                (
                    doc_f64(e, &["bound"]),
                    doc_str(e, &["bottleneck"]).to_owned(),
                ),
            );
        }
        map
    };
    let old_map = side(old);
    let new_map = side(new);
    let mut rows: Vec<DiffRow> = labels
        .into_iter()
        .map(|label| {
            let old_entry = old_map.get(&label);
            let new_entry = new_map.get(&label);
            DiffRow {
                old_bound: old_entry.map(|(b, _)| *b),
                new_bound: new_entry.map(|(b, _)| *b),
                old_bottleneck: old_entry.map(|(_, c)| c.clone()).unwrap_or_default(),
                new_bottleneck: new_entry.map(|(_, c)| c.clone()).unwrap_or_default(),
                label,
            }
        })
        .collect();
    rows.sort_by(|a, b| {
        b.delta()
            .abs()
            .partial_cmp(&a.delta().abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.label.cmp(&b.label))
    });

    Ok(PredictDiff {
        rows,
        old_bound: doc_f64(old, &["aggregate", "bound"]),
        new_bound: doc_f64(new, &["aggregate", "bound"]),
        old_bottleneck: doc_str(old, &["aggregate", "bottleneck"]).to_owned(),
        new_bottleneck: doc_str(new, &["aggregate", "bottleneck"]).to_owned(),
        old_latency: old_lat,
        new_latency: new_lat,
    })
}

/// Renders a diff: aggregate bound movement, the predicted-bottleneck
/// handoff, and the top per-workload bound changes. A cross-latency
/// comparison (possible only via `--allow-mismatch`) gets a loud warning
/// banner first.
#[must_use]
pub fn render_diff(d: &PredictDiff, old_label: &str, new_label: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "dm-predict diff: {old_label} -> {new_label}");
    if d.old_latency != d.new_latency {
        let _ = writeln!(out, "  {}", "=".repeat(68));
        let _ = writeln!(
            out,
            "  WARNING: read latency differs ({} vs {}) — the bound deltas below\n\
             \x20 conflate memory physics with configuration changes; proceeding\n\
             \x20 because --allow-mismatch was given",
            d.old_latency, d.new_latency
        );
        let _ = writeln!(out, "  {}", "=".repeat(68));
    }
    let _ = writeln!(
        out,
        "  proven utilization bound: {:.3} -> {:.3} ({:+.3})",
        d.old_bound,
        d.new_bound,
        d.new_bound - d.old_bound
    );
    if d.old_bottleneck == d.new_bottleneck {
        let _ = writeln!(
            out,
            "  predicted bottleneck: {} (unchanged)",
            d.new_bottleneck
        );
    } else {
        let _ = writeln!(
            out,
            "  predicted bottleneck: {} -> {}",
            d.old_bottleneck, d.new_bottleneck
        );
    }
    let moved: Vec<&DiffRow> = d
        .rows
        .iter()
        .filter(|r| r.delta() != 0.0 || r.old_bound.is_none() || r.new_bound.is_none())
        .collect();
    if moved.is_empty() {
        let _ = writeln!(out, "  no per-workload bound moved");
        return out;
    }
    let _ = writeln!(out, "  top workload deltas:");
    for row in moved.iter().take(TOP_ROWS) {
        let fmt_bound = |b: Option<f64>| match b {
            Some(b) => format!("{b:.3}"),
            None => "—".to_owned(),
        };
        let handoff = if row.old_bottleneck == row.new_bottleneck {
            String::new()
        } else {
            format!("  [{} -> {}]", row.old_bottleneck, row.new_bottleneck)
        };
        let _ = writeln!(
            out,
            "    {:<34} {:>7} -> {:<7} ({:+.3}){handoff}",
            row.label,
            fmt_bound(row.old_bound),
            fmt_bound(row.new_bound),
            row.delta()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_workloads::GemmSpec;

    fn doc_for_step(step: usize) -> JsonValue {
        let opts = PredictOptions {
            step,
            ..PredictOptions::default()
        };
        let items = vec![(
            format!("GeMM-64|step{step}"),
            Workload::from(GemmSpec::new(64, 64, 64)),
            1,
        )];
        document_for_workloads(&opts, &items).unwrap()
    }

    #[test]
    fn document_is_byte_identical_across_jobs() {
        let items: Vec<(String, Workload, u64)> = (0..3)
            .map(|i| {
                (
                    format!("g{i}"),
                    Workload::from(GemmSpec::new(32, 32, 32)),
                    i,
                )
            })
            .collect();
        let doc = |jobs: usize| {
            let opts = PredictOptions {
                step: 5,
                jobs,
                ..PredictOptions::default()
            };
            document_for_workloads(&opts, &items).unwrap().to_json()
        };
        assert_eq!(doc(1), doc(4), "jobs must not change the bytes");
    }

    #[test]
    fn full_features_are_predicted_near_peak() {
        let doc = doc_for_step(6);
        assert!(doc_f64(&doc, &["aggregate", "bound"]) >= 0.99);
        assert_eq!(doc_str(&doc, &["aggregate", "bottleneck"]), "pe-issue");
        let e = &entries(&doc)[0];
        assert_eq!(doc_u64(e, &["prepass_lb"]), 0, "no pre-passes at step 6");
        assert!(
            matches!(e.get("exhaustive"), Some(JsonValue::Bool(true))),
            "GeMM-64 nests are small enough to walk exhaustively"
        );
        let rendered = render(&doc);
        assert!(rendered.contains("dm-predict: ablation step 6"));
        assert!(rendered.contains("pe-issue"));
    }

    #[test]
    fn step5_to_step6_diff_reports_the_bound_recovery() {
        // The Fig. 7(a) ⑤→⑥ story, statically: FIMA placement (step 5) is
        // provably capped below peak; bank-aware remapping (step 6) lifts
        // the roofline back to near-peak.
        let old = doc_for_step(5);
        let new = doc_for_step(6);
        let b5 = doc_f64(&old, &["aggregate", "bound"]);
        let b6 = doc_f64(&new, &["aggregate", "bound"]);
        assert!(b6 >= b5, "step 6 must not be predicted worse: {b5} vs {b6}");
        let d = diff(&old, &new, false).unwrap();
        assert_eq!(d.new_bottleneck, "pe-issue");
        // Step-suffixed labels must pair across steps: every row carries
        // both sides, none is one-sided.
        assert!(!d.rows.is_empty());
        for row in &d.rows {
            assert!(
                row.old_bound.is_some() && row.new_bound.is_some(),
                "one-sided cross-step row for {}",
                row.label
            );
        }
        let rendered = render_diff(&d, "step5", "step6");
        assert!(rendered.contains("proven utilization bound"));
    }

    #[test]
    fn diff_refuses_schema_and_latency_mismatches() {
        let doc = doc_for_step(6);
        let bogus = JsonValue::object([(
            "schema".to_owned(),
            JsonValue::from("datamaestro-predict-v0"),
        )]);
        let err = diff(&bogus, &doc, false).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");

        let slow = {
            let opts = PredictOptions {
                step: 6,
                read_latency: 4,
                ..PredictOptions::default()
            };
            let items = vec![(
                "GeMM-64|step6".to_owned(),
                Workload::from(GemmSpec::new(64, 64, 64)),
                1,
            )];
            document_for_workloads(&opts, &items).unwrap()
        };
        let err = diff(&doc, &slow, false).unwrap_err();
        assert!(err.contains("read latency differs"), "{err}");
        let d = diff(&doc, &slow, true).unwrap();
        assert_eq!((d.old_latency, d.new_latency), (1, 4));
        let rendered = render_diff(&d, "fast", "slow");
        assert!(rendered.contains("WARNING: read latency differs (1 vs 4)"));
        // The schema refusal is never relaxed.
        let err = diff(&bogus, &doc, true).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
    }

    #[test]
    fn ports_carry_per_bank_period_counts() {
        let doc = doc_for_step(6);
        let e = &entries(&doc)[0];
        let Some(JsonValue::Array(ports)) = e.get("ports") else {
            panic!("entry has no ports array");
        };
        assert_eq!(ports.len(), 4, "A, B, C, OUT");
        for port in ports {
            let period = doc_u64(port, &["period"]);
            assert!(period >= 1);
            let Some(JsonValue::Array(per_bank)) = port.get("per_bank_per_period") else {
                panic!("port has no per_bank_per_period");
            };
            let total: u64 = per_bank.iter().map(|v| v.as_u64().unwrap_or(0)).sum();
            assert_eq!(
                total,
                doc_u64(port, &["requests_per_period"]),
                "per-bank counts must sum to the per-period request count"
            );
        }
    }
}
