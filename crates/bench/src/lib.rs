//! Shared plumbing for the table/figure regeneration binaries.
//!
//! Each binary under `src/bin/` reproduces one table or figure of the
//! paper's evaluation section:
//!
//! | binary  | reproduces |
//! |---------|------------|
//! | `table1` | Table I — feature matrix vs SotA |
//! | `table2` | Table II — design-time / runtime parameters |
//! | `fig7`   | Fig. 7 — ablation utilization box plots + access counts |
//! | `fig8`   | Fig. 8 — FPGA resource utilization |
//! | `fig9`   | Fig. 9 — area and power breakdowns |
//! | `table3` | Table III — real-network GeMM-core utilization |
//! | `fig10`  | Fig. 10 — normalized throughput + data-movement cost vs SotA |
//!
//! Run them with `cargo run -p dm-bench --release --bin <name>`. The
//! harness binaries ride along: `regress` (benchmark regression gate, see
//! [`regress`]), `dm-profile` (causal bottleneck profiler, see
//! [`profile`]), `dm-critical` (critical-path analyzer, see [`critical`]),
//! `dm-predict` (static performance prover, see [`predict`]) and `dm-lint`
//! (static configuration linter, see [`lint`]); their shared `run`/`diff`
//! flag dialect lives in [`cli`].

use std::fs::File;
use std::io::{self, BufWriter, Write};

use dm_sim::{perfetto, JsonValue, Trace};
use dm_system::{run_workload, RunReport, SystemConfig, SystemError};
use dm_workloads::{Workload, WorkloadData};

pub mod cli;
pub mod critical;
pub mod lint;
pub mod predict;
pub mod profile;
pub mod regress;

/// Representative DNN kernels used by the Fig. 10 throughput comparison.
///
/// The mix mirrors the paper's framing: Transformer projection and
/// attention GeMMs, CNN body and stem convolutions, and the strided
/// downsampling layers every system struggles with.
#[must_use]
pub fn representative_kernels() -> Vec<(&'static str, Workload)> {
    use dm_workloads::{ConvSpec, GemmSpec};
    vec![
        ("GeMM-64", GemmSpec::new(64, 64, 64).into()),
        ("GeMM 128x768x768", GemmSpec::new(128, 768, 768).into()),
        ("Attention 128x128x64", GemmSpec::new(128, 128, 64).into()),
        ("tGeMM-64", GemmSpec::transposed(64, 64, 64).into()),
        (
            "Conv3x3 56x56x64",
            ConvSpec::new(58, 58, 64, 64, 3, 3, 1).into(),
        ),
        (
            "Conv3x3/2 down",
            ConvSpec::new(58, 58, 64, 128, 3, 3, 2).into(),
        ),
        (
            "Conv1x1/2 shortcut",
            ConvSpec::new(56, 56, 64, 128, 1, 1, 2).into(),
        ),
        (
            "Conv3x3 stem (cin 8)",
            ConvSpec::new(58, 58, 8, 64, 3, 3, 1).into(),
        ),
    ]
}

/// Runs one workload on the given system without golden checking (the
/// harness runs many large workloads; functional correctness is covered by
/// the test suite on the same code paths).
///
/// # Errors
///
/// Propagates any [`SystemError`] from the simulation.
pub fn measure(
    config: &SystemConfig,
    workload: Workload,
    seed: u64,
) -> Result<RunReport, SystemError> {
    let data = WorkloadData::generate(workload, seed);
    let cfg = SystemConfig {
        check_output: false,
        ..*config
    };
    run_workload(&cfg, &data)
}

/// Command-line options shared by the figure/table binaries.
#[derive(Debug)]
pub struct BenchArgs {
    /// Run a reduced workload subset for a fast smoke pass.
    pub quick: bool,
    /// Worker threads for independent simulated runs (1 = sequential).
    pub jobs: usize,
    /// Append one JSONL metrics snapshot per simulated run to this path.
    pub metrics_out: Option<String>,
    /// Write a Chrome/Perfetto `trace_event` JSON dump of one traced run.
    pub trace_out: Option<String>,
    /// Stamp token-level causal flow events (AGU issue → bank grant →
    /// response delivery) into the `--trace-out` export. Off by default:
    /// flows add one event triple per unique memory request, which large
    /// workloads notice in file size.
    pub flow_events: bool,
    /// Statically lint every configuration before simulating (abort on
    /// error-severity findings).
    pub lint: bool,
    /// Disable idle-cycle elision and run every simulation in lockstep
    /// (results are bit-identical either way; this is the escape hatch and
    /// the baseline side of the perf-smoke comparison).
    pub no_fast_forward: bool,
}

impl Default for BenchArgs {
    fn default() -> Self {
        BenchArgs {
            quick: false,
            jobs: 1,
            metrics_out: None,
            trace_out: None,
            flow_events: false,
            lint: false,
            no_fast_forward: false,
        }
    }
}

impl BenchArgs {
    /// The default system with the CLI's fast-forward choice applied —
    /// simulating binaries start from this instead of
    /// `SystemConfig::default()` so `--no-fast-forward` reaches every run.
    #[must_use]
    pub fn system_config(&self) -> SystemConfig {
        SystemConfig {
            fast_forward: !self.no_fast_forward,
            flow_events: self.flow_events,
            ..SystemConfig::default()
        }
    }
}

/// Parses the standard bench flags: `--quick`, `--jobs <n>`,
/// `--metrics-out <path>`, `--trace-out <path>`, `--flow-events`,
/// `--lint` and `--no-fast-forward`. Exits with status 2 on anything
/// else.
#[must_use]
pub fn parse_args() -> BenchArgs {
    let mut parsed = BenchArgs::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => parsed.quick = true,
            "--lint" => parsed.lint = true,
            "--no-fast-forward" => parsed.no_fast_forward = true,
            "--flow-events" => parsed.flow_events = true,
            "--jobs" => {
                parsed.jobs = args
                    .next()
                    .and_then(|n| n.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage_error("--jobs requires a positive integer"));
            }
            "--metrics-out" => {
                parsed.metrics_out = Some(
                    args.next()
                        .unwrap_or_else(|| usage_error("--metrics-out requires a path argument")),
                );
            }
            "--trace-out" => {
                parsed.trace_out = Some(
                    args.next()
                        .unwrap_or_else(|| usage_error("--trace-out requires a path argument")),
                );
            }
            other => usage_error(&format!("unknown option: {other}")),
        }
    }
    parsed
}

fn usage_error(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!(
        "supported options: --quick, --jobs <n>, --metrics-out <path>, \
         --trace-out <path>, --flow-events, --lint, --no-fast-forward"
    );
    std::process::exit(2);
}

/// Static pre-flight for `--lint`: compiles every `(features, workload)`
/// pair onto the geometry and runs the `dm-analyze` checks before any
/// simulation. Error-severity findings abort the binary (exit 1); warnings
/// and notes are summarized on stderr.
pub fn lint_gate(
    label: &str,
    items: &[(String, dm_compiler::FeatureSet, Workload)],
    mem: &dm_mem::MemConfig,
    depths: dm_compiler::BufferDepths,
) {
    use dm_analyze::Severity;
    let (mut errors, mut warnings, mut free) = (0usize, 0usize, 0usize);
    for (name, features, workload) in items {
        let data = WorkloadData::generate(*workload, 0);
        match dm_compiler::compile(&data, features, mem, true, depths) {
            Ok(program) => {
                let analysis = dm_analyze::analyze_program(&program, mem);
                free += usize::from(analysis.conflict_free);
                for diag in &analysis.report.diagnostics {
                    match diag.severity {
                        Severity::Error => {
                            errors += 1;
                            eprintln!("  lint: {name}: {diag}");
                        }
                        Severity::Warning => warnings += 1,
                        Severity::Info => {}
                    }
                }
            }
            Err(e) => {
                errors += 1;
                eprintln!("  lint: {name}: error[DM-CONFIG] does not compile: {e}");
            }
        }
    }
    eprintln!(
        "lint({label}): {} configuration(s), {free} proven conflict-free, \
         {warnings} warning(s), {errors} error(s)",
        items.len()
    );
    if errors > 0 {
        eprintln!("lint({label}): aborting before simulation");
        std::process::exit(1);
    }
}

/// Maps `work` over `items` on up to `jobs` worker threads, returning the
/// results **in input order**.
///
/// Workers claim items through a shared atomic cursor, so scheduling is
/// dynamic, but each result is tagged with its input index and the final
/// vector is committed in that order — the output is identical to `jobs: 1`
/// regardless of thread interleaving (every simulated run owns its whole
/// `MemorySubsystem`, so runs are independent by construction).
///
/// # Panics
///
/// Re-raises a panic from any worker.
pub fn run_ordered<I, T, F>(items: &[I], jobs: usize, work: F) -> Vec<T>
where
    I: Sync,
    T: Send,
    F: Fn(usize, &I) -> T + Sync,
{
    let jobs = jobs.clamp(1, items.len().max(1));
    if jobs == 1 {
        return items
            .iter()
            .enumerate()
            .map(|(i, item)| work(i, item))
            .collect();
    }
    let cursor = std::sync::atomic::AtomicUsize::new(0);
    let mut tagged: Vec<(usize, T)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..jobs)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        let Some(item) = items.get(i) else {
                            return local;
                        };
                        local.push((i, work(i, item)));
                    }
                })
            })
            .collect();
        for handle in handles {
            tagged.extend(handle.join().expect("bench worker panicked"));
        }
    });
    tagged.sort_unstable_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, result)| result).collect()
}

/// Honours the shared CLI contract in analytic-only binaries (no simulated
/// runs): `--metrics-out` still produces a (necessarily empty) JSONL file
/// so downstream tooling sees a uniform interface, and `--trace-out` warns
/// that there is nothing to trace.
pub fn note_analytic_only(args: &BenchArgs) {
    if let Some(path) = args.metrics_out.as_deref() {
        MetricsLog::create(Some(path))
            .and_then(MetricsLog::finish)
            .unwrap_or_else(|e| panic!("opening metrics log: {e}"));
        eprintln!("note: no simulated runs in this binary; wrote empty metrics log to {path}");
    }
    if args.trace_out.is_some() {
        eprintln!("note: --trace-out ignored: no simulated runs in this binary");
    }
}

/// Streaming JSONL sink for per-run metric snapshots.
///
/// Each [`record`](Self::record) call appends one line of the form
/// `{"label": "...", "metrics": {"system.compute_cycles": ..., ...}}` with
/// the registry flattened to dotted component paths. When constructed
/// without a path every call is a no-op, so binaries can log
/// unconditionally.
pub struct MetricsLog {
    out: Option<BufWriter<File>>,
}

impl MetricsLog {
    /// Opens the sink, truncating any existing file; `None` disables it.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error if the file cannot be created.
    pub fn create(path: Option<&str>) -> io::Result<Self> {
        let out = match path {
            Some(p) => Some(BufWriter::new(File::create(p)?)),
            None => None,
        };
        Ok(Self { out })
    }

    /// Appends the report's metric snapshot as one JSONL line.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error from the underlying writer.
    pub fn record(&mut self, label: &str, report: &RunReport) -> io::Result<()> {
        let Some(out) = &mut self.out else {
            return Ok(());
        };
        let line = JsonValue::object([
            ("label".to_owned(), JsonValue::from(label)),
            ("metrics".to_owned(), report.metrics.to_json()),
        ]);
        writeln!(out, "{}", line.to_json())
    }

    /// Flushes and closes the sink.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error from the final flush.
    pub fn finish(mut self) -> io::Result<()> {
        if let Some(out) = &mut self.out {
            out.flush()?;
        }
        Ok(())
    }
}

/// Writes captured component traces as a Chrome/Perfetto `trace_event`
/// JSON file (load it at `ui.perfetto.dev` or `chrome://tracing`).
///
/// # Errors
///
/// Propagates the I/O error if the file cannot be written.
pub fn write_trace(path: &str, traces: &[(String, Trace)]) -> io::Result<()> {
    std::fs::write(path, perfetto::chrome_trace_json(traces))
}

/// Formats a ratio as a percentage with two decimals.
#[must_use]
pub fn pct(x: f64) -> String {
    format!("{:.2}%", 100.0 * x)
}

/// Prints a horizontal rule sized for the standard table width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_cover_all_groups() {
        use dm_workloads::WorkloadGroup;
        let kernels = representative_kernels();
        assert!(kernels.len() >= 6);
        for group in [
            WorkloadGroup::Gemm,
            WorkloadGroup::TransposedGemm,
            WorkloadGroup::Conv,
        ] {
            assert!(
                kernels.iter().any(|(_, w)| w.group() == group),
                "missing {group}"
            );
        }
    }

    #[test]
    fn measure_runs_without_check() {
        use dm_workloads::GemmSpec;
        let report = measure(
            &SystemConfig::default(),
            GemmSpec::new(16, 16, 16).into(),
            1,
        )
        .unwrap();
        assert!(!report.checked);
        assert!(report.utilization() > 0.5);
    }

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.12345), "12.35%");
        assert_eq!(pct(1.0), "100.00%");
    }

    #[test]
    fn run_ordered_commits_results_in_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let square = |i: usize, &x: &usize| {
            assert_eq!(i, x);
            x * x
        };
        let sequential = run_ordered(&items, 1, square);
        for jobs in [2, 3, 8, 200] {
            assert_eq!(run_ordered(&items, jobs, square), sequential, "jobs={jobs}");
        }
        assert!(run_ordered(&[] as &[usize], 4, square).is_empty());
    }

    #[test]
    fn run_ordered_simulated_runs_are_byte_identical_across_jobs() {
        use dm_workloads::GemmSpec;
        let specs = [
            GemmSpec::new(16, 16, 16),
            GemmSpec::new(16, 32, 16),
            GemmSpec::new(32, 16, 16),
        ];
        let entries = |jobs: usize| -> Vec<String> {
            run_ordered(&specs, jobs, |i, &spec| {
                let report = measure(&SystemConfig::default(), spec.into(), i as u64).unwrap();
                regress::entry_json(&format!("g{i}"), &report).to_json()
            })
        };
        assert_eq!(entries(1), entries(3));
    }
}
