//! The benchmark regression harness behind the `regress` binary.
//!
//! `regress run` executes a fixed suite of simulated workloads (a subset of
//! the Fig. 7 ablation plus the Table III ResNet-18 layers by default) and
//! emits one canonical `BENCH_<name>.json` document. The `suites` subtree
//! is fully deterministic — identical code and configuration produce a
//! byte-identical subtree — while the `host` section carries wall-clock
//! throughput of the simulator itself and is ignored by comparisons.
//!
//! `regress diff old.json new.json` compares two documents entry by entry
//! and exits non-zero when utilization drops or tail latency inflates
//! beyond the tolerance, making it suitable as a CI gate against a
//! committed baseline (`BENCH_seed.json`).

use dm_compiler::FeatureSet;
use dm_sim::{JsonValue, MetricValue};
use dm_system::{RunReport, SystemConfig, SystemError};
use dm_workloads::{synthetic_suite, table3_models};

/// Document format identifier; bumped when the layout changes
/// incompatibly. `diff` refuses to compare documents across schemas.
///
/// History: `v1` carried label/fingerprint/utilization/cycles/conflicts/
/// accesses/latency/fifo_high_water per entry; `v2` added the causal
/// `blame` subtree (per-phase, per-cause, per-component stall charges);
/// `v3` added the `critical` subtree (critical-path composition and
/// what-if projections).
pub const SCHEMA: &str = "datamaestro-bench-v3";

/// Relative tolerance used by `diff` when none is given: 1 %.
pub const DEFAULT_THRESHOLD: f64 = 0.01;

/// Throughput floor used by `guard` when none is given: the fast-forward
/// run must reach at least 0.9x the lockstep run's cycles/sec per suite.
pub const DEFAULT_GUARD_RATIO: f64 = 0.9;

/// Absolute slack (cycles) added on top of the relative latency
/// tolerance, so 2-cycle p99s don't fail on a 1-cycle wobble.
const LATENCY_SLACK_CYCLES: u64 = 2;

fn counter(report: &RunReport, path: &str) -> u64 {
    match report.metrics.get(path) {
        Some(MetricValue::Counter(n)) => n,
        Some(MetricValue::Gauge(g)) => g as u64,
        None => 0,
    }
}

/// The `{p50,p90,p99,max}` object for one end-to-end latency component.
fn latency_json(report: &RunReport, component: &str) -> JsonValue {
    JsonValue::object(["p50", "p90", "p99", "max"].into_iter().map(|p| {
        (
            p.to_owned(),
            JsonValue::from(counter(report, &format!("mem.latency.{component}.{p}"))),
        )
    }))
}

/// Highest per-cycle FIFO occupancy seen by any streamer during the run.
fn fifo_high_water(report: &RunReport) -> u64 {
    ["A", "B", "C", "OUT"]
        .into_iter()
        .map(|s| counter(report, &format!("streamer.{s}.fifo_occupancy.max")))
        .max()
        .unwrap_or(0)
}

/// One suite entry: the headline numbers of a single simulated run, plus
/// the provenance fingerprint that makes cross-commit comparison sound.
#[must_use]
pub fn entry_json(label: &str, report: &RunReport) -> JsonValue {
    JsonValue::object([
        ("label".to_owned(), JsonValue::from(label)),
        (
            "fingerprint".to_owned(),
            JsonValue::from(report.provenance.fingerprint.as_str()),
        ),
        (
            "utilization".to_owned(),
            JsonValue::from(report.utilization()),
        ),
        ("cycles".to_owned(), JsonValue::from(report.total_cycles())),
        ("conflicts".to_owned(), JsonValue::from(report.conflicts)),
        ("accesses".to_owned(), JsonValue::from(report.accesses())),
        (
            "latency".to_owned(),
            JsonValue::object([
                ("queueing".to_owned(), latency_json(report, "queueing")),
                ("service".to_owned(), latency_json(report, "service")),
                ("end_to_end".to_owned(), latency_json(report, "end_to_end")),
            ]),
        ),
        (
            "fifo_high_water".to_owned(),
            JsonValue::from(fifo_high_water(report)),
        ),
        ("blame".to_owned(), report.blame.to_json()),
        ("critical".to_owned(), report.critical.to_json()),
    ])
}

/// Wall-clock throughput of one benchmark suite: how many simulated cycles
/// the host retired per second while producing the suite's entries. Lives
/// in the non-compared `host` section; `guard` uses it to verify that the
/// fast-forward engine actually pays for itself.
#[derive(Debug, Clone)]
pub struct SuiteHost {
    /// Suite name (`fig7`, `table3`).
    pub suite: String,
    /// Total simulated cycles across the suite's entries.
    pub cycles: u64,
    /// Host wall-clock spent producing the suite, in nanoseconds.
    pub wall_ns: u64,
}

impl SuiteHost {
    /// Simulated cycles retired per host second.
    #[must_use]
    pub fn cycles_per_sec(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.cycles as f64 * 1e9 / self.wall_ns as f64
        }
    }

    /// Serializes to the `host.suites[]` entry format.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("suite".to_owned(), JsonValue::from(self.suite.as_str())),
            ("cycles".to_owned(), JsonValue::from(self.cycles)),
            ("wall_ns".to_owned(), JsonValue::from(self.wall_ns)),
            (
                "cycles_per_sec".to_owned(),
                JsonValue::from(self.cycles_per_sec()),
            ),
        ])
    }
}

fn suite_cycles(entries: &[JsonValue]) -> u64 {
    entries
        .iter()
        .filter_map(|e| e.get("cycles").and_then(JsonValue::as_u64))
        .sum()
}

/// Runs the benchmark suites and returns `(suite name, entries)` pairs plus
/// per-suite host throughput figures.
///
/// The default (quick) selection keeps a CI pass under a minute: every 5th
/// synthetic workload through all six ablation steps, plus the ResNet-18
/// layers. `full` runs the complete Fig. 7 suite and all Table III models.
///
/// `jobs` spreads the independent runs over that many worker threads; the
/// suite entries are committed in input order, so the resulting document is
/// byte-identical regardless of the thread count. `fast_forward` toggles
/// idle-cycle elision; by construction it cannot change any entry, only the
/// host throughput.
///
/// # Errors
///
/// Propagates the first (in suite order) [`SystemError`] from any run.
#[allow(clippy::type_complexity)]
pub fn run_suites(
    full: bool,
    jobs: usize,
    fast_forward: bool,
    mut progress: impl FnMut(&str),
) -> Result<(Vec<(String, Vec<JsonValue>)>, Vec<SuiteHost>), SystemError> {
    // Fig. 7 ablation slice: label and seed derive from the position in the
    // *unfiltered* suite so quick and full runs agree on shared entries.
    let suite = synthetic_suite();
    let picked: Vec<_> = suite
        .iter()
        .enumerate()
        .filter(|(i, _)| full || i % 5 == 0)
        .collect();
    progress(&format!(
        "fig7: {} workloads x 6 ablation steps ({jobs} jobs)",
        picked.len()
    ));
    // One work item = one workload through all six ablation steps.
    let fig7_start = std::time::Instant::now();
    let fig7: Vec<JsonValue> = crate::run_ordered(&picked, jobs, |_, (idx, workload)| {
        (1..=6)
            .map(|step| {
                let cfg = SystemConfig {
                    fast_forward,
                    ..SystemConfig::default().with_features(FeatureSet::ablation_step(step))
                };
                let report = crate::measure(&cfg, **workload, *idx as u64)?;
                Ok(entry_json(&format!("{workload}|step{step}"), &report))
            })
            .collect::<Result<Vec<_>, SystemError>>()
    })
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?
    .into_iter()
    .flatten()
    .collect();
    let fig7_wall_ns = u64::try_from(fig7_start.elapsed().as_nanos()).unwrap_or(u64::MAX);

    // Table III layer sweep on the fully featured system.
    let mut layers = Vec::new();
    for model in table3_models() {
        if !full && model.name != "ResNet-18" {
            continue;
        }
        progress(&format!("table3: {}", model.name));
        for (i, layer) in model.layers.iter().enumerate() {
            layers.push((format!("{}/{}", model.name, layer.name), layer.workload, i));
        }
    }
    let table3_start = std::time::Instant::now();
    let table3: Vec<JsonValue> = crate::run_ordered(&layers, jobs, |_, (label, workload, seed)| {
        let cfg = SystemConfig {
            fast_forward,
            ..SystemConfig::default()
        };
        let report = crate::measure(&cfg, *workload, *seed as u64)?;
        Ok::<_, SystemError>(entry_json(label, &report))
    })
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;
    let table3_wall_ns = u64::try_from(table3_start.elapsed().as_nanos()).unwrap_or(u64::MAX);

    let host = vec![
        SuiteHost {
            suite: "fig7".to_owned(),
            cycles: suite_cycles(&fig7),
            wall_ns: fig7_wall_ns,
        },
        SuiteHost {
            suite: "table3".to_owned(),
            cycles: suite_cycles(&table3),
            wall_ns: table3_wall_ns,
        },
    ];
    Ok((
        vec![("fig7".to_owned(), fig7), ("table3".to_owned(), table3)],
        host,
    ))
}

/// Deep-dive telemetry of one representative run (fully featured GeMM-64):
/// every per-bank / per-requester latency percentile and per-channel FIFO
/// occupancy metric, as a flat path-keyed object.
///
/// # Errors
///
/// Propagates the [`SystemError`] from the run.
pub fn detail_json(fast_forward: bool) -> Result<JsonValue, SystemError> {
    let report = crate::measure(
        &SystemConfig {
            fast_forward,
            ..SystemConfig::default()
        },
        dm_workloads::GemmSpec::new(64, 64, 64).into(),
        0,
    )?;
    let metrics = JsonValue::Object(
        report
            .metrics
            .iter()
            .filter(|(path, _)| path.contains(".latency.") || path.contains("fifo_occupancy"))
            .map(|(path, v)| {
                let value = match v {
                    MetricValue::Counter(n) => JsonValue::from(n),
                    MetricValue::Gauge(g) => JsonValue::from(g),
                };
                (path.to_owned(), value)
            })
            .collect(),
    );
    Ok(JsonValue::object([
        ("label".to_owned(), JsonValue::from("GeMM-64|step6")),
        (
            "fingerprint".to_owned(),
            JsonValue::from(report.provenance.fingerprint.as_str()),
        ),
        ("metrics".to_owned(), metrics),
    ]))
}

/// Host-throughput section: wall-clock phase timings of a fully featured
/// GeMM-64 run. Non-deterministic by nature; `diff` ignores it.
///
/// # Errors
///
/// Propagates the [`SystemError`] from the run.
pub fn host_json(fast_forward: bool, suites: &[SuiteHost]) -> Result<JsonValue, SystemError> {
    let cfg = SystemConfig {
        time_phases: true,
        fast_forward,
        ..SystemConfig::default()
    };
    let report = crate::measure(&cfg, dm_workloads::GemmSpec::new(64, 64, 64).into(), 0)?;
    let host = report.host.expect("time_phases was set");
    Ok(JsonValue::object([
        ("workload".to_owned(), JsonValue::from("GeMM-64|step6")),
        ("fast_forward".to_owned(), JsonValue::from(fast_forward)),
        (
            "streamers_ns".to_owned(),
            JsonValue::from(host.streamers_ns),
        ),
        ("memory_ns".to_owned(), JsonValue::from(host.memory_ns)),
        ("pe_ns".to_owned(), JsonValue::from(host.pe_ns)),
        (
            "fastforward_ns".to_owned(),
            JsonValue::from(host.fastforward_ns),
        ),
        (
            "compute_loop_ns".to_owned(),
            JsonValue::from(host.compute_loop_ns),
        ),
        ("cycles".to_owned(), JsonValue::from(host.cycles)),
        (
            "cycles_per_sec".to_owned(),
            JsonValue::from(host.cycles_per_sec()),
        ),
        (
            "suites".to_owned(),
            JsonValue::Array(suites.iter().map(SuiteHost::to_json).collect()),
        ),
    ]))
}

/// Builds the complete benchmark document.
///
/// With `with_host` false the whole document is deterministic and
/// byte-for-byte reproducible — for any `jobs` count — which is how
/// `BENCH_seed.json` baselines are generated.
///
/// # Errors
///
/// Propagates the first [`SystemError`] from any run.
pub fn bench_document(
    full: bool,
    with_host: bool,
    jobs: usize,
    fast_forward: bool,
    progress: impl FnMut(&str),
) -> Result<JsonValue, SystemError> {
    let (suites, suite_host) = run_suites(full, jobs, fast_forward, progress)?;
    let mut fields = vec![
        ("schema".to_owned(), JsonValue::from(SCHEMA)),
        (
            "crate_version".to_owned(),
            JsonValue::from(env!("CARGO_PKG_VERSION")),
        ),
        (
            "mode".to_owned(),
            JsonValue::from(if full { "full" } else { "quick" }),
        ),
        (
            "suites".to_owned(),
            JsonValue::object(
                suites
                    .into_iter()
                    .map(|(name, entries)| (name, JsonValue::Array(entries))),
            ),
        ),
        ("detail".to_owned(), detail_json(fast_forward)?),
    ];
    if with_host {
        fields.push(("host".to_owned(), host_json(fast_forward, &suite_host)?));
    }
    Ok(JsonValue::object(fields))
}

/// The outcome of comparing two benchmark documents.
#[derive(Debug, Default)]
pub struct DiffOutcome {
    /// Entries compared across both documents.
    pub compared: usize,
    /// Human-readable regression descriptions; empty means the new run is
    /// within tolerance of the old one.
    pub failures: Vec<String>,
}

impl DiffOutcome {
    /// `true` when no regression was detected.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

fn entry_label(entry: &JsonValue) -> &str {
    entry
        .get("label")
        .and_then(JsonValue::as_str)
        .unwrap_or("<unlabelled>")
}

fn entry_f64(entry: &JsonValue, key: &str) -> f64 {
    entry.get(key).and_then(JsonValue::as_f64).unwrap_or(0.0)
}

fn entry_p99(entry: &JsonValue, component: &str) -> u64 {
    entry
        .get("latency")
        .and_then(|l| l.get(component))
        .and_then(|c| c.get("p99"))
        .and_then(JsonValue::as_u64)
        .unwrap_or(0)
}

/// Compares `new` against the `old` baseline with a relative `threshold`
/// (fraction, e.g. `0.01` for 1 %).
///
/// Checks, per suite entry matched by label:
///
/// * provenance fingerprints agree (otherwise the configurations differ
///   and the comparison would be meaningless);
/// * utilization has not dropped by more than `threshold` relative;
/// * queueing and end-to-end p99 latency have not inflated by more than
///   `threshold` relative plus a small absolute slack.
///
/// Entries present on only one side fail the diff (suite drift requires a
/// baseline refresh). The `host` section is never compared.
#[must_use]
pub fn diff(old: &JsonValue, new: &JsonValue, threshold: f64) -> DiffOutcome {
    let mut out = DiffOutcome::default();
    let schema = |doc: &JsonValue| {
        doc.get("schema")
            .and_then(JsonValue::as_str)
            .unwrap_or("<missing>")
            .to_owned()
    };
    let (old_schema, new_schema) = (schema(old), schema(new));
    if old_schema != SCHEMA || new_schema != SCHEMA {
        out.failures.push(format!(
            "schema mismatch: baseline '{old_schema}', new '{new_schema}', expected '{SCHEMA}'; \
             regenerate the baseline with `regress run --no-host` after a deliberate format bump"
        ));
        return out;
    }

    let empty: &[(String, JsonValue)] = &[];
    let old_suites = old
        .get("suites")
        .and_then(JsonValue::as_object)
        .unwrap_or(empty);
    let new_suites = new
        .get("suites")
        .and_then(JsonValue::as_object)
        .unwrap_or(empty);
    for (suite, old_entries) in old_suites {
        let Some(new_entries) = new_suites
            .iter()
            .find(|(name, _)| name == suite)
            .and_then(|(_, v)| v.as_array())
        else {
            out.failures
                .push(format!("suite '{suite}' missing from new document"));
            continue;
        };
        let old_entries = old_entries.as_array().unwrap_or(&[]);
        for old_entry in old_entries {
            let label = entry_label(old_entry);
            let Some(new_entry) = new_entries.iter().find(|e| entry_label(e) == label) else {
                out.failures
                    .push(format!("{suite}/{label}: missing from new document"));
                continue;
            };
            out.compared += 1;
            compare_entry(suite, label, old_entry, new_entry, threshold, &mut out);
        }
        // Entries only the new side has mean the suite definition changed;
        // the baseline must be refreshed deliberately, not silently.
        for new_entry in new_entries {
            let label = entry_label(new_entry);
            if !old_entries.iter().any(|e| entry_label(e) == label) {
                out.failures
                    .push(format!("{suite}/{label}: not present in baseline"));
            }
        }
    }
    out
}

fn compare_entry(
    suite: &str,
    label: &str,
    old: &JsonValue,
    new: &JsonValue,
    threshold: f64,
    out: &mut DiffOutcome,
) {
    let old_fp = old.get("fingerprint").and_then(JsonValue::as_str);
    let new_fp = new.get("fingerprint").and_then(JsonValue::as_str);
    if old_fp != new_fp {
        out.failures.push(format!(
            "{suite}/{label}: provenance fingerprint changed ({} -> {}); \
             the configurations are not comparable",
            old_fp.unwrap_or("?"),
            new_fp.unwrap_or("?")
        ));
        return;
    }
    let old_util = entry_f64(old, "utilization");
    let new_util = entry_f64(new, "utilization");
    if new_util < old_util * (1.0 - threshold) {
        out.failures.push(format!(
            "{suite}/{label}: utilization dropped {:.4} -> {:.4} ({:.2}% > {:.2}% tolerance)",
            old_util,
            new_util,
            100.0 * (old_util - new_util) / old_util,
            100.0 * threshold
        ));
    }
    for component in ["queueing", "end_to_end"] {
        let old_p99 = entry_p99(old, component);
        let new_p99 = entry_p99(new, component);
        let limit = (old_p99 as f64 * (1.0 + threshold)) as u64 + LATENCY_SLACK_CYCLES;
        if new_p99 > limit {
            out.failures.push(format!(
                "{suite}/{label}: {component} p99 inflated {old_p99} -> {new_p99} cycles \
                 (limit {limit})"
            ));
        }
    }
}

/// The outcome of `regress guard`: the fast-forward engine must change no
/// simulated number and must not make the simulator meaningfully slower.
#[derive(Debug, Default)]
pub struct GuardOutcome {
    /// Per-suite throughput ratio (fast-forward / lockstep).
    pub ratios: Vec<(String, f64)>,
    /// Human-readable violations; empty means the guard passed.
    pub failures: Vec<String>,
}

impl GuardOutcome {
    /// `true` when the fast-forward run is both bit-identical and fast
    /// enough.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

fn host_suites(doc: &JsonValue) -> Vec<(String, f64)> {
    doc.get("host")
        .and_then(|h| h.get("suites"))
        .and_then(JsonValue::as_array)
        .map(|arr| {
            arr.iter()
                .filter_map(|e| {
                    Some((
                        e.get("suite")?.as_str()?.to_owned(),
                        e.get("cycles_per_sec")?.as_f64()?,
                    ))
                })
                .collect()
        })
        .unwrap_or_default()
}

/// Compares a fast-forward benchmark document against a lockstep one.
///
/// Two gates:
///
/// * every deterministic subtree (`suites`, `detail`) must be
///   byte-identical — idle-cycle elision is only legal if it changes no
///   simulated observable;
/// * per suite, the fast-forward run's `host.suites[].cycles_per_sec` must
///   be at least `min_ratio` times the lockstep run's (the engine must not
///   cost more than it saves, even on workloads with nothing to elide).
#[must_use]
pub fn guard(ff: &JsonValue, lockstep: &JsonValue, min_ratio: f64) -> GuardOutcome {
    let mut out = GuardOutcome::default();
    for key in ["suites", "detail"] {
        let a = ff.get(key).map(JsonValue::to_json);
        let b = lockstep.get(key).map(JsonValue::to_json);
        if a != b {
            out.failures.push(format!(
                "'{key}' subtree differs between the fast-forward and lockstep runs; \
                 idle-cycle elision changed a simulated result"
            ));
        }
    }
    let ff_host = host_suites(ff);
    let ls_host = host_suites(lockstep);
    if ff_host.is_empty() {
        out.failures.push(
            "fast-forward document has no host.suites timing (was it run with --no-host?)"
                .to_owned(),
        );
    }
    for (suite, ff_cps) in &ff_host {
        let Some((_, ls_cps)) = ls_host.iter().find(|(s, _)| s == suite) else {
            out.failures
                .push(format!("suite '{suite}' missing from lockstep host timing"));
            continue;
        };
        let ratio = if *ls_cps > 0.0 { ff_cps / ls_cps } else { 0.0 };
        out.ratios.push((suite.clone(), ratio));
        if ratio < min_ratio {
            out.failures.push(format!(
                "suite '{suite}': fast-forward retires {ff_cps:.0} cycles/s, only {ratio:.2}x \
                 the lockstep {ls_cps:.0} cycles/s (floor {min_ratio:.2}x)"
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_workloads::GemmSpec;

    fn doc_with(entries: Vec<JsonValue>) -> JsonValue {
        JsonValue::object([
            ("schema".to_owned(), JsonValue::from(SCHEMA)),
            (
                "suites".to_owned(),
                JsonValue::object([("s".to_owned(), JsonValue::Array(entries))]),
            ),
        ])
    }

    fn measured(step: usize) -> RunReport {
        let cfg = SystemConfig::default().with_features(FeatureSet::ablation_step(step));
        crate::measure(&cfg, GemmSpec::new(64, 64, 64).into(), 1).unwrap()
    }

    #[test]
    fn entry_captures_headline_numbers_and_provenance() {
        let report = measured(6);
        let entry = entry_json("g64", &report);
        assert_eq!(entry.get("label").unwrap().as_str().unwrap(), "g64");
        assert_eq!(
            entry.get("fingerprint").unwrap().as_str().unwrap(),
            report.provenance.fingerprint
        );
        assert!(entry.get("utilization").unwrap().as_f64().unwrap() > 0.9);
        assert!(entry.get("fifo_high_water").unwrap().as_u64().unwrap() > 0);
        let blame = entry.get("blame").expect("v2 entries carry blame");
        assert!(blame.get("phases").is_some());
        assert!(blame.get("total").is_some());
        let critical = entry.get("critical").expect("v3 entries carry critical");
        assert!(critical.get("composition").is_some());
        assert!(critical.get("what_ifs").is_some());
        let p99 = entry
            .get("latency")
            .unwrap()
            .get("end_to_end")
            .unwrap()
            .get("p99")
            .unwrap()
            .as_u64()
            .unwrap();
        assert!(p99 >= 1, "reads take at least one cycle, got {p99}");
    }

    #[test]
    fn first_fig7_point_matches_committed_seed_baseline() {
        // Re-simulate the first fig7 suite point exactly as `regress run`
        // does and require the resulting entry — fingerprint and every
        // metric — to be byte-identical to the committed baseline. This
        // pins the cycle kernel's behaviour to the seed: performance
        // rewrites must not change what is simulated.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_seed.json");
        let text = std::fs::read_to_string(path).expect("committed baseline");
        let baseline = JsonValue::parse(&text).expect("valid JSON");
        let expected = baseline
            .get("suites")
            .and_then(|s| s.get("fig7"))
            .and_then(JsonValue::as_array)
            .and_then(<[_]>::first)
            .expect("fig7 suite has entries");

        let workload = dm_workloads::synthetic_suite()[0];
        let cfg = SystemConfig::default().with_features(FeatureSet::ablation_step(1));
        let report = crate::measure(&cfg, workload, 0).unwrap();
        let entry = entry_json(&format!("{workload}|step1"), &report);
        assert_eq!(entry.to_json(), expected.to_json());
    }

    #[test]
    fn every_unique_submission_retires_exactly_once() {
        // Telemetry invariant behind the submissions/resubmissions split:
        // after a drained run, the unique-request counter must equal the
        // number of operations the banks actually performed.
        let report = measured(6);
        let counter = |path: &str| super::counter(&report, path);
        let submissions = counter("mem.submissions");
        assert!(submissions > 0);
        assert_eq!(submissions, counter("mem.reads") + counter("mem.writes"));
        // Retries are tracked separately and never leak into the unique
        // count; FIMA placement (step 5) is conflict-heavy enough that the
        // distinction is exercised, not vacuous.
        let conflicted = measured(5);
        let c = |path: &str| super::counter(&conflicted, path);
        assert!(c("mem.resubmissions") > 0, "step 5 must see retries");
        assert_eq!(c("mem.submissions"), c("mem.reads") + c("mem.writes"));
    }

    #[test]
    fn identical_runs_diff_clean_and_byte_identical() {
        let a = entry_json("g64", &measured(6));
        let b = entry_json("g64", &measured(6));
        assert_eq!(a.to_json(), b.to_json(), "suite entries are deterministic");
        let outcome = diff(&doc_with(vec![a]), &doc_with(vec![b]), DEFAULT_THRESHOLD);
        assert!(outcome.passed(), "{:?}", outcome.failures);
        assert_eq!(outcome.compared, 1);
    }

    /// Replaces one top-level field of an entry object.
    fn with_field(entry: &JsonValue, key: &str, value: JsonValue) -> JsonValue {
        let JsonValue::Object(pairs) = entry else {
            panic!()
        };
        JsonValue::Object(
            pairs
                .iter()
                .map(|(k, v)| {
                    if k == key {
                        (k.clone(), value.clone())
                    } else {
                        (k.clone(), v.clone())
                    }
                })
                .collect(),
        )
    }

    #[test]
    fn degraded_config_fails_the_diff() {
        // FIMA placement (step 5) on GeMM-64 is the canonical conflict-heavy
        // degradation: utilization collapses. The fingerprints differ (it IS
        // a different config), which is itself a failure — and with the
        // fingerprint forged equal, the utilization gate fires.
        let good = entry_json("g64", &measured(6));
        let bad = entry_json("g64", &measured(5));
        let outcome = diff(
            &doc_with(vec![good.clone()]),
            &doc_with(vec![bad.clone()]),
            DEFAULT_THRESHOLD,
        );
        assert!(!outcome.passed());
        assert!(outcome.failures[0].contains("fingerprint"));

        let fp = good.get("fingerprint").unwrap().clone();
        let forged = with_field(&bad, "fingerprint", fp);
        let outcome = diff(
            &doc_with(vec![good]),
            &doc_with(vec![forged]),
            DEFAULT_THRESHOLD,
        );
        assert!(!outcome.passed());
        assert!(
            outcome.failures.iter().any(|f| f.contains("utilization")),
            "{:?}",
            outcome.failures
        );
    }

    #[test]
    fn latency_inflation_fails_the_diff() {
        // Same config, same utilization, but the tail latency blew up — the
        // p99 gate must catch it even when utilization stays flat.
        let good = entry_json("g64", &measured(6));
        let inflated = JsonValue::object(["queueing", "service", "end_to_end"].map(|c| {
            (
                c.to_owned(),
                JsonValue::object(["p50", "p90", "p99", "max"].map(|p| {
                    let old = good
                        .get("latency")
                        .and_then(|l| l.get(c))
                        .and_then(|v| v.get(p))
                        .and_then(JsonValue::as_u64)
                        .unwrap();
                    (p.to_owned(), JsonValue::from(old * 10 + 100))
                })),
            )
        }));
        let bad = with_field(&good, "latency", inflated);
        let outcome = diff(
            &doc_with(vec![good]),
            &doc_with(vec![bad]),
            DEFAULT_THRESHOLD,
        );
        assert!(!outcome.passed());
        assert!(
            outcome.failures.iter().any(|f| f.contains("p99")),
            "{:?}",
            outcome.failures
        );
    }

    #[test]
    fn label_drift_fails_both_directions() {
        let entry = entry_json("g64", &measured(6));
        let renamed = entry_json("other", &measured(6));
        let outcome = diff(
            &doc_with(vec![entry]),
            &doc_with(vec![renamed]),
            DEFAULT_THRESHOLD,
        );
        assert_eq!(outcome.failures.len(), 2, "{:?}", outcome.failures);
        assert!(outcome.failures[0].contains("missing from new document"));
        assert!(outcome.failures[1].contains("not present in baseline"));
    }

    fn guard_doc(util: f64, cps: f64) -> JsonValue {
        let entry = JsonValue::object([
            ("label".to_owned(), JsonValue::from("w")),
            ("utilization".to_owned(), JsonValue::from(util)),
        ]);
        let host_entry = SuiteHost {
            suite: "s".to_owned(),
            cycles: 1_000_000,
            wall_ns: (1e9 * 1_000_000.0 / cps) as u64,
        };
        JsonValue::object([
            ("schema".to_owned(), JsonValue::from(SCHEMA)),
            (
                "suites".to_owned(),
                JsonValue::object([("s".to_owned(), JsonValue::Array(vec![entry]))]),
            ),
            (
                "host".to_owned(),
                JsonValue::object([(
                    "suites".to_owned(),
                    JsonValue::Array(vec![host_entry.to_json()]),
                )]),
            ),
        ])
    }

    #[test]
    fn guard_accepts_identical_results_at_equal_speed() {
        let outcome = guard(
            &guard_doc(0.9, 4e6),
            &guard_doc(0.9, 4e6),
            DEFAULT_GUARD_RATIO,
        );
        assert!(outcome.passed(), "{:?}", outcome.failures);
        assert_eq!(outcome.ratios, vec![("s".to_owned(), 1.0)]);
    }

    #[test]
    fn guard_rejects_simulated_drift() {
        // A fast-forward run that changes any simulated number is a
        // correctness bug regardless of how fast it is.
        let outcome = guard(
            &guard_doc(0.8, 8e6),
            &guard_doc(0.9, 4e6),
            DEFAULT_GUARD_RATIO,
        );
        assert!(!outcome.passed());
        assert!(outcome.failures[0].contains("'suites' subtree differs"));
    }

    #[test]
    fn guard_rejects_a_slowdown_below_the_floor() {
        let outcome = guard(
            &guard_doc(0.9, 2e6),
            &guard_doc(0.9, 4e6),
            DEFAULT_GUARD_RATIO,
        );
        assert!(!outcome.passed());
        assert!(
            outcome.failures.iter().any(|f| f.contains("floor")),
            "{:?}",
            outcome.failures
        );
        assert!((outcome.ratios[0].1 - 0.5).abs() < 0.05);
    }

    #[test]
    fn guard_requires_host_timing() {
        let mut no_host = guard_doc(0.9, 4e6);
        if let JsonValue::Object(fields) = &mut no_host {
            fields.retain(|(k, _)| k != "host");
        }
        let outcome = guard(&no_host, &guard_doc(0.9, 4e6), DEFAULT_GUARD_RATIO);
        assert!(!outcome.passed());
        assert!(outcome.failures[0].contains("host.suites"));
    }

    #[test]
    fn schema_mismatch_refuses_comparison() {
        let doc = doc_with(vec![]);
        let bogus = JsonValue::object([("schema".to_owned(), JsonValue::from("v0"))]);
        let outcome = diff(&bogus, &doc, DEFAULT_THRESHOLD);
        assert!(!outcome.passed());
        assert!(outcome.failures[0].contains("schema mismatch"));
    }
}
