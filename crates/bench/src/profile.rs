//! The causal bottleneck profiler behind the `dm-profile` binary.
//!
//! `profile run` simulates the Fig. 7 ablation slice at one feature step,
//! merges every run's [`BlameProfile`] and emits one canonical profile
//! document: which *component instances* (banks, AGUs, sync gates, the
//! writeback flush) the machine spent its stalled cycles waiting on, split
//! by fill/steady/drain phase. `profile diff` compares two documents —
//! typically adjacent ablation steps — and names the dominant shift, e.g.
//! the collapse of bank-conflict blame when going from FIMA placement
//! (step ⑤) to bank-aware remapping (step ⑥).
//!
//! Every run is re-checked against the conservation contract in release
//! builds: the blame tree must charge exactly the stalls the
//! [`dm_sim::StallAttribution`] counted, per cause and per port, and the fire count
//! must match `active_cycles`. A violation is a hard error (non-zero exit
//! from the CLI), not a warning — a profiler that loses cycles is lying.
//!
//! The document deliberately excludes anything host- or scheduling-
//! dependent: the same step profiled with any `--jobs` count and with
//! fast-forward on or off is byte-identical.

use std::fmt;

use dm_compiler::FeatureSet;
use dm_sim::{BlamePhase, BlameProfile, JsonValue, OperandPort, StallCause};
use dm_system::{RunReport, SystemConfig, SystemError};
use dm_workloads::{synthetic_suite, Workload};

/// Document format identifier; `diff` refuses to compare across schemas.
pub const SCHEMA: &str = "datamaestro-profile-v1";

/// How many component rows the rendered table and diff show.
pub const TOP_ROWS: usize = 12;

/// What went wrong while building a profile.
#[derive(Debug)]
pub enum ProfileError {
    /// A simulated run failed outright.
    Sim(SystemError),
    /// A run violated the blame conservation contract (a profiler bug; the
    /// message names the run and the first broken invariant).
    Conservation(String),
}

impl fmt::Display for ProfileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProfileError::Sim(e) => write!(f, "simulation failed: {e}"),
            ProfileError::Conservation(msg) => write!(f, "conservation violated: {msg}"),
        }
    }
}

impl std::error::Error for ProfileError {}

impl From<SystemError> for ProfileError {
    fn from(e: SystemError) -> Self {
        ProfileError::Sim(e)
    }
}

/// Options of one `profile run`.
#[derive(Debug, Clone, Copy)]
pub struct ProfileOptions {
    /// Ablation step (1 = baseline … 6 = fully featured).
    pub step: usize,
    /// Run the complete Fig. 7 suite instead of the every-5th slice.
    pub full: bool,
    /// Worker threads for the independent runs (output is byte-identical
    /// for any value).
    pub jobs: usize,
    /// Idle-cycle elision (output is byte-identical either way).
    pub fast_forward: bool,
    /// Scratchpad bank read latency in cycles.
    pub read_latency: u64,
}

impl Default for ProfileOptions {
    fn default() -> Self {
        ProfileOptions {
            step: 6,
            full: false,
            jobs: 1,
            fast_forward: true,
            read_latency: SystemConfig::default().read_latency,
        }
    }
}

impl ProfileOptions {
    fn config(&self) -> SystemConfig {
        SystemConfig {
            fast_forward: self.fast_forward,
            read_latency: self.read_latency,
            ..SystemConfig::default().with_features(FeatureSet::ablation_step(self.step))
        }
    }
}

/// Release-build re-check of the conservation contract on one run: the
/// blame tree charges exactly the stalls the attribution counted (per
/// cause), per-port blame totals match the coarse [`StallBreakdown`]
/// counters, and every fire landed in exactly one phase.
///
/// [`StallBreakdown`]: dm_system::StallBreakdown
///
/// # Errors
///
/// Returns [`ProfileError::Conservation`] naming `label` and the first
/// broken invariant.
pub fn check_conservation(label: &str, report: &RunReport) -> Result<(), ProfileError> {
    let at = &report.attribution;
    let blame = &report.blame;
    if !blame.conserves(at) {
        return Err(ProfileError::Conservation(format!(
            "{label}: blame totals diverge from the stall attribution \
             (blame {} stalled / {} fired vs attribution {} / {})",
            blame.stalled(),
            blame.fired(),
            at.stalled(),
            at.fired()
        )));
    }
    let ports = [
        (OperandPort::A, report.stalls.a),
        (OperandPort::B, report.stalls.b),
        (OperandPort::C, report.stalls.c),
    ];
    for (port, coarse) in ports {
        let fine = blame.cause_total(StallCause::NoOperand(port))
            + blame.cause_total(StallCause::BankConflict(port));
        if fine != coarse {
            return Err(ProfileError::Conservation(format!(
                "{label}: port {} blame is {fine} cycles but the coarse \
                 stall counter says {coarse}",
                port.label()
            )));
        }
    }
    let out_fine =
        blame.cause_total(StallCause::WritebackBackpressure) + blame.cause_total(StallCause::Drain);
    if out_fine != report.stalls.out {
        return Err(ProfileError::Conservation(format!(
            "{label}: port OUT blame is {out_fine} cycles but the coarse \
             stall counter says {}",
            report.stalls.out
        )));
    }
    if blame.fired() != report.active_cycles {
        return Err(ProfileError::Conservation(format!(
            "{label}: blame counted {} fires but the run had {} active cycles",
            blame.fired(),
            report.active_cycles
        )));
    }
    Ok(())
}

/// Builds a profile document from explicit `(label, workload, seed)` runs.
///
/// This is the core `profile_document` delegates to; tests and callers
/// with their own workload selection use it directly.
///
/// # Errors
///
/// Propagates the first [`SystemError`], or a
/// [`ProfileError::Conservation`] if any run breaks the contract.
pub fn document_for_workloads(
    opts: &ProfileOptions,
    items: &[(String, Workload, u64)],
) -> Result<JsonValue, ProfileError> {
    let cfg = opts.config();
    let reports = crate::run_ordered(items, opts.jobs, |_, (_, workload, seed)| {
        crate::measure(&cfg, *workload, *seed)
    })
    .into_iter()
    .collect::<Result<Vec<_>, _>>()?;

    let mut blame = BlameProfile::new(cfg.mem.num_banks());
    let (mut prepass, mut compute, mut ideal) = (0u64, 0u64, 0u64);
    for ((label, _, _), report) in items.iter().zip(&reports) {
        check_conservation(label, report)?;
        blame.merge(&report.blame);
        prepass += report.prepass_cycles;
        compute += report.compute_cycles;
        ideal += report.ideal_cycles;
    }
    Ok(JsonValue::object([
        ("schema".to_owned(), JsonValue::from(SCHEMA)),
        ("step".to_owned(), JsonValue::from(opts.step as u64)),
        (
            "mode".to_owned(),
            JsonValue::from(if opts.full { "full" } else { "quick" }),
        ),
        (
            "read_latency".to_owned(),
            JsonValue::from(opts.read_latency),
        ),
        ("workloads".to_owned(), JsonValue::from(items.len() as u64)),
        (
            "cycles".to_owned(),
            JsonValue::object([
                ("prepass".to_owned(), JsonValue::from(prepass)),
                ("compute".to_owned(), JsonValue::from(compute)),
                ("ideal".to_owned(), JsonValue::from(ideal)),
                ("fired".to_owned(), JsonValue::from(blame.fired())),
                ("stalled".to_owned(), JsonValue::from(blame.stalled())),
            ]),
        ),
        ("blame".to_owned(), blame.to_json()),
    ]))
}

/// Profiles the Fig. 7 ablation slice at `opts.step` and returns the
/// canonical document. Workload labels and seeds match `regress run`, so a
/// profile is directly relatable to the benchmark baselines.
///
/// # Errors
///
/// Propagates the first [`SystemError`], or a
/// [`ProfileError::Conservation`] if any run breaks the contract.
pub fn profile_document(
    opts: &ProfileOptions,
    mut progress: impl FnMut(&str),
) -> Result<JsonValue, ProfileError> {
    let suite = synthetic_suite();
    let items: Vec<(String, Workload, u64)> = suite
        .iter()
        .enumerate()
        .filter(|(i, _)| opts.full || i % 5 == 0)
        .map(|(i, w)| (format!("{w}|step{}", opts.step), *w, i as u64))
        .collect();
    progress(&format!(
        "profiling {} workloads at ablation step {} ({} jobs)",
        items.len(),
        opts.step,
        opts.jobs
    ));
    document_for_workloads(opts, &items)
}

/// One row of the top-bottlenecks table: a component instance, the cause it
/// stalls under, and its share of all stalled cycles.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Component instance label, e.g. `bank[3]` or `streamer.B.agu`.
    pub component: String,
    /// Cause bucket label, e.g. `bank-conflict(A)`.
    pub cause: String,
    /// Stalled cycles charged to this (cause, component) pair.
    pub cycles: u64,
    /// Fraction of all stalled cycles in the document.
    pub share: f64,
}

/// Flattens `doc.blame.total` into `(cause label, component label, cycles)`
/// triples in the document's (deterministic) order.
fn flatten_total(doc: &JsonValue) -> Vec<(String, String, u64)> {
    let mut out = Vec::new();
    let Some(JsonValue::Object(causes)) = doc.get("blame").and_then(|b| b.get("total")) else {
        return out;
    };
    for (cause, leaves) in causes {
        if let JsonValue::Object(leaves) = leaves {
            for (leaf, n) in leaves {
                out.push((cause.clone(), leaf.clone(), n.as_u64().unwrap_or(0)));
            }
        }
    }
    out
}

/// The top `limit` bottleneck rows of a document, sorted by stalled cycles
/// (ties broken by label for determinism).
#[must_use]
pub fn top_rows(doc: &JsonValue, limit: usize) -> Vec<Row> {
    let flat = flatten_total(doc);
    let stalled: u64 = flat.iter().map(|(_, _, n)| n).sum();
    let mut rows: Vec<Row> = flat
        .into_iter()
        .map(|(cause, component, cycles)| Row {
            share: if stalled == 0 {
                0.0
            } else {
                cycles as f64 / stalled as f64
            },
            component,
            cause,
            cycles,
        })
        .collect();
    rows.sort_by(|a, b| {
        b.cycles
            .cmp(&a.cycles)
            .then_with(|| a.component.cmp(&b.component))
            .then_with(|| a.cause.cmp(&b.cause))
    });
    rows.truncate(limit);
    rows
}

fn doc_u64(doc: &JsonValue, path: &[&str]) -> u64 {
    let mut value = doc;
    for key in path {
        match value.get(key) {
            Some(v) => value = v,
            None => return 0,
        }
    }
    value.as_u64().unwrap_or(0)
}

/// Renders the human-readable profile: headline cycle counts, the
/// copy-engine prepass occupancy, the phase segmentation, and the
/// top-bottlenecks table.
#[must_use]
pub fn render(doc: &JsonValue) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let step = doc_u64(doc, &["step"]);
    let mode = doc
        .get("mode")
        .and_then(JsonValue::as_str)
        .unwrap_or("quick");
    let latency = doc_u64(doc, &["read_latency"]);
    let workloads = doc_u64(doc, &["workloads"]);
    let prepass = doc_u64(doc, &["cycles", "prepass"]);
    let compute = doc_u64(doc, &["cycles", "compute"]);
    let fired = doc_u64(doc, &["cycles", "fired"]);
    let stalled = doc_u64(doc, &["cycles", "stalled"]);
    let fired_pct = if compute == 0 {
        0.0
    } else {
        100.0 * fired as f64 / compute as f64
    };
    let _ = writeln!(
        out,
        "dm-profile: ablation step {step} ({mode}, read latency {latency}) — \
         {workloads} workload(s)"
    );
    let _ = writeln!(
        out,
        "  cycles: compute {compute} (fired {fired} = {fired_pct:.1}%, stalled {stalled})"
    );
    let _ = writeln!(
        out,
        "  copy-engine prepass occupancy: {prepass} cycle(s) ahead of compute"
    );
    let _ = writeln!(out, "  phases:");
    for phase in BlamePhase::ALL {
        let base = ["blame", "phases", phase.label()];
        let cycles = doc_u64(doc, &[base[0], base[1], base[2], "cycles"]);
        let fired = doc_u64(doc, &[base[0], base[1], base[2], "fired"]);
        let stalled = doc_u64(doc, &[base[0], base[1], base[2], "stalled"]);
        let _ = writeln!(
            out,
            "    {:<6} {cycles:>10} cycles  (fired {fired}, stalled {stalled})",
            phase.label()
        );
    }
    let rows = top_rows(doc, TOP_ROWS);
    if rows.is_empty() {
        let _ = writeln!(out, "  no stalled cycles — nothing to blame");
        return out;
    }
    let _ = writeln!(out, "  top bottlenecks (stalled cycles by component):");
    let _ = writeln!(
        out,
        "    {:<20} {:<26} {:>10} {:>7}",
        "component", "cause", "cycles", "share"
    );
    for row in rows {
        let _ = writeln!(
            out,
            "    {:<20} {:<26} {:>10} {:>6.1}%",
            row.component,
            row.cause,
            row.cycles,
            100.0 * row.share
        );
    }
    out
}

/// Strips the port qualifier from a cause label: `bank-conflict(A)` →
/// `bank-conflict`. Used to aggregate per-port causes into families for
/// the diff headline.
#[must_use]
pub fn cause_family(label: &str) -> &str {
    label.split('(').next().unwrap_or(label)
}

/// One `(cause, component)` delta between two profile documents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DiffRow {
    /// Cause bucket label.
    pub cause: String,
    /// Component instance label.
    pub component: String,
    /// Stalled cycles in the old document.
    pub old: u64,
    /// Stalled cycles in the new document.
    pub new: u64,
}

impl DiffRow {
    /// Signed change in stalled cycles (new − old).
    #[must_use]
    pub fn delta(&self) -> i64 {
        self.new as i64 - self.old as i64
    }
}

/// The outcome of comparing two profile documents.
#[derive(Debug, Default)]
pub struct ProfileDiff {
    /// Per-(cause, component) deltas, largest absolute change first.
    pub rows: Vec<DiffRow>,
    /// Per cause-family deltas (`bank-conflict`, `no-operand`, …), largest
    /// absolute change first.
    pub family_deltas: Vec<(String, i64)>,
    /// Total stalled cycles on each side.
    pub old_stalled: u64,
    /// Total stalled cycles on the new side.
    pub new_stalled: u64,
    /// Read latency of the old document.
    pub old_latency: u64,
    /// Read latency of the new document.
    pub new_latency: u64,
}

impl ProfileDiff {
    /// The dominant shift: the cause family whose stalled-cycle total
    /// changed the most (in absolute cycles). `None` when nothing changed.
    #[must_use]
    pub fn dominant(&self) -> Option<(&str, i64)> {
        self.family_deltas
            .first()
            .filter(|(_, d)| *d != 0)
            .map(|(family, delta)| (family.as_str(), *delta))
    }
}

/// Compares two profile documents.
///
/// # Errors
///
/// Refuses (with a descriptive message) to compare documents whose schema
/// is not exactly [`SCHEMA`], or — unless `allow_mismatch` — that profiled
/// different read latencies: a latency change moves blame for physical
/// reasons and would masquerade as a configuration insight. Latency-sweep
/// comparisons (the Fig. 7(a) axis) are sometimes exactly the question,
/// so `--allow-mismatch` proceeds, and [`render_diff`] prints a loud
/// warning banner in that case.
pub fn diff(old: &JsonValue, new: &JsonValue, allow_mismatch: bool) -> Result<ProfileDiff, String> {
    let schema = |doc: &JsonValue| {
        doc.get("schema")
            .and_then(JsonValue::as_str)
            .unwrap_or("<missing>")
            .to_owned()
    };
    let (old_schema, new_schema) = (schema(old), schema(new));
    if old_schema != SCHEMA || new_schema != SCHEMA {
        return Err(format!(
            "schema mismatch: old '{old_schema}', new '{new_schema}', expected '{SCHEMA}'; \
             regenerate both documents with this dm-profile"
        ));
    }
    let (old_lat, new_lat) = (
        doc_u64(old, &["read_latency"]),
        doc_u64(new, &["read_latency"]),
    );
    if old_lat != new_lat && !allow_mismatch {
        return Err(format!(
            "read latency differs ({old_lat} vs {new_lat}); profile deltas across \
             latencies conflate physics with configuration (pass --allow-mismatch \
             to compare anyway)"
        ));
    }

    let mut keys: Vec<(String, String)> = Vec::new();
    let mut side = |doc: &JsonValue| {
        let mut map = std::collections::BTreeMap::new();
        for (cause, component, n) in flatten_total(doc) {
            let key = (cause, component);
            if !keys.contains(&key) {
                keys.push(key.clone());
            }
            map.insert(key, n);
        }
        map
    };
    let old_map = side(old);
    let new_map = side(new);
    let mut rows: Vec<DiffRow> = keys
        .into_iter()
        .map(|key| DiffRow {
            old: old_map.get(&key).copied().unwrap_or(0),
            new: new_map.get(&key).copied().unwrap_or(0),
            cause: key.0,
            component: key.1,
        })
        .collect();
    rows.sort_by(|a, b| {
        b.delta()
            .abs()
            .cmp(&a.delta().abs())
            .then_with(|| a.component.cmp(&b.component))
            .then_with(|| a.cause.cmp(&b.cause))
    });

    let mut families: Vec<(String, i64)> = Vec::new();
    for row in &rows {
        let family = cause_family(&row.cause).to_owned();
        match families.iter_mut().find(|(f, _)| *f == family) {
            Some((_, delta)) => *delta += row.delta(),
            None => families.push((family, row.delta())),
        }
    }
    families.sort_by(|a, b| b.1.abs().cmp(&a.1.abs()).then_with(|| a.0.cmp(&b.0)));

    Ok(ProfileDiff {
        rows,
        family_deltas: families,
        old_stalled: doc_u64(old, &["cycles", "stalled"]),
        new_stalled: doc_u64(new, &["cycles", "stalled"]),
        old_latency: old_lat,
        new_latency: new_lat,
    })
}

/// Renders a diff: stalled-cycle movement, cause-family deltas, the
/// dominant shift, and the top component-level changes. A cross-latency
/// comparison (possible only via `--allow-mismatch`) gets a loud warning
/// banner first.
#[must_use]
pub fn render_diff(d: &ProfileDiff, old_label: &str, new_label: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let total_delta = d.new_stalled as i64 - d.old_stalled as i64;
    let _ = writeln!(out, "dm-profile diff: {old_label} -> {new_label}");
    if d.old_latency != d.new_latency {
        let _ = writeln!(out, "  {}", "=".repeat(68));
        let _ = writeln!(
            out,
            "  WARNING: read latency differs ({} vs {}) — the deltas below\n\
             \x20 conflate memory physics with configuration changes; proceeding\n\
             \x20 because --allow-mismatch was given",
            d.old_latency, d.new_latency
        );
        let _ = writeln!(out, "  {}", "=".repeat(68));
    }
    let _ = writeln!(
        out,
        "  stalled cycles: {} -> {} ({total_delta:+})",
        d.old_stalled, d.new_stalled
    );
    if d.family_deltas.iter().all(|(_, delta)| *delta == 0) {
        let _ = writeln!(out, "  no blame moved between the two profiles");
        return out;
    }
    let _ = writeln!(out, "  by cause family:");
    for (family, delta) in &d.family_deltas {
        if *delta != 0 {
            let _ = writeln!(out, "    {family:<24} {delta:+10} cycles");
        }
    }
    if let Some((family, delta)) = d.dominant() {
        let verb = if delta < 0 { "collapsed" } else { "grew" };
        let _ = writeln!(
            out,
            "  dominant shift: {family} blame {verb} by {} cycles",
            delta.unsigned_abs()
        );
    }
    let _ = writeln!(out, "  top component deltas:");
    for row in d.rows.iter().filter(|r| r.delta() != 0).take(TOP_ROWS) {
        let _ = writeln!(
            out,
            "    {:<20} {:<26} {:>10} -> {:<10} ({:+})",
            row.component,
            row.cause,
            row.old,
            row.new,
            row.delta()
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_workloads::GemmSpec;

    fn doc_for_step(step: usize) -> JsonValue {
        let opts = ProfileOptions {
            step,
            ..ProfileOptions::default()
        };
        let items = vec![(
            format!("GeMM-64|step{step}"),
            Workload::from(GemmSpec::new(64, 64, 64)),
            1,
        )];
        document_for_workloads(&opts, &items).unwrap()
    }

    #[test]
    fn document_is_deterministic_across_jobs_and_fast_forward() {
        let items: Vec<(String, Workload, u64)> = (0..3)
            .map(|i| {
                (
                    format!("g{i}"),
                    Workload::from(GemmSpec::new(32, 32, 32)),
                    i,
                )
            })
            .collect();
        let doc = |jobs: usize, fast_forward: bool| {
            let opts = ProfileOptions {
                step: 5,
                jobs,
                fast_forward,
                ..ProfileOptions::default()
            };
            document_for_workloads(&opts, &items).unwrap().to_json()
        };
        let canonical = doc(1, true);
        assert_eq!(canonical, doc(4, true), "jobs must not change the bytes");
        assert_eq!(
            canonical,
            doc(1, false),
            "fast-forward must not change the bytes"
        );
    }

    #[test]
    fn step5_to_step6_diff_names_bank_conflict_collapse() {
        // The Fig. 7(a) story: FIMA placement (step 5) drowns in bank
        // conflicts; bank-aware remapping (step 6) makes them vanish. The
        // profiler must name that as the dominant shift.
        let old = doc_for_step(5);
        let new = doc_for_step(6);
        let d = diff(&old, &new, false).unwrap();
        let (family, delta) = d.dominant().expect("blame must have moved");
        assert_eq!(family, "bank-conflict", "rows: {:?}", d.family_deltas);
        assert!(
            delta < 0,
            "bank-conflict blame must collapse, got {delta:+}"
        );
        let rendered = render_diff(&d, "step5", "step6");
        assert!(rendered.contains("dominant shift: bank-conflict blame collapsed"));
    }

    #[test]
    fn top_rows_are_sorted_and_share_sums_to_one() {
        let doc = doc_for_step(5);
        let rows = top_rows(&doc, usize::MAX);
        assert!(!rows.is_empty());
        for pair in rows.windows(2) {
            assert!(pair[0].cycles >= pair[1].cycles);
        }
        let share: f64 = rows.iter().map(|r| r.share).sum();
        assert!((share - 1.0).abs() < 1e-9, "shares sum to {share}");
        let rendered = render(&doc);
        assert!(rendered.contains("top bottlenecks"));
        assert!(rendered.contains("ablation step 5"));
    }

    #[test]
    fn diff_refuses_schema_and_latency_mismatches() {
        let doc = doc_for_step(6);
        let bogus = JsonValue::object([(
            "schema".to_owned(),
            JsonValue::from("datamaestro-profile-v0"),
        )]);
        let err = diff(&bogus, &doc, false).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");

        let slow = {
            let opts = ProfileOptions {
                step: 6,
                read_latency: 4,
                ..ProfileOptions::default()
            };
            let items = vec![("g".to_owned(), Workload::from(GemmSpec::new(32, 32, 32)), 1)];
            document_for_workloads(&opts, &items).unwrap()
        };
        let err = diff(&doc, &slow, false).unwrap_err();
        assert!(err.contains("read latency differs"), "{err}");

        // --allow-mismatch proceeds (the Fig. 7(a) axis), and the rendered
        // diff leads with the warning banner. The schema refusal is not
        // relaxed — a format mismatch is never a physics question.
        let d = diff(&doc, &slow, true).unwrap();
        assert_eq!((d.old_latency, d.new_latency), (1, 4));
        let rendered = render_diff(&d, "fast", "slow");
        assert!(rendered.contains("WARNING: read latency differs (1 vs 4)"));
        let err = diff(&bogus, &doc, true).unwrap_err();
        assert!(err.contains("schema mismatch"), "{err}");
    }

    #[test]
    fn conservation_check_accepts_real_runs_and_rejects_forgeries() {
        let opts = ProfileOptions {
            step: 5,
            ..ProfileOptions::default()
        };
        let mut report =
            crate::measure(&opts.config(), GemmSpec::new(32, 32, 32).into(), 1).unwrap();
        check_conservation("g32", &report).unwrap();
        // Forge one extra active cycle: the fire-count cross-check fires.
        report.active_cycles += 1;
        let err = check_conservation("g32", &report).unwrap_err();
        assert!(matches!(err, ProfileError::Conservation(_)), "{err}");
    }

    #[test]
    fn cause_family_strips_port_qualifiers() {
        assert_eq!(cause_family("bank-conflict(A)"), "bank-conflict");
        assert_eq!(cause_family("no-operand(C)"), "no-operand");
        assert_eq!(cause_family("drain"), "drain");
    }
}
