//! `dm-lint` — static configuration linter for the DataMaestro system.
//!
//! Compiles the committed workload suites onto the paper's evaluation
//! geometry and runs the full static analysis (bank conflicts, footprint
//! bounds, hazards, deadlock, `DM-PERF-*` performance proofs) on each
//! program, **without simulating**.
//!
//! ```text
//! dm-lint [run] [--suite fig7|table3|kernels|all] [--quick] [--json]
//!         [--out <path>] [--deny-warnings] [--demo oob|zero-fifo|nima-clash]
//! dm-lint diff <old.json> <new.json>
//! ```
//!
//! The bare flags-only invocation is the historical dialect and stays
//! supported (CI calls `dm-lint --suite all --deny-warnings`); `run` is an
//! accepted alias so the tool conjugates like `dm-profile`/`dm-critical`/
//! `dm-predict`. `--json` emits the schema-versioned canonical document;
//! `diff` compares two documents by lint-code counts and refuses
//! cross-schema input.
//!
//! Exit status: 0 = clean (per the gate), 1 = findings failed the gate,
//! 2 = usage error.

use dm_analyze::{analyze_streams, fixtures, Report, StreamInput};
use dm_bench::{cli, lint};
use dm_mem::MemConfig;
use dm_sim::JsonValue;

struct Args {
    flags: cli::RunFlags,
    deny_warnings: bool,
    suite: String,
    demo: Option<String>,
}

fn usage(msg: &str) -> ! {
    eprintln!("{msg}");
    eprintln!(
        "usage: dm-lint [run] [--suite fig7|table3|kernels|all] [--quick] [--json] \
         [--out <path>] [--deny-warnings] [--demo oob|zero-fifo|nima-clash]"
    );
    eprintln!("       dm-lint diff <old.json> <new.json>");
    std::process::exit(2);
}

fn parse_args(args: &[String]) -> Args {
    let mut parsed = Args {
        flags: cli::RunFlags::default(),
        deny_warnings: false,
        suite: "all".to_owned(),
        demo: None,
    };
    // dm-lint shares only the output flags of the common run dialect; the
    // selection flags (--suite/--demo) are its own.
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => parsed.flags.json = true,
            "--out" => {
                parsed.flags.out = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| usage("--out needs a path")),
                );
                parsed.flags.json = true;
            }
            "--deny-warnings" => parsed.deny_warnings = true,
            "--quick" => parsed.flags.full = false,
            "--suite" => {
                parsed.suite = it
                    .next()
                    .cloned()
                    .unwrap_or_else(|| usage("--suite needs a name"));
            }
            "--demo" => {
                parsed.demo = Some(
                    it.next()
                        .cloned()
                        .unwrap_or_else(|| usage("--demo needs a name")),
                );
            }
            other => usage(&format!("unknown option: {other}")),
        }
    }
    // The historical default is the full suite; --quick opts into the
    // every-5th fig7 slice. RunFlags models that as `full`, inverted.
    parsed.flags.full = !args.iter().any(|a| a == "--quick");
    parsed
}

fn demo_report(name: &str) -> Report {
    let mem_default = MemConfig::default();
    match name {
        "oob" => {
            let (design, runtime, mem) = fixtures::oob_pattern();
            analyze_streams(
                &[StreamInput {
                    design: &design,
                    runtime: &runtime,
                }],
                &mem,
                0,
            )
            .report
        }
        "zero-fifo" => {
            let mut report = Report::new();
            report.extend(fixtures::zero_capacity_fifo().analyze());
            report
        }
        "nima-clash" => {
            let (design, runtime, _) = fixtures::nima_gemm_clash();
            analyze_streams(
                &[StreamInput {
                    design: &design,
                    runtime: &runtime,
                }],
                &mem_default,
                0,
            )
            .report
        }
        other => usage(&format!("unknown demo fixture: {other}")),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("diff") => diff(&args[1..]),
        Some("run") => run(&args[1..]),
        _ => run(&args),
    }
}

fn run(args: &[String]) {
    let args = parse_args(args);
    let doc = if let Some(demo) = &args.demo {
        // Demo fixtures are known-bad by construction, so they always gate
        // at warning level — otherwise the warning-only `nima-clash` would
        // "pass".
        lint::document_for_report(&demo_report(demo), 1, 0, true)
    } else {
        let workloads = lint::suite_workloads(&args.suite, !args.flags.full)
            .unwrap_or_else(|| usage("--suite must be fig7, table3, kernels or all"));
        lint::document_for_workloads(&workloads, args.deny_warnings)
    };
    let passed = matches!(doc.get("passed"), Some(JsonValue::Bool(true)));
    cli::emit_document(&args.flags, "lint report", &doc, lint::render);
    std::process::exit(i32::from(!passed));
}

fn diff(args: &[String]) {
    let (allow_mismatch, old_path, new_path) = cli::parse_diff_flags(args).unwrap_or_else(|e| {
        usage(&e);
    });
    if allow_mismatch {
        usage("dm-lint diff has no --allow-mismatch: a schema mismatch is never a lint insight");
    }
    let outcome = lint::diff(&cli::load_json(&old_path), &cli::load_json(&new_path))
        .unwrap_or_else(|e| {
            eprintln!("dm-lint diff: {e}");
            std::process::exit(1);
        });
    print!("{}", lint::render_diff(&outcome, &old_path, &new_path));
}
