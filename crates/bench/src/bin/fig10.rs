//! Regenerates Fig. 10: normalized throughput against SotA DNN
//! accelerators (left) and the data-movement area/power cost comparison
//! (right).
//!
//! DataMaestro's utilization is *measured* by the cycle simulator on each
//! representative kernel; the baselines use the mechanism-based analytic
//! models of `dm-baselines` (see that crate's documentation). All systems
//! are normalized to 512 PEs at 1 GHz, as in the paper.
//!
//! Pass `--quick` to simulate every other kernel only, `--metrics-out
//! <path>` to dump one JSONL metrics snapshot per kernel, and `--trace-out
//! <path>` to capture a Perfetto trace of the first kernel.

use dm_baselines::{data_movement_costs, normalized_throughput_tops, utilization, Baseline};
use dm_cost::area::system_area;
use dm_cost::energy::power_breakdown;
use dm_cost::{EnergyEvents, EnergyModel, EvaluationSystemSpec, UnitAreas};
use dm_sim::TraceMode;
use dm_workloads::GemmSpec;

fn main() {
    let args = dm_bench::parse_args();
    let mut metrics_log = dm_bench::MetricsLog::create(args.metrics_out.as_deref())
        .unwrap_or_else(|e| panic!("opening metrics log: {e}"));
    let mut trace_pending = args.trace_out.as_deref();
    let kernels: Vec<_> = dm_bench::representative_kernels()
        .into_iter()
        .enumerate()
        .filter(|(i, _)| !args.quick || i % 2 == 0)
        .map(|(_, k)| k)
        .collect();
    let cfg = args.system_config();

    println!("Fig. 10 (left): normalized throughput in TOPS (512 PEs @ 1 GHz)");
    println!(
        "{:<22} {:>9} {:>11} {:>11} {:>9} {:>9} {:>11}",
        "kernel", "ours", "Gemmini-OS", "Gemmini-WS", "FEATHER", "BitWave", "gain range"
    );
    dm_bench::rule(90);
    let mut min_gain = f64::MAX;
    let mut max_gain = 0.0f64;
    for (i, (name, workload)) in kernels.iter().enumerate() {
        let mut kernel_cfg = cfg;
        let traced = trace_pending.is_some();
        if traced {
            kernel_cfg.trace = TraceMode::Full;
        }
        let report = dm_bench::measure(&kernel_cfg, *workload, i as u64)
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        if let Some(path) = trace_pending.filter(|_| traced) {
            dm_bench::write_trace(path, &report.traces)
                .unwrap_or_else(|e| panic!("writing trace to {path}: {e}"));
            eprintln!("  wrote Perfetto trace of '{name}' to {path}");
            trace_pending = None;
        }
        metrics_log
            .record(name, &report)
            .unwrap_or_else(|e| panic!("writing metrics line: {e}"));
        let ours = normalized_throughput_tops(report.utilization());
        let mut row = format!("{name:<22} {ours:>9.3}");
        let mut kernel_min = f64::MAX;
        let mut kernel_max = 0.0f64;
        for baseline in Baseline::ALL {
            let theirs = normalized_throughput_tops(utilization(baseline, workload));
            let gain = ours / theirs;
            kernel_min = kernel_min.min(gain);
            kernel_max = kernel_max.max(gain);
            let width = match baseline {
                Baseline::GemminiOs | Baseline::GemminiWs => 11,
                _ => 9,
            };
            row.push_str(&format!(" {theirs:>width$.3}"));
        }
        min_gain = min_gain.min(kernel_min);
        max_gain = max_gain.max(kernel_max);
        println!("{row} {:>4.2}-{:.2}x", kernel_min, kernel_max);
    }
    println!(
        "\nheadline: DataMaestro gains {min_gain:.2}x - {max_gain:.2}x over SotA \
         (paper: 1.05x - 21.39x)"
    );

    // --- Fig. 10 (right): data-movement hardware cost --------------------
    println!("\nFig. 10 (right): data-movement area/power inside the whole system");
    println!("{:<14} {:>8} {:>8}", "system", "area", "power");
    dm_bench::rule(32);
    for row in data_movement_costs() {
        println!(
            "{:<14} {:>7.2}% {:>8}",
            row.system,
            row.area_pct,
            row.power_pct
                .map_or("n/a".to_string(), |p| format!("{p:.2}%"))
        );
    }
    // DataMaestro's own numbers come from the cost model, not the paper.
    let spec = EvaluationSystemSpec::paper();
    let areas = system_area(&spec, &UnitAreas::default());
    let report = dm_bench::measure(&cfg, GemmSpec::new(64, 64, 64).into(), 0).expect("GeMM-64");
    metrics_log
        .record("GeMM-64|cost-model", &report)
        .unwrap_or_else(|e| panic!("writing metrics line: {e}"));
    let events = EnergyEvents {
        sram_reads: report.mem_reads,
        sram_writes: report.mem_writes,
        macs: report.active_cycles * 512,
        rescales: 64 * 64,
        fifo_words: report.mem_reads + report.mem_writes,
        agu_steps: report
            .streamer_stats
            .iter()
            .map(|s| s.temporal_addresses.get())
            .sum(),
        cycles: report.total_cycles(),
    };
    let power = power_breakdown(&events, &EnergyModel::default(), 1e9);
    println!(
        "{:<14} {:>7.2}% {:>7.2}%   (paper: 6.43% / 15.06%)",
        "DataMaestro",
        areas.share_pct(areas.datamaestro_total()),
        power.share_pct(power.datamaestros_mw)
    );
    metrics_log
        .finish()
        .unwrap_or_else(|e| panic!("flushing metrics log: {e}"));
}
