//! Regenerates Table I: feature comparison of SotA data-movement solutions
//! with DataMaestro.
//!
//! Accepts the shared bench flags for uniformity; this binary is analytic
//! (no simulated runs), so `--metrics-out` writes an empty log and
//! `--trace-out` is a no-op.

use dm_baselines::feature_matrix;

fn main() {
    dm_bench::note_analytic_only(&dm_bench::parse_args());
    let rows = feature_matrix();
    println!("Table I: comparison of SotA data movement solutions with DataMaestro");
    println!(
        "{:<18} {:<12} {:<10} {:<11} {:<12} {:<10} {:<10} {:<10}",
        "System",
        "OpenSource",
        "Reusable",
        "Decoupled",
        "AffineAcc",
        "Prefetch",
        "ModeSw",
        "OnTheFly"
    );
    dm_bench::rule(98);
    for row in rows {
        println!(
            "{:<18} {:<12} {:<10} {:<11} {:<12} {:<10} {:<10} {:<10}",
            row.system,
            row.open_source.to_string(),
            row.reusable.to_string(),
            row.decoupled.to_string(),
            row.affine_access.to_string(),
            row.fine_grained_prefetch.to_string(),
            row.mode_switching.to_string(),
            row.on_the_fly.to_string(),
        );
    }
}
