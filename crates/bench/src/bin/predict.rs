//! The static performance prover CLI.
//!
//! ```text
//! dm-predict run  [--step <1..6>] [--full|--quick] [--jobs <n>]
//!                 [--latency <cycles>] [--json] [--out <path>]
//! dm-predict diff [--allow-mismatch] <old.json> <new.json>
//! ```
//!
//! `run` compiles the Fig. 7 ablation slice at one feature step (default
//! ⑥, fully featured) and — without simulating — proves for every workload
//! a steady-state period for each port's request stream and a sound upper
//! bound on PE utilization, with the predicted bottleneck in the same
//! taxonomy `dm-profile`/`dm-critical` measure. `--json` emits the
//! canonical document (byte-identical for any `--jobs` count — CI uses
//! that as a determinism gate).
//!
//! `diff` compares two documents — typically adjacent ablation steps — and
//! shows how the proven roofline and predicted bottleneck move, e.g. the
//! step ⑤→⑥ recovery when bank-aware remapping removes the conflict cap.
//! Cross-latency documents are refused unless `--allow-mismatch` is given.

use dm_bench::cli;
use dm_bench::predict;

fn usage() -> ! {
    eprintln!("usage:");
    eprintln!(
        "  dm-predict run  [--step <1..6>] [--full|--quick] [--jobs <n>]\n\
         \x20                [--latency <cycles>] [--json] [--out <path>]"
    );
    eprintln!("  dm-predict diff [--allow-mismatch] <old.json> <new.json>");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("diff") => diff(&args[1..]),
        _ => usage(),
    }
}

fn run(args: &[String]) {
    let flags = cli::parse_run_flags(args, false).unwrap_or_else(|e| {
        eprintln!("{e}");
        usage();
    });
    let opts = predict::PredictOptions {
        step: flags.step,
        full: flags.full,
        jobs: flags.jobs,
        read_latency: flags.read_latency,
    };
    let doc = predict::predict_document(&opts, |msg| eprintln!("  {msg}")).unwrap_or_else(|e| {
        eprintln!("dm-predict: {e}");
        std::process::exit(1);
    });
    cli::emit_document(&flags, "prediction", &doc, predict::render);
}

fn diff(args: &[String]) {
    let (allow_mismatch, old_path, new_path) = cli::parse_diff_flags(args).unwrap_or_else(|e| {
        eprintln!("{e}");
        usage();
    });
    let outcome = predict::diff(
        &cli::load_json(&old_path),
        &cli::load_json(&new_path),
        allow_mismatch,
    )
    .unwrap_or_else(|e| {
        eprintln!("dm-predict diff: {e}");
        std::process::exit(1);
    });
    print!("{}", predict::render_diff(&outcome, &old_path, &new_path));
}
