//! The critical-path analyzer CLI.
//!
//! ```text
//! dm-critical run  [--step <1..6>] [--full|--quick] [--jobs <n>]
//!                  [--latency <cycles>] [--no-fast-forward]
//!                  [--json] [--out <path>]
//! dm-critical diff [--allow-mismatch] <old.json> <new.json>
//! ```
//!
//! `run` simulates the Fig. 7 ablation slice at one feature step (default
//! ⑥, fully featured) and prints how the end-to-end critical path
//! decomposes across resource classes — memory latency, bank conflicts,
//! FIFO capacity, AGU throughput, PE issue, writeback flush — plus the
//! ranked what-if projections (predicted saving if one constraint were
//! relaxed). `--json` emits the canonical document instead (to stdout, or
//! to `--out <path>`); it is byte-identical for any `--jobs` count and with
//! fast-forward on or off, which CI exploits as a determinism gate. Every
//! run is re-checked against the critical-path contract; a violation exits
//! non-zero.
//!
//! `diff` compares two documents and names the dominant path shift. The
//! canonical demonstration is the coupled baseline (step ①) against full
//! decoupling (step ⑥) at read latency 16, where on-path memory latency
//! collapses — the Fig. 7(a) explanation. Cross-latency comparisons are
//! refused unless `--allow-mismatch` is given, in which case a loud
//! warning banner precedes the deltas.

use dm_bench::critical;
use dm_sim::JsonValue;

fn usage() -> ! {
    eprintln!("usage:");
    eprintln!(
        "  dm-critical run  [--step <1..6>] [--full|--quick] [--jobs <n>]\n\
         \x20                 [--latency <cycles>] [--no-fast-forward]\n\
         \x20                 [--json] [--out <path>]"
    );
    eprintln!("  dm-critical diff [--allow-mismatch] <old.json> <new.json>");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("diff") => diff(&args[1..]),
        _ => usage(),
    }
}

fn run(args: &[String]) {
    let mut opts = critical::CriticalOptions::default();
    let mut json = false;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--step" => {
                opts.step = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .filter(|&n| (1..=6).contains(&n))
                    .unwrap_or_else(|| usage());
            }
            "--full" => opts.full = true,
            // The default selection; accepted so scripts can be explicit.
            "--quick" => opts.full = false,
            "--jobs" => {
                opts.jobs = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--latency" => {
                opts.read_latency = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--no-fast-forward" => opts.fast_forward = false,
            "--json" => json = true,
            "--out" => {
                out = Some(it.next().cloned().unwrap_or_else(|| usage()));
                json = true;
            }
            _ => usage(),
        }
    }
    let doc = critical::critical_document(&opts, |msg| eprintln!("  {msg}")).unwrap_or_else(|e| {
        eprintln!("dm-critical: {e}");
        std::process::exit(1);
    });
    if json {
        match out {
            Some(path) => {
                std::fs::write(&path, doc.to_json())
                    .unwrap_or_else(|e| panic!("writing {path}: {e}"));
                println!("wrote critical-path document to {path}");
            }
            None => println!("{}", doc.to_json()),
        }
    } else {
        print!("{}", critical::render(&doc));
    }
}

fn load(path: &str) -> JsonValue {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    JsonValue::parse(&text).unwrap_or_else(|e| panic!("{path}: malformed JSON: {}", e.message))
}

fn diff(args: &[String]) {
    let mut allow_mismatch = false;
    let mut paths: Vec<&String> = Vec::new();
    for arg in args {
        match arg.as_str() {
            "--allow-mismatch" => allow_mismatch = true,
            _ => paths.push(arg),
        }
    }
    let [old_path, new_path] = paths[..] else {
        usage();
    };
    let outcome =
        critical::diff(&load(old_path), &load(new_path), allow_mismatch).unwrap_or_else(|e| {
            eprintln!("dm-critical diff: {e}");
            std::process::exit(1);
        });
    print!("{}", critical::render_diff(&outcome, old_path, new_path));
}
