//! The critical-path analyzer CLI.
//!
//! ```text
//! dm-critical run  [--step <1..6>] [--full|--quick] [--jobs <n>]
//!                  [--latency <cycles>] [--no-fast-forward]
//!                  [--json] [--out <path>]
//! dm-critical diff [--allow-mismatch] <old.json> <new.json>
//! ```
//!
//! `run` simulates the Fig. 7 ablation slice at one feature step (default
//! ⑥, fully featured) and prints how the end-to-end critical path
//! decomposes across resource classes — memory latency, bank conflicts,
//! FIFO capacity, AGU throughput, PE issue, writeback flush — plus the
//! ranked what-if projections (predicted saving if one constraint were
//! relaxed). `--json` emits the canonical document instead (to stdout, or
//! to `--out <path>`); it is byte-identical for any `--jobs` count and with
//! fast-forward on or off, which CI exploits as a determinism gate. Every
//! run is re-checked against the critical-path contract; a violation exits
//! non-zero.
//!
//! `diff` compares two documents and names the dominant path shift. The
//! canonical demonstration is the coupled baseline (step ①) against full
//! decoupling (step ⑥) at read latency 16, where on-path memory latency
//! collapses — the Fig. 7(a) explanation. Cross-latency comparisons are
//! refused unless `--allow-mismatch` is given, in which case a loud
//! warning banner precedes the deltas.

use dm_bench::{cli, critical};

fn usage() -> ! {
    eprintln!("usage:");
    eprintln!(
        "  dm-critical run  [--step <1..6>] [--full|--quick] [--jobs <n>]\n\
         \x20                 [--latency <cycles>] [--no-fast-forward]\n\
         \x20                 [--json] [--out <path>]"
    );
    eprintln!("  dm-critical diff [--allow-mismatch] <old.json> <new.json>");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("diff") => diff(&args[1..]),
        _ => usage(),
    }
}

fn run(args: &[String]) {
    let flags = cli::parse_run_flags(args, true).unwrap_or_else(|e| {
        eprintln!("{e}");
        usage();
    });
    let opts = critical::CriticalOptions {
        step: flags.step,
        full: flags.full,
        jobs: flags.jobs,
        fast_forward: flags.fast_forward,
        read_latency: flags.read_latency,
    };
    let doc = critical::critical_document(&opts, |msg| eprintln!("  {msg}")).unwrap_or_else(|e| {
        eprintln!("dm-critical: {e}");
        std::process::exit(1);
    });
    cli::emit_document(&flags, "critical-path document", &doc, critical::render);
}

fn diff(args: &[String]) {
    let (allow_mismatch, old_path, new_path) = cli::parse_diff_flags(args).unwrap_or_else(|e| {
        eprintln!("{e}");
        usage();
    });
    let outcome = critical::diff(
        &cli::load_json(&old_path),
        &cli::load_json(&new_path),
        allow_mismatch,
    )
    .unwrap_or_else(|e| {
        eprintln!("dm-critical diff: {e}");
        std::process::exit(1);
    });
    print!("{}", critical::render_diff(&outcome, &old_path, &new_path));
}
