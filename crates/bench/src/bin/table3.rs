//! Regenerates Table III: GeMM-core utilization of the DataMaestro-boosted
//! accelerator under real-world DNN workloads.
//!
//! Each network's layers run one by one on the fully featured system;
//! utilization follows the paper's footnote — theoretical computation
//! cycles without memory stalls over the active cycles, aggregated over the
//! whole network (layers weighted by their repeat counts).
//!
//! Pass `--quick` to simulate ResNet-18 only, `--jobs <n>` to fan the layer
//! runs out over `n` threads (output is byte-identical to `--jobs 1`),
//! `--metrics-out <path>` to dump one JSONL metrics snapshot per layer, and
//! `--trace-out <path>` to capture a Perfetto trace of the first simulated
//! layer.

use dm_sim::{StallAttribution, TraceMode};
use dm_workloads::table3_models;

fn main() {
    let args = dm_bench::parse_args();
    let quick = args.quick;
    let mut metrics_log = dm_bench::MetricsLog::create(args.metrics_out.as_deref())
        .unwrap_or_else(|e| panic!("opening metrics log: {e}"));
    let mut trace_pending = args.trace_out.as_deref();
    let paper = [
        ("ResNet-18", "CNN", 95.45),
        ("VGG-16", "CNN", 100.00),
        ("ViT-B-16", "Transformer", 99.98),
        ("BERT-Base", "Transformer", 97.85),
    ];
    println!("Table III: GeMM core utilization under real-world DNN workloads");
    println!(
        "{:<12} {:<12} {:>14} {:>12}",
        "network", "type", "measured util", "paper util"
    );
    dm_bench::rule(54);
    let cfg = args.system_config();
    if args.lint {
        let items: Vec<_> = table3_models()
            .iter()
            .filter(|m| !quick || m.name == "ResNet-18")
            .flat_map(|m| {
                m.layers.iter().map(|layer| {
                    (
                        format!("{}/{}", m.name, layer.name),
                        cfg.features,
                        layer.workload,
                    )
                })
            })
            .collect();
        dm_bench::lint_gate("table3", &items, &cfg.mem, cfg.depths);
    }
    for (model, (_, _, paper_util)) in table3_models().iter().zip(paper) {
        if quick && model.name != "ResNet-18" {
            continue;
        }
        let mut ideal = 0u64;
        let mut total = 0u64;
        let mut attribution = StallAttribution::new();
        // Layers fan out over `--jobs` threads; trace capture is pinned to
        // the first layer of the first simulated model so it stays
        // independent of thread scheduling, and the reporting below commits
        // in layer order.
        let trace_first = trace_pending.is_some();
        let reports = dm_bench::run_ordered(&model.layers, args.jobs, |i, layer| {
            let mut layer_cfg = cfg;
            if trace_first && i == 0 {
                layer_cfg.trace = TraceMode::Full;
            }
            dm_bench::measure(&layer_cfg, layer.workload, i as u64)
                .unwrap_or_else(|e| panic!("{} / {}: {e}", model.name, layer.name))
        });
        for (i, (layer, report)) in model.layers.iter().zip(&reports).enumerate() {
            if let Some(path) = trace_pending.filter(|_| i == 0) {
                dm_bench::write_trace(path, &report.traces)
                    .unwrap_or_else(|e| panic!("writing trace to {path}: {e}"));
                eprintln!(
                    "  wrote Perfetto trace of {}/{} to {path}",
                    model.name, layer.name
                );
                trace_pending = None;
            }
            metrics_log
                .record(&format!("{}/{}", model.name, layer.name), report)
                .unwrap_or_else(|e| panic!("writing metrics line: {e}"));
            ideal += report.ideal_cycles * u64::from(layer.repeat);
            total += report.total_cycles() * u64::from(layer.repeat);
            attribution.merge(&report.attribution);
            eprintln!(
                "  {:<12} {:<28} {:>8.2}%  ({} runs)",
                model.name,
                layer.name,
                100.0 * report.utilization(),
                layer.repeat
            );
        }
        let util = 100.0 * ideal as f64 / total as f64;
        println!(
            "{:<12} {:<12} {:>13.2}% {:>11.2}%",
            model.name, model.family, util, paper_util
        );
        let stalled = attribution.stalled();
        if stalled > 0 {
            let causes: Vec<String> = attribution
                .breakdown()
                .into_iter()
                .map(|(cause, n)| {
                    format!(
                        "{} {:.1}%",
                        cause.label(),
                        100.0 * n as f64 / stalled as f64
                    )
                })
                .collect();
            eprintln!(
                "  stall causes (unweighted layer sum): {}",
                causes.join(", ")
            );
        }
    }
    metrics_log
        .finish()
        .unwrap_or_else(|e| panic!("flushing metrics log: {e}"));
}
