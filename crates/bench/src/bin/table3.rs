//! Regenerates Table III: GeMM-core utilization of the DataMaestro-boosted
//! accelerator under real-world DNN workloads.
//!
//! Each network's layers run one by one on the fully featured system;
//! utilization follows the paper's footnote — theoretical computation
//! cycles without memory stalls over the active cycles, aggregated over the
//! whole network (layers weighted by their repeat counts).
//!
//! Pass `--quick` to simulate ResNet-18 only.

use dm_system::SystemConfig;
use dm_workloads::table3_models;

fn main() {
    let mut quick = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => quick = true,
            other => {
                eprintln!("unknown option: {other} (supported: --quick)");
                std::process::exit(2);
            }
        }
    }
    let paper = [
        ("ResNet-18", "CNN", 95.45),
        ("VGG-16", "CNN", 100.00),
        ("ViT-B-16", "Transformer", 99.98),
        ("BERT-Base", "Transformer", 97.85),
    ];
    println!("Table III: GeMM core utilization under real-world DNN workloads");
    println!(
        "{:<12} {:<12} {:>14} {:>12}",
        "network", "type", "measured util", "paper util"
    );
    dm_bench::rule(54);
    let cfg = SystemConfig::default();
    for (model, (_, _, paper_util)) in table3_models().iter().zip(paper) {
        if quick && model.name != "ResNet-18" {
            continue;
        }
        let mut ideal = 0u64;
        let mut total = 0u64;
        for (i, layer) in model.layers.iter().enumerate() {
            let report = dm_bench::measure(&cfg, layer.workload, i as u64)
                .unwrap_or_else(|e| panic!("{} / {}: {e}", model.name, layer.name));
            ideal += report.ideal_cycles * u64::from(layer.repeat);
            total += report.total_cycles() * u64::from(layer.repeat);
            eprintln!(
                "  {:<12} {:<28} {:>8.2}%  ({} runs)",
                model.name,
                layer.name,
                100.0 * report.utilization(),
                layer.repeat
            );
        }
        let util = 100.0 * ideal as f64 / total as f64;
        println!(
            "{:<12} {:<12} {:>13.2}% {:>11.2}%",
            model.name, model.family, util, paper_util
        );
    }
}
