//! The benchmark regression harness CLI.
//!
//! ```text
//! regress run   [--out <path>] [--full|--quick] [--no-host] [--jobs <n>]
//!               [--no-fast-forward] [--time-phases] [--lint]
//! regress diff  <baseline.json> <new.json> [--threshold <fraction>]
//! regress guard <fastforward.json> <lockstep.json> [--min-ratio <r>]
//! ```
//!
//! `run` executes the benchmark suites (Fig. 7 ablation slice + Table III
//! ResNet-18 by default; everything with `--full`) and writes one canonical
//! `BENCH_*.json` document. With `--no-host` the document is fully
//! deterministic — that is how the committed `BENCH_seed.json` baseline is
//! produced and refreshed. `--jobs <n>` spreads the independent runs over
//! `n` worker threads; entries are committed in suite order, so the output
//! document is byte-identical to a `--jobs 1` run. `--no-fast-forward`
//! disables idle-cycle elision (lockstep simulation); the `suites` subtree
//! must not change, only the `host` throughput figures.
//!
//! `diff` compares two documents and exits non-zero when utilization drops
//! or p99 latency inflates beyond the tolerance (default 1 %), when the
//! suite composition drifted, or when provenance fingerprints disagree
//! (the runs measured different configurations). The `host` section is
//! never compared.
//!
//! `guard` gates the fast-forward engine itself: the two documents must
//! carry byte-identical `suites`/`detail` subtrees, and per suite the
//! fast-forward run's `host.suites[].cycles_per_sec` must be at least
//! `--min-ratio` (default 0.9) times the lockstep run's. The default floor
//! can also be set through the `DM_GUARD_FLOOR` environment variable —
//! handy for CI runners with noisy wall clocks — with an explicit
//! `--min-ratio` still taking precedence.

use dm_bench::regress;

fn usage() -> ! {
    eprintln!("usage:");
    eprintln!(
        "  regress run   [--out <path>] [--full|--quick] [--no-host] [--jobs <n>]\n\
         \x20               [--no-fast-forward] [--time-phases] [--lint]"
    );
    eprintln!("  regress diff  <baseline.json> <new.json> [--threshold <fraction>]");
    eprintln!("  regress guard <fastforward.json> <lockstep.json> [--min-ratio <r>]");
    eprintln!("                (DM_GUARD_FLOOR overrides the default 0.9 floor)");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("diff") => diff(&args[1..]),
        Some("guard") => guard(&args[1..]),
        _ => usage(),
    }
}

fn run(args: &[String]) {
    let mut out = "BENCH_current.json".to_owned();
    let mut full = false;
    let mut with_host = true;
    let mut jobs = 1;
    let mut lint = false;
    let mut fast_forward = true;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = it.next().cloned().unwrap_or_else(|| usage()),
            "--full" => full = true,
            // The default selection; accepted so scripts can be explicit.
            "--quick" => full = false,
            "--no-host" => with_host = false,
            // Host phase timing is part of the host section, which is on by
            // default; accepted so scripts can be explicit.
            "--time-phases" => with_host = true,
            "--no-fast-forward" => fast_forward = false,
            "--lint" => lint = true,
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }
    if lint {
        lint_suites(full);
    }
    let doc = regress::bench_document(full, with_host, jobs, fast_forward, |msg| {
        eprintln!("  {msg}")
    })
    .unwrap_or_else(|e| panic!("benchmark run failed: {e}"));
    std::fs::write(&out, doc.to_json()).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    let entries: usize = doc
        .get("suites")
        .and_then(|s| s.as_object())
        .map(|suites| {
            suites
                .iter()
                .filter_map(|(_, v)| v.as_array())
                .map(<[_]>::len)
                .sum()
        })
        .unwrap_or(0);
    println!("wrote {entries} suite entries to {out}");
}

/// Statically lints the same configurations `regress run` will simulate
/// (the Fig. 7 ablation slice and the Table III layers), aborting before
/// any cycle is spent if the analyzer finds an error.
fn lint_suites(full: bool) {
    use dm_compiler::FeatureSet;
    use dm_system::SystemConfig;
    use dm_workloads::{synthetic_suite, table3_models};

    let cfg = SystemConfig::default();
    let mut items = Vec::new();
    for (i, workload) in synthetic_suite().into_iter().enumerate() {
        if !full && i % 5 != 0 {
            continue;
        }
        for step in 1..=6 {
            items.push((
                format!("{workload}|step{step}"),
                FeatureSet::ablation_step(step),
                workload,
            ));
        }
    }
    for model in table3_models() {
        if !full && model.name != "ResNet-18" {
            continue;
        }
        for layer in &model.layers {
            items.push((
                format!("{}/{}", model.name, layer.name),
                cfg.features,
                layer.workload,
            ));
        }
    }
    dm_bench::lint_gate("regress", &items, &cfg.mem, cfg.depths);
}

fn load(path: &str) -> dm_sim::JsonValue {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    dm_sim::JsonValue::parse(&text)
        .unwrap_or_else(|e| panic!("{path}: malformed JSON: {}", e.message))
}

fn diff(args: &[String]) {
    let mut paths = Vec::new();
    let mut threshold = regress::DEFAULT_THRESHOLD;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--threshold" => {
                threshold = it
                    .next()
                    .and_then(|t| t.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            other => paths.push(other.to_owned()),
        }
    }
    let [old_path, new_path] = paths.as_slice() else {
        usage();
    };
    let outcome = regress::diff(&load(old_path), &load(new_path), threshold);
    if outcome.passed() {
        println!(
            "OK: {} entries within {:.2}% of {old_path}",
            outcome.compared,
            100.0 * threshold
        );
    } else {
        eprintln!(
            "REGRESSION: {} failure(s) against {old_path} (threshold {:.2}%):",
            outcome.failures.len(),
            100.0 * threshold
        );
        for failure in &outcome.failures {
            eprintln!("  {failure}");
        }
        std::process::exit(1);
    }
}

fn guard(args: &[String]) {
    let mut paths = Vec::new();
    // Floor precedence: --min-ratio > DM_GUARD_FLOOR > the built-in 0.9.
    let mut min_ratio = std::env::var("DM_GUARD_FLOOR")
        .ok()
        .map(|raw| {
            raw.parse().unwrap_or_else(|_| {
                eprintln!("DM_GUARD_FLOOR is not a number: '{raw}'");
                std::process::exit(2);
            })
        })
        .unwrap_or(regress::DEFAULT_GUARD_RATIO);
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--min-ratio" => {
                min_ratio = it
                    .next()
                    .and_then(|r| r.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            other => paths.push(other.to_owned()),
        }
    }
    let [ff_path, lockstep_path] = paths.as_slice() else {
        usage();
    };
    let outcome = regress::guard(&load(ff_path), &load(lockstep_path), min_ratio);
    for (suite, ratio) in &outcome.ratios {
        println!("  {suite}: fast-forward throughput {ratio:.2}x lockstep");
    }
    if outcome.passed() {
        println!("OK: fast-forward is bit-identical to lockstep and >= {min_ratio:.2}x its speed");
    } else {
        eprintln!("GUARD FAILED: {} violation(s):", outcome.failures.len());
        for failure in &outcome.failures {
            eprintln!("  {failure}");
        }
        std::process::exit(1);
    }
}
