//! Regenerates Fig. 8: FPGA resource utilization of the evaluation system
//! (structural LUT/FF estimate standing in for the VPK180 implementation;
//! see DESIGN.md §3 for the substitution rationale).
//!
//! Accepts the shared bench flags for uniformity; this binary is analytic
//! (no simulated runs), so `--metrics-out` writes an empty log and
//! `--trace-out` is a no-op.

use dm_cost::{fpga::fpga_report, EvaluationSystemSpec};

fn main() {
    dm_bench::note_analytic_only(&dm_bench::parse_args());
    let spec = EvaluationSystemSpec::paper();
    let report = fpga_report(&spec);
    let total = report.total();

    println!("Fig. 8: FPGA resource estimate of the DataMaestro evaluation system");
    println!("(paper measured on AMD Versal VPK180 at 125 MHz)");
    println!();
    println!("{:<28} {:>10} {:>10}", "component", "LUTs", "Regs");
    dm_bench::rule(50);
    let rows = [
        ("GeMM accelerator (8x8x8)", report.gemm),
        ("Quantization accelerator", report.quant),
        ("Five DataMaestros", report.datamaestros),
        ("Crossbar + mem control", report.interconnect),
        ("RISC-V host + platform", report.host),
    ];
    for (name, r) in rows {
        println!("{:<28} {:>10} {:>10}", name, r.luts, r.regs);
    }
    dm_bench::rule(50);
    println!("{:<28} {:>10} {:>10}", "total", total.luts, total.regs);
    println!();
    println!(
        "GeMM LUT share        : {:>6.2}%   (paper: 46.79%)",
        report.lut_share_pct(report.gemm)
    );
    println!(
        "GeMM reg share        : {:>6.2}%   (paper: 13.56%)",
        report.reg_share_pct(report.gemm)
    );
    println!(
        "DataMaestro LUT share : {:>6.2}%   (paper:  5.28%)",
        report.lut_share_pct(report.datamaestros)
    );
    println!(
        "DataMaestro reg share : {:>6.2}%   (paper:  7.46%)",
        report.reg_share_pct(report.datamaestros)
    );
    println!("totals (paper)        : 265k LUTs, 59k regs");
}
