//! Regenerates Fig. 9: system cell-area breakdown (a), the area
//! composition of DataMaestro A (b), and the power breakdown while
//! executing GeMM-64 at 1 GHz (c).
//!
//! Areas come from the structural model in `dm-cost`; the power breakdown
//! multiplies per-event energies by activity counts measured by the cycle
//! simulator on the actual GeMM-64 run.
//!
//! Pass `--metrics-out <path>` to dump the GeMM-64 run's metrics snapshot
//! and `--trace-out <path>` to capture its Perfetto trace (`--quick` is
//! accepted for uniformity; the single simulated run is already fast).

use dm_cost::area::system_area;
use dm_cost::energy::power_breakdown;
use dm_cost::{EnergyEvents, EnergyModel, EvaluationSystemSpec, UnitAreas};
use dm_sim::TraceMode;
use dm_workloads::GemmSpec;

fn main() {
    let args = dm_bench::parse_args();
    let mut metrics_log = dm_bench::MetricsLog::create(args.metrics_out.as_deref())
        .unwrap_or_else(|e| panic!("opening metrics log: {e}"));
    let spec = EvaluationSystemSpec::paper();
    let areas = system_area(&spec, &UnitAreas::default());

    println!("Fig. 9(a): system cell-area breakdown (GF22FDX-like structural model)");
    println!("total: {:.3} mm^2   (paper: 0.61 mm^2)", areas.total_mm2());
    println!();
    println!("{:<26} {:>12} {:>8}", "component", "area (um^2)", "share");
    dm_bench::rule(48);
    let dm_total = areas.datamaestro_total();
    for (name, a) in [
        ("GeMM accelerator", areas.gemm),
        ("Quantization accelerator", areas.quant),
        ("Five DataMaestros", dm_total),
        ("Scratchpad SRAM", areas.scratchpad),
        ("Crossbar", areas.crossbar),
        ("RISC-V host", areas.host),
    ] {
        println!("{:<26} {:>12.0} {:>7.2}%", name, a, areas.share_pct(a));
    }
    println!(
        "\nDataMaestro share: {:.2}% (paper: 6.43%); per-instance shares:",
        areas.share_pct(dm_total)
    );
    for (name, dm) in ["A", "B", "C", "D", "E"].iter().zip(&areas.datamaestros) {
        println!(
            "  DataMaestro {:<2} {:>6.2}%",
            name,
            areas.share_pct(dm.total())
        );
    }

    println!("\nFig. 9(b): area composition of DataMaestro A");
    let a = &areas.datamaestros[0];
    for (name, v, paper) in [
        ("data FIFOs", a.fifos, "87.76%"),
        ("AGU (6-D temporal + spatial)", a.agu, "10.00%"),
        ("MICs", a.mics, "1.04%"),
        ("Transposer", a.extensions, "1.75%"),
        ("address remapper", a.remapper, "0.49%"),
    ] {
        println!(
            "  {:<30} {:>6.2}%   (paper: {})",
            name,
            100.0 * v / a.total(),
            paper
        );
    }

    // --- Fig. 9(c): power while executing GeMM-64 at 1 GHz --------------
    let mut cfg = args.system_config();
    if args.trace_out.is_some() {
        cfg.trace = TraceMode::Full;
    }
    let report =
        dm_bench::measure(&cfg, GemmSpec::new(64, 64, 64).into(), 9).expect("GeMM-64 runs");
    if let Some(path) = args.trace_out.as_deref() {
        dm_bench::write_trace(path, &report.traces)
            .unwrap_or_else(|e| panic!("writing trace to {path}: {e}"));
        eprintln!("  wrote Perfetto trace of GeMM-64 to {path}");
    }
    metrics_log
        .record("GeMM-64", &report)
        .unwrap_or_else(|e| panic!("writing metrics line: {e}"));
    metrics_log
        .finish()
        .unwrap_or_else(|e| panic!("flushing metrics log: {e}"));
    let tiles = 64u64;
    let events = EnergyEvents {
        sram_reads: report.mem_reads,
        sram_writes: report.mem_writes,
        macs: report.active_cycles * 512,
        rescales: tiles * 64,
        fifo_words: report.mem_reads + report.mem_writes,
        agu_steps: report
            .streamer_stats
            .iter()
            .map(|s| s.temporal_addresses.get())
            .sum(),
        cycles: report.total_cycles(),
    };
    let power = power_breakdown(&events, &EnergyModel::default(), 1e9);
    println!("\nFig. 9(c): power breakdown executing GeMM-64 at 1 GHz");
    println!(
        "total: {:.1} mW   (paper: 329.4 mW); utilization of the run: {}",
        power.total_mw(),
        dm_bench::pct(report.utilization())
    );
    for (name, p) in [
        ("GeMM accelerator", power.gemm_mw),
        ("Quantization accelerator", power.quant_mw),
        ("Five DataMaestros", power.datamaestros_mw),
        ("Scratchpad + crossbar", power.memory_mw),
        ("RISC-V host", power.host_mw),
        ("clock tree / leakage", power.static_mw),
    ] {
        println!("  {:<26} {:>8.1} mW {:>7.2}%", name, p, power.share_pct(p));
    }
    println!(
        "\nDataMaestro power share: {:.2}% (paper: 15.06%)",
        power.share_pct(power.datamaestros_mw)
    );
    println!(
        "system efficiency: {:.2} TOPS/W (paper: 2.57 TOPS/W)",
        power.tops_per_watt(events.macs, events.cycles, 1e9)
    );
}
