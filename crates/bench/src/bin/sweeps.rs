//! Design-choice ablation sweeps (DESIGN.md §5): prints the simulated
//! utilization behind the `design_sweeps` Criterion benches.
//!
//! * per-channel data FIFO depth (`D_DBf`) under FIMA pressure;
//! * addressing-mode selection (FIMA / GIMA group sizes / NIMA-style) on a
//!   fixed GeMM;
//! * bank-count scaling of the scratchpad.
//!
//! Pass `--quick` to run a reduced set of sweep points, `--jobs <n>` to fan
//! each sweep's points out over `n` threads (output is byte-identical to
//! `--jobs 1`), `--metrics-out <path>` to dump one JSONL metrics snapshot
//! per configuration, and `--trace-out <path>` to capture a Perfetto trace
//! of the first (depth-1 FIMA) run.

use dm_compiler::{BufferDepths, FeatureSet};
use dm_mem::MemConfig;
use dm_sim::TraceMode;
use dm_system::SystemConfig;
use dm_workloads::GemmSpec;

fn main() {
    let args = dm_bench::parse_args();
    let quick = args.quick;
    let mut metrics_log = dm_bench::MetricsLog::create(args.metrics_out.as_deref())
        .unwrap_or_else(|e| panic!("opening metrics log: {e}"));
    let mut trace_pending = args.trace_out.as_deref();
    let workload = GemmSpec::new(64, 64, 64).into();

    if args.lint {
        // Pre-flight the two placements the sweeps compare: the step-5
        // shared-FIMA placement is expected to carry conflict warnings (that
        // is the point of the sweep), step 6 must analyze clean.
        let cfg = SystemConfig::default();
        let items = vec![
            (
                "gemm-64|step5-fima".to_owned(),
                FeatureSet::ablation_step(5),
                workload,
            ),
            (
                "gemm-64|step6-gima".to_owned(),
                FeatureSet::ablation_step(6),
                workload,
            ),
        ];
        dm_bench::lint_gate("sweeps", &items, &cfg.mem, cfg.depths);
    }

    println!("FIFO depth sweep (GeMM-64, FIMA placement — conflicts must be absorbed):");
    println!(
        "{:<8} {:>12} {:>12} {:>10}",
        "D_DBf", "utilization", "conflicts", "cycles"
    );
    dm_bench::rule(46);
    let depths: &[usize] = if quick {
        &[1, 4, 16]
    } else {
        &[1, 2, 4, 8, 16, 32]
    };
    // Every sweep below fans its independent points out over `--jobs`
    // threads; printing and metrics logging commit in point order, so the
    // output is byte-identical to a sequential run.
    let trace_first = trace_pending.is_some();
    let reports = dm_bench::run_ordered(depths, args.jobs, |i, &depth| {
        let mut cfg = SystemConfig {
            depths: BufferDepths {
                data: depth,
                ..BufferDepths::default()
            },
            features: FeatureSet::ablation_step(5),
            check_output: false,
            ..args.system_config()
        };
        if trace_first && i == 0 {
            cfg.trace = TraceMode::Full;
        }
        dm_bench::measure(&cfg, workload, 1).expect("runs")
    });
    for (i, (&depth, r)) in depths.iter().zip(&reports).enumerate() {
        if let Some(path) = trace_pending.filter(|_| i == 0) {
            dm_bench::write_trace(path, &r.traces)
                .unwrap_or_else(|e| panic!("writing trace to {path}: {e}"));
            eprintln!("  wrote Perfetto trace of depth-{depth} FIMA run to {path}");
            trace_pending = None;
        }
        metrics_log
            .record(&format!("fifo-depth|{depth}"), r)
            .unwrap_or_else(|e| panic!("writing metrics line: {e}"));
        println!(
            "{:<8} {:>11.2}% {:>12} {:>10}",
            depth,
            100.0 * r.utilization(),
            r.conflicts,
            r.total_cycles()
        );
    }

    println!("\naddressing-mode effect (GeMM-64) — the Fig. 5(d) trade-off:");
    println!(
        "{:<26} {:>12} {:>12}",
        "placement", "utilization", "conflicts"
    );
    dm_bench::rule(52);
    let placements = [("FIMA (shared space)", 5usize), ("GIMA (bank groups)", 6)];
    let reports = dm_bench::run_ordered(&placements, args.jobs, |_, &(_, step)| {
        let cfg = SystemConfig {
            check_output: false,
            ..args.system_config()
        }
        .with_features(FeatureSet::ablation_step(step));
        dm_bench::measure(&cfg, workload, 1).expect("runs")
    });
    for (&(name, _), r) in placements.iter().zip(&reports) {
        metrics_log
            .record(&format!("placement|{name}"), r)
            .unwrap_or_else(|e| panic!("writing metrics line: {e}"));
        println!(
            "{:<26} {:>11.2}% {:>12}",
            name,
            100.0 * r.utilization(),
            r.conflicts
        );
    }
    {
        use dm_compiler::{compile_gemm_private_banks, BufferDepths};
        use dm_system::run_compiled;
        use dm_workloads::WorkloadData;
        let cfg = SystemConfig {
            check_output: false,
            ..args.system_config()
        };
        let data = WorkloadData::generate(workload, 1);
        let program =
            compile_gemm_private_banks(&data, &cfg.features, &cfg.mem, BufferDepths::default())
                .expect("fits");
        let r = run_compiled(&cfg, &data, &program).expect("runs");
        println!(
            "{:<26} {:>11.2}% {:>12}",
            "NIMA (private banks)",
            100.0 * r.utilization(),
            r.conflicts
        );
        // …and its tiling constraint: the same placement refuses a GeMM
        // whose per-bank slice exceeds one bank.
        let big = WorkloadData::generate(dm_workloads::GemmSpec::new(4096, 32, 4096).into(), 1);
        let refused =
            compile_gemm_private_banks(&big, &cfg.features, &cfg.mem, BufferDepths::default());
        println!(
            "{:<26} {}",
            "NIMA on 4096x32x4096",
            match refused {
                Err(e) => format!("refused: {e}"),
                Ok(_) => "unexpectedly accepted".to_string(),
            }
        );
    }

    println!("\nmemory-latency tolerance (GeMM-64): fine-grained prefetch vs coarse");
    println!(
        "{:<10} {:>16} {:>16}",
        "latency", "prefetch util", "coarse util"
    );
    dm_bench::rule(44);
    let latencies: &[u64] = if quick { &[1, 4] } else { &[1, 2, 4, 8, 16] };
    let reports = dm_bench::run_ordered(latencies, args.jobs, |_, &latency| {
        [6usize, 1].map(|step| {
            let cfg = SystemConfig {
                read_latency: latency,
                check_output: false,
                ..args.system_config()
            }
            .with_features(FeatureSet::ablation_step(step));
            dm_bench::measure(&cfg, workload, 1).expect("runs")
        })
    });
    for (&latency, pair) in latencies.iter().zip(&reports) {
        for (step, r) in [6usize, 1].iter().zip(pair) {
            metrics_log
                .record(&format!("latency|{latency}|step{step}"), r)
                .unwrap_or_else(|e| panic!("writing metrics line: {e}"));
        }
        println!(
            "{:<10} {:>15.2}% {:>15.2}%",
            latency,
            100.0 * pair[0].utilization(),
            100.0 * pair[1].utilization()
        );
    }

    println!("\nbank-count scaling (GeMM-64, fully featured):");
    println!("{:<8} {:>12} {:>12}", "banks", "utilization", "conflicts");
    dm_bench::rule(34);
    let bank_counts: &[usize] = if quick { &[16, 32] } else { &[8, 16, 32, 64] };
    let reports = dm_bench::run_ordered(bank_counts, args.jobs, |_, &banks| {
        let rows = 16 * 1024 * 1024 / (banks * 8);
        let cfg = SystemConfig {
            mem: MemConfig::new(banks, 8, rows.next_power_of_two()).expect("geometry"),
            check_output: false,
            ..args.system_config()
        };
        dm_bench::measure(&cfg, workload, 1).expect("runs")
    });
    for (&banks, r) in bank_counts.iter().zip(&reports) {
        metrics_log
            .record(&format!("banks|{banks}"), r)
            .unwrap_or_else(|e| panic!("writing metrics line: {e}"));
        println!(
            "{:<8} {:>11.2}% {:>12}",
            banks,
            100.0 * r.utilization(),
            r.conflicts
        );
    }
    metrics_log
        .finish()
        .unwrap_or_else(|e| panic!("flushing metrics log: {e}"));
}
