//! Regenerates Table II: design-time parameters and runtime configurations
//! of DataMaestro, instantiated for the evaluation system's five streamers
//! (Fig. 6 right).
//!
//! Accepts the shared bench flags for uniformity; this binary is analytic
//! (no simulated runs), so `--metrics-out` writes an empty log and
//! `--trace-out` is a no-op.

use dm_compiler::{design_a, design_b, design_c, design_d, design_e, BufferDepths, FeatureSet};

fn main() {
    dm_bench::note_analytic_only(&dm_bench::parse_args());
    println!("Table II: design-time parameters and runtime configurations");
    println!();
    println!("Design-time parameters (per DataMaestro instance):");
    println!("  N_R / N_W     number of read / write DataMaestros (3 / 2 here)");
    println!("  Mode_R/W      read or write mode");
    println!("  B_s, D_s      spatial bounds and dimension count");
    println!("  D_t           temporal dimension count");
    println!("  N_C           memory channels (= product of B_s)");
    println!("  D_ABf, D_DBf  address / data buffer depths");
    println!("  DP_ext        datapath extensions");
    println!("  W_B, N_BF     bank width and bank count (32 x 64 bit here)");
    println!();
    println!("Runtime configurations (CSR writes per workload):");
    println!("  Addr_B        base address");
    println!("  S_s           spatial strides");
    println!("  B_t, S_t      temporal bounds and strides");
    println!("  R_S           addressing-mode selection (FIMA/GIMA/NIMA)");
    println!();

    let features = FeatureSet::full();
    let depths = BufferDepths::default();
    let designs = [
        design_a(&features, depths).expect("valid"),
        design_b(&features, depths).expect("valid"),
        design_c(&features, depths).expect("valid"),
        design_d(&features, depths).expect("valid"),
        design_e(&features, depths).expect("valid"),
    ];
    println!("Evaluation-system instantiation (Fig. 6 right):");
    println!(
        "{:<6} {:<7} {:<14} {:<5} {:<5} {:<7} {:<7} DP_ext",
        "Name", "Mode", "B_s", "D_t", "N_C", "D_ABf", "D_DBf"
    );
    dm_bench::rule(76);
    for d in &designs {
        let exts: Vec<String> = d.extensions().iter().map(ToString::to_string).collect();
        println!(
            "{:<6} {:<7} {:<14} {:<5} {:<5} {:<7} {:<7} {}",
            d.name(),
            d.mode().to_string(),
            format!("{:?}", d.spatial_bounds()),
            d.temporal_dims(),
            d.num_channels(),
            d.addr_buffer_depth(),
            d.data_buffer_depth(),
            if exts.is_empty() {
                "-".to_string()
            } else {
                exts.join(", ")
            },
        );
    }
}
