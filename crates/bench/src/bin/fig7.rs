//! Regenerates Fig. 7: the ablation study over the 260-workload synthetic
//! suite.
//!
//! * Fig. 7(a): GeMM-core utilization distribution (box-plot statistics and
//!   mean) per kernel group, for configurations ① (baseline) through ⑥
//!   (fully featured);
//! * Fig. 7(b): data access counts per configuration, normalized to the
//!   baseline ①, per kernel group.
//!
//! Pass `--quick` to run on every 5th workload for a fast smoke pass,
//! `--jobs <n>` to fan the independent runs out over `n` threads (output is
//! byte-identical to `--jobs 1`), `--metrics-out <path>` to dump one JSONL
//! metrics snapshot per run, and `--trace-out <path>` to capture a Perfetto
//! trace of the first workload's fully-featured (step ⑥) run.

use std::collections::BTreeMap;

use dm_compiler::FeatureSet;
use dm_sim::{Distribution, OperandPort, StallAttribution, StallCause, TraceMode};
use dm_system::SystemConfig;
use dm_workloads::{synthetic_suite, WorkloadGroup};

fn main() {
    let args = dm_bench::parse_args();
    let quick = args.quick;
    let mut metrics_log = dm_bench::MetricsLog::create(args.metrics_out.as_deref())
        .unwrap_or_else(|e| panic!("opening metrics log: {e}"));
    let mut trace_pending = args.trace_out.as_deref();
    let suite: Vec<_> = synthetic_suite()
        .into_iter()
        .enumerate()
        .filter(|(i, _)| !quick || i % 5 == 0)
        .map(|(_, w)| w)
        .collect();
    println!(
        "Fig. 7 ablation over {} synthetic workloads{}",
        suite.len(),
        if quick { " (--quick subset)" } else { "" }
    );
    if args.lint {
        // Pre-flight every (workload, step) configuration the ablation will
        // simulate; a configuration the analyzer rejects would waste the
        // whole sweep.
        let cfg = SystemConfig::default();
        let items: Vec<_> = suite
            .iter()
            .flat_map(|w| {
                (1..=6).map(move |step| {
                    (
                        format!("{w}|step{step}"),
                        FeatureSet::ablation_step(step),
                        *w,
                    )
                })
            })
            .collect();
        dm_bench::lint_gate("fig7", &items, &cfg.mem, cfg.depths);
    }

    let groups = [
        WorkloadGroup::Gemm,
        WorkloadGroup::TransposedGemm,
        WorkloadGroup::Conv,
    ];
    // utilization distributions per (group, step) and access ratios.
    let mut utils: BTreeMap<(WorkloadGroup, usize), Distribution> = BTreeMap::new();
    let mut access_ratio: BTreeMap<(WorkloadGroup, usize), Distribution> = BTreeMap::new();
    let mut attribution: BTreeMap<usize, StallAttribution> = BTreeMap::new();

    // One work item = one workload through all six ablation steps; the
    // simulation runs fan out over `--jobs` threads while trace capture,
    // metrics logging and the statistics accumulation below stay on this
    // thread, committed in suite order.
    let reports = dm_bench::run_ordered(&suite, args.jobs, |idx, workload| {
        (1..=6)
            .map(|step| {
                let mut cfg = args
                    .system_config()
                    .with_features(FeatureSet::ablation_step(step));
                // Capture the requested Perfetto trace on the first
                // workload's fully-featured run (tracing never changes the
                // measurement, and pinning the choice to item 0 keeps it
                // independent of thread scheduling).
                if args.trace_out.is_some() && idx == 0 && step == 6 {
                    cfg.trace = TraceMode::Full;
                }
                dm_bench::measure(&cfg, *workload, idx as u64)
                    .unwrap_or_else(|e| panic!("step {step} on {workload}: {e}"))
            })
            .collect::<Vec<_>>()
    });
    for (idx, (workload, step_reports)) in suite.iter().zip(&reports).enumerate() {
        let mut baseline_accesses = 0u64;
        for (report, step) in step_reports.iter().zip(1..=6) {
            if step == 1 {
                baseline_accesses = report.accesses();
            }
            if let Some(path) = trace_pending.filter(|_| idx == 0 && step == 6) {
                dm_bench::write_trace(path, &report.traces)
                    .unwrap_or_else(|e| panic!("writing trace to {path}: {e}"));
                eprintln!("  wrote Perfetto trace of '{workload}' (step 6) to {path}");
                trace_pending = None;
            }
            metrics_log
                .record(&format!("{workload}|step{step}"), report)
                .unwrap_or_else(|e| panic!("writing metrics line: {e}"));
            utils
                .entry((workload.group(), step))
                .or_default()
                .record(report.utilization());
            access_ratio
                .entry((workload.group(), step))
                .or_default()
                .record(report.accesses() as f64 / baseline_accesses as f64);
            attribution
                .entry(step)
                .or_default()
                .merge(&report.attribution);
        }
        if (idx + 1) % 20 == 0 {
            eprintln!("  …{}/{} workloads", idx + 1, suite.len());
        }
    }
    metrics_log
        .finish()
        .unwrap_or_else(|e| panic!("flushing metrics log: {e}"));

    println!("\nFig. 7(a): utilization distribution per group and configuration");
    println!("(1=baseline 2=+prefetch 3=+transposer 4=+broadcaster 5=+im2col 6=+mode-switching)");
    for group in groups {
        println!("\n  {group}:");
        println!(
            "  {:<6} {:>8} {:>8} {:>8} {:>8} {:>8} {:>8}",
            "step", "min", "q1", "median", "q3", "max", "mean"
        );
        for step in 1..=6 {
            let s = utils[&(group, step)].summary();
            println!(
                "  {:<6} {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}% {:>7.1}%",
                step,
                100.0 * s.min,
                100.0 * s.q1,
                100.0 * s.median,
                100.0 * s.q3,
                100.0 * s.max,
                100.0 * s.mean
            );
        }
    }

    println!("\nFig. 7(b): data access counts normalized to baseline (mean per group)");
    println!(
        "  {:<18} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "group", "1", "2", "3", "4", "5", "6"
    );
    for group in groups {
        print!("  {:<18}", group.to_string());
        for step in 1..=6 {
            let mean = access_ratio[&(group, step)].summary().mean;
            print!(" {mean:>6.3}");
        }
        println!();
    }

    println!("\nStall attribution per configuration (share of compute cycles, all groups)");
    println!(
        "  {:<6} {:>7} {:>11} {:>14} {:>10} {:>7}",
        "step", "fired", "no-operand", "bank-conflict", "writeback", "drain"
    );
    for step in 1..=6 {
        let at = &attribution[&step];
        let total = at.total_cycles() as f64;
        let sum_for = |f: &dyn Fn(OperandPort) -> StallCause| -> u64 {
            OperandPort::ALL.iter().map(|&p| at.count(f(p))).sum()
        };
        let share = |n: u64| 100.0 * n as f64 / total;
        println!(
            "  {:<6} {:>6.1}% {:>10.1}% {:>13.1}% {:>9.1}% {:>6.1}%",
            step,
            share(at.fired()),
            share(sum_for(&StallCause::NoOperand)),
            share(sum_for(&StallCause::BankConflict)),
            share(at.count(StallCause::WritebackBackpressure)),
            share(at.count(StallCause::Drain)),
        );
    }

    // Headline numbers the paper reports for the same figure.
    let speedup_max: f64 = groups
        .iter()
        .flat_map(|g| {
            let base = utils[&(*g, 1)].samples().to_vec();
            let full = utils[&(*g, 6)].samples().to_vec();
            base.into_iter()
                .zip(full)
                .map(|(b, f)| f / b)
                .collect::<Vec<_>>()
        })
        .fold(0.0, f64::max);
    let access_min: f64 = groups
        .iter()
        .map(|g| {
            access_ratio[&(*g, 6)]
                .samples()
                .iter()
                .copied()
                .fold(f64::MAX, f64::min)
        })
        .fold(f64::MAX, f64::min);
    println!("\nheadline: max speedup 6 vs 1 = {speedup_max:.2}x (paper: up to 2.89x)");
    println!(
        "headline: max access reduction = {:.2}% (paper: up to 21.15%)",
        100.0 * (1.0 - access_min)
    );
}
