//! The causal bottleneck profiler CLI.
//!
//! ```text
//! dm-profile run  [--step <1..6>] [--full|--quick] [--jobs <n>]
//!                 [--latency <cycles>] [--no-fast-forward]
//!                 [--json] [--out <path>]
//! dm-profile diff <old.json> <new.json>
//! ```
//!
//! `run` simulates the Fig. 7 ablation slice at one feature step (default
//! ⑥, fully featured) and prints where the stalled cycles went: which
//! banks, AGUs, sync gates or the writeback flush each cycle was ultimately
//! waiting on, segmented into fill/steady/drain phases. `--json` emits the
//! canonical document instead (to stdout, or to `--out <path>`); it is
//! byte-identical for any `--jobs` count and with fast-forward on or off,
//! which CI exploits as a determinism gate. Every run is re-checked against
//! the blame conservation contract; a violation exits non-zero.
//!
//! `diff` compares two documents — typically adjacent ablation steps — and
//! names the dominant blame shift. The canonical demonstration is FIMA
//! placement (step ⑤) against bank-aware remapping (step ⑥), where
//! bank-conflict blame collapses.

use dm_bench::profile;
use dm_sim::JsonValue;

fn usage() -> ! {
    eprintln!("usage:");
    eprintln!(
        "  dm-profile run  [--step <1..6>] [--full|--quick] [--jobs <n>]\n\
         \x20                [--latency <cycles>] [--no-fast-forward]\n\
         \x20                [--json] [--out <path>]"
    );
    eprintln!("  dm-profile diff <old.json> <new.json>");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("diff") => diff(&args[1..]),
        _ => usage(),
    }
}

fn run(args: &[String]) {
    let mut opts = profile::ProfileOptions::default();
    let mut json = false;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--step" => {
                opts.step = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .filter(|&n| (1..=6).contains(&n))
                    .unwrap_or_else(|| usage());
            }
            "--full" => opts.full = true,
            // The default selection; accepted so scripts can be explicit.
            "--quick" => opts.full = false,
            "--jobs" => {
                opts.jobs = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--latency" => {
                opts.read_latency = it
                    .next()
                    .and_then(|n| n.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| usage());
            }
            "--no-fast-forward" => opts.fast_forward = false,
            "--json" => json = true,
            "--out" => {
                out = Some(it.next().cloned().unwrap_or_else(|| usage()));
                json = true;
            }
            _ => usage(),
        }
    }
    let doc = profile::profile_document(&opts, |msg| eprintln!("  {msg}")).unwrap_or_else(|e| {
        eprintln!("dm-profile: {e}");
        std::process::exit(1);
    });
    if json {
        match out {
            Some(path) => {
                std::fs::write(&path, doc.to_json())
                    .unwrap_or_else(|e| panic!("writing {path}: {e}"));
                println!("wrote profile to {path}");
            }
            None => println!("{}", doc.to_json()),
        }
    } else {
        print!("{}", profile::render(&doc));
    }
}

fn load(path: &str) -> JsonValue {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    JsonValue::parse(&text).unwrap_or_else(|e| panic!("{path}: malformed JSON: {}", e.message))
}

fn diff(args: &[String]) {
    let [old_path, new_path] = args else {
        usage();
    };
    let outcome = profile::diff(&load(old_path), &load(new_path)).unwrap_or_else(|e| {
        eprintln!("dm-profile diff: {e}");
        std::process::exit(1);
    });
    print!("{}", profile::render_diff(&outcome, old_path, new_path));
}
