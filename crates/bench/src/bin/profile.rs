//! The causal bottleneck profiler CLI.
//!
//! ```text
//! dm-profile run  [--step <1..6>] [--full|--quick] [--jobs <n>]
//!                 [--latency <cycles>] [--no-fast-forward]
//!                 [--json] [--out <path>]
//! dm-profile diff [--allow-mismatch] <old.json> <new.json>
//! ```
//!
//! `run` simulates the Fig. 7 ablation slice at one feature step (default
//! ⑥, fully featured) and prints where the stalled cycles went: which
//! banks, AGUs, sync gates or the writeback flush each cycle was ultimately
//! waiting on, segmented into fill/steady/drain phases. `--json` emits the
//! canonical document instead (to stdout, or to `--out <path>`); it is
//! byte-identical for any `--jobs` count and with fast-forward on or off,
//! which CI exploits as a determinism gate. Every run is re-checked against
//! the blame conservation contract; a violation exits non-zero.
//!
//! `diff` compares two documents — typically adjacent ablation steps — and
//! names the dominant blame shift. The canonical demonstration is FIMA
//! placement (step ⑤) against bank-aware remapping (step ⑥), where
//! bank-conflict blame collapses. Cross-latency documents are refused
//! unless `--allow-mismatch` is given — latency-sweep comparisons (the
//! Fig. 7(a) axis) are then possible, behind a loud warning banner.

use dm_bench::{cli, profile};

fn usage() -> ! {
    eprintln!("usage:");
    eprintln!(
        "  dm-profile run  [--step <1..6>] [--full|--quick] [--jobs <n>]\n\
         \x20                [--latency <cycles>] [--no-fast-forward]\n\
         \x20                [--json] [--out <path>]"
    );
    eprintln!("  dm-profile diff [--allow-mismatch] <old.json> <new.json>");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("run") => run(&args[1..]),
        Some("diff") => diff(&args[1..]),
        _ => usage(),
    }
}

fn run(args: &[String]) {
    let flags = cli::parse_run_flags(args, true).unwrap_or_else(|e| {
        eprintln!("{e}");
        usage();
    });
    let opts = profile::ProfileOptions {
        step: flags.step,
        full: flags.full,
        jobs: flags.jobs,
        fast_forward: flags.fast_forward,
        read_latency: flags.read_latency,
    };
    let doc = profile::profile_document(&opts, |msg| eprintln!("  {msg}")).unwrap_or_else(|e| {
        eprintln!("dm-profile: {e}");
        std::process::exit(1);
    });
    cli::emit_document(&flags, "profile", &doc, profile::render);
}

fn diff(args: &[String]) {
    let (allow_mismatch, old_path, new_path) = cli::parse_diff_flags(args).unwrap_or_else(|e| {
        eprintln!("{e}");
        usage();
    });
    let outcome = profile::diff(
        &cli::load_json(&old_path),
        &cli::load_json(&new_path),
        allow_mismatch,
    )
    .unwrap_or_else(|e| {
        eprintln!("dm-profile diff: {e}");
        std::process::exit(1);
    });
    print!("{}", profile::render_diff(&outcome, &old_path, &new_path));
}
