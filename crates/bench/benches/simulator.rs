//! End-to-end simulator throughput: full evaluation-system runs per second
//! (compile + preload + cycle loop + verification).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dm_system::{run_workload, SystemConfig};
use dm_workloads::{ConvSpec, GemmSpec, WorkloadData};
use std::hint::black_box;

fn bench_runs(c: &mut Criterion) {
    let mut group = c.benchmark_group("system-run");
    let cfg = SystemConfig {
        check_output: false,
        ..SystemConfig::default()
    };

    let gemm = WorkloadData::generate(GemmSpec::new(64, 64, 64).into(), 1);
    group.throughput(Throughput::Elements(gemm.workload.ideal_cycles()));
    group.bench_function("gemm-64", |b| {
        b.iter(|| black_box(run_workload(&cfg, &gemm).expect("runs")));
    });

    let conv = WorkloadData::generate(ConvSpec::new(18, 18, 32, 32, 3, 3, 1).into(), 2);
    group.throughput(Throughput::Elements(conv.workload.ideal_cycles()));
    group.bench_function("conv3x3-16x16x32", |b| {
        b.iter(|| black_box(run_workload(&cfg, &conv).expect("runs")));
    });

    let tgemm = WorkloadData::generate(GemmSpec::transposed(64, 64, 64).into(), 3);
    group.throughput(Throughput::Elements(tgemm.workload.ideal_cycles()));
    group.bench_function("tgemm-64", |b| {
        b.iter(|| black_box(run_workload(&cfg, &tgemm).expect("runs")));
    });
    group.finish();
}

fn bench_verified_run(c: &mut Criterion) {
    // Includes golden-model computation and byte-exact output comparison.
    let cfg = SystemConfig::default();
    let gemm = WorkloadData::generate(GemmSpec::new(32, 32, 32).into(), 4);
    c.bench_function("system-run/gemm-32-verified", |b| {
        b.iter(|| black_box(run_workload(&cfg, &gemm).expect("runs")));
    });
}

criterion_group! {
    name = benches;
    config = Criterion.sample_size(10);
    targets = bench_runs, bench_verified_run
}
criterion_main!(benches);
