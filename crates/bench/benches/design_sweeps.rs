//! Design-choice ablation benches (the sweeps DESIGN.md §5 calls out),
//! measuring the wall-clock cost of simulating the same workload under
//! different design parameters. Note that wall time mixes simulated cycle
//! count with per-cycle simulation activity, so it is a software-cost
//! measurement; the authoritative *hardware* numbers (utilization,
//! conflicts) are printed by the companion binary
//! `cargo run -p dm-bench --bin sweeps --release`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dm_compiler::{BufferDepths, FeatureSet};
use dm_system::{run_workload, SystemConfig};
use dm_workloads::{GemmSpec, WorkloadData};
use std::hint::black_box;

fn base_config() -> SystemConfig {
    SystemConfig {
        check_output: false,
        ..SystemConfig::default()
    }
}

fn bench_fifo_depth(c: &mut Criterion) {
    let data = WorkloadData::generate(GemmSpec::new(64, 64, 64).into(), 1);
    let mut group = c.benchmark_group("fifo-depth");
    for depth in [2usize, 4, 8, 16] {
        let cfg = SystemConfig {
            depths: BufferDepths {
                data: depth,
                ..BufferDepths::default()
            },
            // FIMA stresses the FIFOs: conflicts must be absorbed.
            features: FeatureSet::ablation_step(5),
            ..base_config()
        };
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, _| {
            b.iter(|| black_box(run_workload(&cfg, &data).expect("runs")));
        });
    }
    group.finish();
}

fn bench_addressing_mode(c: &mut Criterion) {
    let data = WorkloadData::generate(GemmSpec::new(64, 64, 64).into(), 2);
    let mut group = c.benchmark_group("addressing-mode");
    for (name, step) in [("fima", 5usize), ("gima", 6)] {
        let cfg = base_config().with_features(FeatureSet::ablation_step(step));
        group.bench_with_input(BenchmarkId::from_parameter(name), &step, |b, _| {
            b.iter(|| black_box(run_workload(&cfg, &data).expect("runs")));
        });
    }
    group.finish();
}

fn bench_prefetch(c: &mut Criterion) {
    let data = WorkloadData::generate(GemmSpec::new(64, 64, 64).into(), 3);
    let mut group = c.benchmark_group("prefetch");
    for (name, step) in [("coarse", 1usize), ("fine-grained", 2)] {
        let cfg = base_config().with_features(FeatureSet::ablation_step(step));
        group.bench_with_input(BenchmarkId::from_parameter(name), &step, |b, _| {
            b.iter(|| black_box(run_workload(&cfg, &data).expect("runs")));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion.sample_size(10);
    targets = bench_fifo_depth, bench_addressing_mode, bench_prefetch
}
criterion_main!(benches);
