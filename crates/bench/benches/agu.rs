//! AGU microbenchmark: the paper's dual-counter temporal AGU against the
//! naive divide/multiply implementation (§III-B's microarchitectural
//! argument, measured here as software model throughput).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use datamaestro::agu::{naive_temporal_addresses, SpatialAgu, TemporalAgu};
use std::hint::black_box;

fn bench_temporal(c: &mut Criterion) {
    let mut group = c.benchmark_group("temporal-agu");
    for dims in [2usize, 4, 6] {
        let bounds: Vec<u64> = (0..dims).map(|d| if d < 2 { 16 } else { 4 }).collect();
        let strides: Vec<i64> = (0..dims).map(|d| 8 << d).collect();
        let total: u64 = bounds.iter().product();
        group.bench_with_input(BenchmarkId::new("dual-counter", dims), &dims, |b, _| {
            b.iter(|| {
                let mut agu = TemporalAgu::new(0, &bounds, &strides);
                let mut acc = 0u64;
                while let Some(a) = agu.next_address() {
                    acc = acc.wrapping_add(a);
                }
                black_box(acc)
            });
        });
        group.bench_with_input(BenchmarkId::new("naive", dims), &dims, |b, _| {
            b.iter(|| {
                let addrs = naive_temporal_addresses(0, &bounds, &strides);
                black_box(addrs.iter().copied().fold(0u64, u64::wrapping_add))
            });
        });
        group.throughput(criterion::Throughput::Elements(total));
    }
    group.finish();
}

fn bench_spatial(c: &mut Criterion) {
    c.bench_function("spatial-agu-32ch", |b| {
        let agu = SpatialAgu::new(&[2, 2, 2, 2, 2], &[8, 16, 32, 64, 128]);
        b.iter(|| {
            let mut acc = 0u64;
            for ch in 0..32 {
                acc = acc.wrapping_add(agu.channel_address(black_box(4096), ch));
            }
            black_box(acc)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion.sample_size(20);
    targets = bench_temporal, bench_spatial
}
criterion_main!(benches);
