//! Memory subsystem microbenchmarks: address remapping throughput per
//! addressing mode and crossbar arbitration under varying contention.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dm_mem::{
    AddressRemapper, AddressingMode, BankLocation, MemConfig, MemOp, MemRequest, MemorySubsystem,
};
use std::hint::black_box;

fn bench_remapper(c: &mut Criterion) {
    let cfg = MemConfig::new(32, 8, 4096).unwrap();
    let mut group = c.benchmark_group("remapper");
    for (name, mode) in [
        ("fima", AddressingMode::FullyInterleaved),
        (
            "gima8",
            AddressingMode::GroupedInterleaved { group_banks: 8 },
        ),
        ("nima", AddressingMode::NonInterleaved),
    ] {
        let remap = AddressRemapper::new(&cfg, mode).unwrap();
        group.bench_function(BenchmarkId::new("map", name), |b| {
            b.iter(|| {
                let mut acc = 0usize;
                for w in 0..1024u64 {
                    let loc = remap.map_word(black_box(w * 37 % remap.capacity_words()));
                    acc += loc.bank + loc.row;
                }
                black_box(acc)
            });
        });
    }
    group.finish();
}

fn bench_crossbar(c: &mut Criterion) {
    let mut group = c.benchmark_group("crossbar");
    // Contention levels: requesters per bank in a single cycle.
    for contention in [1usize, 4, 16] {
        group.bench_with_input(
            BenchmarkId::new("arbitrate-16req", contention),
            &contention,
            |b, &contention| {
                let mut mem = MemorySubsystem::new(MemConfig::new(32, 8, 256).unwrap());
                let ids: Vec<_> = (0..16)
                    .map(|i| mem.register_requester(format!("r{i}")))
                    .collect();
                b.iter(|| {
                    for (i, &id) in ids.iter().enumerate() {
                        mem.submit(MemRequest {
                            requester: id,
                            loc: BankLocation {
                                bank: (i / contention) % 32,
                                row: 0,
                            },
                            tag: 0,
                            op: MemOp::Read,
                        })
                        .unwrap();
                    }
                    let grants = mem.arbitrate();
                    black_box(grants.iter().filter(|&&g| g).count());
                    black_box(mem.take_responses().len())
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion.sample_size(20);
    targets = bench_remapper, bench_crossbar
}
criterion_main!(benches);
