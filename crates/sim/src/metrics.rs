//! Hierarchical metrics registry.
//!
//! Every instrumented component publishes its counters and gauges into a
//! [`MetricsRegistry`] under a dotted component path (`streamer.A.ch3.
//! granted`, `mem.conflicts`, `system.stall.drain`), so the system can
//! snapshot everything uniformly and exporters can dump one flat,
//! deterministic map per run. Paths sort lexicographically; snapshots of
//! identical runs compare equal (`PartialEq`), which the system exploits to
//! assert that instrumentation never perturbs simulation state.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::histogram::LatencyHistogram;
use crate::json::{JsonError, JsonValue};
use crate::stats::Summary;

/// One published metric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MetricValue {
    /// A monotonically accumulated event count.
    Counter(u64),
    /// A point-in-time or derived value.
    Gauge(f64),
}

impl MetricValue {
    /// The value as a float regardless of variant.
    #[must_use]
    pub fn as_f64(self) -> f64 {
        match self {
            MetricValue::Counter(n) => n as f64,
            MetricValue::Gauge(g) => g,
        }
    }

    fn to_json(self) -> JsonValue {
        match self {
            MetricValue::Counter(n) => JsonValue::from(n),
            MetricValue::Gauge(g) => JsonValue::from(g),
        }
    }
}

/// Components that can publish their state into a registry.
///
/// Implementors write metrics relative to the registry's current scope; the
/// caller chooses the component path via [`MetricsRegistry::with_scope`].
pub trait Instrumented {
    /// Publishes this component's metrics under the registry's current
    /// scope.
    fn register_metrics(&self, registry: &mut MetricsRegistry);
}

/// A component-path-keyed snapshot of every metric in the system.
///
/// # Examples
///
/// ```
/// use dm_sim::{MetricsRegistry, MetricValue};
///
/// let mut reg = MetricsRegistry::new();
/// reg.with_scope("streamer.A", |r| {
///     r.set_counter("granted", 128);
///     r.with_scope("ch0", |r| r.set_gauge("occupancy", 0.5));
/// });
/// assert_eq!(reg.get("streamer.A.granted"), Some(MetricValue::Counter(128)));
/// assert_eq!(reg.get("streamer.A.ch0.occupancy"), Some(MetricValue::Gauge(0.5)));
/// ```
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    #[serde(skip)]
    prefix: String,
    metrics: BTreeMap<String, MetricValue>,
}

impl MetricsRegistry {
    /// Creates an empty registry at the root scope.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Runs `f` with `segment` appended to the scope path. Nested calls
    /// compose (`a` then `b` publishes under `a.b.`).
    pub fn with_scope(&mut self, segment: &str, f: impl FnOnce(&mut Self)) {
        let saved = self.prefix.len();
        if !self.prefix.is_empty() {
            self.prefix.push('.');
        }
        self.prefix.push_str(segment);
        f(self);
        self.prefix.truncate(saved);
    }

    fn full_path(&self, name: &str) -> String {
        if self.prefix.is_empty() {
            name.to_owned()
        } else {
            format!("{}.{name}", self.prefix)
        }
    }

    /// Publishes a counter under the current scope.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.metrics
            .insert(self.full_path(name), MetricValue::Counter(value));
    }

    /// Publishes a gauge under the current scope.
    ///
    /// # Panics
    ///
    /// Panics on NaN — like [`crate::stats::Distribution::record`], a NaN
    /// metric always indicates an upstream bug.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        assert!(!value.is_nan(), "NaN metric {}", self.full_path(name));
        self.metrics
            .insert(self.full_path(name), MetricValue::Gauge(value));
    }

    /// Publishes a distribution summary as `name.{count,min,q1,median,q3,
    /// max,mean}` gauges under the current scope.
    pub fn set_summary(&mut self, name: &str, summary: &Summary) {
        self.with_scope(name, |r| {
            r.set_counter("count", summary.count as u64);
            r.set_gauge("min", summary.min);
            r.set_gauge("q1", summary.q1);
            r.set_gauge("median", summary.median);
            r.set_gauge("q3", summary.q3);
            r.set_gauge("max", summary.max);
            r.set_gauge("mean", summary.mean);
        });
    }

    /// Publishes a latency histogram as `name.{count,sum,min,p50,p90,p99,
    /// max,mean}` under the current scope. Empty histograms publish nothing
    /// (so an idle channel leaves no misleading all-zero percentiles).
    pub fn set_histogram(&mut self, name: &str, hist: &LatencyHistogram) {
        if hist.is_empty() {
            return;
        }
        let (p50, p90, p99, max) = hist.summary_percentiles();
        self.with_scope(name, |r| {
            r.set_counter("count", hist.count());
            r.set_counter("sum", hist.sum());
            r.set_counter("min", hist.min());
            r.set_counter("p50", p50);
            r.set_counter("p90", p90);
            r.set_counter("p99", p99);
            r.set_counter("max", max);
            r.set_gauge("mean", hist.mean());
        });
    }

    /// Looks up a metric by its full dotted path.
    #[must_use]
    pub fn get(&self, path: &str) -> Option<MetricValue> {
        self.metrics.get(path).copied()
    }

    /// Number of published metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// `true` when nothing has been published.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// All metrics in lexicographic path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, MetricValue)> {
        self.metrics.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// The snapshot as one flat JSON object keyed by path (sorted).
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Object(
            self.metrics
                .iter()
                .map(|(k, v)| (k.clone(), v.to_json()))
                .collect(),
        )
    }

    /// Parses a snapshot serialized by [`to_json`](Self::to_json). Numbers
    /// without a fraction load as counters, others as gauges; since
    /// [`MetricValue::as_f64`] is variant-agnostic this round-trips all
    /// values exactly.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed JSON or a non-object root.
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        let root = JsonValue::parse(text)?;
        let pairs = root.as_object().ok_or(JsonError {
            message: "metrics snapshot must be a JSON object",
            offset: 0,
        })?;
        let mut reg = MetricsRegistry::new();
        for (path, value) in pairs {
            let metric = match value.as_u64() {
                Some(n) => MetricValue::Counter(n),
                None => MetricValue::Gauge(value.as_f64().ok_or(JsonError {
                    message: "metric value must be a number",
                    offset: 0,
                })?),
            };
            reg.metrics.insert(path.clone(), metric);
        }
        Ok(reg)
    }
}

impl fmt::Display for MetricsRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (path, value) in &self.metrics {
            match value {
                MetricValue::Counter(n) => writeln!(f, "{path} = {n}")?,
                MetricValue::Gauge(g) => writeln!(f, "{path} = {g}")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Distribution;

    #[test]
    fn scopes_nest_and_restore() {
        let mut reg = MetricsRegistry::new();
        reg.set_counter("top", 1);
        reg.with_scope("a", |r| {
            r.set_counter("x", 2);
            r.with_scope("b", |r| r.set_counter("y", 3));
            r.set_counter("z", 4);
        });
        reg.set_counter("bottom", 5);
        assert_eq!(reg.get("top"), Some(MetricValue::Counter(1)));
        assert_eq!(reg.get("a.x"), Some(MetricValue::Counter(2)));
        assert_eq!(reg.get("a.b.y"), Some(MetricValue::Counter(3)));
        assert_eq!(reg.get("a.z"), Some(MetricValue::Counter(4)));
        assert_eq!(reg.get("bottom"), Some(MetricValue::Counter(5)));
        assert_eq!(reg.len(), 5);
    }

    #[test]
    fn iteration_is_sorted_by_path() {
        let mut reg = MetricsRegistry::new();
        reg.set_counter("b", 1);
        reg.set_counter("a", 2);
        reg.set_counter("a.c", 3);
        let paths: Vec<&str> = reg.iter().map(|(p, _)| p).collect();
        assert_eq!(paths, vec!["a", "a.c", "b"]);
    }

    #[test]
    fn summary_flattens_to_gauges() {
        let d: Distribution = [1.0, 2.0, 3.0].into_iter().collect();
        let mut reg = MetricsRegistry::new();
        reg.with_scope("mem", |r| r.set_summary("bank_accesses", &d.summary()));
        assert_eq!(
            reg.get("mem.bank_accesses.count"),
            Some(MetricValue::Counter(3))
        );
        assert_eq!(
            reg.get("mem.bank_accesses.median"),
            Some(MetricValue::Gauge(2.0))
        );
    }

    #[test]
    fn json_roundtrip_preserves_snapshot() {
        let mut reg = MetricsRegistry::new();
        reg.set_counter("system.cycles", 12345);
        reg.set_gauge("system.utilization", 0.875);
        reg.with_scope("streamer.A", |r| r.set_counter("retries", 7));
        let text = reg.to_json().to_json();
        let back = MetricsRegistry::from_json(&text).unwrap();
        assert_eq!(back, reg);
    }

    #[test]
    fn from_json_rejects_non_objects() {
        assert!(MetricsRegistry::from_json("[1,2]").is_err());
        assert!(MetricsRegistry::from_json("{\"a\": \"str\"}").is_err());
    }

    #[test]
    #[should_panic(expected = "NaN metric")]
    fn nan_gauge_panics() {
        MetricsRegistry::new().set_gauge("bad", f64::NAN);
    }

    #[test]
    fn display_lists_metrics() {
        let mut reg = MetricsRegistry::new();
        reg.set_counter("a", 1);
        assert_eq!(reg.to_string(), "a = 1\n");
    }
}
