//! Causal blame-chain attribution.
//!
//! [`StallAttribution`] (PR 1) classifies every non-firing PE cycle at the
//! PE boundary: *which* operand was missing, or whether writeback pushed
//! back. This module goes one level deeper: for every stalled cycle the
//! system walks the dependency chain backwards — empty operand FIFO → which
//! streamer stage was blocked → AGU cadence vs. lost arbitration vs.
//! in-flight memory latency vs. the coarse-grained sync gate — and charges
//! the cycle to a single *component instance* leaf ([`BlameLeaf`]), e.g.
//! `bank[3]` or `streamer.B.agu`, nested under the cause bucket.
//!
//! The contract is conservation, exactly like PR 1's
//! `fired + Σ stalls == compute cycles`: for every cause,
//! `Σ blame leaves == attribution count`, per phase and in total
//! ([`BlameProfile::conserves`]). The system asserts it at the end of every
//! run and (cheaply) per cycle in debug builds.
//!
//! Runs are additionally segmented into fill / steady / drain phases
//! ([`BlamePhase`]): fill is every cycle before the first PE fire, drain is
//! every cycle after the last compute step issued, steady is the rest.
//! Blame is recorded per phase so a profile can distinguish a pipeline that
//! fills slowly from one that bottlenecks mid-flight.

use std::fmt;

use crate::json::JsonValue;
use crate::stall::{StallAttribution, StallCause};

/// Which part of a run a cycle belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BlamePhase {
    /// Before the first PE fire: the pipeline is filling.
    Fill,
    /// Between the first fire and the last issued compute step.
    Steady,
    /// After the last compute step issued: waiting for writeback to drain.
    Drain,
}

impl BlamePhase {
    /// Every phase, in run order.
    pub const ALL: [BlamePhase; 3] = [BlamePhase::Fill, BlamePhase::Steady, BlamePhase::Drain];

    /// Stable lowercase label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            BlamePhase::Fill => "fill",
            BlamePhase::Steady => "steady",
            BlamePhase::Drain => "drain",
        }
    }

    fn index(self) -> usize {
        match self {
            BlamePhase::Fill => 0,
            BlamePhase::Steady => 1,
            BlamePhase::Drain => 2,
        }
    }
}

impl fmt::Display for BlamePhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The component instance a stalled cycle is ultimately charged to.
///
/// The leaf is interpreted relative to the [`StallCause`] it nests under
/// (which names the port): `Agu` under `NoOperand(B)` renders as
/// `streamer.B.agu`, `Bank(3)` renders as `bank[3]` regardless of port.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum BlameLeaf {
    /// The streamer's address-generation cadence: the AGU had not yet
    /// produced the address the blocked channel needed.
    Agu,
    /// The coarse-grained sync gate: addresses were queued but the gate
    /// kept the channel from issuing its next request.
    Gate,
    /// A scratchpad bank: the request lost arbitration there, or the
    /// response from that bank was still in flight.
    Bank(usize),
    /// The writeback path itself during drain: data written, tail flushing.
    Flush,
    /// The walk found no blocked stage (backstop; conservation still holds).
    Unattributed,
}

impl BlameLeaf {
    /// Renders the leaf relative to the cause it nests under, e.g.
    /// `streamer.B.agu`, `bank[3]`, `streamer.OUT.flush`.
    #[must_use]
    pub fn label(self, cause: StallCause) -> String {
        let port = cause.port().label();
        match self {
            BlameLeaf::Agu => format!("streamer.{port}.agu"),
            BlameLeaf::Gate => format!("streamer.{port}.gate"),
            BlameLeaf::Bank(i) => format!("bank[{i}]"),
            BlameLeaf::Flush => format!("streamer.{port}.flush"),
            BlameLeaf::Unattributed => "unattributed".to_owned(),
        }
    }
}

/// Number of non-bank leaf slots per cause row.
const FIXED_LEAVES: usize = 4;

/// Per-cause × per-leaf stall counts: the hierarchical half of a profile.
///
/// Storage is a flat `causes × (4 + banks)` table so recording is one
/// add — cheap enough for the per-cycle hot loop and for the O(1)
/// fast-forward span replay ([`record_n`](Self::record_n)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlameTree {
    banks: usize,
    counts: Vec<u64>,
}

impl BlameTree {
    /// An empty tree for a machine with `banks` scratchpad banks.
    #[must_use]
    pub fn new(banks: usize) -> Self {
        BlameTree {
            banks,
            counts: vec![0; StallCause::ALL.len() * (FIXED_LEAVES + banks)],
        }
    }

    fn row(&self) -> usize {
        FIXED_LEAVES + self.banks
    }

    fn slot(&self, cause: StallCause, leaf: BlameLeaf) -> usize {
        let leaf_slot = match leaf {
            BlameLeaf::Agu => 0,
            BlameLeaf::Gate => 1,
            BlameLeaf::Flush => 2,
            BlameLeaf::Unattributed => 3,
            BlameLeaf::Bank(i) => {
                assert!(
                    i < self.banks,
                    "bank {i} out of range ({} banks)",
                    self.banks
                );
                FIXED_LEAVES + i
            }
        };
        cause.index() * self.row() + leaf_slot
    }

    /// Charges one stalled cycle to `leaf` under `cause`.
    pub fn record(&mut self, cause: StallCause, leaf: BlameLeaf) {
        let slot = self.slot(cause, leaf);
        self.counts[slot] += 1;
    }

    /// Charges `n` cycles in O(1) — the fast-forward span replay. The
    /// result is bit-identical to `n` calls to [`record`](Self::record).
    pub fn record_n(&mut self, cause: StallCause, leaf: BlameLeaf, n: u64) {
        let slot = self.slot(cause, leaf);
        self.counts[slot] += n;
    }

    /// Cycles charged to `leaf` under `cause`.
    #[must_use]
    pub fn count(&self, cause: StallCause, leaf: BlameLeaf) -> u64 {
        self.counts[self.slot(cause, leaf)]
    }

    /// Total cycles charged under `cause`, across all leaves.
    #[must_use]
    pub fn cause_total(&self, cause: StallCause) -> u64 {
        let row = self.row();
        self.counts[cause.index() * row..(cause.index() + 1) * row]
            .iter()
            .sum()
    }

    /// Total cycles in the tree.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(cause, leaf, cycles)` for every nonzero slot, in reporting order.
    #[must_use]
    pub fn leaves(&self) -> Vec<(StallCause, BlameLeaf, u64)> {
        let mut out = Vec::new();
        for &cause in &StallCause::ALL {
            for leaf in self.leaf_order() {
                let n = self.count(cause, leaf);
                if n > 0 {
                    out.push((cause, leaf, n));
                }
            }
        }
        out
    }

    fn leaf_order(&self) -> impl Iterator<Item = BlameLeaf> + '_ {
        [
            BlameLeaf::Agu,
            BlameLeaf::Gate,
            BlameLeaf::Flush,
            BlameLeaf::Unattributed,
        ]
        .into_iter()
        .chain((0..self.banks).map(BlameLeaf::Bank))
    }

    /// Merges another tree into this one (phase → total aggregation).
    ///
    /// # Panics
    /// If the trees were built for different bank counts.
    pub fn merge(&mut self, other: &BlameTree) {
        assert_eq!(self.banks, other.banks, "bank count mismatch in merge");
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
    }

    /// The tree as nested JSON: `{cause label: {leaf label: cycles}}`,
    /// nonzero entries only, reporting order.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let mut causes = Vec::new();
        for &cause in &StallCause::ALL {
            let leaves: Vec<(String, JsonValue)> = self
                .leaf_order()
                .filter_map(|leaf| {
                    let n = self.count(cause, leaf);
                    (n > 0).then(|| (leaf.label(cause), JsonValue::from(n)))
                })
                .collect();
            if !leaves.is_empty() {
                causes.push((cause.label().to_owned(), JsonValue::Object(leaves)));
            }
        }
        JsonValue::Object(causes)
    }
}

/// The full causal profile of one run: a [`BlameTree`] per phase plus the
/// fire counts and phase boundaries needed to segment and cross-check it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlameProfile {
    banks: usize,
    phases: [BlameTree; 3],
    fired: [u64; 3],
    first_fire: Option<u64>,
    last_fire: Option<u64>,
}

impl BlameProfile {
    /// An empty profile for a machine with `banks` scratchpad banks.
    #[must_use]
    pub fn new(banks: usize) -> Self {
        BlameProfile {
            banks,
            phases: [
                BlameTree::new(banks),
                BlameTree::new(banks),
                BlameTree::new(banks),
            ],
            fired: [0; 3],
            first_fire: None,
            last_fire: None,
        }
    }

    /// Records a firing cycle in `phase` at cycle `now`.
    pub fn record_fire(&mut self, phase: BlamePhase, now: u64) {
        self.fired[phase.index()] += 1;
        if self.first_fire.is_none() {
            self.first_fire = Some(now);
        }
        self.last_fire = Some(now);
    }

    /// Charges one stalled cycle in `phase` to `leaf` under `cause`.
    pub fn record(&mut self, phase: BlamePhase, cause: StallCause, leaf: BlameLeaf) {
        self.phases[phase.index()].record(cause, leaf);
    }

    /// Charges `n` stalled cycles in O(1) (fast-forward span replay);
    /// bit-identical to `n` calls to [`record`](Self::record).
    pub fn record_n(&mut self, phase: BlamePhase, cause: StallCause, leaf: BlameLeaf, n: u64) {
        self.phases[phase.index()].record_n(cause, leaf, n);
    }

    /// The blame tree of one phase.
    #[must_use]
    pub fn phase(&self, phase: BlamePhase) -> &BlameTree {
        &self.phases[phase.index()]
    }

    /// Cycles the PE fired during `phase`.
    #[must_use]
    pub fn fired_in(&self, phase: BlamePhase) -> u64 {
        self.fired[phase.index()]
    }

    /// Cycles the PE fired, all phases.
    #[must_use]
    pub fn fired(&self) -> u64 {
        self.fired.iter().sum()
    }

    /// Total stalled cycles charged, all phases.
    #[must_use]
    pub fn stalled(&self) -> u64 {
        self.phases.iter().map(BlameTree::total).sum()
    }

    /// Cycle of the first PE fire, if any.
    #[must_use]
    pub fn first_fire(&self) -> Option<u64> {
        self.first_fire
    }

    /// Cycle of the last PE fire, if any.
    #[must_use]
    pub fn last_fire(&self) -> Option<u64> {
        self.last_fire
    }

    /// All phases merged into one tree.
    #[must_use]
    pub fn total(&self) -> BlameTree {
        let mut tree = self.phases[0].clone();
        tree.merge(&self.phases[1]);
        tree.merge(&self.phases[2]);
        tree
    }

    /// Cycles charged under `cause`, all phases.
    #[must_use]
    pub fn cause_total(&self, cause: StallCause) -> u64 {
        self.phases.iter().map(|t| t.cause_total(cause)).sum()
    }

    /// The conservation contract: every stall the attribution counted is
    /// charged to exactly one leaf under the *same* cause, and every fire
    /// is counted in exactly one phase. Holds per cause (hence per port)
    /// and in total.
    #[must_use]
    pub fn conserves(&self, attribution: &StallAttribution) -> bool {
        StallCause::ALL
            .iter()
            .all(|&cause| self.cause_total(cause) == attribution.count(cause))
            && self.fired() == attribution.fired()
    }

    /// Merges another profile (suite-level aggregation). Phase boundaries
    /// keep the earliest first-fire and latest last-fire.
    ///
    /// # Panics
    /// If the profiles were built for different bank counts.
    pub fn merge(&mut self, other: &BlameProfile) {
        assert_eq!(self.banks, other.banks, "bank count mismatch in merge");
        for (mine, theirs) in self.phases.iter_mut().zip(&other.phases) {
            mine.merge(theirs);
        }
        for (mine, theirs) in self.fired.iter_mut().zip(&other.fired) {
            *mine += theirs;
        }
        self.first_fire = match (self.first_fire, other.first_fire) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        self.last_fire = match (self.last_fire, other.last_fire) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }

    /// The profile as canonical JSON: per-phase cycle counts and cause →
    /// leaf trees, plus the merged total. Key order is fixed (phases in run
    /// order, causes and leaves in reporting order) so equal profiles
    /// serialize byte-identically.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let phase_json = |phase: BlamePhase| {
            let tree = self.phase(phase);
            JsonValue::object([
                (
                    "cycles".to_owned(),
                    JsonValue::from(self.fired_in(phase) + tree.total()),
                ),
                ("fired".to_owned(), JsonValue::from(self.fired_in(phase))),
                ("stalled".to_owned(), JsonValue::from(tree.total())),
                ("causes".to_owned(), tree.to_json()),
            ])
        };
        let bound = |cycle: Option<u64>| match cycle {
            Some(c) => JsonValue::from(c),
            None => JsonValue::Null,
        };
        JsonValue::object([
            ("first_fire".to_owned(), bound(self.first_fire)),
            ("last_fire".to_owned(), bound(self.last_fire)),
            (
                "phases".to_owned(),
                JsonValue::object(
                    BlamePhase::ALL
                        .iter()
                        .map(|&p| (p.label().to_owned(), phase_json(p))),
                ),
            ),
            ("total".to_owned(), self.total().to_json()),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stall::OperandPort;

    const NO_B: StallCause = StallCause::NoOperand(OperandPort::B);
    const BC_A: StallCause = StallCause::BankConflict(OperandPort::A);

    #[test]
    fn record_n_matches_repeated_records() {
        let mut bulk = BlameTree::new(4);
        let mut single = BlameTree::new(4);
        bulk.record_n(BC_A, BlameLeaf::Bank(2), 9);
        bulk.record_n(NO_B, BlameLeaf::Agu, 0);
        for _ in 0..9 {
            single.record(BC_A, BlameLeaf::Bank(2));
        }
        assert_eq!(bulk, single);
        assert_eq!(bulk.total(), 9);
        assert_eq!(bulk.cause_total(BC_A), 9);
        assert_eq!(bulk.count(BC_A, BlameLeaf::Bank(2)), 9);
    }

    #[test]
    fn leaves_report_nonzero_slots_in_order() {
        let mut tree = BlameTree::new(2);
        tree.record(NO_B, BlameLeaf::Bank(1));
        tree.record(NO_B, BlameLeaf::Agu);
        tree.record(StallCause::Drain, BlameLeaf::Flush);
        let got = tree.leaves();
        assert_eq!(
            got,
            vec![
                (NO_B, BlameLeaf::Agu, 1),
                (NO_B, BlameLeaf::Bank(1), 1),
                (StallCause::Drain, BlameLeaf::Flush, 1),
            ]
        );
    }

    #[test]
    fn leaf_labels_render_relative_to_cause() {
        assert_eq!(BlameLeaf::Agu.label(NO_B), "streamer.B.agu");
        assert_eq!(BlameLeaf::Gate.label(BC_A), "streamer.A.gate");
        assert_eq!(BlameLeaf::Bank(3).label(BC_A), "bank[3]");
        assert_eq!(
            BlameLeaf::Flush.label(StallCause::Drain),
            "streamer.OUT.flush"
        );
        assert_eq!(
            BlameLeaf::Agu.label(StallCause::WritebackBackpressure),
            "streamer.OUT.agu"
        );
        assert_eq!(BlameLeaf::Unattributed.label(NO_B), "unattributed");
    }

    #[test]
    fn profile_conserves_against_matching_attribution() {
        let mut att = StallAttribution::new();
        let mut blame = BlameProfile::new(8);
        blame.record(BlamePhase::Fill, NO_B, BlameLeaf::Agu);
        att.record_stall(NO_B);
        blame.record_n(BlamePhase::Steady, BC_A, BlameLeaf::Bank(5), 3);
        att.record_stall_n(BC_A, 3);
        for cycle in 4..7 {
            blame.record_fire(BlamePhase::Steady, cycle);
            att.record_fire();
        }
        blame.record(BlamePhase::Drain, StallCause::Drain, BlameLeaf::Flush);
        att.record_stall(StallCause::Drain);
        assert!(blame.conserves(&att));
        assert_eq!(blame.first_fire(), Some(4));
        assert_eq!(blame.last_fire(), Some(6));
        assert_eq!(blame.stalled(), att.stalled());

        // Any mismatch breaks it: same totals, different cause.
        let mut skewed = blame.clone();
        skewed.record(BlamePhase::Steady, NO_B, BlameLeaf::Agu);
        let mut att2 = att;
        att2.record_stall(BC_A);
        assert!(!skewed.conserves(&att2));
    }

    #[test]
    fn merge_accumulates_and_widens_bounds() {
        let mut a = BlameProfile::new(4);
        a.record_fire(BlamePhase::Steady, 10);
        a.record(BlamePhase::Steady, NO_B, BlameLeaf::Agu);
        let mut b = BlameProfile::new(4);
        b.record_fire(BlamePhase::Steady, 3);
        b.record_fire(BlamePhase::Steady, 20);
        a.merge(&b);
        assert_eq!(a.fired(), 3);
        assert_eq!(a.first_fire(), Some(3));
        assert_eq!(a.last_fire(), Some(20));
        assert_eq!(a.total().total(), 1);
    }

    #[test]
    fn json_is_deterministic_and_nests_causes() {
        let mut blame = BlameProfile::new(4);
        blame.record_fire(BlamePhase::Steady, 2);
        blame.record(BlamePhase::Steady, BC_A, BlameLeaf::Bank(1));
        blame.record(BlamePhase::Drain, StallCause::Drain, BlameLeaf::Flush);
        let json = blame.to_json();
        assert_eq!(json.to_json(), blame.clone().to_json().to_json());
        let steady = json.get("phases").unwrap().get("steady").unwrap();
        assert_eq!(steady.get("cycles").unwrap().as_u64(), Some(2));
        assert_eq!(
            steady
                .get("causes")
                .unwrap()
                .get("bank-conflict(A)")
                .unwrap()
                .get("bank[1]")
                .unwrap()
                .as_u64(),
            Some(1)
        );
        let total = json.get("total").unwrap();
        assert_eq!(
            total
                .get("drain")
                .unwrap()
                .get("streamer.OUT.flush")
                .unwrap()
                .as_u64(),
            Some(1)
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_bank_panics() {
        let mut tree = BlameTree::new(2);
        tree.record(BC_A, BlameLeaf::Bank(2));
    }
}
