//! Simulation substrate for the DataMaestro reproduction.
//!
//! This crate provides the low-level, hardware-flavoured building blocks that
//! the rest of the workspace composes into a cycle-level simulator of the
//! DataMaestro evaluation system (DAC 2025):
//!
//! * [`Cycle`] — a strongly typed clock-cycle count;
//! * [`Fifo`] — a bounded queue with *slot reservation*, modelling a hardware
//!   data FIFO whose free space can be claimed by in-flight memory requests
//!   (the paper's Outstanding Request Manager relies on this);
//! * [`RoundRobinArbiter`] — fair single-grant arbitration, used per memory
//!   bank by the interleaved crossbar;
//! * [`stats`] — simple saturating counters and distribution summaries
//!   (min / quartiles / max / mean) used to reproduce the paper's box plots;
//! * [`histogram`] — log-bucketed, mergeable latency/occupancy histograms
//!   (p50/p90/p99/max with bounded relative error) for request lifetimes;
//! * [`hash`] — a stable FNV-1a hasher for provenance fingerprints;
//! * [`trace`] — an optional, cheap typed event trace for pipelines;
//! * [`stall`] — the per-cycle stall-cause taxonomy and attribution used to
//!   explain the paper's ablation deltas;
//! * [`blame`] — the causal blame-chain profile nested under that taxonomy:
//!   per-phase, per-component-instance charging of every stalled cycle with
//!   an exact conservation contract against [`StallAttribution`];
//! * [`critical`] — critical-path extraction over the token-level causal
//!   DAG, folded online into O(1) state: per-resource on-path composition
//!   and validated what-if projections;
//! * [`forward`] — the deterministic fast-forward scheduler: conservative
//!   [`NextActivity`] horizons, span folding, and the debug-build
//!   [`SpanCheck`] that catches optimistic horizons;
//! * [`metrics`] — the hierarchical, path-keyed metrics registry every
//!   instrumented component snapshots into;
//! * [`json`] / [`perfetto`] — dependency-free JSON plumbing and the
//!   Chrome/Perfetto `trace_event` exporter for captured traces.
//!
//! Everything here is deterministic: no wall-clock time, no randomness.
//!
//! # Examples
//!
//! ```
//! use dm_sim::{Cycle, Fifo};
//!
//! let mut fifo: Fifo<u32> = Fifo::new(2);
//! let slot = fifo.try_reserve().expect("empty fifo has space");
//! fifo.fill_reserved(slot, 7);
//! assert_eq!(fifo.pop(), Some(7));
//! assert_eq!(Cycle::ZERO + 3, Cycle::new(3));
//! ```

// The cycle kernel lives here: performance lints are errors, not hints.

pub mod arbiter;
pub mod blame;
pub mod critical;
pub mod cycle;
pub mod fifo;
pub mod forward;
pub mod hash;
pub mod histogram;
pub mod json;
pub mod metrics;
pub mod perfetto;
pub mod period;
pub mod stall;
pub mod stats;
pub mod trace;

pub use arbiter::RoundRobinArbiter;
pub use blame::{BlameLeaf, BlamePhase, BlameProfile, BlameTree};
pub use critical::{CritClass, CriticalProfile, WhatIf};
pub use cycle::Cycle;
pub use fifo::{Fifo, ReservedSlot};
pub use forward::{FastForward, NextActivity, SpanCheck};
pub use hash::StableHasher;
pub use histogram::LatencyHistogram;
pub use json::{JsonError, JsonValue};
pub use metrics::{Instrumented, MetricValue, MetricsRegistry};
pub use period::{is_periodic_with, minimal_period};
pub use stall::{OperandPort, Port, StallAttribution, StallCause};
pub use stats::{Counter, Distribution, Summary};
pub use trace::{Trace, TraceEvent, TraceEventKind, TraceMode};
