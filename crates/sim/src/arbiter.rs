//! Round-robin arbitration.

/// A work-conserving round-robin arbiter over a fixed set of requesters.
///
/// Each memory bank in the interleaved crossbar (Fig. 2a of the paper) grants
/// at most one request per cycle; ties between simultaneously requesting
/// channels are broken fairly with a rotating priority pointer so that no
/// channel can be starved.
///
/// # Examples
///
/// ```
/// use dm_sim::RoundRobinArbiter;
///
/// let mut arb = RoundRobinArbiter::new(4);
/// // Requesters 1 and 3 are asking; requester 1 wins first …
/// assert_eq!(arb.grant(&[false, true, false, true]), Some(1));
/// // … and the pointer moves past it, so requester 3 wins next.
/// assert_eq!(arb.grant(&[false, true, false, true]), Some(3));
/// assert_eq!(arb.grant(&[false, true, false, true]), Some(1));
/// assert_eq!(arb.grant(&[false, false, false, false]), None);
/// ```
#[derive(Debug, Clone)]
pub struct RoundRobinArbiter {
    ports: usize,
    next: usize,
}

impl RoundRobinArbiter {
    /// Creates an arbiter for `ports` requesters.
    ///
    /// # Panics
    ///
    /// Panics if `ports` is zero.
    #[must_use]
    pub fn new(ports: usize) -> Self {
        assert!(ports > 0, "arbiter needs at least one port");
        RoundRobinArbiter { ports, next: 0 }
    }

    /// Number of requester ports.
    #[must_use]
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Grants one of the asserted requests, if any, and advances the
    /// priority pointer past the winner.
    ///
    /// # Panics
    ///
    /// Panics if `requests.len()` differs from the configured port count.
    pub fn grant(&mut self, requests: &[bool]) -> Option<usize> {
        assert_eq!(requests.len(), self.ports, "request vector width mismatch");
        for offset in 0..self.ports {
            let idx = (self.next + offset) % self.ports;
            if requests[idx] {
                self.next = (idx + 1) % self.ports;
                return Some(idx);
            }
        }
        None
    }

    /// Like [`grant`](Self::grant) but over an explicit list of requesting
    /// port indices, which is cheaper when requests are sparse.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn grant_sparse(&mut self, requesting: &[usize]) -> Option<usize> {
        if requesting.is_empty() {
            return None;
        }
        let mut best: Option<(usize, usize)> = None; // (distance, idx)
        for &idx in requesting {
            assert!(idx < self.ports, "requester index out of range");
            let distance = (idx + self.ports - self.next) % self.ports;
            match best {
                Some((d, _)) if d <= distance => {}
                _ => best = Some((distance, idx)),
            }
        }
        let (_, idx) = best.expect("non-empty requesting list");
        self.next = (idx + 1) % self.ports;
        Some(idx)
    }

    /// Resets the priority pointer.
    pub fn reset(&mut self) {
        self.next = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn single_requester_always_wins() {
        let mut arb = RoundRobinArbiter::new(3);
        for _ in 0..5 {
            assert_eq!(arb.grant(&[false, false, true]), Some(2));
        }
    }

    #[test]
    fn rotation_is_fair() {
        let mut arb = RoundRobinArbiter::new(3);
        let all = [true, true, true];
        let winners: Vec<_> = (0..6).map(|_| arb.grant(&all).unwrap()).collect();
        assert_eq!(winners, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn no_request_no_grant() {
        let mut arb = RoundRobinArbiter::new(2);
        assert_eq!(arb.grant(&[false, false]), None);
    }

    #[test]
    fn sparse_matches_dense() {
        let mut dense = RoundRobinArbiter::new(8);
        let mut sparse = RoundRobinArbiter::new(8);
        let patterns: &[&[usize]] = &[&[1, 5], &[5], &[0, 1, 7], &[], &[3, 4]];
        for pattern in patterns {
            let mut requests = [false; 8];
            for &i in *pattern {
                requests[i] = true;
            }
            assert_eq!(dense.grant(&requests), sparse.grant_sparse(pattern));
        }
    }

    #[test]
    fn reset_restores_priority() {
        let mut arb = RoundRobinArbiter::new(2);
        assert_eq!(arb.grant(&[true, true]), Some(0));
        arb.reset();
        assert_eq!(arb.grant(&[true, true]), Some(0));
    }

    proptest! {
        /// Under persistent contention every requester is granted within
        /// `ports` consecutive cycles (no starvation).
        #[test]
        fn no_starvation(ports in 1usize..16) {
            let mut arb = RoundRobinArbiter::new(ports);
            let all = vec![true; ports];
            let mut seen = vec![false; ports];
            for _ in 0..ports {
                let w = arb.grant(&all).unwrap();
                prop_assert!(!seen[w], "requester granted twice in one round");
                seen[w] = true;
            }
            prop_assert!(seen.iter().all(|&s| s));
        }

        /// Sparse and dense grant agree on arbitrary request patterns.
        #[test]
        fn sparse_dense_equivalence(
            seqs in proptest::collection::vec(
                proptest::collection::vec(any::<bool>(), 8), 1..32)
        ) {
            let mut dense = RoundRobinArbiter::new(8);
            let mut sparse = RoundRobinArbiter::new(8);
            for requests in seqs {
                let sparse_list: Vec<usize> = requests
                    .iter()
                    .enumerate()
                    .filter_map(|(i, &r)| r.then_some(i))
                    .collect();
                prop_assert_eq!(
                    dense.grant(&requests),
                    sparse.grant_sparse(&sparse_list)
                );
            }
        }
    }
}
