//! Log-bucketed latency/occupancy histograms.
//!
//! The paper's decoupling argument (§III-C, Fig. 7a) is about *tails*: a
//! streamer that hides the p99 memory round-trip is what lets the PE array
//! run near the stall-free bound. Averages can't show that, so the
//! simulator records request lifetimes and FIFO occupancies into
//! [`LatencyHistogram`] — an HDR-style histogram with logarithmic buckets
//! and a fixed relative error, cheap enough to stay always-on in the
//! crossbar's grant path.
//!
//! Design points:
//!
//! * values up to [`LatencyHistogram::EXACT_LIMIT`] land in exact unit
//!   buckets (small latencies and FIFO occupancies lose no precision);
//! * larger values use [`SUB_BUCKETS`](LatencyHistogram::SUB_BUCKETS)
//!   sub-buckets per power of two, bounding relative error to
//!   `1 / SUB_BUCKETS` (6.25%);
//! * `count`, `sum`, `min` and `max` are tracked exactly, so sums of merged
//!   histograms are exact even though individual samples are bucketed;
//! * histograms [`merge`](LatencyHistogram::merge) losslessly (bucket
//!   boundaries are global constants) and round-trip through the dependency
//!   free [`crate::json`] layer for `BENCH_*.json` artifacts.
//!
//! # Examples
//!
//! ```
//! use dm_sim::LatencyHistogram;
//!
//! let mut h = LatencyHistogram::new();
//! for v in [1, 1, 2, 3, 100] {
//!     h.record(v);
//! }
//! assert_eq!(h.count(), 5);
//! assert_eq!(h.min(), 1);
//! assert_eq!(h.max(), 100);
//! assert_eq!(h.percentile(0.5), 2);
//! let back = LatencyHistogram::from_json_value(&h.to_json()).unwrap();
//! assert_eq!(back, h);
//! ```

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::json::{JsonError, JsonValue};

/// A mergeable, JSON-serializable histogram of `u64` samples with
/// logarithmic buckets (see the module docs for the bucketing rule).
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyHistogram {
    /// Bucket counts, grown lazily to the highest occupied index.
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl LatencyHistogram {
    /// log2 of [`SUB_BUCKETS`](Self::SUB_BUCKETS).
    const SUB_BITS: u32 = 4;

    /// Sub-buckets per power of two above the exact range.
    pub const SUB_BUCKETS: u64 = 1 << Self::SUB_BITS;

    /// Values strictly below this are recorded exactly (one bucket each).
    pub const EXACT_LIMIT: u64 = Self::SUB_BUCKETS;

    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Bucket index for a value.
    ///
    /// Values `< EXACT_LIMIT` map to their own bucket; above that, each
    /// power-of-two range `[2^e, 2^(e+1))` splits into `SUB_BUCKETS` equal
    /// sub-buckets.
    #[must_use]
    pub fn bucket_index(value: u64) -> usize {
        if value < Self::EXACT_LIMIT {
            return value as usize;
        }
        let exp = 63 - u64::from(value.leading_zeros()); // floor(log2), >= SUB_BITS
        let shift = exp - u64::from(Self::SUB_BITS);
        let block = exp - u64::from(Self::SUB_BITS) + 1;
        (block * Self::SUB_BUCKETS + ((value >> shift) - Self::SUB_BUCKETS)) as usize
    }

    /// Smallest value that lands in bucket `index` (the bucket's
    /// representative value for percentile queries).
    #[must_use]
    pub fn bucket_lower_bound(index: usize) -> u64 {
        let index = index as u64;
        if index < Self::EXACT_LIMIT {
            return index;
        }
        let block = index / Self::SUB_BUCKETS;
        let within = index % Self::SUB_BUCKETS;
        (Self::SUB_BUCKETS + within) << (block - 1)
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical samples.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = Self::bucket_index(value);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += n;
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += n;
        self.sum += value * n;
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// `true` when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Exact sum of all recorded samples (not subject to bucketing).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded sample (exact). Zero when empty.
    #[must_use]
    pub fn min(&self) -> u64 {
        self.min
    }

    /// Largest recorded sample (exact). Zero when empty.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Exact arithmetic mean. Zero when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `q`-quantile (`0.0..=1.0`) of the recorded samples.
    ///
    /// Returns the lower bound of the bucket containing the rank
    /// `ceil(q * count)` sample (clamped to the exact `min`/`max`), so the
    /// result under-reports by at most the bucket's relative error and is
    /// exact for values `< EXACT_LIMIT`. `q = 0` returns `min`, `q = 1`
    /// returns `max`, both exact. Zero when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn percentile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.count == 0 {
            return 0;
        }
        if q <= 0.0 {
            return self.min;
        }
        if q >= 1.0 {
            return self.max;
        }
        // Rank of the target sample, 1-based.
        let rank = (q * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_lower_bound(idx).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Convenience accessor for the standard reporting tuple
    /// `(p50, p90, p99, max)`.
    #[must_use]
    pub fn summary_percentiles(&self) -> (u64, u64, u64, u64) {
        (
            self.percentile(0.50),
            self.percentile(0.90),
            self.percentile(0.99),
            self.max,
        )
    }

    /// Folds another histogram into this one. Bucket boundaries are global
    /// constants, so merging is lossless and associative.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        if other.count == 0 {
            return;
        }
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += *theirs;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Merged copy of an iterator of histograms.
    #[must_use]
    pub fn merged<'a>(parts: impl IntoIterator<Item = &'a LatencyHistogram>) -> Self {
        let mut out = LatencyHistogram::new();
        for part in parts {
            out.merge(part);
        }
        out
    }

    /// Serializes to a JSON object with exact scalars and a sparse
    /// `[index, count]` bucket list.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let buckets: Vec<JsonValue> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| JsonValue::Array(vec![JsonValue::from(i), JsonValue::from(n)]))
            .collect();
        JsonValue::object([
            ("count".to_owned(), JsonValue::from(self.count)),
            ("sum".to_owned(), JsonValue::from(self.sum)),
            ("min".to_owned(), JsonValue::from(self.min)),
            ("max".to_owned(), JsonValue::from(self.max)),
            ("buckets".to_owned(), JsonValue::Array(buckets)),
        ])
    }

    /// Parses a histogram serialized by [`to_json`](Self::to_json).
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] when a required field is missing or malformed.
    pub fn from_json_value(value: &JsonValue) -> Result<Self, JsonError> {
        let field = |name: &'static str| {
            value
                .get(name)
                .and_then(JsonValue::as_u64)
                .ok_or(JsonError {
                    message: "histogram field missing or not an integer",
                    offset: 0,
                })
        };
        let mut hist = LatencyHistogram {
            buckets: Vec::new(),
            count: field("count")?,
            sum: field("sum")?,
            min: field("min")?,
            max: field("max")?,
        };
        let buckets = value
            .get("buckets")
            .and_then(JsonValue::as_array)
            .ok_or(JsonError {
                message: "histogram buckets missing",
                offset: 0,
            })?;
        for entry in buckets {
            let pair = entry.as_array().ok_or(JsonError {
                message: "histogram bucket entry must be an array",
                offset: 0,
            })?;
            let (idx, n) = match pair {
                [i, n] => (i.as_u64(), n.as_u64()),
                _ => (None, None),
            };
            let (idx, n) = idx.zip(n).ok_or(JsonError {
                message: "histogram bucket entry must be [index, count]",
                offset: 0,
            })?;
            let idx = idx as usize;
            if idx >= hist.buckets.len() {
                hist.buckets.resize(idx + 1, 0);
            }
            hist.buckets[idx] += n;
        }
        Ok(hist)
    }
}

impl fmt::Display for LatencyHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (p50, p90, p99, max) = self.summary_percentiles();
        write!(
            f,
            "p50 {p50} | p90 {p90} | p99 {p99} | max {max} | mean {:.2} (n={})",
            self.mean(),
            self.count
        )
    }
}

impl Extend<u64> for LatencyHistogram {
    fn extend<I: IntoIterator<Item = u64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

impl FromIterator<u64> for LatencyHistogram {
    fn from_iter<I: IntoIterator<Item = u64>>(iter: I) -> Self {
        let mut h = LatencyHistogram::new();
        h.extend(iter);
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn small_values_are_exact() {
        // Every value below EXACT_LIMIT owns its bucket.
        for v in 0..LatencyHistogram::EXACT_LIMIT {
            assert_eq!(LatencyHistogram::bucket_index(v), v as usize);
            assert_eq!(LatencyHistogram::bucket_lower_bound(v as usize), v);
        }
        let h: LatencyHistogram = (0..LatencyHistogram::EXACT_LIMIT).collect();
        for (i, q) in [(0u64, 0.01), (7, 0.5), (15, 1.0)] {
            assert_eq!(h.percentile(q), i, "q={q}");
        }
    }

    #[test]
    fn bucket_boundaries_are_exact_powers() {
        // The first value of each power-of-two range starts a fresh bucket
        // and is its own lower bound.
        for exp in LatencyHistogram::SUB_BITS..63 {
            let v = 1u64 << exp;
            let idx = LatencyHistogram::bucket_index(v);
            assert_eq!(LatencyHistogram::bucket_lower_bound(idx), v, "2^{exp}");
            assert_ne!(idx, LatencyHistogram::bucket_index(v - 1), "2^{exp} - 1");
        }
    }

    #[test]
    fn bucket_indices_are_contiguous_and_monotonic() {
        let mut last = 0usize;
        for v in 1..10_000u64 {
            let idx = LatencyHistogram::bucket_index(v);
            assert!(idx == last || idx == last + 1, "gap at {v}");
            last = idx;
        }
    }

    #[test]
    fn lower_bound_round_trips_through_index() {
        for idx in 0..600 {
            let lb = LatencyHistogram::bucket_lower_bound(idx);
            assert_eq!(LatencyHistogram::bucket_index(lb), idx, "index {idx}");
        }
    }

    #[test]
    fn percentiles_clamp_to_exact_extremes() {
        let h: LatencyHistogram = [100, 1000, 100_000].into_iter().collect();
        assert_eq!(h.percentile(0.0), 100);
        assert_eq!(h.percentile(1.0), 100_000);
        assert_eq!(h.max(), 100_000);
        // p99 of three samples is the last one, reported at its bucket's
        // lower bound but clamped to the exact max.
        assert!(h.percentile(0.99) <= 100_000);
    }

    #[test]
    fn relative_error_is_bounded() {
        for v in [17u64, 100, 999, 12_345, 1 << 30, u64::MAX / 2] {
            let lb = LatencyHistogram::bucket_lower_bound(LatencyHistogram::bucket_index(v));
            assert!(lb <= v);
            let err = (v - lb) as f64 / v as f64;
            assert!(
                err < 1.0 / LatencyHistogram::SUB_BUCKETS as f64,
                "{v}: {err}"
            );
        }
    }

    #[test]
    fn empty_histogram_is_all_zeros() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.percentile(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.summary_percentiles(), (0, 0, 0, 0));
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn percentile_rejects_bad_quantile() {
        let _ = LatencyHistogram::new().percentile(1.5);
    }

    #[test]
    fn merge_is_associative_and_lossless() {
        let a: LatencyHistogram = [1u64, 5, 100].into_iter().collect();
        let b: LatencyHistogram = [2u64, 1 << 20].into_iter().collect();
        let c: LatencyHistogram = [0u64, 0, 77].into_iter().collect();
        let mut ab_c = a.clone();
        ab_c.merge(&b);
        ab_c.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut a_bc = a.clone();
        a_bc.merge(&bc);
        assert_eq!(ab_c, a_bc);
        let all: LatencyHistogram = [1u64, 5, 100, 2, 1 << 20, 0, 0, 77].into_iter().collect();
        assert_eq!(ab_c, all, "merge equals recording everything directly");
        assert_eq!(LatencyHistogram::merged([&a, &b, &c]), all);
    }

    #[test]
    fn merge_into_empty_preserves_extremes() {
        let a: LatencyHistogram = [3u64, 9].into_iter().collect();
        let mut empty = LatencyHistogram::new();
        empty.merge(&a);
        assert_eq!(empty, a);
        let mut a2 = a.clone();
        a2.merge(&LatencyHistogram::new());
        assert_eq!(a2, a);
    }

    #[test]
    fn json_round_trip_is_exact() {
        // The JSON layer stores numbers as f64, which is exact for
        // integers up to 2^53 — far beyond any simulated latency.
        let h: LatencyHistogram = [0u64, 1, 1, 15, 16, 17, 1000, 1 << 40]
            .into_iter()
            .collect();
        let back = LatencyHistogram::from_json_value(&h.to_json()).unwrap();
        assert_eq!(back, h);
        // And through text.
        let text = h.to_json().to_json();
        let back = LatencyHistogram::from_json_value(&JsonValue::parse(&text).unwrap()).unwrap();
        assert_eq!(back, h);
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        for text in [
            "{}",
            r#"{"count":1,"sum":1,"min":1,"max":1}"#,
            r#"{"count":1,"sum":1,"min":1,"max":1,"buckets":[1]}"#,
            r#"{"count":1,"sum":1,"min":1,"max":1,"buckets":[[1]]}"#,
        ] {
            let v = JsonValue::parse(text).unwrap();
            assert!(LatencyHistogram::from_json_value(&v).is_err(), "{text}");
        }
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut a = LatencyHistogram::new();
        a.record_n(7, 3);
        a.record_n(9, 0);
        let b: LatencyHistogram = [7u64, 7, 7].into_iter().collect();
        assert_eq!(a, b);
    }

    #[test]
    fn display_is_nonempty() {
        let h: LatencyHistogram = [1u64, 2].into_iter().collect();
        assert!(h.to_string().contains("p99"));
    }

    proptest! {
        /// Percentiles are monotone in q, bounded by [min, max], and the
        /// exact scalars match the samples.
        #[test]
        fn percentile_monotonicity(samples in proptest::collection::vec(0u64..1_000_000, 1..300)) {
            let h: LatencyHistogram = samples.iter().copied().collect();
            prop_assert_eq!(h.count(), samples.len() as u64);
            prop_assert_eq!(h.sum(), samples.iter().sum::<u64>());
            prop_assert_eq!(h.min(), *samples.iter().min().unwrap());
            prop_assert_eq!(h.max(), *samples.iter().max().unwrap());
            let mut last = h.percentile(0.0);
            for q in [0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
                let p = h.percentile(q);
                prop_assert!(p >= last, "p({q}) = {p} < {last}");
                prop_assert!(p >= h.min() && p <= h.max());
                last = p;
            }
        }

        /// Merging a random split of the samples equals recording them all
        /// into one histogram.
        #[test]
        fn merge_equals_union(
            left in proptest::collection::vec(0u64..1_000_000, 0..100),
            right in proptest::collection::vec(0u64..1_000_000, 0..100),
        ) {
            let mut merged: LatencyHistogram = left.iter().copied().collect();
            merged.merge(&right.iter().copied().collect());
            let direct: LatencyHistogram =
                left.iter().chain(right.iter()).copied().collect();
            prop_assert_eq!(merged, direct);
        }
    }
}
