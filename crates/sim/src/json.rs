//! A minimal JSON tree, writer and parser.
//!
//! The exporters ([`crate::perfetto`], [`crate::metrics`]) need to produce
//! and round-trip plain JSON without pulling a serialization framework into
//! the simulator's dependency closure. This module implements exactly the
//! subset the dumps use: objects (insertion-ordered), arrays, strings with
//! escape handling, finite numbers, booleans and null.
//!
//! # Examples
//!
//! ```
//! use dm_sim::json::JsonValue;
//!
//! let v = JsonValue::object([
//!     ("name".into(), JsonValue::from("fig7")),
//!     ("cycles".into(), JsonValue::from(128u64)),
//! ]);
//! let text = v.to_json();
//! assert_eq!(text, r#"{"name":"fig7","cycles":128}"#);
//! let back = JsonValue::parse(&text).unwrap();
//! assert_eq!(back, v);
//! ```

use std::fmt::Write as _;

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any finite number (integers are printed without a fraction).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; key order is preserved (insertion order).
    Object(Vec<(String, JsonValue)>),
}

impl From<bool> for JsonValue {
    fn from(v: bool) -> Self {
        JsonValue::Bool(v)
    }
}

impl From<f64> for JsonValue {
    fn from(v: f64) -> Self {
        JsonValue::Number(v)
    }
}

impl From<u64> for JsonValue {
    fn from(v: u64) -> Self {
        JsonValue::Number(v as f64)
    }
}

impl From<usize> for JsonValue {
    fn from(v: usize) -> Self {
        JsonValue::Number(v as f64)
    }
}

impl From<&str> for JsonValue {
    fn from(v: &str) -> Self {
        JsonValue::String(v.to_owned())
    }
}

impl From<String> for JsonValue {
    fn from(v: String) -> Self {
        JsonValue::String(v)
    }
}

impl JsonValue {
    /// Builds an object from key/value pairs.
    #[must_use]
    pub fn object(pairs: impl IntoIterator<Item = (String, JsonValue)>) -> Self {
        JsonValue::Object(pairs.into_iter().collect())
    }

    /// Looks up a key in an object; `None` for other variants or missing
    /// keys.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as an unsigned integer, if it is one exactly.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Serializes to compact JSON text.
    ///
    /// # Panics
    ///
    /// Panics on non-finite numbers; the simulator never records NaN or
    /// infinite metrics (see [`crate::stats::Distribution::record`]).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => {
                assert!(n.is_finite(), "non-finite number in JSON output");
                // Integers (the common case: cycle counts) print without a
                // fraction; everything else uses shortest-roundtrip form.
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n:?}");
                }
            }
            JsonValue::String(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(pairs) => {
                out.push('{');
                for (i, (key, value)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] with a byte offset on malformed input or
    /// trailing garbage.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.err("trailing characters"));
        }
        Ok(value)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A JSON parse failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: &'static str,
    /// Byte offset into the input.
    pub offset: usize,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &'static str) -> JsonError {
        JsonError {
            message,
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err("unexpected character"))
        }
    }

    fn literal(&mut self, text: &str) -> bool {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') if self.literal("null") => Ok(JsonValue::Null),
            Some(b't') if self.literal("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.literal("false") => Ok(JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while matches!(self.peek(), Some(c) if c != b'"' && c != b'\\') {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Surrogate pairs are not needed by the dumps;
                            // reject rather than mis-decode.
                            let c =
                                char::from_u32(hex).ok_or_else(|| self.err("bad \\u escape"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("bad number"))?;
        text.parse::<f64>()
            .map(JsonValue::Number)
            .map_err(|_| self.err("bad number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_values() {
        let v = JsonValue::object([
            ("s".into(), JsonValue::from("a \"quoted\"\nline")),
            ("n".into(), JsonValue::from(0.125f64)),
            ("i".into(), JsonValue::from(1u64 << 40)),
            ("neg".into(), JsonValue::Number(-3.0)),
            (
                "arr".into(),
                JsonValue::Array(vec![JsonValue::Null, JsonValue::Bool(true)]),
            ),
            ("obj".into(), JsonValue::object([])),
        ]);
        let text = v.to_json();
        assert_eq!(JsonValue::parse(&text).unwrap(), v);
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(JsonValue::from(42u64).to_json(), "42");
        assert_eq!(JsonValue::Number(-7.0).to_json(), "-7");
        assert_eq!(JsonValue::from(0.5f64).to_json(), "0.5");
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = JsonValue::parse(" { \"a\" : [ 1 , 2.5 ] , \"b\\u0041\" : \"x\\ty\" } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("bA").unwrap().as_str(), Some("x\ty"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("1 2").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
    }

    #[test]
    fn accessors_select_variants() {
        let v = JsonValue::parse(r#"{"n": 3, "s": "x"}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(3.0));
        assert!(v.get("s").unwrap().as_u64().is_none());
        assert!(v.get("missing").is_none());
        assert!(v.as_object().is_some());
    }
}
