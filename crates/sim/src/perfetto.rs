//! Chrome / Perfetto `trace_event` export.
//!
//! Converts captured [`Trace`]s into the JSON trace-event format that
//! `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev) load
//! directly. Each trace becomes one named thread track (`M` metadata
//! events); point events become complete events (`ph: "X"`, one-cycle
//! duration); [`TraceEventKind::SpanBegin`] / [`TraceEventKind::SpanEnd`] become `B`/`E`
//! pairs; and runs of consecutive PE fire/stall cycles are coalesced into
//! single `X` events spanning the run, which keeps compute-phase dumps
//! compact and makes the stall structure visible at a glance. Every closed
//! stall run also bumps a cumulative per-cause counter track (`C` events
//! named `blame: <cause>`), so blame accumulation renders as staircase
//! plots alongside the event timeline.
//!
//! Token flow stamps ([`TraceEventKind::FlowIssue`] / [`FlowGrant`] /
//! [`FlowDeliver`]) become flow events (`ph: "s"` / `"t"` / `"f"` sharing
//! one numeric `id`), so Perfetto draws each memory request's causal chain
//! — AGU issue → bank grant → response delivery — as arrows across the
//! timeline.
//!
//! Timestamps map one simulated cycle to one microsecond of trace time (the
//! format's `ts` unit), so cycle numbers read directly off the Perfetto
//! ruler.
//!
//! [`FlowGrant`]: TraceEventKind::FlowGrant
//! [`FlowDeliver`]: TraceEventKind::FlowDeliver

use crate::json::JsonValue;
use crate::stall::StallCause;
use crate::trace::{Trace, TraceEvent, TraceEventKind};

/// The process id all tracks share.
const PID: u64 = 1;

/// Renders named traces as a Chrome trace-event JSON document.
///
/// Events are globally sorted by timestamp (stable, so same-cycle events
/// keep their emission order and `B` precedes its `E`).
#[must_use]
pub fn chrome_trace(tracks: &[(String, Trace)]) -> JsonValue {
    let mut events: Vec<(u64, JsonValue)> = Vec::new();
    for (tid0, (name, trace)) in tracks.iter().enumerate() {
        let tid = tid0 as u64 + 1;
        events.push((
            0,
            JsonValue::object([
                ("ph".into(), JsonValue::from("M")),
                ("pid".into(), JsonValue::from(PID)),
                ("tid".into(), JsonValue::from(tid)),
                ("ts".into(), JsonValue::from(0u64)),
                ("name".into(), JsonValue::from("thread_name")),
                (
                    "args".into(),
                    JsonValue::object([("name".into(), JsonValue::from(name.as_str()))]),
                ),
            ]),
        ));
        track_events(trace, tid, &mut events);
    }
    events.sort_by_key(|(ts, _)| *ts);
    JsonValue::object([
        (
            "traceEvents".into(),
            JsonValue::Array(events.into_iter().map(|(_, e)| e).collect()),
        ),
        ("displayTimeUnit".into(), JsonValue::from("ms")),
        (
            "otherData".into(),
            JsonValue::object([("clock".into(), JsonValue::from("1 cycle = 1 us"))]),
        ),
    ])
}

/// [`chrome_trace`] serialized to a JSON string.
#[must_use]
pub fn chrome_trace_json(tracks: &[(String, Trace)]) -> String {
    chrome_trace(tracks).to_json()
}

fn track_events(trace: &Trace, tid: u64, out: &mut Vec<(u64, JsonValue)>) {
    // Coalesce runs of per-cycle PE events: consecutive cycles with the same
    // fire/stall kind collapse into one spanning X event. Each closed stall
    // run additionally bumps a cumulative per-cause counter track (`C`
    // events named "blame: <cause>"), so the blame accumulation renders as
    // staircase counter plots in the Perfetto UI.
    let mut run: Option<(u64, u64, TraceEventKind)> = None; // (start, len, kind)
    let mut blame = [0u64; StallCause::ALL.len()];
    let mut close_run = |start: u64, len: u64, kind: &TraceEventKind, out: &mut Vec<_>| {
        out.push((start, complete_event(start, len, kind, tid)));
        if let TraceEventKind::PeStall { cause } = kind {
            blame[cause.index()] += len;
            out.push((
                start + len,
                counter_event(start + len, *cause, blame[cause.index()], tid),
            ));
        }
    };
    for event in trace.iter() {
        let ts = event.cycle.get();
        let is_pe = matches!(
            event.kind,
            TraceEventKind::PeFire | TraceEventKind::PeStall { .. }
        );
        if let Some((start, len, ref kind)) = run {
            if is_pe && event.kind == *kind && ts == start + len {
                run = Some((start, len + 1, kind.clone()));
                continue;
            }
            close_run(start, len, kind, out);
            run = None;
        }
        if is_pe {
            run = Some((ts, 1, event.kind.clone()));
            continue;
        }
        match &event.kind {
            TraceEventKind::SpanBegin { name } => {
                out.push((ts, duration_event("B", ts, name, tid)));
            }
            TraceEventKind::SpanEnd { name } => {
                out.push((ts, duration_event("E", ts, name, tid)));
            }
            TraceEventKind::FlowIssue { id, bank } => {
                out.push((ts, flow_event("s", ts, *id, Some(*bank), tid)));
            }
            TraceEventKind::FlowGrant { id, bank } => {
                out.push((ts, flow_event("t", ts, *id, Some(*bank), tid)));
            }
            TraceEventKind::FlowDeliver { id } => {
                out.push((ts, flow_event("f", ts, *id, None, tid)));
            }
            kind => out.push((ts, point_event(event, kind, tid))),
        }
    }
    if let Some((start, len, ref kind)) = run {
        close_run(start, len, kind, out);
    }
}

fn base_fields(ph: &str, name: &str, ts: u64, tid: u64) -> Vec<(String, JsonValue)> {
    vec![
        ("ph".into(), JsonValue::from(ph)),
        ("pid".into(), JsonValue::from(PID)),
        ("tid".into(), JsonValue::from(tid)),
        ("ts".into(), JsonValue::from(ts)),
        ("name".into(), JsonValue::from(name)),
    ]
}

fn duration_event(ph: &str, ts: u64, name: &str, tid: u64) -> JsonValue {
    JsonValue::Object(base_fields(ph, name, ts, tid))
}

fn complete_event(start: u64, len: u64, kind: &TraceEventKind, tid: u64) -> JsonValue {
    let name = match kind {
        TraceEventKind::PeStall { cause } => format!("stall: {cause}"),
        _ => "fire".to_owned(),
    };
    let mut fields = base_fields("X", &name, start, tid);
    fields.push(("dur".into(), JsonValue::from(len)));
    fields.push(("cat".into(), JsonValue::from(kind.name())));
    fields.push((
        "args".into(),
        JsonValue::object([("cycles".into(), JsonValue::from(len))]),
    ));
    JsonValue::Object(fields)
}

fn flow_event(ph: &str, ts: u64, id: u64, bank: Option<usize>, tid: u64) -> JsonValue {
    let mut fields = base_fields(ph, &format!("req-{id}"), ts, tid);
    fields.push(("cat".into(), JsonValue::from("flow")));
    fields.push(("id".into(), JsonValue::from(id)));
    // Flow finish events bind to the enclosing slice at their timestamp;
    // "e" (enclosing) keeps the arrow anchored to the delivery cycle.
    if ph == "f" {
        fields.push(("bp".into(), JsonValue::from("e")));
    }
    if let Some(bank) = bank {
        fields.push((
            "args".into(),
            JsonValue::object([("bank".into(), JsonValue::from(bank))]),
        ));
    }
    JsonValue::Object(fields)
}

fn counter_event(ts: u64, cause: StallCause, value: u64, tid: u64) -> JsonValue {
    let mut fields = base_fields("C", &format!("blame: {cause}"), ts, tid);
    fields.push((
        "args".into(),
        JsonValue::object([("cycles".into(), JsonValue::from(value))]),
    ));
    JsonValue::Object(fields)
}

fn point_event(event: &TraceEvent, kind: &TraceEventKind, tid: u64) -> JsonValue {
    let mut fields = base_fields("X", kind.name(), event.cycle.get(), tid);
    fields.push(("dur".into(), JsonValue::from(1u64)));
    fields.push(("cat".into(), JsonValue::from(kind.name())));
    let args = match kind {
        TraceEventKind::BankConflict { bank, contenders } => JsonValue::object([
            ("bank".into(), JsonValue::from(*bank)),
            ("contenders".into(), JsonValue::from(*contenders)),
        ]),
        TraceEventKind::FifoFull { channel } | TraceEventKind::FifoEmpty { channel } => {
            JsonValue::object([("channel".into(), JsonValue::from(*channel))])
        }
        TraceEventKind::AguWrap { dim } => {
            JsonValue::object([("dim".into(), JsonValue::from(*dim))])
        }
        TraceEventKind::RemapModeSwitch { from, to } => JsonValue::object([
            ("from".into(), JsonValue::from(from.as_str())),
            ("to".into(), JsonValue::from(to.as_str())),
        ]),
        TraceEventKind::Message(text) => {
            JsonValue::object([("message".into(), JsonValue::from(text.as_str()))])
        }
        _ => JsonValue::object([]),
    };
    fields.push(("args".into(), args));
    fields.push(("args_source".into(), JsonValue::from(event.source.as_str())));
    JsonValue::Object(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::Cycle;
    use crate::stall::OperandPort;

    fn pe_trace() -> Trace {
        let mut t = Trace::new();
        t.enable();
        for c in 0..3 {
            t.emit(Cycle::new(c), "pe", TraceEventKind::PeFire);
        }
        for c in 3..5 {
            t.emit(
                Cycle::new(c),
                "pe",
                TraceEventKind::PeStall {
                    cause: StallCause::BankConflict(OperandPort::A),
                },
            );
        }
        t.emit(Cycle::new(9), "pe", TraceEventKind::PeFire);
        t
    }

    fn events(doc: &JsonValue) -> &[JsonValue] {
        doc.get("traceEvents").unwrap().as_array().unwrap()
    }

    #[test]
    fn coalesces_pe_runs() {
        let doc = chrome_trace(&[("pe".into(), pe_trace())]);
        // 1 metadata + fire×3 run + stall×2 run + its blame counter + lone
        // fire.
        let evs = events(&doc);
        assert_eq!(evs.len(), 5);
        let fire = &evs[1];
        assert_eq!(fire.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(fire.get("ts").unwrap().as_u64(), Some(0));
        assert_eq!(fire.get("dur").unwrap().as_u64(), Some(3));
        let stall = &evs[2];
        assert_eq!(
            stall.get("name").unwrap().as_str(),
            Some("stall: bank-conflict(A)")
        );
        assert_eq!(stall.get("dur").unwrap().as_u64(), Some(2));
        let lone = &evs[4];
        assert_eq!(lone.get("ts").unwrap().as_u64(), Some(9));
        assert_eq!(lone.get("dur").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn stall_runs_emit_cumulative_blame_counters() {
        let mut t = pe_trace();
        for c in 10..13 {
            t.emit(
                Cycle::new(c),
                "pe",
                TraceEventKind::PeStall {
                    cause: StallCause::BankConflict(OperandPort::A),
                },
            );
        }
        let doc = chrome_trace(&[("pe".into(), t)]);
        let counters: Vec<_> = events(&doc)
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("C"))
            .collect();
        assert_eq!(counters.len(), 2);
        for c in &counters {
            assert_eq!(
                c.get("name").unwrap().as_str(),
                Some("blame: bank-conflict(A)")
            );
        }
        // The counter is cumulative: 2 cycles after the first run, 5 after
        // the second, each stamped at its run's end.
        assert_eq!(counters[0].get("ts").unwrap().as_u64(), Some(5));
        assert_eq!(
            counters[0]
                .get("args")
                .unwrap()
                .get("cycles")
                .unwrap()
                .as_u64(),
            Some(2)
        );
        assert_eq!(counters[1].get("ts").unwrap().as_u64(), Some(13));
        assert_eq!(
            counters[1]
                .get("args")
                .unwrap()
                .get("cycles")
                .unwrap()
                .as_u64(),
            Some(5)
        );
    }

    #[test]
    fn spans_emit_balanced_begin_end() {
        let mut t = Trace::new();
        t.enable();
        t.emit(
            Cycle::new(2),
            "sys",
            TraceEventKind::SpanBegin {
                name: "compute".into(),
            },
        );
        t.emit(
            Cycle::new(8),
            "sys",
            TraceEventKind::SpanEnd {
                name: "compute".into(),
            },
        );
        let doc = chrome_trace(&[("sys".into(), t)]);
        let evs = events(&doc);
        assert_eq!(evs[1].get("ph").unwrap().as_str(), Some("B"));
        assert_eq!(evs[2].get("ph").unwrap().as_str(), Some("E"));
        assert_eq!(evs[1].get("name"), evs[2].get("name"));
    }

    #[test]
    fn timestamps_are_monotonic_across_tracks() {
        let mut other = Trace::new();
        other.enable();
        other.emit(
            Cycle::new(1),
            "xbar",
            TraceEventKind::BankConflict {
                bank: 3,
                contenders: 2,
            },
        );
        let doc = chrome_trace(&[("pe".into(), pe_trace()), ("mem".into(), other)]);
        let ts: Vec<u64> = events(&doc)
            .iter()
            .map(|e| e.get("ts").unwrap().as_u64().unwrap())
            .collect();
        assert!(
            ts.windows(2).all(|w| w[0] <= w[1]),
            "ts not monotonic: {ts:?}"
        );
    }

    #[test]
    fn metadata_names_tracks() {
        let doc = chrome_trace(&[("streamer-A".into(), Trace::new())]);
        let meta = &events(&doc)[0];
        assert_eq!(meta.get("ph").unwrap().as_str(), Some("M"));
        assert_eq!(
            meta.get("args").unwrap().get("name").unwrap().as_str(),
            Some("streamer-A")
        );
    }

    #[test]
    fn point_events_carry_typed_args() {
        let mut t = Trace::new();
        t.enable();
        t.emit(
            Cycle::new(4),
            "xbar",
            TraceEventKind::BankConflict {
                bank: 7,
                contenders: 3,
            },
        );
        let doc = chrome_trace(&[("mem".into(), t)]);
        let ev = &events(&doc)[1];
        assert_eq!(ev.get("name").unwrap().as_str(), Some("bank-conflict"));
        assert_eq!(
            ev.get("args").unwrap().get("bank").unwrap().as_u64(),
            Some(7)
        );
        assert_eq!(
            ev.get("args").unwrap().get("contenders").unwrap().as_u64(),
            Some(3)
        );
    }

    #[test]
    fn flow_stamps_export_as_flow_events() {
        let mut t = Trace::new();
        t.enable();
        t.emit(
            Cycle::new(2),
            "xbar",
            TraceEventKind::FlowIssue { id: 7, bank: 3 },
        );
        t.emit(
            Cycle::new(4),
            "xbar",
            TraceEventKind::FlowGrant { id: 7, bank: 3 },
        );
        t.emit(Cycle::new(8), "xbar", TraceEventKind::FlowDeliver { id: 7 });
        let doc = chrome_trace(&[("mem".into(), t)]);
        let evs = events(&doc);
        let phases: Vec<_> = evs[1..]
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap().to_owned())
            .collect();
        assert_eq!(phases, vec!["s", "t", "f"]);
        for e in &evs[1..] {
            assert_eq!(e.get("id").unwrap().as_u64(), Some(7));
            assert_eq!(e.get("cat").unwrap().as_str(), Some("flow"));
            assert_eq!(e.get("name").unwrap().as_str(), Some("req-7"));
        }
        assert_eq!(
            evs[1].get("args").unwrap().get("bank").unwrap().as_u64(),
            Some(3)
        );
        assert_eq!(evs[3].get("bp").unwrap().as_str(), Some("e"));
        assert!(evs[1].get("bp").is_none());
    }

    #[test]
    fn output_parses_as_json() {
        let text = chrome_trace_json(&[("pe".into(), pe_trace())]);
        assert!(JsonValue::parse(&text).is_ok());
    }
}
