//! Critical-path extraction over the token-level causal dependency graph.
//!
//! The blame profiler ([`crate::blame`]) answers *where cycles were lost*;
//! this module answers *which dependency chain bounds end-to-end latency*
//! and *how much a resource improvement would actually buy*. The full
//! causal DAG — AGU issue → bank grant → response delivery → channel FIFO
//! entry → PE fire → writeback flush, plus back-pressure edges — would need
//! per-token storage to materialize. We never build it. The accelerator is
//! single-issue and in-order: on every compute cycle exactly one edge of
//! that DAG is *binding* (the last writer into the blocked PE handshake),
//! and every compute cycle lies on the critical path. So the path folds
//! online into O(1) state: classify each cycle's binding edge into a
//! [`CritClass`] and count. The blame-chain walk already resolves the last
//! writer (which component instance the stall is waiting on), which is why
//! [`CritClass::for_stall`] is a pure function of `(StallCause, BlameLeaf)`
//! — the sparse last-writer state is exactly the O(ports + banks) state the
//! walk maintains, and no per-token allocation ever happens.
//!
//! The contract mirrors blame's conservation: the per-class on-path
//! composition sums to the path length, the path length equals the compute
//! cycle count, and the composition refines [`StallAttribution`] class by
//! class ([`CriticalProfile::conserves`]). Because the binding edge is a
//! pure function of state a fast-forward span check proves frozen, elided
//! spans replay in O(1) ([`CriticalProfile::record_stall_n`]) bit-identically
//! to lockstep.
//!
//! [`CriticalProfile::what_ifs`] turns the composition into projections:
//! predicted total-cycle deltas for "read latency → 1", "conflicts free"
//! and "FIFO depth 2×". The conflict and FIFO projections remove exactly
//! the cycles their resource contributes to the path, assuming no
//! second-order rebinding. The latency projection additionally models the
//! first-order rebinding that re-simulation shows always happens: when the
//! exposed round trip collapses, the request stream compresses `L`-fold and
//! serialization the latency used to hide re-surfaces (as bank conflicts).
//! That re-exposure is bracketed between zero (perfect overlap) and one
//! cycle per `L` of formerly exposed latency (no overlap), and the
//! projection commits the midpoint of the bracket. In every case the sign
//! is conservative: a positive delta never predicts a saving that making
//! the change would contradict. Projections flagged [`WhatIf::simulable`]
//! map to a concrete configuration change and are validated against actual
//! re-simulation in the system tests — the latency projection within 10 %
//! of the truly-simulated latency-1 run on latency-bound workloads.

use std::fmt;

use crate::blame::BlameLeaf;
use crate::json::JsonValue;
use crate::stall::{StallAttribution, StallCause};

/// The resource whose dependency edge binds one on-path cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CritClass {
    /// The PE array fired: the cycle advanced useful work.
    PeIssue,
    /// An operand response was still in flight: exposed bank read latency.
    MemLatency,
    /// The operand's request lost bank arbitration: scratchpad contention.
    BankConflict,
    /// The AGU (or the coarse-grained sync gate) had not yet produced or
    /// released the address the blocked channel needed: issue cadence.
    AguThroughput,
    /// The writeback FIFO could not accept the produced tile: capacity.
    FifoCapacity,
    /// The tail-end writeback flush after the last compute step.
    WritebackFlush,
}

impl CritClass {
    /// Every class, in reporting order.
    pub const ALL: [CritClass; 6] = [
        CritClass::PeIssue,
        CritClass::MemLatency,
        CritClass::BankConflict,
        CritClass::AguThroughput,
        CritClass::FifoCapacity,
        CritClass::WritebackFlush,
    ];

    /// Stable human/machine label, e.g. `"memory-latency"`.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            CritClass::PeIssue => "pe-issue",
            CritClass::MemLatency => "memory-latency",
            CritClass::BankConflict => "bank-conflict",
            CritClass::AguThroughput => "agu-throughput",
            CritClass::FifoCapacity => "fifo-capacity",
            CritClass::WritebackFlush => "writeback-flush",
        }
    }

    /// Dense index, unique per class ([`CritClass::ALL`] order).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            CritClass::PeIssue => 0,
            CritClass::MemLatency => 1,
            CritClass::BankConflict => 2,
            CritClass::AguThroughput => 3,
            CritClass::FifoCapacity => 4,
            CritClass::WritebackFlush => 5,
        }
    }

    /// Classifies the binding edge of one stalled cycle from its stall
    /// cause and resolved blame leaf. Total over both types; the fallback
    /// for an [`BlameLeaf::Unattributed`] walk charges the class the cause
    /// itself names, so conservation never leaks a cycle.
    #[must_use]
    pub fn for_stall(cause: StallCause, leaf: BlameLeaf) -> CritClass {
        match cause {
            StallCause::NoOperand(_) => match leaf {
                // The missing word is in flight from a bank: the binding
                // edge is the response-delivery edge (exposed latency).
                BlameLeaf::Bank(_) | BlameLeaf::Unattributed => CritClass::MemLatency,
                // The request was never issued: address generation (or the
                // sync gate holding it) is the binding producer.
                BlameLeaf::Agu | BlameLeaf::Gate => CritClass::AguThroughput,
                BlameLeaf::Flush => CritClass::WritebackFlush,
            },
            StallCause::BankConflict(_) => CritClass::BankConflict,
            StallCause::WritebackBackpressure => CritClass::FifoCapacity,
            StallCause::Drain => CritClass::WritebackFlush,
        }
    }
}

impl fmt::Display for CritClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One what-if projection: the predicted total-cycle saving if a single
/// resource constraint were relaxed, with everything else held fixed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WhatIf {
    /// Stable projection name, e.g. `"read-latency->1"`.
    pub name: &'static str,
    /// Predicted cycles saved (path shortening; an upper bound).
    pub delta: u64,
    /// Projected path length after the change: `path - delta`.
    pub projected: u64,
    /// Whether the projection maps to a concrete configuration change that
    /// a test can re-simulate (`read_latency = 1`, doubled FIFO depths).
    /// "Conflicts free" has no configuration knob, so it is sign-checked
    /// against the composition only.
    pub simulable: bool,
}

impl WhatIf {
    /// Serializes one projection row with fixed key order.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("name".to_owned(), JsonValue::from(self.name)),
            ("delta".to_owned(), JsonValue::from(self.delta)),
            ("projected".to_owned(), JsonValue::from(self.projected)),
            ("simulable".to_owned(), JsonValue::from(self.simulable)),
        ])
    }
}

/// The critical-path composition of one run: every compute cycle charged to
/// the [`CritClass`] whose dependency edge bound it.
///
/// # Examples
///
/// ```
/// use dm_sim::{BlameLeaf, CritClass, CriticalProfile, OperandPort, StallCause};
///
/// let mut crit = CriticalProfile::new(4);
/// crit.record_fire();
/// crit.record_stall(StallCause::NoOperand(OperandPort::A), BlameLeaf::Bank(2));
/// assert_eq!(crit.path_length(), 2);
/// assert_eq!(crit.on_path(CritClass::MemLatency), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CriticalProfile {
    read_latency: u64,
    counts: [u64; CritClass::ALL.len()],
}

impl CriticalProfile {
    /// An empty profile for a system with the given bank read latency (the
    /// latency is what the `"read-latency->1"` projection rescales by).
    ///
    /// # Panics
    /// If `read_latency` is zero (combinational reads are not modelled).
    #[must_use]
    pub fn new(read_latency: u64) -> Self {
        assert!(read_latency >= 1, "read latency must be at least one cycle");
        CriticalProfile {
            read_latency,
            counts: [0; CritClass::ALL.len()],
        }
    }

    /// The bank read latency this profile was recorded under.
    #[must_use]
    pub fn read_latency(&self) -> u64 {
        self.read_latency
    }

    /// Records one firing cycle (the binding edge is PE issue itself).
    pub fn record_fire(&mut self) {
        self.counts[CritClass::PeIssue.index()] += 1;
    }

    /// Records `n` firing cycles in O(1); bit-identical to `n` calls to
    /// [`record_fire`](Self::record_fire).
    pub fn record_fire_n(&mut self, n: u64) {
        self.counts[CritClass::PeIssue.index()] += n;
    }

    /// Charges one stalled cycle to the class binding it.
    pub fn record_stall(&mut self, cause: StallCause, leaf: BlameLeaf) {
        self.counts[CritClass::for_stall(cause, leaf).index()] += 1;
    }

    /// Charges `n` stalled cycles in O(1) (fast-forward span replay);
    /// bit-identical to `n` calls to [`record_stall`](Self::record_stall).
    pub fn record_stall_n(&mut self, cause: StallCause, leaf: BlameLeaf, n: u64) {
        self.counts[CritClass::for_stall(cause, leaf).index()] += n;
    }

    /// On-path cycles bound by `class`.
    #[must_use]
    pub fn on_path(&self, class: CritClass) -> u64 {
        self.counts[class.index()]
    }

    /// The critical path length. Single-issue in-order execution puts every
    /// compute cycle on the path, so this equals the compute cycle count —
    /// which is what makes the composition exhaustive rather than sampled.
    #[must_use]
    pub fn path_length(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// `(class, cycles)` for every class with a nonzero count, reporting
    /// order.
    #[must_use]
    pub fn breakdown(&self) -> Vec<(CritClass, u64)> {
        CritClass::ALL
            .iter()
            .map(|&c| (c, self.on_path(c)))
            .filter(|&(_, n)| n > 0)
            .collect()
    }

    /// The conservation contract against the per-cycle stall attribution:
    /// the composition is a *refinement* of [`StallAttribution`], so every
    /// class total is pinned by the attribution counts it partitions —
    /// fires land on [`CritClass::PeIssue`], bank-conflict stalls on
    /// [`CritClass::BankConflict`], writeback back-pressure on
    /// [`CritClass::FifoCapacity`], and the no-operand + drain cycles split
    /// across memory latency, AGU throughput and writeback flush without
    /// loss. Implies `path_length == attribution.total_cycles()`.
    #[must_use]
    pub fn conserves(&self, attribution: &StallAttribution) -> bool {
        let no_operand: u64 = crate::stall::OperandPort::ALL
            .iter()
            .map(|&p| attribution.count(StallCause::NoOperand(p)))
            .sum();
        let conflicts: u64 = crate::stall::OperandPort::ALL
            .iter()
            .map(|&p| attribution.count(StallCause::BankConflict(p)))
            .sum();
        self.on_path(CritClass::PeIssue) == attribution.fired()
            && self.on_path(CritClass::BankConflict) == conflicts
            && self.on_path(CritClass::FifoCapacity)
                == attribution.count(StallCause::WritebackBackpressure)
            && self.on_path(CritClass::MemLatency)
                + self.on_path(CritClass::AguThroughput)
                + self.on_path(CritClass::WritebackFlush)
                == no_operand + attribution.count(StallCause::Drain)
            && self.path_length() == attribution.total_cycles()
    }

    /// Merges another profile (suite-level aggregation).
    ///
    /// # Panics
    /// If the profiles were recorded under different read latencies — their
    /// `"read-latency->1"` projections would not compose.
    pub fn merge(&mut self, other: &CriticalProfile) {
        assert_eq!(
            self.read_latency, other.read_latency,
            "read latency mismatch in merge"
        );
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
    }

    /// The committed what-if projections, in reporting order.
    ///
    /// * `"read-latency->1"` — at latency 1 the round trip hides entirely
    ///   (a latency-1 run exposes zero memory-latency cycles), so the
    ///   projection starts from removing all `mem` on-path cycles. But the
    ///   `L`-fold compressed request stream re-exposes serialization that
    ///   the latency used to hide, bracketed between `0` (perfect overlap)
    ///   and `mem/L` (one cycle per formerly exposed wait); the committed
    ///   delta is the bracket midpoint `mem − ⌊mem/2L⌋`. Simulable
    ///   (`read_latency = 1`); validated within 10 % of re-simulation.
    /// * `"conflicts-free"` — an ideal crossbar removes every on-path
    ///   bank-conflict cycle. No configuration knob; sign-checked only.
    /// * `"fifo-depth-2x"` — doubling buffer depths removes (at least the
    ///   projected) writeback capacity stalls; deeper operand FIFOs can
    ///   additionally lengthen prefetch distance, so the realized saving
    ///   may exceed this delta. Simulable (doubled `BufferDepths`).
    #[must_use]
    pub fn what_ifs(&self) -> Vec<WhatIf> {
        let path = self.path_length();
        let mem = self.on_path(CritClass::MemLatency);
        let latency_delta = if self.read_latency <= 1 {
            0
        } else {
            mem - mem / (2 * self.read_latency)
        };
        let row = |name, delta: u64, simulable| WhatIf {
            name,
            delta,
            projected: path - delta,
            simulable,
        };
        vec![
            row("read-latency->1", latency_delta, true),
            row(
                "conflicts-free",
                self.on_path(CritClass::BankConflict),
                false,
            ),
            row("fifo-depth-2x", self.on_path(CritClass::FifoCapacity), true),
        ]
    }

    /// The profile as canonical JSON: path length, read latency, the full
    /// six-class composition (every class, fixed order, zeros included so
    /// diffs never chase missing keys) and the projection table. Equal
    /// profiles serialize byte-identically.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("path".to_owned(), JsonValue::from(self.path_length())),
            (
                "read_latency".to_owned(),
                JsonValue::from(self.read_latency),
            ),
            (
                "composition".to_owned(),
                JsonValue::object(
                    CritClass::ALL
                        .iter()
                        .map(|&c| (c.label().to_owned(), JsonValue::from(self.on_path(c)))),
                ),
            ),
            (
                "what_ifs".to_owned(),
                JsonValue::Array(self.what_ifs().iter().map(WhatIf::to_json).collect()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stall::OperandPort;

    const NO_B: StallCause = StallCause::NoOperand(OperandPort::B);
    const BC_A: StallCause = StallCause::BankConflict(OperandPort::A);

    #[test]
    fn classification_is_total_and_stable() {
        assert_eq!(
            CritClass::for_stall(NO_B, BlameLeaf::Bank(3)),
            CritClass::MemLatency
        );
        assert_eq!(
            CritClass::for_stall(NO_B, BlameLeaf::Unattributed),
            CritClass::MemLatency
        );
        assert_eq!(
            CritClass::for_stall(NO_B, BlameLeaf::Agu),
            CritClass::AguThroughput
        );
        assert_eq!(
            CritClass::for_stall(NO_B, BlameLeaf::Gate),
            CritClass::AguThroughput
        );
        assert_eq!(
            CritClass::for_stall(BC_A, BlameLeaf::Bank(0)),
            CritClass::BankConflict
        );
        assert_eq!(
            CritClass::for_stall(StallCause::WritebackBackpressure, BlameLeaf::Unattributed),
            CritClass::FifoCapacity
        );
        assert_eq!(
            CritClass::for_stall(StallCause::Drain, BlameLeaf::Flush),
            CritClass::WritebackFlush
        );
        // ALL is exhaustive and index() maps it onto 0..len in order.
        for (i, class) in CritClass::ALL.iter().enumerate() {
            assert_eq!(class.index(), i, "{} out of reporting order", class.label());
        }
        let labels: std::collections::HashSet<_> =
            CritClass::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), CritClass::ALL.len());
    }

    #[test]
    fn record_n_matches_repeated_records() {
        let mut bulk = CriticalProfile::new(4);
        let mut single = CriticalProfile::new(4);
        bulk.record_stall_n(NO_B, BlameLeaf::Bank(1), 9);
        bulk.record_fire_n(3);
        bulk.record_stall_n(BC_A, BlameLeaf::Bank(0), 0);
        for _ in 0..9 {
            single.record_stall(NO_B, BlameLeaf::Bank(1));
        }
        for _ in 0..3 {
            single.record_fire();
        }
        assert_eq!(bulk, single);
        assert_eq!(bulk.path_length(), 12);
        assert_eq!(bulk.on_path(CritClass::MemLatency), 9);
    }

    #[test]
    fn conserves_against_matching_attribution() {
        let mut att = StallAttribution::new();
        let mut crit = CriticalProfile::new(4);
        for _ in 0..5 {
            att.record_fire();
            crit.record_fire();
        }
        att.record_stall_n(NO_B, 3);
        crit.record_stall_n(NO_B, BlameLeaf::Bank(2), 2);
        crit.record_stall(NO_B, BlameLeaf::Agu);
        att.record_stall(BC_A);
        crit.record_stall(BC_A, BlameLeaf::Bank(0));
        att.record_stall(StallCause::Drain);
        crit.record_stall(StallCause::Drain, BlameLeaf::Flush);
        assert!(crit.conserves(&att));
        assert_eq!(crit.path_length(), att.total_cycles());

        // A cycle charged under the wrong class breaks the refinement even
        // when the totals still agree.
        let mut skewed = crit.clone();
        skewed.counts[CritClass::MemLatency.index()] -= 1;
        skewed.counts[CritClass::BankConflict.index()] += 1;
        assert!(!skewed.conserves(&att));
    }

    #[test]
    fn merge_requires_matching_latency_and_accumulates() {
        let mut a = CriticalProfile::new(4);
        a.record_fire();
        let mut b = CriticalProfile::new(4);
        b.record_stall(NO_B, BlameLeaf::Bank(0));
        a.merge(&b);
        assert_eq!(a.path_length(), 2);
        assert_eq!(a.on_path(CritClass::MemLatency), 1);
    }

    #[test]
    #[should_panic(expected = "read latency mismatch")]
    fn merge_rejects_cross_latency_profiles() {
        let mut a = CriticalProfile::new(4);
        a.merge(&CriticalProfile::new(16));
    }

    #[test]
    fn what_ifs_project_from_the_composition() {
        let mut crit = CriticalProfile::new(16);
        crit.record_fire_n(100);
        crit.record_stall_n(NO_B, BlameLeaf::Bank(0), 160);
        crit.record_stall_n(BC_A, BlameLeaf::Bank(1), 7);
        crit.record_stall_n(
            StallCause::WritebackBackpressure,
            BlameLeaf::Unattributed,
            5,
        );
        let what_ifs = crit.what_ifs();
        let by_name = |name: &str| {
            *what_ifs
                .iter()
                .find(|w| w.name == name)
                .unwrap_or_else(|| panic!("missing what-if {name}"))
        };
        // 160 memory-latency cycles at L=16: dropping to L=1 removes all of
        // them but re-exposes the bracket midpoint 160/(2·16) = 5 cycles of
        // previously hidden serialization.
        let latency = by_name("read-latency->1");
        assert_eq!(latency.delta, 155);
        assert_eq!(latency.projected, crit.path_length() - 155);
        assert!(latency.simulable);
        let conflicts = by_name("conflicts-free");
        assert_eq!(conflicts.delta, 7);
        assert!(!conflicts.simulable);
        let fifo = by_name("fifo-depth-2x");
        assert_eq!(fifo.delta, 5);
        assert!(fifo.simulable);
        // Every projection shortens the path, never below zero.
        for w in &what_ifs {
            assert_eq!(w.projected + w.delta, crit.path_length());
        }
    }

    #[test]
    fn latency_one_projection_is_a_noop() {
        let mut crit = CriticalProfile::new(1);
        crit.record_stall_n(NO_B, BlameLeaf::Bank(0), 40);
        let latency = crit.what_ifs()[0];
        assert_eq!(latency.name, "read-latency->1");
        assert_eq!(latency.delta, 0);
        assert_eq!(latency.projected, crit.path_length());
    }

    #[test]
    fn json_is_deterministic_and_carries_all_classes() {
        let mut crit = CriticalProfile::new(4);
        crit.record_fire();
        crit.record_stall(NO_B, BlameLeaf::Bank(1));
        let json = crit.to_json();
        assert_eq!(json.to_json(), crit.clone().to_json().to_json());
        assert_eq!(json.get("path").unwrap().as_u64(), Some(2));
        assert_eq!(json.get("read_latency").unwrap().as_u64(), Some(4));
        let comp = json.get("composition").unwrap();
        for class in CritClass::ALL {
            assert!(
                comp.get(class.label()).is_some(),
                "composition must carry {} even when zero",
                class.label()
            );
        }
        assert_eq!(comp.get("memory-latency").unwrap().as_u64(), Some(1));
        let what_ifs = json.get("what_ifs").unwrap().as_array().unwrap();
        assert_eq!(what_ifs.len(), 3);
        assert_eq!(
            what_ifs[0].get("name").unwrap().as_str(),
            Some("read-latency->1")
        );
    }
}
