//! A stable, dependency-free 64-bit hasher for provenance fingerprints.
//!
//! `std::hash` deliberately does not promise stability across Rust versions
//! or program runs (SipHash is randomly keyed), so run-report fingerprints
//! built on it would not be comparable across commits — the whole point of
//! the regression baseline. This module implements FNV-1a/64, which is a
//! pure function of the input bytes: the same configuration and workload
//! always produce the same fingerprint, on any host, forever.
//!
//! FNV-1a is not collision-resistant; that is fine here. The fingerprint
//! guards against *accidental* comparison of unlike runs, not adversaries.
//!
//! # Examples
//!
//! ```
//! use dm_sim::StableHasher;
//!
//! let mut h = StableHasher::new();
//! h.write_str("GeMM 16x16x16");
//! h.write_u64(8);
//! let a = h.finish();
//! let mut h2 = StableHasher::new();
//! h2.write_str("GeMM 16x16x16");
//! h2.write_u64(8);
//! assert_eq!(a, h2.finish());
//! ```

/// An incremental FNV-1a/64 hasher.
#[derive(Debug, Clone)]
pub struct StableHasher {
    state: u64,
}

impl Default for StableHasher {
    fn default() -> Self {
        StableHasher::new()
    }
}

impl StableHasher {
    const OFFSET_BASIS: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;

    /// Creates a hasher at the FNV offset basis.
    #[must_use]
    pub fn new() -> Self {
        StableHasher {
            state: Self::OFFSET_BASIS,
        }
    }

    /// Folds raw bytes into the state.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= u64::from(b);
            self.state = self.state.wrapping_mul(Self::PRIME);
        }
    }

    /// Folds a string in, length-prefixed so `("ab", "c")` and
    /// `("a", "bc")` hash differently.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Folds a `u64` in (little-endian bytes).
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Folds a `usize` in, widened to `u64` so 32- and 64-bit hosts agree.
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Folds a bool in as one byte.
    pub fn write_bool(&mut self, v: bool) {
        self.write_bytes(&[u8::from(v)]);
    }

    /// The current 64-bit digest.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.state
    }

    /// The digest as 16 lowercase hex digits — the form reports embed.
    #[must_use]
    pub fn finish_hex(&self) -> String {
        format!("{:016x}", self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_fnv1a_reference_vectors() {
        // Published FNV-1a/64 test vectors.
        let digest = |s: &str| {
            let mut h = StableHasher::new();
            h.write_bytes(s.as_bytes());
            h.finish()
        };
        assert_eq!(digest(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(digest("a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(digest("foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn length_prefix_disambiguates_concatenation() {
        let mut a = StableHasher::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = StableHasher::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn hex_is_sixteen_lowercase_digits() {
        let mut h = StableHasher::new();
        h.write_u64(42);
        let hex = h.finish_hex();
        assert_eq!(hex.len(), 16);
        assert!(hex
            .chars()
            .all(|c| c.is_ascii_hexdigit() && !c.is_ascii_uppercase()));
        assert_eq!(u64::from_str_radix(&hex, 16).unwrap(), h.finish());
    }

    #[test]
    fn field_order_matters() {
        let mut a = StableHasher::new();
        a.write_u64(1);
        a.write_bool(true);
        let mut b = StableHasher::new();
        b.write_bool(true);
        b.write_u64(1);
        assert_ne!(a.finish(), b.finish());
    }
}
