//! Counters and distribution summaries.
//!
//! The ablation study of the paper (Fig. 7) reports utilization as *box
//! plots* with annotated means across a suite of workloads; [`Distribution`]
//! and [`Summary`] reproduce exactly those statistics (min, quartiles,
//! median, max, mean). [`Counter`] is a trivially cheap event counter used
//! throughout the simulator for memory accesses, conflicts, stalls, etc.

use std::cell::RefCell;
use std::fmt;
use std::ops::AddAssign;

use serde::{Deserialize, Serialize};

/// A monotonically increasing event counter.
///
/// # Examples
///
/// ```
/// use dm_sim::Counter;
///
/// let mut reads = Counter::new();
/// reads.inc();
/// reads.add(3);
/// assert_eq!(reads.get(), 4);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Counter(u64);

impl Counter {
    /// Creates a zeroed counter.
    #[must_use]
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n` events.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Returns the count.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Resets to zero.
    pub fn reset(&mut self) {
        self.0 = 0;
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl AddAssign<u64> for Counter {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl From<Counter> for u64 {
    fn from(value: Counter) -> Self {
        value.0
    }
}

/// An online collection of sample values (e.g. per-workload utilization)
/// that can be summarized into box-plot statistics.
///
/// # Examples
///
/// ```
/// use dm_sim::Distribution;
///
/// let mut d = Distribution::new();
/// for v in [0.5, 0.75, 1.0] {
///     d.record(v);
/// }
/// let s = d.summary();
/// assert_eq!(s.min, 0.5);
/// assert_eq!(s.max, 1.0);
/// assert!((s.mean - 0.75).abs() < 1e-12);
/// ```
#[derive(Debug, Default, Clone, Serialize, Deserialize)]
pub struct Distribution {
    samples: Vec<f64>,
    /// Lazily maintained ascending copy of `samples`, so repeated
    /// [`summary`](Self::summary) / [`percentile`](Self::percentile) calls
    /// sort at most once per batch of records. Valid iff its length matches
    /// `samples` (records only ever append).
    #[serde(skip)]
    sorted: RefCell<Vec<f64>>,
}

impl PartialEq for Distribution {
    fn eq(&self, other: &Self) -> bool {
        self.samples == other.samples
    }
}

impl Distribution {
    /// Creates an empty distribution.
    #[must_use]
    pub fn new() -> Self {
        Distribution::default()
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN — a NaN sample always indicates an upstream
    /// division-by-zero bug and would silently poison the quantiles.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "NaN sample recorded into distribution");
        self.samples.push(value);
    }

    /// Number of recorded samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when no sample has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Read-only access to the raw samples (insertion order).
    #[must_use]
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }

    /// Computes box-plot statistics.
    ///
    /// # Panics
    ///
    /// Panics if the distribution is empty.
    #[must_use]
    pub fn summary(&self) -> Summary {
        assert!(!self.samples.is_empty(), "summary of empty distribution");
        self.with_sorted(|sorted| {
            let n = sorted.len();
            let mean = sorted.iter().sum::<f64>() / n as f64;
            Summary {
                count: n,
                min: sorted[0],
                q1: quantile(sorted, 0.25),
                median: quantile(sorted, 0.5),
                q3: quantile(sorted, 0.75),
                max: sorted[n - 1],
                mean,
            }
        })
    }

    /// The `q`-quantile (`0.0..=1.0`) of the recorded samples.
    ///
    /// Interpolation rule (NumPy's `linear`, Hyndman–Fan type 7): the
    /// quantile sits at fractional rank `q · (n − 1)` in the ascending
    /// sample order and interpolates linearly between the two neighbouring
    /// samples. The endpoints are exact by construction and never
    /// extrapolate: `q = 0.0` returns the smallest sample and `q = 1.0` the
    /// largest, bypassing the interpolation arithmetic entirely so no
    /// floating-point rounding can nudge them past the observed range.
    ///
    /// # Panics
    ///
    /// Panics if the distribution is empty or `q` is outside `[0, 1]`.
    #[must_use]
    pub fn percentile(&self, q: f64) -> f64 {
        assert!(!self.samples.is_empty(), "percentile of empty distribution");
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        self.with_sorted(|sorted| quantile(sorted, q))
    }

    /// Runs `f` on the ascending-sorted samples, (re)sorting only when new
    /// samples were recorded since the cache was last built.
    fn with_sorted<R>(&self, f: impl FnOnce(&[f64]) -> R) -> R {
        let mut sorted = self.sorted.borrow_mut();
        if sorted.len() != self.samples.len() {
            sorted.clear();
            sorted.extend_from_slice(&self.samples);
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN recorded"));
        }
        f(&sorted)
    }
}

impl Extend<f64> for Distribution {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.record(v);
        }
    }
}

impl FromIterator<f64> for Distribution {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut d = Distribution::new();
        d.extend(iter);
        d
    }
}

/// Linear-interpolated quantile of an ascending-sorted slice
/// (Hyndman–Fan type 7; see [`Distribution::percentile`] for the full
/// contract). `q <= 0` and `q >= 1` return the first/last element directly —
/// min and max stay exact and interpolation never reads past the ends.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if q <= 0.0 {
        return sorted[0];
    }
    if q >= 1.0 {
        return sorted[sorted.len() - 1];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Box-plot statistics of a [`Distribution`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Smallest sample.
    pub min: f64,
    /// First quartile (25th percentile, linear interpolation).
    pub q1: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Third quartile (75th percentile).
    pub q3: f64,
    /// Largest sample.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "min {:.4} | q1 {:.4} | med {:.4} | q3 {:.4} | max {:.4} | mean {:.4} (n={})",
            self.min, self.q1, self.median, self.q3, self.max, self.mean, self.count
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.inc();
        c += 4;
        c.add(5);
        assert_eq!(c.get(), 10);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_display_and_into() {
        let mut c = Counter::new();
        c.add(12);
        assert_eq!(c.to_string(), "12");
        assert_eq!(u64::from(c), 12);
    }

    #[test]
    fn summary_of_single_sample() {
        let d: Distribution = [0.9].into_iter().collect();
        let s = d.summary();
        assert_eq!(s.min, 0.9);
        assert_eq!(s.q1, 0.9);
        assert_eq!(s.median, 0.9);
        assert_eq!(s.q3, 0.9);
        assert_eq!(s.max, 0.9);
        assert_eq!(s.count, 1);
    }

    #[test]
    fn summary_quartiles_match_hand_computation() {
        // 1..=5 → q1 = 2, median = 3, q3 = 4 under linear interpolation.
        let d: Distribution = (1..=5).map(f64::from).collect();
        let s = d.summary();
        assert_eq!(s.q1, 2.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.q3, 4.0);
        assert_eq!(s.mean, 3.0);
    }

    #[test]
    fn summary_even_count_interpolates_median() {
        let d: Distribution = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(d.summary().median, 2.5);
    }

    #[test]
    #[should_panic(expected = "empty distribution")]
    fn empty_summary_panics() {
        let _ = Distribution::new().summary();
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_sample_panics() {
        let mut d = Distribution::new();
        d.record(f64::NAN);
    }

    #[test]
    fn display_is_nonempty() {
        let d: Distribution = [0.25, 0.5].into_iter().collect();
        assert!(!d.summary().to_string().is_empty());
    }

    #[test]
    fn percentile_interpolates() {
        let d: Distribution = (1..=5).map(f64::from).collect();
        assert_eq!(d.percentile(0.0), 1.0);
        assert_eq!(d.percentile(0.5), 3.0);
        assert_eq!(d.percentile(0.95), 4.8);
        assert_eq!(d.percentile(1.0), 5.0);
    }

    #[test]
    fn sorted_cache_tracks_new_records() {
        let mut d: Distribution = [3.0, 1.0].into_iter().collect();
        assert_eq!(d.summary().max, 3.0); // builds the cache
        d.record(10.0); // invalidates it (length mismatch)
        assert_eq!(d.summary().max, 10.0);
        assert_eq!(d.percentile(0.5), 3.0);
        // Raw sample order is unaffected by the cache.
        assert_eq!(d.samples(), &[3.0, 1.0, 10.0]);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn percentile_rejects_bad_quantile() {
        let d: Distribution = [1.0].into_iter().collect();
        let _ = d.percentile(1.5);
    }

    #[test]
    fn percentile_endpoints_are_exact_min_and_max() {
        // Values chosen so naive interpolation at the ends would round:
        // (max - min) is not exactly representable relative to min.
        let d: Distribution = [0.1, 0.2, 0.30000000000000004, 1e308].into_iter().collect();
        assert_eq!(d.percentile(0.0), 0.1);
        assert_eq!(d.percentile(1.0), 1e308);
        // -0.0 counts as "at or below zero" and still returns the min.
        assert_eq!(d.percentile(-0.0), 0.1);
        // A q infinitesimally below 1 must not exceed the max.
        let near_one = 1.0 - f64::EPSILON;
        assert!(d.percentile(near_one) <= d.percentile(1.0));
    }

    #[test]
    fn percentile_endpoints_match_summary_extremes() {
        let d: Distribution = [4.0, -2.5, 9.25, 0.0].into_iter().collect();
        let s = d.summary();
        assert_eq!(d.percentile(0.0), s.min);
        assert_eq!(d.percentile(1.0), s.max);
    }

    #[test]
    fn equality_ignores_cache_state() {
        let a: Distribution = [2.0, 1.0].into_iter().collect();
        let b: Distribution = [2.0, 1.0].into_iter().collect();
        let _ = a.summary(); // a has a warm cache, b does not
        assert_eq!(a, b);
    }

    proptest! {
        /// min <= q1 <= median <= q3 <= max, and the mean lies within
        /// [min, max], for any non-empty sample set.
        #[test]
        fn summary_is_ordered(samples in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let d: Distribution = samples.into_iter().collect();
            let s = d.summary();
            prop_assert!(s.min <= s.q1 + 1e-9);
            prop_assert!(s.q1 <= s.median + 1e-9);
            prop_assert!(s.median <= s.q3 + 1e-9);
            prop_assert!(s.q3 <= s.max + 1e-9);
            prop_assert!(s.mean >= s.min - 1e-9 && s.mean <= s.max + 1e-9);
        }

        /// The summary is invariant under sample permutation.
        #[test]
        fn summary_permutation_invariant(
            mut samples in proptest::collection::vec(-1e3f64..1e3, 2..50)
        ) {
            let d1: Distribution = samples.iter().copied().collect();
            samples.reverse();
            let d2: Distribution = samples.into_iter().collect();
            prop_assert_eq!(d1.summary(), d2.summary());
        }
    }
}
