//! Minimal-period detection over digest sequences.
//!
//! Shared between the static performance prover (`dm-analyze`), which
//! proves the per-step bank-signature stream of an affine AGU periodic,
//! and the differential soundness tests, which compare that proof against
//! the fire-cycle digest recorded by the simulator's period probe
//! (`SystemConfig::record_fire_cycles`).
//!
//! The period returned is the *weak* (prefix) period: the smallest `p ≥ 1`
//! with `seq[i] == seq[i + p]` for every valid `i`, computed in O(n) via
//! the KMP failure function (`p = n − border(n)`). For a sequence that is
//! a whole number of repetitions this coincides with the strong period;
//! either way, any longer sequence extending `seq` periodically has `p`
//! among its periods, which is the direction the soundness argument needs.

/// The minimal (weak) period of `seq`: the smallest `p ≥ 1` such that
/// `seq[i] == seq[i + p]` whenever both indices are in range. Sequences of
/// length ≤ 1 are trivially `1`-periodic.
#[must_use]
pub fn minimal_period<T: Eq>(seq: &[T]) -> u64 {
    let n = seq.len();
    if n <= 1 {
        return 1;
    }
    // KMP failure function: border[i] = length of the longest proper
    // border (prefix that is also a suffix) of seq[..=i].
    let mut border = vec![0usize; n];
    let mut k = 0usize;
    for i in 1..n {
        while k > 0 && seq[i] != seq[k] {
            k = border[k - 1];
        }
        if seq[i] == seq[k] {
            k += 1;
        }
        border[i] = k;
    }
    (n - border[n - 1]) as u64
}

/// `true` when `p` is a (weak) period of `seq`: `seq[i] == seq[i + p]`
/// for every `i` with `i + p < seq.len()`. `p == 0` is never a period.
#[must_use]
pub fn is_periodic_with<T: Eq>(seq: &[T], p: u64) -> bool {
    if p == 0 {
        return false;
    }
    let Ok(p) = usize::try_from(p) else {
        // A period beyond the sequence length constrains nothing.
        return true;
    };
    seq.len() <= p || (0..seq.len() - p).all(|i| seq[i] == seq[i + p])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degenerate_sequences_are_trivially_periodic() {
        assert_eq!(minimal_period::<u64>(&[]), 1);
        assert_eq!(minimal_period(&[7u64]), 1);
        assert_eq!(minimal_period(&[3u64; 100]), 1);
    }

    #[test]
    fn repeating_patterns_find_the_fundamental_period() {
        assert_eq!(minimal_period(b"abcabcabc"), 3);
        assert_eq!(minimal_period(b"abab"), 2);
        assert_eq!(minimal_period(b"abcd"), 4);
        // Weak period: a partial final repetition still counts.
        assert_eq!(minimal_period(b"abcabcab"), 3);
    }

    #[test]
    fn minimal_period_is_minimal_and_valid() {
        for seq in [
            vec![1u64, 2, 1, 2, 1, 2, 1],
            vec![0, 0, 1, 0, 0, 1],
            vec![5, 4, 3, 2, 1],
            vec![1, 1, 2, 1, 1, 2, 1, 1],
        ] {
            let p = minimal_period(&seq);
            assert!(is_periodic_with(&seq, p), "{seq:?} not {p}-periodic");
            for q in 1..p {
                assert!(!is_periodic_with(&seq, q), "{seq:?} has period {q} < {p}");
            }
        }
    }

    #[test]
    fn any_multiple_of_the_period_is_a_period_of_full_repetitions() {
        let seq: Vec<u64> = (0..60).map(|i| i % 5).collect();
        assert_eq!(minimal_period(&seq), 5);
        for k in 1..6 {
            assert!(is_periodic_with(&seq, 5 * k));
        }
        assert!(!is_periodic_with(&seq, 3));
        assert!(!is_periodic_with(&seq, 0));
    }

    #[test]
    fn oversized_periods_constrain_nothing() {
        assert!(is_periodic_with(&[1u64, 2, 3], 3));
        assert!(is_periodic_with(&[1u64, 2, 3], u64::MAX));
    }
}
