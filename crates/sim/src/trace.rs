//! Lightweight event tracing.
//!
//! The simulator components can optionally emit [`TraceEvent`]s into a
//! [`Trace`]. Tracing is disabled by default and costs a single branch when
//! off, so it can stay compiled into hot loops. It is primarily a debugging
//! aid for pipeline stalls and bank-conflict storms.

use crate::cycle::Cycle;

/// One traced simulator event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle at which the event occurred.
    pub cycle: Cycle,
    /// Component that emitted the event (e.g. `"streamer-A/ch3"`).
    pub source: String,
    /// Human-readable description.
    pub message: String,
}

/// An event trace buffer.
///
/// # Examples
///
/// ```
/// use dm_sim::{Cycle, Trace};
///
/// let mut trace = Trace::new();
/// trace.enable();
/// trace.emit(Cycle::new(4), "xbar", "conflict on bank 3");
/// assert_eq!(trace.events().len(), 1);
/// assert_eq!(trace.events()[0].cycle, Cycle::new(4));
/// ```
#[derive(Debug, Default, Clone)]
pub struct Trace {
    enabled: bool,
    events: Vec<TraceEvent>,
    limit: Option<usize>,
}

impl Trace {
    /// Creates a disabled trace.
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates a disabled trace that will keep at most `limit` events
    /// (older events are retained; later ones dropped) to bound memory.
    #[must_use]
    pub fn with_limit(limit: usize) -> Self {
        Trace {
            enabled: false,
            events: Vec::new(),
            limit: Some(limit),
        }
    }

    /// Enables event recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Disables event recording (events already captured are kept).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Returns `true` while recording.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event if enabled.
    pub fn emit(&mut self, cycle: Cycle, source: &str, message: impl Into<String>) {
        if !self.enabled {
            return;
        }
        if let Some(limit) = self.limit {
            if self.events.len() >= limit {
                return;
            }
        }
        self.events.push(TraceEvent {
            cycle,
            source: source.to_owned(),
            message: message.into(),
        });
    }

    /// The captured events, oldest first.
    #[must_use]
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Drops all captured events.
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new();
        t.emit(Cycle::ZERO, "x", "y");
        assert!(t.events().is_empty());
    }

    #[test]
    fn enabled_trace_records() {
        let mut t = Trace::new();
        t.enable();
        assert!(t.is_enabled());
        t.emit(Cycle::new(1), "agu", "wrap dim 2");
        t.disable();
        t.emit(Cycle::new(2), "agu", "ignored");
        assert_eq!(t.events().len(), 1);
        assert_eq!(t.events()[0].source, "agu");
    }

    #[test]
    fn limit_caps_events() {
        let mut t = Trace::with_limit(2);
        t.enable();
        for i in 0..5 {
            t.emit(Cycle::new(i), "s", "m");
        }
        assert_eq!(t.events().len(), 2);
        assert_eq!(t.events()[1].cycle, Cycle::new(1));
    }

    #[test]
    fn clear_empties_buffer() {
        let mut t = Trace::new();
        t.enable();
        t.emit(Cycle::ZERO, "s", "m");
        t.clear();
        assert!(t.events().is_empty());
    }
}
