//! Lightweight typed event tracing.
//!
//! The simulator components can optionally emit [`TraceEvent`]s into a
//! [`Trace`]. Tracing is disabled by default and costs a single branch when
//! off, so it can stay compiled into hot loops. Events carry a typed
//! [`TraceEventKind`] (bank conflict, FIFO pressure, AGU wrap, PE fire /
//! stall, …) so exporters such as [`crate::perfetto`] can render them
//! without string parsing; [`TraceEventKind::Message`] remains as a
//! free-form escape hatch.
//!
//! Payloads that allocate (message strings, span names) should be emitted
//! through [`Trace::emit_with`], which only builds the event while the trace
//! is recording.

use std::collections::VecDeque;

use serde::{Deserialize, Serialize};

use crate::cycle::Cycle;
use crate::stall::StallCause;

/// What a [`TraceEvent`] describes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEventKind {
    /// `contenders` requesters targeted one bank; all but one retried.
    BankConflict {
        /// The contested physical bank.
        bank: usize,
        /// How many requesters submitted to it this cycle.
        contenders: u64,
    },
    /// A channel's buffer had no space, holding its producer.
    FifoFull {
        /// Channel index within the emitting streamer.
        channel: usize,
    },
    /// A consumer found a channel FIFO empty.
    FifoEmpty {
        /// Channel index within the emitting streamer.
        channel: usize,
    },
    /// The temporal AGU wrapped loop dimension `dim` (carry into `dim + 1`).
    AguWrap {
        /// Innermost wrapped dimension (0 = innermost loop).
        dim: usize,
    },
    /// A copy pre-pass crossed addressing modes (e.g. FIMA → NIMA layout
    /// change).
    RemapModeSwitch {
        /// Addressing mode read from.
        from: String,
        /// Addressing mode written to.
        to: String,
    },
    /// The PE array fired.
    PeFire,
    /// The PE array stalled.
    PeStall {
        /// Why it could not fire.
        cause: StallCause,
    },
    /// A requester submitted a *new* memory request (retries after a lost
    /// arbitration are not re-stamped): the start of a token's causal flow.
    /// `id` is unique per request within a run; Perfetto renders matching
    /// ids as one flow arrow chain across tracks.
    FlowIssue {
        /// Run-unique token id shared by this request's grant and delivery.
        id: u64,
        /// The physical bank the request targets.
        bank: usize,
    },
    /// The request won bank arbitration: the flow's intermediate step.
    FlowGrant {
        /// Token id stamped at [`TraceEventKind::FlowIssue`].
        id: u64,
        /// The granting bank.
        bank: usize,
    },
    /// The response was delivered to its consumer (read data into the
    /// channel FIFO, or a write committed at its grant): the flow's end.
    FlowDeliver {
        /// Token id stamped at [`TraceEventKind::FlowIssue`].
        id: u64,
    },
    /// Begin of a named phase; pairs with [`TraceEventKind::SpanEnd`].
    SpanBegin {
        /// Phase name (e.g. `"compute"`).
        name: String,
    },
    /// End of the innermost open phase with the same name.
    SpanEnd {
        /// Phase name.
        name: String,
    },
    /// Free-form message (back-compat escape hatch).
    Message(String),
}

impl TraceEventKind {
    /// Stable short name of the event kind (Perfetto event name).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::BankConflict { .. } => "bank-conflict",
            TraceEventKind::FifoFull { .. } => "fifo-full",
            TraceEventKind::FifoEmpty { .. } => "fifo-empty",
            TraceEventKind::AguWrap { .. } => "agu-wrap",
            TraceEventKind::RemapModeSwitch { .. } => "remap-mode-switch",
            TraceEventKind::PeFire => "fire",
            TraceEventKind::PeStall { .. } => "stall",
            TraceEventKind::FlowIssue { .. } => "flow-issue",
            TraceEventKind::FlowGrant { .. } => "flow-grant",
            TraceEventKind::FlowDeliver { .. } => "flow-deliver",
            TraceEventKind::SpanBegin { .. } => "span-begin",
            TraceEventKind::SpanEnd { .. } => "span-end",
            TraceEventKind::Message(_) => "message",
        }
    }
}

impl From<&str> for TraceEventKind {
    fn from(message: &str) -> Self {
        TraceEventKind::Message(message.to_owned())
    }
}

impl From<String> for TraceEventKind {
    fn from(message: String) -> Self {
        TraceEventKind::Message(message)
    }
}

/// One traced simulator event.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Cycle at which the event occurred.
    pub cycle: Cycle,
    /// Component that emitted the event (e.g. `"streamer-A"`).
    pub source: String,
    /// What happened.
    pub kind: TraceEventKind,
}

/// How a system run's tracing is configured.
///
/// This is `Copy` so it can live inside copyable configuration structs.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceMode {
    /// No recording; emission costs one branch.
    #[default]
    Off,
    /// Record every event, unbounded.
    Full,
    /// Record into a ring buffer keeping only the newest `n` events.
    Ring(usize),
}

impl TraceMode {
    /// Builds a trace in this mode (enabled unless [`TraceMode::Off`]).
    #[must_use]
    pub fn build(self) -> Trace {
        match self {
            TraceMode::Off => Trace::new(),
            TraceMode::Full => {
                let mut t = Trace::new();
                t.enable();
                t
            }
            TraceMode::Ring(n) => {
                let mut t = Trace::with_limit(n);
                t.enable();
                t
            }
        }
    }
}

/// An event trace buffer.
///
/// # Examples
///
/// ```
/// use dm_sim::{Cycle, Trace, TraceEventKind};
///
/// let mut trace = Trace::new();
/// trace.enable();
/// trace.emit(Cycle::new(4), "xbar", TraceEventKind::BankConflict { bank: 3, contenders: 2 });
/// trace.emit(Cycle::new(5), "xbar", "free-form note");
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.iter().next().unwrap().cycle, Cycle::new(4));
/// ```
#[derive(Debug, Default, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Trace {
    enabled: bool,
    events: VecDeque<TraceEvent>,
    limit: Option<usize>,
    dropped: u64,
}

impl Trace {
    /// Creates a disabled trace.
    #[must_use]
    pub fn new() -> Self {
        Trace::default()
    }

    /// Creates a disabled trace that keeps at most `limit` events in a ring
    /// buffer: once full, each new event evicts the *oldest* one, so the
    /// buffer always holds the newest `limit` events. Evictions are counted
    /// in [`dropped`](Self::dropped).
    #[must_use]
    pub fn with_limit(limit: usize) -> Self {
        Trace {
            enabled: false,
            events: VecDeque::with_capacity(limit.min(4096)),
            limit: Some(limit),
            dropped: 0,
        }
    }

    /// Enables event recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Disables event recording (events already captured are kept).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Returns `true` while recording.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event if enabled.
    pub fn emit(&mut self, cycle: Cycle, source: &str, kind: impl Into<TraceEventKind>) {
        if !self.enabled {
            return;
        }
        self.record(TraceEvent {
            cycle,
            source: source.to_owned(),
            kind: kind.into(),
        });
    }

    /// Records an event if enabled, building the kind lazily — use this at
    /// hot emission sites whose payload allocates.
    pub fn emit_with(&mut self, cycle: Cycle, source: &str, kind: impl FnOnce() -> TraceEventKind) {
        if !self.enabled {
            return;
        }
        self.record(TraceEvent {
            cycle,
            source: source.to_owned(),
            kind: kind(),
        });
    }

    fn record(&mut self, event: TraceEvent) {
        if let Some(limit) = self.limit {
            if limit == 0 {
                self.dropped += 1;
                return;
            }
            if self.events.len() >= limit {
                self.events.pop_front();
                self.dropped += 1;
            }
        }
        self.events.push_back(event);
    }

    /// Number of captured events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no event has been captured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events evicted by the ring-buffer limit since the last
    /// [`clear`](Self::clear).
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The captured events, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// Drops all captured events and resets the dropped counter.
    pub fn clear(&mut self) {
        self.events.clear();
        self.dropped = 0;
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TraceEvent;
    type IntoIter = std::collections::vec_deque::Iter<'a, TraceEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_trace_records_nothing() {
        let mut t = Trace::new();
        t.emit(Cycle::ZERO, "x", "y");
        assert!(t.is_empty());
    }

    #[test]
    fn enabled_trace_records() {
        let mut t = Trace::new();
        t.enable();
        assert!(t.is_enabled());
        t.emit(Cycle::new(1), "agu", TraceEventKind::AguWrap { dim: 2 });
        t.disable();
        t.emit(Cycle::new(2), "agu", "ignored");
        assert_eq!(t.len(), 1);
        let event = t.iter().next().unwrap();
        assert_eq!(event.source, "agu");
        assert_eq!(event.kind, TraceEventKind::AguWrap { dim: 2 });
    }

    #[test]
    fn limit_keeps_newest_events() {
        let mut t = Trace::with_limit(2);
        t.enable();
        for i in 0..5 {
            t.emit(Cycle::new(i), "s", "m");
        }
        // Ring buffer: the oldest three were evicted; cycles 3 and 4 remain.
        assert_eq!(t.len(), 2);
        let cycles: Vec<Cycle> = t.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![Cycle::new(3), Cycle::new(4)]);
        assert_eq!(t.dropped(), 3);
    }

    #[test]
    fn zero_limit_drops_everything() {
        let mut t = Trace::with_limit(0);
        t.enable();
        t.emit(Cycle::ZERO, "s", "m");
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 1);
    }

    #[test]
    fn emit_with_is_lazy_when_disabled() {
        let mut t = Trace::new();
        t.emit_with(Cycle::ZERO, "s", || panic!("must not build when disabled"));
        t.enable();
        t.emit_with(Cycle::ZERO, "s", || TraceEventKind::PeFire);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn clear_empties_buffer() {
        let mut t = Trace::with_limit(1);
        t.enable();
        t.emit(Cycle::ZERO, "s", "m");
        t.emit(Cycle::ZERO, "s", "m");
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn trace_mode_builds_matching_traces() {
        assert!(!TraceMode::Off.build().is_enabled());
        assert!(TraceMode::Full.build().is_enabled());
        let mut ring = TraceMode::Ring(1).build();
        assert!(ring.is_enabled());
        ring.emit(Cycle::ZERO, "s", "a");
        ring.emit(Cycle::ZERO, "s", "b");
        assert_eq!(ring.len(), 1);
    }

    #[test]
    fn message_kinds_convert_from_strings() {
        assert_eq!(
            TraceEventKind::from("hi"),
            TraceEventKind::Message("hi".into())
        );
        assert_eq!(TraceEventKind::PeFire.name(), "fire");
    }
}
