//! Strongly typed clock-cycle counts.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A count of clock cycles.
///
/// `Cycle` is a transparent newtype over `u64` ([C-NEWTYPE]); it exists so
/// that cycle counts cannot be confused with byte counts, element counts or
/// addresses anywhere in the simulator.
///
/// # Examples
///
/// ```
/// use dm_sim::Cycle;
///
/// let start = Cycle::new(10);
/// let end = start + 5;
/// assert_eq!(end - start, Cycle::new(5));
/// assert_eq!(end.get(), 15);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
#[serde(transparent)]
pub struct Cycle(u64);

impl Cycle {
    /// The zeroth cycle.
    pub const ZERO: Cycle = Cycle(0);

    /// Creates a cycle count.
    #[must_use]
    pub const fn new(value: u64) -> Self {
        Cycle(value)
    }

    /// Returns the raw count.
    #[must_use]
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Advances by one cycle.
    pub fn advance(&mut self) {
        self.0 += 1;
    }

    /// Saturating subtraction; useful for latencies that may be measured
    /// across a wrap-less but unordered pair of stamps.
    #[must_use]
    pub const fn saturating_sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(rhs.0))
    }

    /// Converts a cycle count at a clock frequency (Hz) into seconds.
    #[must_use]
    pub fn as_seconds(self, frequency_hz: f64) -> f64 {
        self.0 as f64 / frequency_hz
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

impl From<u64> for Cycle {
    fn from(value: u64) -> Self {
        Cycle(value)
    }
}

impl From<Cycle> for u64 {
    fn from(value: Cycle) -> Self {
        value.0
    }
}

impl Add for Cycle {
    type Output = Cycle;

    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl Add<u64> for Cycle {
    type Output = Cycle;

    fn add(self, rhs: u64) -> Cycle {
        Cycle(self.0 + rhs)
    }
}

impl AddAssign for Cycle {
    fn add_assign(&mut self, rhs: Cycle) {
        self.0 += rhs.0;
    }
}

impl AddAssign<u64> for Cycle {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub for Cycle {
    type Output = Cycle;

    fn sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 - rhs.0)
    }
}

impl SubAssign for Cycle {
    fn sub_assign(&mut self, rhs: Cycle) {
        self.0 -= rhs.0;
    }
}

impl Sum for Cycle {
    fn sum<I: Iterator<Item = Cycle>>(iter: I) -> Cycle {
        Cycle(iter.map(|c| c.0).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_behaves_like_u64() {
        let a = Cycle::new(7);
        let b = Cycle::new(3);
        assert_eq!(a + b, Cycle::new(10));
        assert_eq!(a - b, Cycle::new(4));
        assert_eq!(a + 1, Cycle::new(8));
    }

    #[test]
    fn advance_increments() {
        let mut c = Cycle::ZERO;
        c.advance();
        c.advance();
        assert_eq!(c, Cycle::new(2));
    }

    #[test]
    fn saturating_sub_clamps_at_zero() {
        assert_eq!(Cycle::new(3).saturating_sub(Cycle::new(5)), Cycle::ZERO);
        assert_eq!(Cycle::new(5).saturating_sub(Cycle::new(3)), Cycle::new(2));
    }

    #[test]
    fn display_and_conversions() {
        let c = Cycle::from(42u64);
        assert_eq!(c.to_string(), "42 cycles");
        assert_eq!(u64::from(c), 42);
    }

    #[test]
    fn as_seconds_uses_frequency() {
        let c = Cycle::new(1_000_000_000);
        assert!((c.as_seconds(1e9) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sum_of_cycles() {
        let total: Cycle = [Cycle::new(1), Cycle::new(2), Cycle::new(3)]
            .into_iter()
            .sum();
        assert_eq!(total, Cycle::new(6));
    }

    #[test]
    fn add_assign_variants() {
        let mut c = Cycle::new(1);
        c += Cycle::new(2);
        c += 3;
        assert_eq!(c, Cycle::new(6));
        c -= Cycle::new(4);
        assert_eq!(c, Cycle::new(2));
    }
}
