//! Per-cycle stall attribution.
//!
//! The ablation story of the paper (Fig. 7 ①→⑥) is entirely a story about
//! *why* the PE array does not fire: operands missing because the memory
//! round-trip is exposed, requests losing bank arbitration, the writeback
//! path pushing back, or the tail-end drain after the last compute step.
//! [`StallAttribution`] classifies every non-firing cycle into that taxonomy
//! so a run can report `fired + Σ stalls == total cycles` exactly.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::json::JsonValue;

/// An accelerator port involved in a stall.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Port {
    /// The A operand stream.
    A,
    /// The B operand stream.
    B,
    /// The C (accumulator) operand stream.
    C,
    /// The output writeback stream.
    Out,
}

impl Port {
    /// Short label (`"A"`, `"B"`, `"C"`, `"OUT"`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Port::A => "A",
            Port::B => "B",
            Port::C => "C",
            Port::Out => "OUT",
        }
    }
}

/// A *read* operand port — the only ports a `NoOperand`/`BankConflict`
/// stall can name. The writeback stream (`Port::Out`) can never be the
/// missing operand, so the impossible variants are unrepresentable rather
/// than silently aliased into another bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum OperandPort {
    /// The A operand stream.
    A,
    /// The B operand stream.
    B,
    /// The C (accumulator) operand stream.
    C,
}

impl OperandPort {
    /// Every operand port, in reporting order.
    pub const ALL: [OperandPort; 3] = [OperandPort::A, OperandPort::B, OperandPort::C];

    /// Short label (`"A"`, `"B"`, `"C"`).
    #[must_use]
    pub fn label(self) -> &'static str {
        self.port().label()
    }

    /// The corresponding general [`Port`].
    #[must_use]
    pub fn port(self) -> Port {
        match self {
            OperandPort::A => Port::A,
            OperandPort::B => Port::B,
            OperandPort::C => Port::C,
        }
    }
}

/// Why the PE array could not fire on one cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum StallCause {
    /// An operand FIFO was empty and its streamer was *not* losing
    /// arbitration on the previous cycle: the stall is exposed memory
    /// latency or AGU cadence, not contention.
    NoOperand(OperandPort),
    /// An operand FIFO was empty while its streamer lost bank arbitration
    /// on the previous cycle: contention on the scratchpad banks.
    BankConflict(OperandPort),
    /// All operands were ready but the writeback streamer could not accept
    /// the produced tile.
    WritebackBackpressure,
    /// All compute steps have issued; the run is waiting for the writeback
    /// path to drain.
    Drain,
}

impl StallCause {
    /// Every cause, in reporting order.
    pub const ALL: [StallCause; 8] = [
        StallCause::NoOperand(OperandPort::A),
        StallCause::NoOperand(OperandPort::B),
        StallCause::NoOperand(OperandPort::C),
        StallCause::BankConflict(OperandPort::A),
        StallCause::BankConflict(OperandPort::B),
        StallCause::BankConflict(OperandPort::C),
        StallCause::WritebackBackpressure,
        StallCause::Drain,
    ];

    /// Stable human/machine label, e.g. `"bank-conflict(B)"`.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StallCause::NoOperand(OperandPort::A) => "no-operand(A)",
            StallCause::NoOperand(OperandPort::B) => "no-operand(B)",
            StallCause::NoOperand(OperandPort::C) => "no-operand(C)",
            StallCause::BankConflict(OperandPort::A) => "bank-conflict(A)",
            StallCause::BankConflict(OperandPort::B) => "bank-conflict(B)",
            StallCause::BankConflict(OperandPort::C) => "bank-conflict(C)",
            StallCause::WritebackBackpressure => "writeback-backpressure",
            StallCause::Drain => "drain",
        }
    }

    /// The port a stall charges its cycle to: the missing operand's port
    /// for operand stalls, `Port::Out` for writeback and drain stalls.
    #[must_use]
    pub fn port(self) -> Port {
        match self {
            StallCause::NoOperand(p) | StallCause::BankConflict(p) => p.port(),
            StallCause::WritebackBackpressure | StallCause::Drain => Port::Out,
        }
    }

    /// Dense bucket index, unique per constructible cause (see
    /// [`StallCause::ALL`] for the order). Total over the type: every
    /// variant that can be built has its own bucket.
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            StallCause::NoOperand(OperandPort::A) => 0,
            StallCause::NoOperand(OperandPort::B) => 1,
            StallCause::NoOperand(OperandPort::C) => 2,
            StallCause::BankConflict(OperandPort::A) => 3,
            StallCause::BankConflict(OperandPort::B) => 4,
            StallCause::BankConflict(OperandPort::C) => 5,
            StallCause::WritebackBackpressure => 6,
            StallCause::Drain => 7,
        }
    }
}

impl fmt::Display for StallCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Classification of every cycle of a compute phase: fired, or stalled for
/// exactly one [`StallCause`].
///
/// # Examples
///
/// ```
/// use dm_sim::{OperandPort, StallAttribution, StallCause};
///
/// let mut att = StallAttribution::new();
/// att.record_fire();
/// att.record_stall(StallCause::NoOperand(OperandPort::A));
/// att.record_stall(StallCause::Drain);
/// assert_eq!(att.total_cycles(), 3);
/// assert_eq!(att.stalled(), 2);
/// assert_eq!(att.count(StallCause::Drain), 1);
/// ```
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallAttribution {
    fired: u64,
    counts: [u64; StallCause::ALL.len()],
}

impl StallAttribution {
    /// Creates an empty attribution.
    #[must_use]
    pub fn new() -> Self {
        StallAttribution::default()
    }

    /// Records one firing cycle.
    pub fn record_fire(&mut self) {
        self.fired += 1;
    }

    /// Records one stalled cycle with its cause.
    pub fn record_stall(&mut self, cause: StallCause) {
        self.counts[cause.index()] += 1;
    }

    /// Records `n` stalled cycles sharing one cause in O(1).
    ///
    /// The fast-forward engine proves the stall cause is constant across a
    /// skipped span and attributes the whole span at once; the result is
    /// bit-identical to `n` calls to [`record_stall`](Self::record_stall).
    pub fn record_stall_n(&mut self, cause: StallCause, n: u64) {
        self.counts[cause.index()] += n;
    }

    /// Cycles the PE array fired.
    #[must_use]
    pub fn fired(&self) -> u64 {
        self.fired
    }

    /// Cycles attributed to `cause`.
    #[must_use]
    pub fn count(&self, cause: StallCause) -> u64 {
        self.counts[cause.index()]
    }

    /// Total stalled cycles across all causes.
    #[must_use]
    pub fn stalled(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Total classified cycles: `fired + stalled`. The system asserts this
    /// equals the compute-phase cycle count on every run.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.fired + self.stalled()
    }

    /// Fraction of classified cycles the array fired (0 for an empty
    /// attribution).
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let total = self.total_cycles();
        if total == 0 {
            0.0
        } else {
            self.fired as f64 / total as f64
        }
    }

    /// `(cause, cycles)` for every cause with a nonzero count, reporting
    /// order.
    #[must_use]
    pub fn breakdown(&self) -> Vec<(StallCause, u64)> {
        StallCause::ALL
            .iter()
            .map(|&c| (c, self.count(c)))
            .filter(|&(_, n)| n > 0)
            .collect()
    }

    /// Merges another attribution into this one (suite-level aggregation).
    pub fn merge(&mut self, other: &StallAttribution) {
        self.fired += other.fired;
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
    }

    /// The attribution as a JSON object keyed by cause label.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let mut pairs = vec![("fired".to_owned(), JsonValue::from(self.fired))];
        for &cause in &StallCause::ALL {
            pairs.push((cause.label().to_owned(), JsonValue::from(self.count(cause))));
        }
        JsonValue::Object(pairs)
    }
}

impl fmt::Display for StallAttribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total_cycles();
        writeln!(
            f,
            "cycles {total} | fired {} ({:.1}%)",
            self.fired,
            self.utilization() * 100.0
        )?;
        for (cause, n) in self.breakdown() {
            writeln!(
                f,
                "  {:<24} {:>10}  ({:.1}%)",
                cause.label(),
                n,
                if total == 0 {
                    0.0
                } else {
                    n as f64 / total as f64 * 100.0
                }
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_is_exact() {
        let mut att = StallAttribution::new();
        for _ in 0..10 {
            att.record_fire();
        }
        att.record_stall(StallCause::BankConflict(OperandPort::B));
        att.record_stall(StallCause::BankConflict(OperandPort::B));
        att.record_stall(StallCause::WritebackBackpressure);
        assert_eq!(att.fired(), 10);
        assert_eq!(att.stalled(), 3);
        assert_eq!(att.total_cycles(), 13);
        assert_eq!(att.count(StallCause::BankConflict(OperandPort::B)), 2);
        assert_eq!(att.count(StallCause::Drain), 0);
        assert!((att.utilization() - 10.0 / 13.0).abs() < 1e-12);
    }

    #[test]
    fn bulk_stall_recording_matches_repeated_single_records() {
        let mut bulk = StallAttribution::new();
        let mut single = StallAttribution::new();
        bulk.record_stall_n(StallCause::NoOperand(OperandPort::B), 17);
        bulk.record_stall_n(StallCause::Drain, 0);
        for _ in 0..17 {
            single.record_stall(StallCause::NoOperand(OperandPort::B));
        }
        assert_eq!(bulk, single);
        assert_eq!(bulk.total_cycles(), 17);
    }

    #[test]
    fn breakdown_lists_nonzero_causes_in_order() {
        let mut att = StallAttribution::new();
        att.record_stall(StallCause::Drain);
        att.record_stall(StallCause::NoOperand(OperandPort::A));
        let causes: Vec<_> = att.breakdown().into_iter().map(|(c, _)| c).collect();
        assert_eq!(
            causes,
            vec![StallCause::NoOperand(OperandPort::A), StallCause::Drain]
        );
    }

    #[test]
    fn merge_accumulates() {
        let mut a = StallAttribution::new();
        a.record_fire();
        a.record_stall(StallCause::Drain);
        let mut b = StallAttribution::new();
        b.record_stall(StallCause::Drain);
        a.merge(&b);
        assert_eq!(a.count(StallCause::Drain), 2);
        assert_eq!(a.total_cycles(), 3);
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<_> =
            StallCause::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), StallCause::ALL.len());
    }

    #[test]
    fn label_and_index_are_injective_over_all() {
        // Every constructible cause gets its own bucket *and* its own
        // label; no variant silently aliases into another's slot.
        let indices: std::collections::HashSet<_> =
            StallCause::ALL.iter().map(|c| c.index()).collect();
        assert_eq!(indices.len(), StallCause::ALL.len());
        assert!(StallCause::ALL
            .iter()
            .all(|c| c.index() < StallCause::ALL.len()));
        // ALL is itself exhaustive: index() maps it onto 0..len in order.
        for (i, cause) in StallCause::ALL.iter().enumerate() {
            assert_eq!(cause.index(), i, "{} out of reporting order", cause.label());
        }
        let labels: std::collections::HashSet<_> =
            StallCause::ALL.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), StallCause::ALL.len());
    }

    #[test]
    fn json_reports_all_causes() {
        let mut att = StallAttribution::new();
        att.record_fire();
        att.record_stall(StallCause::Drain);
        let json = att.to_json();
        assert_eq!(json.get("fired").unwrap().as_u64(), Some(1));
        assert_eq!(json.get("drain").unwrap().as_u64(), Some(1));
        assert_eq!(json.get("no-operand(A)").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn display_mentions_every_nonzero_cause() {
        let mut att = StallAttribution::new();
        att.record_fire();
        att.record_stall(StallCause::BankConflict(OperandPort::A));
        let text = att.to_string();
        assert!(text.contains("bank-conflict(A)"));
        assert!(!text.contains("drain"));
    }
}
