//! Deterministic fast-forward: idle-cycle elision for the tick kernel.
//!
//! A decoupled-access-execute system spends many simulated cycles in states
//! where *nothing can change*: every streamer is waiting on in-flight bank
//! latency, the PE handshake stalls, and the only future event is a memory
//! response due k cycles out. A lockstep simulator burns host time walking
//! those cycles one by one; classic event-driven simulators (gem5-style
//! event queues) skip them entirely. This module provides the deterministic
//! variant of that trick:
//!
//! * every ticked component reports a conservative [`NextActivity`] horizon
//!   — the earliest cycle at which its observable state *can* change on its
//!   own (`None` = idle until externally poked, e.g. by a memory response or
//!   a PE pop);
//! * [`FastForward::span`] takes the minimum across all horizons; the caller
//!   skips that many cycles in O(1), replaying the aggregate side effects
//!   (occupancy samples, stall tallies, clock advance) so the run's metrics
//!   are **bit-identical** to the lockstep result;
//! * [`SpanCheck`] is the debug-build safety net: digests captured before a
//!   skip must match after it, so an optimistic horizon (a component that
//!   would have acted inside the span) is caught immediately instead of
//!   silently corrupting the run.
//!
//! Conservatism is the whole contract: a horizon may be *later* than
//! reported only at the cost of performance, never of correctness, because
//! the caller re-evaluates every horizon after each skip. A horizon
//! *earlier* than the true one merely shortens the skip. The only fatal bug
//! is a horizon later than the true first activity — exactly what
//! [`SpanCheck`] exists to catch.

use crate::cycle::Cycle;

/// A conservative activity horizon for one ticked component.
///
/// Implemented by everything the system loop ticks: read/write streamers,
/// the memory subsystem, the copy engine, the GeMM datapath and the
/// quantizer.
pub trait NextActivity {
    /// Earliest cycle at which this component's observable state can change
    /// *without external input*.
    ///
    /// * `Some(at)` with `at <= now` — the component can act this very
    ///   cycle; nothing may be skipped.
    /// * `Some(at)` with `at > now` — the component is provably inert until
    ///   `at` (e.g. an in-flight read response due then).
    /// * `None` — the component is idle until externally poked (a response
    ///   delivery, a PE pop/push); some *other* component's horizon or the
    ///   caller's own handshake logic bounds the skip.
    ///
    /// The estimate must be conservative: the component must not change any
    /// observable state (counters, FIFO contents, histogram samples beyond
    /// the caller-replayed occupancy samples) strictly before the reported
    /// cycle.
    fn next_activity(&self, now: Cycle) -> Option<Cycle>;

    /// A cheap digest of the state that must stay frozen across a skipped
    /// span. Used by debug assertions ([`SpanCheck`]) to catch optimistic
    /// horizons; deliberately excludes state the fast-forward replay adjusts
    /// on purpose (the clock itself, occupancy histograms).
    fn activity_digest(&self) -> u64;
}

/// The fast-forward scheduler: folds component horizons into a skippable
/// span length.
#[derive(Debug, Clone, Copy, Default)]
pub struct FastForward;

impl FastForward {
    /// Number of whole cycles starting at `now` that are provably inert,
    /// bounded by `cap`.
    ///
    /// Components reporting `None` do not constrain the span (they are idle
    /// until poked); components reporting `Some(at)` constrain it to
    /// `at - now` (zero when `at <= now`). With every horizon `None` the
    /// span is `cap` — the caller's deadlock budget, so a genuinely wedged
    /// system fast-forwards straight to the same diagnostic the lockstep
    /// path would produce.
    ///
    /// Returns 0 as soon as any component can act now; callers apply their
    /// own profitability threshold (the system loop skips only when the
    /// span exceeds one cycle).
    #[must_use]
    pub fn span(now: Cycle, horizons: impl IntoIterator<Item = Option<Cycle>>, cap: u64) -> u64 {
        let mut span = cap;
        for at in horizons.into_iter().flatten() {
            span = span.min(at.saturating_sub(now).get());
            if span == 0 {
                return 0;
            }
        }
        span
    }
}

/// Digest snapshot taken before a skipped span, verified after it.
///
/// The fast-forward replay must only touch the clock, occupancy samples and
/// stall tallies; every component's [`NextActivity::activity_digest`] must
/// be bit-identical before and after the skip. A mismatch means a horizon
/// was optimistic — the component would have acted inside the span — and
/// the skip silently diverged from lockstep.
#[derive(Debug, Default, Clone)]
pub struct SpanCheck {
    entries: Vec<(&'static str, u64)>,
}

impl SpanCheck {
    /// Captures `(component name, digest)` pairs before a skip.
    #[must_use]
    pub fn capture(components: impl IntoIterator<Item = (&'static str, u64)>) -> Self {
        SpanCheck {
            entries: components.into_iter().collect(),
        }
    }

    /// Asserts every digest is unchanged, in capture order.
    ///
    /// # Panics
    ///
    /// Panics naming the offending component if any digest moved (its
    /// `next_activity` horizon was optimistic) or if the component list
    /// differs from the captured one.
    pub fn assert_unchanged(&self, components: impl IntoIterator<Item = (&'static str, u64)>) {
        let mut seen = 0usize;
        for (i, (name, digest)) in components.into_iter().enumerate() {
            let (captured_name, captured_digest) = self.entries[i];
            assert_eq!(
                captured_name, name,
                "span check re-evaluated with a different component list"
            );
            assert!(
                captured_digest == digest,
                "component `{name}` changed state during a fast-forwarded span \
                 (digest {captured_digest:#018x} -> {digest:#018x}): \
                 its next_activity horizon was optimistic"
            );
            seen += 1;
        }
        assert_eq!(
            seen,
            self.entries.len(),
            "span check re-evaluated with a different component list"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_is_the_min_over_constraining_horizons() {
        let now = Cycle::new(10);
        let horizons = [Some(Cycle::new(14)), None, Some(Cycle::new(20))];
        assert_eq!(FastForward::span(now, horizons, 100), 4);
    }

    #[test]
    fn span_with_all_idle_components_is_the_cap() {
        let horizons: [Option<Cycle>; 3] = [None, None, None];
        assert_eq!(FastForward::span(Cycle::new(5), horizons, 42), 42);
        assert_eq!(FastForward::span(Cycle::ZERO, [], 7), 7);
    }

    #[test]
    fn span_is_zero_when_any_component_can_act_now() {
        let now = Cycle::new(10);
        assert_eq!(
            FastForward::span(now, [Some(Cycle::new(30)), Some(now)], 100),
            0
        );
        // A stale horizon in the past clamps to zero rather than wrapping.
        assert_eq!(FastForward::span(now, [Some(Cycle::new(3))], 100), 0);
    }

    #[test]
    fn span_respects_the_cap() {
        let now = Cycle::new(0);
        assert_eq!(FastForward::span(now, [Some(Cycle::new(1000))], 16), 16);
    }

    /// A component whose true first activity is at `wake_at` but whose
    /// reported horizon is `claimed` — set one later than the truth to model
    /// the classic off-by-one conservatism bug.
    struct MockStreamer {
        counter: u64,
        wake_at: u64,
        claimed: u64,
    }

    impl MockStreamer {
        fn tick(&mut self, now: Cycle) {
            if now.get() >= self.wake_at {
                self.counter += 1;
            }
        }
    }

    impl NextActivity for MockStreamer {
        fn next_activity(&self, _now: Cycle) -> Option<Cycle> {
            Some(Cycle::new(self.claimed))
        }

        fn activity_digest(&self) -> u64 {
            self.counter
        }
    }

    /// Drives the mock through the span the scheduler computed from its own
    /// claimed horizon, then verifies the digest.
    fn skip_and_verify(mock: &mut MockStreamer) {
        let now = Cycle::ZERO;
        let span = FastForward::span(now, [mock.next_activity(now)], 1_000);
        let check = SpanCheck::capture([("mock", mock.activity_digest())]);
        // What lockstep would have done during the skipped cycles.
        for c in 0..span {
            mock.tick(now + c);
        }
        check.assert_unchanged([("mock", mock.activity_digest())]);
    }

    #[test]
    fn exact_horizon_passes_the_span_check() {
        let mut mock = MockStreamer {
            counter: 0,
            wake_at: 5,
            claimed: 5,
        };
        skip_and_verify(&mut mock);
        assert_eq!(mock.counter, 0, "activity at the horizon is not skipped");
    }

    #[test]
    #[should_panic(expected = "changed state during a fast-forwarded span")]
    fn optimistic_off_by_one_horizon_is_caught() {
        // Claims cycle 6 but actually acts at cycle 5: the span covers the
        // activity and the digest check must fire.
        let mut mock = MockStreamer {
            counter: 0,
            wake_at: 5,
            claimed: 6,
        };
        skip_and_verify(&mut mock);
    }

    #[test]
    #[should_panic(expected = "different component list")]
    fn component_list_mismatch_is_caught() {
        let check = SpanCheck::capture([("a", 1u64), ("b", 2u64)]);
        check.assert_unchanged([("a", 1u64)]);
    }
}
