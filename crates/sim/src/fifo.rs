//! Bounded FIFO with slot reservation.
//!
//! The data FIFOs inside a DataMaestro channel are not ordinary queues: the
//! Outstanding Request Manager (ORM, Fig. 2b of the paper) *reserves* a slot
//! for every in-flight memory request before the Request Side Controller is
//! allowed to issue it. A response therefore always has a landing slot and a
//! channel can never back-pressure the memory banks. [`Fifo`] models exactly
//! that: capacity is shared between occupied slots and reservations, and
//! reservations are filled strictly in the order they were made (memory
//! responses per channel arrive in order because requests issue in order and
//! the banks have a fixed latency).

use std::collections::VecDeque;
use std::fmt;

/// Token for a reserved FIFO slot.
///
/// Produced by [`Fifo::try_reserve`] and consumed by [`Fifo::fill_reserved`].
/// The token carries the reservation sequence number so that out-of-order
/// fills — a protocol violation in the modelled hardware — are caught
/// immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[must_use = "a reserved slot must eventually be filled"]
pub struct ReservedSlot {
    seq: u64,
}

impl ReservedSlot {
    /// Returns the reservation sequence number (monotonically increasing per
    /// FIFO).
    pub fn sequence(self) -> u64 {
        self.seq
    }
}

/// A bounded FIFO queue with slot reservation.
///
/// # Examples
///
/// ```
/// use dm_sim::Fifo;
///
/// let mut fifo: Fifo<&str> = Fifo::new(2);
/// assert!(fifo.has_free_slot());
/// let slot = fifo.try_reserve().expect("space available");
/// // One slot left: it can still be used by a direct push.
/// fifo.push("direct").expect("one slot remains");
/// assert!(!fifo.has_free_slot());
/// // The reserved slot is filled later (e.g. by a memory response) and the
/// // element lands *in front of* later pushes, preserving request order.
/// fifo.fill_reserved(slot, "response");
/// assert_eq!(fifo.pop(), Some("response"));
/// assert_eq!(fifo.pop(), Some("direct"));
/// ```
#[derive(Clone)]
pub struct Fifo<T> {
    capacity: usize,
    /// Filled, poppable elements.
    items: VecDeque<T>,
    /// Elements that were pushed (directly or by fill) *after* currently
    /// outstanding reservations; they become poppable only once all earlier
    /// reservations have been filled. Each entry is `Some(value)` for a
    /// direct push and `None` for a still-pending reservation.
    ///
    /// Invariant: when `tail` is non-empty its front is `None` — direct
    /// pushes go straight to `items` while no reservation is outstanding,
    /// and `promote_tail` strips leading `Some`s after every fill. The
    /// oldest pending reservation is therefore always at the front, which
    /// is what makes [`fill_reserved`](Self::fill_reserved) O(1).
    tail: VecDeque<Option<T>>,
    next_reserve_seq: u64,
    next_fill_seq: u64,
    high_watermark: usize,
}

impl<T> Fifo<T> {
    /// Creates a FIFO with the given capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero: a zero-depth FIFO cannot decouple
    /// anything and always indicates a configuration bug.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "fifo capacity must be non-zero");
        Fifo {
            capacity,
            items: VecDeque::with_capacity(capacity),
            tail: VecDeque::new(),
            next_reserve_seq: 0,
            next_fill_seq: 0,
            high_watermark: 0,
        }
    }

    /// Total capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of poppable elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Returns `true` when no element is poppable.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of slots that are either occupied or reserved.
    #[inline]
    pub fn committed(&self) -> usize {
        self.items.len() + self.tail.len()
    }

    /// Number of slots still available for reservation or direct push.
    #[inline]
    pub fn free_slots(&self) -> usize {
        self.capacity - self.committed()
    }

    /// Returns `true` if at least one slot can be reserved or pushed.
    #[inline]
    pub fn has_free_slot(&self) -> bool {
        self.free_slots() > 0
    }

    /// Number of outstanding (reserved but unfilled) slots.
    ///
    /// O(1): every reservation increments `next_reserve_seq` and every fill
    /// increments `next_fill_seq`, so the difference is exactly the number
    /// of `None` entries in the tail. Occupancy sampling calls this once
    /// per channel per cycle, so it must not scan.
    pub fn outstanding(&self) -> usize {
        debug_assert_eq!(
            (self.next_reserve_seq - self.next_fill_seq) as usize,
            self.tail.iter().filter(|slot| slot.is_none()).count(),
            "sequence counters must track pending reservations exactly"
        );
        (self.next_reserve_seq - self.next_fill_seq) as usize
    }

    /// Highest number of committed slots observed; useful for sizing sweeps.
    #[inline]
    pub fn high_watermark(&self) -> usize {
        self.high_watermark
    }

    /// Attempts to reserve a slot for a future fill.
    ///
    /// Returns `None` when the FIFO (including reservations) is full — the
    /// modelled ORM then throttles the request side.
    #[inline]
    pub fn try_reserve(&mut self) -> Option<ReservedSlot> {
        if !self.has_free_slot() {
            return None;
        }
        let seq = self.next_reserve_seq;
        self.next_reserve_seq += 1;
        self.tail.push_back(None);
        self.note_watermark();
        Some(ReservedSlot { seq })
    }

    /// Fills a previously reserved slot.
    ///
    /// # Panics
    ///
    /// Panics if slots are filled out of reservation order; the simulated
    /// memory system guarantees in-order responses per channel, so an
    /// out-of-order fill indicates a modelling bug.
    pub fn fill_reserved(&mut self, slot: ReservedSlot, value: T) {
        assert_eq!(
            slot.seq, self.next_fill_seq,
            "fifo reservation filled out of order"
        );
        self.next_fill_seq += 1;
        // The oldest pending reservation is always the tail front (see the
        // `tail` invariant), so no scan is needed.
        let pending = self
            .tail
            .front_mut()
            .expect("fill without outstanding reservation");
        debug_assert!(
            pending.is_none(),
            "tail front must be the oldest pending reservation"
        );
        *pending = Some(value);
        self.promote_tail();
    }

    /// Pushes a value directly (no reservation), e.g. on the write path where
    /// the producer is the accelerator rather than a memory response.
    ///
    /// # Errors
    ///
    /// Returns the value back if the FIFO (including reservations) is full.
    #[inline]
    pub fn push(&mut self, value: T) -> Result<(), T> {
        if !self.has_free_slot() {
            return Err(value);
        }
        if self.tail.is_empty() {
            self.items.push_back(value);
        } else {
            // Must stay behind outstanding reservations to preserve order.
            self.tail.push_back(Some(value));
        }
        self.note_watermark();
        Ok(())
    }

    /// Pops the oldest poppable element.
    #[inline]
    pub fn pop(&mut self) -> Option<T> {
        self.items.pop_front()
    }

    /// Peeks at the oldest poppable element.
    #[inline]
    pub fn peek(&self) -> Option<&T> {
        self.items.front()
    }

    /// Removes every element and reservation, resetting sequence tracking
    /// and the high-water mark: a cleared FIFO starts a fresh phase and
    /// must not report the previous phase's peak into metrics.
    pub fn clear(&mut self) {
        self.items.clear();
        self.tail.clear();
        self.next_fill_seq = 0;
        self.next_reserve_seq = 0;
        self.high_watermark = 0;
    }

    fn promote_tail(&mut self) {
        while let Some(front) = self.tail.front() {
            if front.is_some() {
                let value = self
                    .tail
                    .pop_front()
                    .flatten()
                    .expect("front checked to be Some");
                self.items.push_back(value);
            } else {
                break;
            }
        }
    }

    #[inline]
    fn note_watermark(&mut self) {
        self.high_watermark = self.high_watermark.max(self.committed());
    }
}

impl<T> fmt::Debug for Fifo<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Fifo")
            .field("capacity", &self.capacity)
            .field("len", &self.items.len())
            .field("outstanding", &self.outstanding())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_panics() {
        let _ = Fifo::<u8>::new(0);
    }

    #[test]
    fn push_pop_roundtrip() {
        let mut fifo = Fifo::new(3);
        fifo.push(1).unwrap();
        fifo.push(2).unwrap();
        assert_eq!(fifo.len(), 2);
        assert_eq!(fifo.pop(), Some(1));
        assert_eq!(fifo.pop(), Some(2));
        assert_eq!(fifo.pop(), None);
    }

    #[test]
    fn push_fails_when_full() {
        let mut fifo = Fifo::new(1);
        fifo.push(1).unwrap();
        assert_eq!(fifo.push(2), Err(2));
    }

    #[test]
    fn reservation_consumes_capacity() {
        let mut fifo: Fifo<u8> = Fifo::new(2);
        let _a = fifo.try_reserve().unwrap();
        let _b = fifo.try_reserve().unwrap();
        assert!(fifo.try_reserve().is_none());
        assert_eq!(fifo.push(9), Err(9));
        assert_eq!(fifo.outstanding(), 2);
    }

    #[test]
    fn fill_order_is_reservation_order() {
        let mut fifo = Fifo::new(4);
        let a = fifo.try_reserve().unwrap();
        let b = fifo.try_reserve().unwrap();
        fifo.fill_reserved(a, 10);
        fifo.fill_reserved(b, 20);
        assert_eq!(fifo.pop(), Some(10));
        assert_eq!(fifo.pop(), Some(20));
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn out_of_order_fill_panics() {
        let mut fifo = Fifo::new(4);
        let _a = fifo.try_reserve().unwrap();
        let b = fifo.try_reserve().unwrap();
        fifo.fill_reserved(b, 20);
    }

    #[test]
    fn direct_push_stays_behind_reservations() {
        let mut fifo = Fifo::new(4);
        let a = fifo.try_reserve().unwrap();
        fifo.push(99).unwrap();
        assert_eq!(fifo.pop(), None, "reservation blocks later pushes");
        fifo.fill_reserved(a, 1);
        assert_eq!(fifo.pop(), Some(1));
        assert_eq!(fifo.pop(), Some(99));
    }

    #[test]
    fn watermark_tracks_peak_commitment() {
        let mut fifo = Fifo::new(4);
        let a = fifo.try_reserve().unwrap();
        fifo.push(1).unwrap();
        fifo.push(2).unwrap();
        assert_eq!(fifo.high_watermark(), 3);
        fifo.fill_reserved(a, 0);
        fifo.pop();
        fifo.pop();
        fifo.pop();
        assert_eq!(fifo.high_watermark(), 3);
    }

    #[test]
    fn clear_resets_everything() {
        let mut fifo = Fifo::new(2);
        let _ = fifo.try_reserve().unwrap();
        fifo.clear();
        assert_eq!(fifo.len(), 0);
        assert_eq!(fifo.outstanding(), 0);
        let a = fifo.try_reserve().unwrap();
        assert_eq!(a.sequence(), 0, "sequence numbering restarts after clear");
        fifo.fill_reserved(a, 5);
        assert_eq!(fifo.pop(), Some(5));
    }

    #[test]
    fn clear_resets_high_watermark() {
        let mut fifo = Fifo::new(4);
        fifo.push(1).unwrap();
        fifo.push(2).unwrap();
        fifo.push(3).unwrap();
        assert_eq!(fifo.high_watermark(), 3);
        fifo.clear();
        assert_eq!(
            fifo.high_watermark(),
            0,
            "a cleared fifo must not report the previous phase's peak"
        );
        fifo.push(7).unwrap();
        assert_eq!(fifo.high_watermark(), 1);
    }

    proptest! {
        /// Regardless of how pushes, reserves and fills interleave, pop order
        /// equals commit order (reservation time for reserved slots, push
        /// time for direct pushes) and capacity is never exceeded.
        #[test]
        fn ordering_invariant(ops in proptest::collection::vec(0u8..3, 1..128)) {
            let mut fifo: Fifo<u32> = Fifo::new(8);
            let mut pending: std::collections::VecDeque<ReservedSlot> =
                std::collections::VecDeque::new();
            let mut next_push = 1_000_000u32;
            // Shadow model: values in the order they committed a slot.
            // Reserved slots carry their sequence number; direct pushes carry
            // values >= 1_000_000 so the two are distinguishable.
            let mut commit_order: Vec<u32> = Vec::new();
            let mut popped: Vec<u32> = Vec::new();
            for op in ops {
                match op {
                    0 => {
                        if let Some(slot) = fifo.try_reserve() {
                            commit_order.push(slot.sequence() as u32);
                            pending.push_back(slot);
                        }
                    }
                    1 => {
                        if let Some(slot) = pending.pop_front() {
                            fifo.fill_reserved(slot, slot.sequence() as u32);
                        }
                    }
                    _ => {
                        if fifo.push(next_push).is_ok() {
                            commit_order.push(next_push);
                            next_push += 1;
                        }
                    }
                }
                prop_assert!(fifo.committed() <= fifo.capacity());
                while let Some(v) = fifo.pop() {
                    popped.push(v);
                }
            }
            // Fill every remaining reservation and drain.
            while let Some(slot) = pending.pop_front() {
                fifo.fill_reserved(slot, slot.sequence() as u32);
            }
            while let Some(v) = fifo.pop() {
                popped.push(v);
            }
            prop_assert_eq!(fifo.committed(), 0);
            prop_assert_eq!(popped, commit_order);
        }

    }

    /// The pre-optimization implementation, kept verbatim as a reference
    /// model: scan-count for `outstanding`, linear `find` for the fill
    /// target. `clear` without a watermark reset was the bug this PR fixes,
    /// so the reference models `clear` *with* the reset.
    struct Reference {
        capacity: usize,
        items: std::collections::VecDeque<u32>,
        tail: std::collections::VecDeque<Option<u32>>,
        next_reserve_seq: u64,
        next_fill_seq: u64,
        high_watermark: usize,
    }

    impl Reference {
        fn new(capacity: usize) -> Self {
            Reference {
                capacity,
                items: std::collections::VecDeque::new(),
                tail: std::collections::VecDeque::new(),
                next_reserve_seq: 0,
                next_fill_seq: 0,
                high_watermark: 0,
            }
        }
        fn committed(&self) -> usize {
            self.items.len() + self.tail.len()
        }
        fn outstanding(&self) -> usize {
            self.tail.iter().filter(|slot| slot.is_none()).count()
        }
        fn note_watermark(&mut self) {
            self.high_watermark = self.high_watermark.max(self.committed());
        }
        fn try_reserve(&mut self) -> Option<u64> {
            if self.committed() >= self.capacity {
                return None;
            }
            let seq = self.next_reserve_seq;
            self.next_reserve_seq += 1;
            self.tail.push_back(None);
            self.note_watermark();
            Some(seq)
        }
        fn fill_reserved(&mut self, seq: u64, value: u32) {
            assert_eq!(seq, self.next_fill_seq);
            self.next_fill_seq += 1;
            let pending = self
                .tail
                .iter_mut()
                .find(|entry| entry.is_none())
                .expect("fill without outstanding reservation");
            *pending = Some(value);
            while let Some(front) = self.tail.front() {
                if front.is_some() {
                    let value = self.tail.pop_front().flatten().unwrap();
                    self.items.push_back(value);
                } else {
                    break;
                }
            }
        }
        fn push(&mut self, value: u32) -> bool {
            if self.committed() >= self.capacity {
                return false;
            }
            if self.tail.is_empty() {
                self.items.push_back(value);
            } else {
                self.tail.push_back(Some(value));
            }
            self.note_watermark();
            true
        }
        fn clear(&mut self) {
            self.items.clear();
            self.tail.clear();
            self.next_fill_seq = 0;
            self.next_reserve_seq = 0;
            self.high_watermark = 0;
        }
    }

    /// The O(1) `outstanding()` / front-fill implementation behaves
    /// identically to the original O(n) scans, under many interleavings of
    /// reserve / fill / push / pop / clear: same observable state and the
    /// same slot chosen for every fill. (Deterministic xorshift-driven op
    /// sequences; the vendored proptest stub does not execute generated
    /// tests, so this is a plain test.)
    #[test]
    fn constant_time_paths_match_linear_reference() {
        for seed in 1u64..=64 {
            let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
            let mut next_op = move || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state % 5
            };
            let mut fifo: Fifo<u32> = Fifo::new(6);
            let mut reference = Reference::new(6);
            let mut pending: std::collections::VecDeque<ReservedSlot> =
                std::collections::VecDeque::new();
            let mut next_value = 0u32;
            for _ in 0..256 {
                match next_op() {
                    0 => {
                        let slot = fifo.try_reserve();
                        let ref_seq = reference.try_reserve();
                        assert_eq!(slot.map(ReservedSlot::sequence), ref_seq);
                        if let Some(slot) = slot {
                            pending.push_back(slot);
                        }
                    }
                    1 => {
                        if let Some(slot) = pending.pop_front() {
                            next_value += 1;
                            fifo.fill_reserved(slot, next_value);
                            reference.fill_reserved(slot.sequence(), next_value);
                        }
                    }
                    2 => {
                        next_value += 1;
                        assert_eq!(fifo.push(next_value).is_ok(), reference.push(next_value));
                    }
                    3 => {
                        assert_eq!(fifo.pop(), reference.items.pop_front());
                    }
                    _ => {
                        fifo.clear();
                        reference.clear();
                        pending.clear();
                    }
                }
                assert_eq!(fifo.len(), reference.items.len(), "seed {seed}");
                assert_eq!(fifo.outstanding(), reference.outstanding(), "seed {seed}");
                assert_eq!(fifo.committed(), reference.committed(), "seed {seed}");
                assert_eq!(
                    fifo.high_watermark(),
                    reference.high_watermark,
                    "seed {seed}"
                );
            }
        }
    }
}
