//! Golden-file test for the Perfetto exporter.
//!
//! The Chrome trace-event document is an external interface: `dm-sim trace`
//! output is loaded into `ui.perfetto.dev`, and downstream tooling parses
//! the exact field layout. This test pins the serialized bytes of a small
//! hand-built trace — covering track metadata, coalesced PE fire/stall
//! runs, the cumulative `blame:` counter tracks, phase spans, and a
//! bank-conflict point event — against a committed golden file, so any
//! change to the export format is a reviewed diff instead of a silent
//! break.
//!
//! To regenerate after a *deliberate* format change:
//!
//! ```text
//! DM_BLESS_GOLDEN=1 cargo test -p dm-sim --test perfetto_golden
//! ```

use dm_sim::perfetto;
use dm_sim::{Cycle, OperandPort, StallCause, Trace, TraceEventKind};

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/perfetto_golden.json"
);

/// A deterministic two-track trace exercising every exported event shape.
fn sample_tracks() -> Vec<(String, Trace)> {
    let mut pe = Trace::new();
    pe.enable();
    // Three coalescable fire cycles, a NoOperand(A) stall run, a lone
    // fire, then a BankConflict(B) stall run: closing each stall run must
    // emit a cumulative counter sample on its cause's `blame:` track.
    for c in 0..3 {
        pe.emit(Cycle::new(c), "pe", TraceEventKind::PeFire);
    }
    for c in 3..6 {
        pe.emit(
            Cycle::new(c),
            "pe",
            TraceEventKind::PeStall {
                cause: StallCause::NoOperand(OperandPort::A),
            },
        );
    }
    pe.emit(Cycle::new(6), "pe", TraceEventKind::PeFire);
    for c in 7..10 {
        pe.emit(
            Cycle::new(c),
            "pe",
            TraceEventKind::PeStall {
                cause: StallCause::BankConflict(OperandPort::B),
            },
        );
    }
    // A second run under the same cause: its counter sample must be
    // cumulative (3 + 2 cycles), not per-run.
    for c in 10..12 {
        pe.emit(Cycle::new(c), "pe", TraceEventKind::PeFire);
    }
    for c in 12..14 {
        pe.emit(
            Cycle::new(c),
            "pe",
            TraceEventKind::PeStall {
                cause: StallCause::BankConflict(OperandPort::B),
            },
        );
    }
    pe.emit(Cycle::new(14), "pe", TraceEventKind::PeFire);

    let mut mem = Trace::new();
    mem.enable();
    mem.emit(
        Cycle::new(0),
        "system",
        TraceEventKind::SpanBegin {
            name: "compute".to_owned(),
        },
    );
    // Two token lifecycles as causal flow events: issue ("s") → grant
    // ("t") → delivery ("f"), sharing one numeric flow id per token. The
    // second token's grant loses a cycle to arbitration.
    mem.emit(
        Cycle::new(1),
        "mem",
        TraceEventKind::FlowIssue { id: 7, bank: 3 },
    );
    mem.emit(
        Cycle::new(1),
        "mem",
        TraceEventKind::FlowGrant { id: 7, bank: 3 },
    );
    mem.emit(
        Cycle::new(2),
        "mem",
        TraceEventKind::FlowIssue { id: 8, bank: 3 },
    );
    mem.emit(Cycle::new(3), "mem", TraceEventKind::FlowDeliver { id: 7 });
    mem.emit(
        Cycle::new(3),
        "mem",
        TraceEventKind::FlowGrant { id: 8, bank: 3 },
    );
    mem.emit(Cycle::new(5), "mem", TraceEventKind::FlowDeliver { id: 8 });
    mem.emit(
        Cycle::new(7),
        "mem",
        TraceEventKind::BankConflict {
            bank: 3,
            contenders: 2,
        },
    );
    mem.emit(
        Cycle::new(9),
        "streamer.B",
        TraceEventKind::FifoEmpty { channel: 1 },
    );
    mem.emit(
        Cycle::new(15),
        "system",
        TraceEventKind::SpanEnd {
            name: "compute".to_owned(),
        },
    );

    vec![("pe".to_owned(), pe), ("mem".to_owned(), mem)]
}

#[test]
fn chrome_trace_export_matches_golden_file() {
    let got = perfetto::chrome_trace_json(&sample_tracks());
    if std::env::var_os("DM_BLESS_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN).expect(
        "missing golden file — regenerate with \
         DM_BLESS_GOLDEN=1 cargo test -p dm-sim --test perfetto_golden",
    );
    assert_eq!(
        got, want,
        "Perfetto export drifted from the committed golden file; if the \
         format change is deliberate, regenerate with DM_BLESS_GOLDEN=1 \
         cargo test -p dm-sim --test perfetto_golden and review the diff"
    );
}

#[test]
fn golden_file_carries_the_blame_counter_tracks() {
    // Structural spot-checks on the same document, so the golden file
    // cannot silently pin a trace that lost its counter samples.
    let doc = perfetto::chrome_trace(&sample_tracks());
    let events = match doc.get("traceEvents") {
        Some(dm_sim::JsonValue::Array(events)) => events,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    let phase = |e: &dm_sim::JsonValue| {
        e.get("ph")
            .and_then(|p| match p {
                dm_sim::JsonValue::String(s) => Some(s.clone()),
                _ => None,
            })
            .expect("every event has ph")
    };
    let counters: Vec<_> = events.iter().filter(|e| phase(e) == "C").collect();
    // Three closed stall runs -> three counter samples.
    assert_eq!(counters.len(), 3, "one counter sample per closed stall run");
    let cycles_of = |e: &&dm_sim::JsonValue| {
        e.get("args")
            .and_then(|a| a.get("cycles"))
            .and_then(dm_sim::JsonValue::as_u64)
            .expect("counter sample carries args.cycles")
    };
    let bank_b: Vec<u64> = counters
        .iter()
        .filter(|e| {
            e.get("name").is_some_and(|n| {
                n == &dm_sim::JsonValue::String(format!(
                    "blame: {}",
                    StallCause::BankConflict(OperandPort::B)
                ))
            })
        })
        .map(cycles_of)
        .collect();
    assert_eq!(bank_b, vec![3, 5], "counter samples are cumulative");
    assert!(events.iter().any(|e| phase(e) == "M"), "track metadata");
    assert!(events.iter().any(|e| phase(e) == "X"), "coalesced PE runs");
    assert!(events.iter().any(|e| phase(e) == "B"), "span begin");
    assert!(events.iter().any(|e| phase(e) == "E"), "span end");
}

/// `(ph, id, ts)` of every flow event in the exported document.
fn flow_events() -> Vec<(String, u64, u64)> {
    let doc = perfetto::chrome_trace(&sample_tracks());
    let Some(dm_sim::JsonValue::Array(events)) = doc.get("traceEvents") else {
        panic!("traceEvents must be an array");
    };
    events
        .iter()
        .filter(|e| {
            e.get("cat")
                .is_some_and(|c| c == &dm_sim::JsonValue::String("flow".to_owned()))
        })
        .map(|e| {
            (
                e.get("ph")
                    .and_then(dm_sim::JsonValue::as_str)
                    .expect("flow event has ph")
                    .to_owned(),
                e.get("id")
                    .and_then(dm_sim::JsonValue::as_u64)
                    .expect("flow event has a numeric id"),
                e.get("ts")
                    .and_then(dm_sim::JsonValue::as_u64)
                    .expect("flow event has ts"),
            )
        })
        .collect()
}

#[test]
fn every_flow_id_has_matching_begin_and_end_steps() {
    // Well-formedness of the flow graph: Perfetto drops (or worse,
    // misrenders) a flow whose "s" start has no "f" finish. Every id must
    // open exactly once, close exactly once, and never travel backwards in
    // time through its steps.
    let flows = flow_events();
    assert!(!flows.is_empty(), "the sample trace carries flow events");
    let ids: std::collections::BTreeSet<u64> = flows.iter().map(|&(_, id, _)| id).collect();
    for id in ids {
        let steps: Vec<_> = flows.iter().filter(|&&(_, i, _)| i == id).collect();
        let count = |ph: &str| steps.iter().filter(|&&(p, _, _)| p == ph).count();
        assert_eq!(count("s"), 1, "flow {id} must begin exactly once");
        assert_eq!(count("f"), 1, "flow {id} must end exactly once");
        assert!(
            steps
                .iter()
                .all(|&(p, _, _)| matches!(p.as_str(), "s" | "t" | "f")),
            "flow {id} carries an unknown phase"
        );
        let ts_of = |ph: &str| {
            steps
                .iter()
                .find(|&&(p, _, _)| p == ph)
                .map(|&&(_, _, ts)| ts)
                .unwrap()
        };
        for &&(ref p, _, ts) in &steps {
            if p == "t" {
                assert!(ts_of("s") <= ts && ts <= ts_of("f"), "flow {id} step order");
            }
        }
        assert!(ts_of("s") <= ts_of("f"), "flow {id} ends before it begins");
    }
}

#[test]
fn flow_ids_are_unique_per_run() {
    // Two distinct tokens must never share a flow id — Perfetto would
    // stitch them into one arrow. One "s" per id (checked above) plus
    // distinct ids across tokens makes the mapping bijective.
    let flows = flow_events();
    let starts: Vec<u64> = flows
        .iter()
        .filter(|&(p, _, _)| p == "s")
        .map(|&(_, id, _)| id)
        .collect();
    let unique: std::collections::BTreeSet<u64> = starts.iter().copied().collect();
    assert_eq!(starts.len(), unique.len(), "duplicate flow ids: {starts:?}");
}

#[test]
fn counter_tracks_are_monotone() {
    // The `blame:` counters are cumulative by contract; a sample that goes
    // down means the exporter emitted per-run values.
    let doc = perfetto::chrome_trace(&sample_tracks());
    let Some(dm_sim::JsonValue::Array(events)) = doc.get("traceEvents") else {
        panic!("traceEvents must be an array");
    };
    let mut last: std::collections::BTreeMap<String, (u64, u64)> =
        std::collections::BTreeMap::new();
    for e in events {
        if e.get("ph") != Some(&dm_sim::JsonValue::String("C".to_owned())) {
            continue;
        }
        let name = e
            .get("name")
            .and_then(dm_sim::JsonValue::as_str)
            .expect("counter has a name")
            .to_owned();
        let ts = e
            .get("ts")
            .and_then(dm_sim::JsonValue::as_u64)
            .expect("counter has ts");
        let value = e
            .get("args")
            .and_then(|a| a.get("cycles"))
            .and_then(dm_sim::JsonValue::as_u64)
            .expect("counter carries args.cycles");
        if let Some(&(prev_ts, prev_value)) = last.get(&name) {
            assert!(prev_ts <= ts, "counter '{name}' samples out of order");
            assert!(
                prev_value <= value,
                "counter '{name}' went backwards: {prev_value} -> {value}"
            );
        }
        last.insert(name, (ts, value));
    }
    assert!(!last.is_empty(), "the sample trace carries counter tracks");
}
