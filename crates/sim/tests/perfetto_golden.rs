//! Golden-file test for the Perfetto exporter.
//!
//! The Chrome trace-event document is an external interface: `dm-sim trace`
//! output is loaded into `ui.perfetto.dev`, and downstream tooling parses
//! the exact field layout. This test pins the serialized bytes of a small
//! hand-built trace — covering track metadata, coalesced PE fire/stall
//! runs, the cumulative `blame:` counter tracks, phase spans, and a
//! bank-conflict point event — against a committed golden file, so any
//! change to the export format is a reviewed diff instead of a silent
//! break.
//!
//! To regenerate after a *deliberate* format change:
//!
//! ```text
//! DM_BLESS_GOLDEN=1 cargo test -p dm-sim --test perfetto_golden
//! ```

use dm_sim::perfetto;
use dm_sim::{Cycle, OperandPort, StallCause, Trace, TraceEventKind};

const GOLDEN: &str = concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/tests/golden/perfetto_golden.json"
);

/// A deterministic two-track trace exercising every exported event shape.
fn sample_tracks() -> Vec<(String, Trace)> {
    let mut pe = Trace::new();
    pe.enable();
    // Three coalescable fire cycles, a NoOperand(A) stall run, a lone
    // fire, then a BankConflict(B) stall run: closing each stall run must
    // emit a cumulative counter sample on its cause's `blame:` track.
    for c in 0..3 {
        pe.emit(Cycle::new(c), "pe", TraceEventKind::PeFire);
    }
    for c in 3..6 {
        pe.emit(
            Cycle::new(c),
            "pe",
            TraceEventKind::PeStall {
                cause: StallCause::NoOperand(OperandPort::A),
            },
        );
    }
    pe.emit(Cycle::new(6), "pe", TraceEventKind::PeFire);
    for c in 7..10 {
        pe.emit(
            Cycle::new(c),
            "pe",
            TraceEventKind::PeStall {
                cause: StallCause::BankConflict(OperandPort::B),
            },
        );
    }
    // A second run under the same cause: its counter sample must be
    // cumulative (3 + 2 cycles), not per-run.
    for c in 10..12 {
        pe.emit(Cycle::new(c), "pe", TraceEventKind::PeFire);
    }
    for c in 12..14 {
        pe.emit(
            Cycle::new(c),
            "pe",
            TraceEventKind::PeStall {
                cause: StallCause::BankConflict(OperandPort::B),
            },
        );
    }
    pe.emit(Cycle::new(14), "pe", TraceEventKind::PeFire);

    let mut mem = Trace::new();
    mem.enable();
    mem.emit(
        Cycle::new(0),
        "system",
        TraceEventKind::SpanBegin {
            name: "compute".to_owned(),
        },
    );
    mem.emit(
        Cycle::new(7),
        "mem",
        TraceEventKind::BankConflict {
            bank: 3,
            contenders: 2,
        },
    );
    mem.emit(
        Cycle::new(9),
        "streamer.B",
        TraceEventKind::FifoEmpty { channel: 1 },
    );
    mem.emit(
        Cycle::new(15),
        "system",
        TraceEventKind::SpanEnd {
            name: "compute".to_owned(),
        },
    );

    vec![("pe".to_owned(), pe), ("mem".to_owned(), mem)]
}

#[test]
fn chrome_trace_export_matches_golden_file() {
    let got = perfetto::chrome_trace_json(&sample_tracks());
    if std::env::var_os("DM_BLESS_GOLDEN").is_some() {
        std::fs::write(GOLDEN, &got).expect("write golden");
        return;
    }
    let want = std::fs::read_to_string(GOLDEN).expect(
        "missing golden file — regenerate with \
         DM_BLESS_GOLDEN=1 cargo test -p dm-sim --test perfetto_golden",
    );
    assert_eq!(
        got, want,
        "Perfetto export drifted from the committed golden file; if the \
         format change is deliberate, regenerate with DM_BLESS_GOLDEN=1 \
         cargo test -p dm-sim --test perfetto_golden and review the diff"
    );
}

#[test]
fn golden_file_carries_the_blame_counter_tracks() {
    // Structural spot-checks on the same document, so the golden file
    // cannot silently pin a trace that lost its counter samples.
    let doc = perfetto::chrome_trace(&sample_tracks());
    let events = match doc.get("traceEvents") {
        Some(dm_sim::JsonValue::Array(events)) => events,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    let phase = |e: &dm_sim::JsonValue| {
        e.get("ph")
            .and_then(|p| match p {
                dm_sim::JsonValue::String(s) => Some(s.clone()),
                _ => None,
            })
            .expect("every event has ph")
    };
    let counters: Vec<_> = events.iter().filter(|e| phase(e) == "C").collect();
    // Three closed stall runs -> three counter samples.
    assert_eq!(counters.len(), 3, "one counter sample per closed stall run");
    let cycles_of = |e: &&dm_sim::JsonValue| {
        e.get("args")
            .and_then(|a| a.get("cycles"))
            .and_then(dm_sim::JsonValue::as_u64)
            .expect("counter sample carries args.cycles")
    };
    let bank_b: Vec<u64> = counters
        .iter()
        .filter(|e| {
            e.get("name").is_some_and(|n| {
                n == &dm_sim::JsonValue::String(format!(
                    "blame: {}",
                    StallCause::BankConflict(OperandPort::B)
                ))
            })
        })
        .map(cycles_of)
        .collect();
    assert_eq!(bank_b, vec![3, 5], "counter samples are cumulative");
    assert!(events.iter().any(|e| phase(e) == "M"), "track metadata");
    assert!(events.iter().any(|e| phase(e) == "X"), "coalesced PE runs");
    assert!(events.iter().any(|e| phase(e) == "B"), "span begin");
    assert!(events.iter().any(|e| phase(e) == "E"), "span end");
}
