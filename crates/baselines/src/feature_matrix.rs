//! The qualitative feature comparison of Table I.

use serde::{Deserialize, Serialize};

/// Support level of one feature in one system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FeatureSupport {
    /// Supported.
    Yes,
    /// Not supported.
    No,
    /// Supported with a qualifier (e.g. affine access limited to N dims).
    Limited(&'static str),
}

impl std::fmt::Display for FeatureSupport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FeatureSupport::Yes => write!(f, "yes"),
            FeatureSupport::No => write!(f, "no"),
            FeatureSupport::Limited(what) => write!(f, "yes ({what})"),
        }
    }
}

/// One system's row in Table I.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FeatureRow {
    /// System name.
    pub system: &'static str,
    /// Open source availability.
    pub open_source: FeatureSupport,
    /// Reusable (accelerator-agnostic) design.
    pub reusable: FeatureSupport,
    /// Decoupled access/execute.
    pub decoupled: FeatureSupport,
    /// Programmable affine access (with dimensionality).
    pub affine_access: FeatureSupport,
    /// Fine-grained prefetch.
    pub fine_grained_prefetch: FeatureSupport,
    /// Runtime addressing-mode switching.
    pub mode_switching: FeatureSupport,
    /// On-the-fly data manipulation.
    pub on_the_fly: FeatureSupport,
}

/// Table I of the paper: DataMaestro against the SotA data-movement
/// solutions.
#[must_use]
pub fn feature_matrix() -> Vec<FeatureRow> {
    use FeatureSupport::{Limited, No, Yes};
    vec![
        FeatureRow {
            system: "Gemmini",
            open_source: Yes,
            reusable: No,
            decoupled: No,
            affine_access: Limited("2-D"),
            fine_grained_prefetch: No,
            mode_switching: No,
            on_the_fly: No,
        },
        FeatureRow {
            system: "BitWave",
            open_source: No,
            reusable: No,
            decoupled: No,
            affine_access: No,
            fine_grained_prefetch: No,
            mode_switching: No,
            on_the_fly: No,
        },
        FeatureRow {
            system: "Schneider et al.",
            open_source: No,
            reusable: No,
            decoupled: No,
            affine_access: Limited("2-D"),
            fine_grained_prefetch: No,
            mode_switching: No,
            on_the_fly: No,
        },
        FeatureRow {
            system: "FEATHER",
            open_source: Yes,
            reusable: No,
            decoupled: No,
            affine_access: No,
            fine_grained_prefetch: No,
            mode_switching: No,
            on_the_fly: Yes,
        },
        FeatureRow {
            system: "SSR",
            open_source: Yes,
            reusable: No,
            decoupled: Yes,
            affine_access: Limited("4-D"),
            fine_grained_prefetch: No,
            mode_switching: No,
            on_the_fly: No,
        },
        FeatureRow {
            system: "Buffet",
            open_source: Yes,
            reusable: Yes,
            decoupled: Yes,
            affine_access: Limited("2-D"),
            fine_grained_prefetch: No,
            mode_switching: No,
            on_the_fly: No,
        },
        FeatureRow {
            system: "Softbrain",
            open_source: No,
            reusable: No,
            decoupled: Yes,
            affine_access: Limited("2-D"),
            fine_grained_prefetch: No,
            mode_switching: No,
            on_the_fly: No,
        },
        FeatureRow {
            system: "DataMaestro",
            open_source: Yes,
            reusable: Yes,
            decoupled: Yes,
            affine_access: Limited("N-D"),
            fine_grained_prefetch: Yes,
            mode_switching: Yes,
            on_the_fly: Yes,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datamaestro_is_the_only_full_row() {
        let rows = feature_matrix();
        assert_eq!(rows.len(), 8);
        let dm = rows.iter().find(|r| r.system == "DataMaestro").unwrap();
        assert_eq!(dm.fine_grained_prefetch, FeatureSupport::Yes);
        assert_eq!(dm.mode_switching, FeatureSupport::Yes);
        assert_eq!(dm.on_the_fly, FeatureSupport::Yes);
        // No other system has fine-grained prefetch or mode switching.
        for row in rows.iter().filter(|r| r.system != "DataMaestro") {
            assert_eq!(
                row.fine_grained_prefetch,
                FeatureSupport::No,
                "{}",
                row.system
            );
            assert_eq!(row.mode_switching, FeatureSupport::No, "{}", row.system);
        }
    }

    #[test]
    fn display_formats() {
        assert_eq!(FeatureSupport::Yes.to_string(), "yes");
        assert_eq!(FeatureSupport::No.to_string(), "no");
        assert_eq!(FeatureSupport::Limited("2-D").to_string(), "yes (2-D)");
    }
}
