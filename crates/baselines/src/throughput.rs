//! Per-kernel utilization models for the Fig. 10 throughput comparison.
//!
//! Fig. 10 (left) normalizes every accelerator to 512 PEs at 1 GHz, so the
//! comparison reduces to each system's *PE-array utilization* on each
//! kernel. The models below are mechanism-based approximations:
//!
//! * **Gemmini (OS)** — 16×16 systolic array, output stationary. Operand
//!   loads (`mvin`) and result stores (`mvout`) share a scratchpad with no
//!   bank-conflict management, serializing against compute; the array also
//!   pays a fill+drain bubble per output tile. The DAC'21 paper and the
//!   DataMaestro paper both report utilizations collapsing to ~10 % on
//!   unfavourable shapes.
//! * **Gemmini (WS)** — weight stationary: a 16-deep weight reload bubble
//!   per `16×16×16` block, amortized over the M dimension; small-M kernels
//!   (attention heads, FC layers) suffer most.
//! * **FEATHER** — reconfigurable array with in-network reordering
//!   (BIRRD); sustains high utilization across dataflows, limited mainly by
//!   per-tile pipeline refill on small shapes (ISCA'24 reports ~90 %).
//! * **BitWave** — bit-column-serial design heavily specialized for
//!   convolutions; the DataMaestro paper's own motivation notes it "falls
//!   short in general matrix-matrix multiplication".
//!
//! Constants are calibrated to the published utilization figures of each
//! system, not fitted to DataMaestro's results.

use dm_workloads::{Workload, WorkloadGroup};
use serde::{Deserialize, Serialize};

/// The comparison systems of Fig. 10 (left).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Baseline {
    /// Gemmini, output-stationary mode.
    GemminiOs,
    /// Gemmini, weight-stationary mode.
    GemminiWs,
    /// FEATHER (ISCA 2024).
    Feather,
    /// BitWave (HPCA 2024).
    BitWave,
}

impl Baseline {
    /// All four baselines in the paper's plotting order.
    pub const ALL: [Baseline; 4] = [
        Baseline::GemminiOs,
        Baseline::GemminiWs,
        Baseline::Feather,
        Baseline::BitWave,
    ];

    /// Display name used in figures.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Baseline::GemminiOs => "Gemmini-OS",
            Baseline::GemminiWs => "Gemmini-WS",
            Baseline::Feather => "FEATHER",
            Baseline::BitWave => "BitWave",
        }
    }
}

impl std::fmt::Display for Baseline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Effective GeMM dimensions of a workload (convolutions via im2col).
fn gemm_dims(workload: &Workload) -> (f64, f64, f64) {
    match workload {
        Workload::Gemm(g) => (g.m as f64, g.n as f64, g.k as f64),
        Workload::Conv(c) => {
            let (m, n, k) = c.as_im2col_gemm();
            (m as f64, n as f64, k as f64)
        }
    }
}

/// PE-array utilization of a baseline on a workload (0..=1).
#[must_use]
pub fn utilization(baseline: Baseline, workload: &Workload) -> f64 {
    let (m, n, k) = gemm_dims(workload);
    let group = workload.group();
    let strided = matches!(workload, Workload::Conv(c) if c.stride > 1);
    match baseline {
        Baseline::GemminiOs => {
            // Per 16×16 output tile: K compute cycles; mvin of *both*
            // operands (2×2K cycles, serialized through the shared
            // single-port scratchpad with no bank-conflict management) and
            // a 32-cycle mvout + fill/drain bubble.
            let compute = k;
            let moves = 4.0 * k + 32.0;
            let bubbles = 32.0;
            let mut util = compute / (compute + moves + bubbles);
            // Convolutions funnel through CPU/DMA-staged im2col, starving
            // the array (the mechanism behind Gemmini's reported ~10 %
            // conv utilizations).
            if group == WorkloadGroup::Conv {
                util *= 0.3;
            }
            if strided {
                util *= 0.5;
            }
            // Transposed operands need a staging pass.
            if group == WorkloadGroup::TransposedGemm {
                util *= 0.7;
            }
            // Partial edge tiles when M or N is not a multiple of 16.
            util * edge_factor(m, 16.0) * edge_factor(n, 16.0)
        }
        Baseline::GemminiWs => {
            // Per 16×16×16 block: 16-cycle weight reload, then M rows of
            // streaming; double buffering hides part of the reload.
            let reload = 10.0;
            let mut util = m / (m + reload + 16.0);
            if group == WorkloadGroup::Conv {
                util *= 0.75;
            }
            // Strided windows break the row-streaming pattern WS relies on.
            if strided {
                util *= 0.45;
            }
            if group == WorkloadGroup::TransposedGemm {
                util *= 0.8;
            }
            util * edge_factor(m, 16.0) * edge_factor(n, 16.0)
        }
        Baseline::Feather => {
            // Near-ideal dataflow switching; the BIRRD reordering network
            // costs a short refill bubble per output tile, amortized over
            // the K accumulation.
            let k_tiles = k / 8.0;
            let mut util = 0.97 * k_tiles / (k_tiles + 1.5);
            // Strided gathers defeat BIRRD's in-network reordering and
            // fall back to serialized fetches.
            if strided {
                util *= 0.55;
            }
            util
        }
        Baseline::BitWave => {
            // Strong on convolutions (bit-column sparsity exploits weight
            // structure); weak on dense GeMM where the bit-serial datapath
            // and its rigid fetch patterns underutilize.
            let base = match group {
                WorkloadGroup::Conv => 0.82,
                WorkloadGroup::Gemm => 0.38,
                WorkloadGroup::TransposedGemm => 0.30,
            };
            let k_tiles = k / 8.0;
            let mut util = base * k_tiles / (k_tiles + 2.0);
            if strided {
                util *= 0.5;
            }
            util
        }
    }
}

/// Penalty for ragged edges when a dimension is not a multiple of the
/// array tiling.
fn edge_factor(dim: f64, tile: f64) -> f64 {
    let tiles = (dim / tile).ceil();
    dim / (tiles * tile)
}

/// Normalized throughput in TOPS at 512 PEs × 1 GHz (2 ops per MAC), as
/// plotted in Fig. 10 (left).
#[must_use]
pub fn normalized_throughput_tops(utilization: f64) -> f64 {
    2.0 * 512.0 * 1e9 * utilization / 1e12
}

/// One row of Fig. 10 (right): data-movement hardware overhead inside the
/// full accelerator system, as published by each cited paper.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataMovementCost {
    /// System name.
    pub system: &'static str,
    /// Area share of the data-movement hardware (percent of system).
    pub area_pct: f64,
    /// Power share (percent of system), if published.
    pub power_pct: Option<f64>,
}

/// The published area/power overheads quoted in Fig. 10 (right), excluding
/// DataMaestro itself (whose numbers come from the `dm-cost` model).
#[must_use]
pub fn data_movement_costs() -> Vec<DataMovementCost> {
    vec![
        DataMovementCost {
            system: "Buffet",
            area_pct: 2.0,
            power_pct: Some(14.0),
        },
        DataMovementCost {
            system: "Softbrain",
            area_pct: 4.3,
            power_pct: Some(15.3),
        },
        DataMovementCost {
            system: "BitWave",
            area_pct: 11.9,
            power_pct: Some(25.5),
        },
        DataMovementCost {
            system: "FEATHER",
            area_pct: 8.9,
            power_pct: None,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_workloads::{ConvSpec, GemmSpec};

    fn gemm64() -> Workload {
        GemmSpec::new(64, 64, 64).into()
    }

    #[test]
    fn utilizations_are_probabilities() {
        let workloads: Vec<Workload> = vec![
            gemm64(),
            GemmSpec::new(8, 8, 8).into(),
            GemmSpec::transposed(64, 64, 64).into(),
            ConvSpec::new(58, 58, 64, 64, 3, 3, 1).into(),
            ConvSpec::new(58, 58, 64, 64, 3, 3, 2).into(),
        ];
        for b in Baseline::ALL {
            for w in &workloads {
                let u = utilization(b, w);
                assert!((0.0..=1.0).contains(&u), "{b} on {w}: {u}");
            }
        }
    }

    #[test]
    fn gemmini_os_collapses_on_gemm() {
        let u = utilization(Baseline::GemminiOs, &gemm64());
        assert!(u < 0.35, "OS should be low, got {u}");
    }

    #[test]
    fn gemmini_ws_beats_os_on_large_m() {
        let w: Workload = GemmSpec::new(192, 64, 64).into();
        assert!(utilization(Baseline::GemminiWs, &w) > utilization(Baseline::GemminiOs, &w));
    }

    #[test]
    fn feather_is_the_strongest_baseline_on_gemm() {
        let w = gemm64();
        let feather = utilization(Baseline::Feather, &w);
        for b in [Baseline::GemminiOs, Baseline::GemminiWs, Baseline::BitWave] {
            assert!(feather > utilization(b, &w), "{b} beat FEATHER");
        }
        assert!(feather > 0.8);
    }

    #[test]
    fn bitwave_prefers_conv_over_gemm() {
        let conv: Workload = ConvSpec::new(58, 58, 64, 64, 3, 3, 1).into();
        let u_conv = utilization(Baseline::BitWave, &conv);
        let u_gemm = utilization(Baseline::BitWave, &gemm64());
        assert!(u_conv > 1.5 * u_gemm, "conv {u_conv} vs gemm {u_gemm}");
    }

    #[test]
    fn strided_conv_hurts_everyone() {
        let s1: Workload = ConvSpec::new(58, 58, 64, 64, 3, 3, 1).into();
        let s2: Workload = ConvSpec::new(58, 58, 64, 64, 3, 3, 2).into();
        for b in Baseline::ALL {
            assert!(utilization(b, &s2) < utilization(b, &s1), "{b}");
        }
    }

    #[test]
    fn throughput_normalization() {
        // Full utilization at 512 PEs × 1 GHz = 1.024 TOPS.
        assert!((normalized_throughput_tops(1.0) - 1.024).abs() < 1e-9);
        assert_eq!(normalized_throughput_tops(0.0), 0.0);
    }

    #[test]
    fn cost_table_matches_published_numbers() {
        let costs = data_movement_costs();
        assert_eq!(costs.len(), 4);
        let buffet = costs.iter().find(|c| c.system == "Buffet").unwrap();
        assert_eq!(buffet.area_pct, 2.0);
        assert_eq!(buffet.power_pct, Some(14.0));
        let feather = costs.iter().find(|c| c.system == "FEATHER").unwrap();
        assert_eq!(feather.power_pct, None);
    }
}
