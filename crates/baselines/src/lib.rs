//! Analytic models of the state-of-the-art systems DataMaestro is compared
//! against in the paper's evaluation (Table I, Fig. 10).
//!
//! None of these systems can be rebuilt gate-for-gate here; what Fig. 10
//! needs is each design's *utilization mechanism* under equal-PE,
//! equal-frequency normalization. Each model below encodes the published
//! behaviour of its system (fill/drain, weight reload, explicit im2col,
//! shared-scratchpad serialization, bit-serial GeMM weakness) as explicit
//! formulas with documented constants; see [`throughput`] for the
//! normalization. The area/power overhead table of Fig. 10 (right) quotes
//! the numbers published in each paper verbatim.

pub mod feature_matrix;
pub mod throughput;

pub use feature_matrix::{feature_matrix, FeatureRow, FeatureSupport};
pub use throughput::{
    data_movement_costs, normalized_throughput_tops, utilization, Baseline, DataMovementCost,
};
