//! Byte-level tile encodings shared between streamers and datapaths.
//!
//! Tiles travel through the system as little-endian byte vectors:
//! an `R×C` int8 tile is `R*C` bytes row-major; an `R×C` int32 tile is
//! `4*R*C` bytes row-major. These helpers convert between the wire form and
//! element vectors.

/// Decodes a little-endian byte slice into `i8` elements.
///
/// # Examples
///
/// ```
/// assert_eq!(dm_accel::word::decode_i8(&[0xFF, 0x01]), vec![-1, 1]);
/// ```
#[must_use]
pub fn decode_i8(bytes: &[u8]) -> Vec<i8> {
    bytes.iter().map(|&b| b as i8).collect()
}

/// Encodes `i8` elements into bytes.
#[must_use]
pub fn encode_i8(values: &[i8]) -> Vec<u8> {
    values.iter().map(|&v| v as u8).collect()
}

/// Decodes a little-endian byte slice into `i32` elements.
///
/// # Panics
///
/// Panics if the length is not a multiple of four.
#[must_use]
pub fn decode_i32(bytes: &[u8]) -> Vec<i32> {
    assert_eq!(bytes.len() % 4, 0, "i32 tile bytes must be 4-aligned");
    bytes
        .chunks_exact(4)
        .map(|c| i32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect()
}

/// Encodes `i32` elements into little-endian bytes.
#[must_use]
pub fn encode_i32(values: &[i32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(values.len() * 4);
    for v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn i8_roundtrip_extremes() {
        let vals = vec![i8::MIN, -1, 0, 1, i8::MAX];
        assert_eq!(decode_i8(&encode_i8(&vals)), vals);
    }

    #[test]
    fn i32_roundtrip_extremes() {
        let vals = vec![i32::MIN, -1, 0, 1, i32::MAX];
        assert_eq!(decode_i32(&encode_i32(&vals)), vals);
    }

    #[test]
    #[should_panic(expected = "4-aligned")]
    fn misaligned_i32_panics() {
        let _ = decode_i32(&[1, 2, 3]);
    }

    proptest! {
        #[test]
        fn i8_roundtrip(vals in proptest::collection::vec(any::<i8>(), 0..64)) {
            prop_assert_eq!(decode_i8(&encode_i8(&vals)), vals);
        }

        #[test]
        fn i32_roundtrip(vals in proptest::collection::vec(any::<i32>(), 0..64)) {
            prop_assert_eq!(decode_i32(&encode_i32(&vals)), vals);
        }
    }
}
