//! Accelerator datapath models for the DataMaestro evaluation system.
//!
//! The paper's evaluation system (Fig. 6) pairs the streaming engine with
//! two accelerators, both modelled here:
//!
//! * a Tensor-Core-like **GeMM accelerator** with a 3-D `Mu×Nu×Ku` PE array
//!   computing `D32 = A8 ⊗ B8 + C32` — one `Mu×Ku by Ku×Nu` tile
//!   multiply-accumulate per cycle ([`GemmDatapath`]);
//! * a **Quantization accelerator** computing `E8 = rescale(D32)` with
//!   per-output-channel fixed-point scales ([`Quantizer`]).
//!
//! Both are *functional* models with single-cycle tile throughput: the
//! paper's utilization metric counts data-stream stalls, not datapath
//! pipeline latency, so deeper pipelining would not change any reproduced
//! number.
//!
//! [`word`] provides the byte-level tile encodings shared with the
//! streamers, and [`mod@reference`] the scalar golden models every simulation
//! run is checked against.

pub mod gemm;
pub mod quant;
pub mod reference;
pub mod word;

pub use gemm::{GemmArrayConfig, GemmDatapath};
pub use quant::{Quantizer, RescaleParams};
pub use reference::{gemm_ref, maxpool2d_ref, quantize_ref};
