//! The Tensor-Core-like GeMM accelerator datapath.

use dm_sim::{Cycle, NextActivity, StableHasher};
use serde::{Deserialize, Serialize};

use crate::word::{decode_i32, decode_i8, encode_i32};

/// Spatial unrolling of the 3-D PE array (`Mu × Nu × Ku` MACs per cycle).
///
/// The evaluation system uses 8×8×8 = 512 PEs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GemmArrayConfig {
    /// Output rows computed in parallel.
    pub m_unroll: usize,
    /// Output columns computed in parallel.
    pub n_unroll: usize,
    /// Reduction elements consumed in parallel.
    pub k_unroll: usize,
}

impl GemmArrayConfig {
    /// The paper's 8×8×8 array.
    #[must_use]
    pub const fn paper() -> Self {
        GemmArrayConfig {
            m_unroll: 8,
            n_unroll: 8,
            k_unroll: 8,
        }
    }

    /// Total processing elements.
    #[must_use]
    pub fn num_pes(&self) -> usize {
        self.m_unroll * self.n_unroll * self.k_unroll
    }

    /// Bytes of one A tile (`Mu × Ku` int8).
    #[must_use]
    pub fn a_tile_bytes(&self) -> usize {
        self.m_unroll * self.k_unroll
    }

    /// Bytes of one B tile (`Ku × Nu` int8).
    #[must_use]
    pub fn b_tile_bytes(&self) -> usize {
        self.k_unroll * self.n_unroll
    }

    /// Bytes of one C/D tile (`Mu × Nu` int32).
    #[must_use]
    pub fn cd_tile_bytes(&self) -> usize {
        self.m_unroll * self.n_unroll * 4
    }

    /// Bytes of one E tile (`Mu × Nu` int8).
    #[must_use]
    pub fn e_tile_bytes(&self) -> usize {
        self.m_unroll * self.n_unroll
    }
}

impl Default for GemmArrayConfig {
    fn default() -> Self {
        GemmArrayConfig::paper()
    }
}

/// The GeMM datapath: accumulates `k_steps` tile MACs into an output tile.
///
/// Each call to [`step`](Self::step) performs one cycle's worth of work:
/// `acc += A_tile × B_tile`, seeding the accumulator with the C tile on the
/// first step of each output tile and releasing `D = acc` on the last.
///
/// # Examples
///
/// ```
/// use dm_accel::{GemmArrayConfig, GemmDatapath};
/// use dm_accel::word::{encode_i32, decode_i32};
///
/// let cfg = GemmArrayConfig { m_unroll: 2, n_unroll: 2, k_unroll: 2 };
/// let mut dp = GemmDatapath::new(cfg, 1);
/// // A = [[1,2],[3,4]], B = [[5,6],[7,8]], C = 0.
/// let a = [1i8, 2, 3, 4].map(|v| v as u8);
/// let b = [5i8, 6, 7, 8].map(|v| v as u8);
/// let c = encode_i32(&[0; 4]);
/// let d = dp.step(&a, &b, Some(&c)).expect("k_steps = 1 completes a tile");
/// assert_eq!(decode_i32(&d), vec![19, 22, 43, 50]);
/// ```
#[derive(Debug, Clone)]
pub struct GemmDatapath {
    config: GemmArrayConfig,
    k_steps: u64,
    k_counter: u64,
    acc: Vec<i32>,
    tiles_completed: u64,
    macs: u64,
}

impl GemmDatapath {
    /// Creates a datapath that accumulates `k_steps` tile products per
    /// output tile (the temporal K loop length).
    ///
    /// # Panics
    ///
    /// Panics if `k_steps` is zero.
    #[must_use]
    pub fn new(config: GemmArrayConfig, k_steps: u64) -> Self {
        assert!(k_steps > 0, "k_steps must be non-zero");
        GemmDatapath {
            config,
            k_steps,
            k_counter: 0,
            acc: vec![0; config.m_unroll * config.n_unroll],
            tiles_completed: 0,
            macs: 0,
        }
    }

    /// The array configuration.
    #[must_use]
    pub fn config(&self) -> &GemmArrayConfig {
        &self.config
    }

    /// `true` when the next [`step`](Self::step) starts a fresh output tile
    /// (and therefore needs the C operand).
    #[must_use]
    pub fn needs_c(&self) -> bool {
        self.k_counter == 0
    }

    /// `true` when the next [`step`](Self::step) completes an output tile
    /// (and therefore produces D).
    #[must_use]
    pub fn produces_d(&self) -> bool {
        self.k_counter == self.k_steps - 1
    }

    /// Executes one cycle: `acc += A×B`, seeded by `c` when
    /// [`needs_c`](Self::needs_c); returns the finished D tile when
    /// [`produces_d`](Self::produces_d).
    ///
    /// # Panics
    ///
    /// Panics if the tile widths mismatch the configuration or `c` is
    /// missing on the first step of a tile.
    pub fn step(&mut self, a_tile: &[u8], b_tile: &[u8], c_tile: Option<&[u8]>) -> Option<Vec<u8>> {
        let (mu, nu, ku) = (
            self.config.m_unroll,
            self.config.n_unroll,
            self.config.k_unroll,
        );
        assert_eq!(a_tile.len(), self.config.a_tile_bytes(), "A tile width");
        assert_eq!(b_tile.len(), self.config.b_tile_bytes(), "B tile width");
        if self.needs_c() {
            let c_tile = c_tile.expect("C tile required on first k step");
            assert_eq!(c_tile.len(), self.config.cd_tile_bytes(), "C tile width");
            self.acc = decode_i32(c_tile);
        }
        let a = decode_i8(a_tile);
        let b = decode_i8(b_tile);
        for r in 0..mu {
            for c in 0..nu {
                let mut sum = 0i32;
                for k in 0..ku {
                    sum += i32::from(a[r * ku + k]) * i32::from(b[k * nu + c]);
                }
                self.acc[r * nu + c] = self.acc[r * nu + c].wrapping_add(sum);
            }
        }
        self.macs += (mu * nu * ku) as u64;
        self.k_counter += 1;
        if self.k_counter == self.k_steps {
            self.k_counter = 0;
            self.tiles_completed += 1;
            Some(encode_i32(&self.acc))
        } else {
            None
        }
    }

    /// Output tiles completed so far.
    #[must_use]
    pub fn tiles_completed(&self) -> u64 {
        self.tiles_completed
    }

    /// Total multiply-accumulates performed.
    #[must_use]
    pub fn macs(&self) -> u64 {
        self.macs
    }

    /// Reconfigures the temporal K length and resets accumulation state.
    ///
    /// # Panics
    ///
    /// Panics if `k_steps` is zero.
    pub fn reconfigure(&mut self, k_steps: u64) {
        assert!(k_steps > 0, "k_steps must be non-zero");
        self.k_steps = k_steps;
        self.k_counter = 0;
        self.acc.fill(0);
    }
}

impl NextActivity for GemmDatapath {
    /// The datapath is purely reactive: it only advances when the system
    /// fires [`step`](Self::step), and firing cycles are never skipped, so
    /// it imposes no horizon of its own.
    fn next_activity(&self, _now: Cycle) -> Option<Cycle> {
        None
    }

    fn activity_digest(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_u64(self.k_counter);
        h.write_u64(self.tiles_completed);
        h.write_u64(self.macs);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    // Referenced only inside `proptest!` blocks, which the vendored
    // stand-in discards wholesale.
    #[allow(unused_imports)]
    use crate::reference::gemm_ref;
    use crate::word::encode_i8;
    use proptest::prelude::*;

    fn tiny() -> GemmArrayConfig {
        GemmArrayConfig {
            m_unroll: 2,
            n_unroll: 2,
            k_unroll: 2,
        }
    }

    #[test]
    fn paper_config_is_512_pes() {
        let cfg = GemmArrayConfig::paper();
        assert_eq!(cfg.num_pes(), 512);
        assert_eq!(cfg.a_tile_bytes(), 64);
        assert_eq!(cfg.b_tile_bytes(), 64);
        assert_eq!(cfg.cd_tile_bytes(), 256);
        assert_eq!(cfg.e_tile_bytes(), 64);
        assert_eq!(GemmArrayConfig::default(), cfg);
    }

    #[test]
    fn single_step_with_bias() {
        let mut dp = GemmDatapath::new(tiny(), 1);
        let a = encode_i8(&[1, 0, 0, 1]); // identity
        let b = encode_i8(&[9, 8, 7, 6]);
        let c = encode_i32(&[100, 100, 100, 100]);
        let d = dp.step(&a, &b, Some(&c)).unwrap();
        assert_eq!(decode_i32(&d), vec![109, 108, 107, 106]);
        assert_eq!(dp.tiles_completed(), 1);
        assert_eq!(dp.macs(), 8);
    }

    #[test]
    fn multi_step_accumulates_over_k() {
        let mut dp = GemmDatapath::new(tiny(), 2);
        let a = encode_i8(&[1, 1, 1, 1]);
        let b = encode_i8(&[1, 1, 1, 1]);
        let c = encode_i32(&[0; 4]);
        assert!(dp.needs_c());
        assert!(!dp.produces_d());
        assert!(dp.step(&a, &b, Some(&c)).is_none());
        assert!(!dp.needs_c());
        assert!(dp.produces_d());
        let d = dp.step(&a, &b, None).unwrap();
        // Two k-steps of ones: each output = 2 (per step) * 2 steps = 4.
        assert_eq!(decode_i32(&d), vec![4; 4]);
    }

    #[test]
    fn negative_values_and_saturation_free_wraparound() {
        let mut dp = GemmDatapath::new(tiny(), 1);
        let a = encode_i8(&[-128, -128, -128, -128]);
        let b = encode_i8(&[-128, -128, -128, -128]);
        let c = encode_i32(&[0; 4]);
        let d = dp.step(&a, &b, Some(&c)).unwrap();
        assert_eq!(decode_i32(&d), vec![32768; 4]);
    }

    #[test]
    #[should_panic(expected = "C tile required")]
    fn missing_c_panics() {
        let mut dp = GemmDatapath::new(tiny(), 1);
        let _ = dp.step(&[0; 4], &[0; 4], None);
    }

    #[test]
    fn reconfigure_resets_state() {
        let mut dp = GemmDatapath::new(tiny(), 4);
        let _ = dp.step(&[1; 4], &[1; 4], Some(&encode_i32(&[0; 4])));
        dp.reconfigure(1);
        assert!(dp.needs_c());
        let d = dp
            .step(
                &encode_i8(&[0; 4]),
                &encode_i8(&[0; 4]),
                Some(&encode_i32(&[5; 4])),
            )
            .unwrap();
        assert_eq!(decode_i32(&d), vec![5; 4]);
    }

    proptest! {
        /// Feeding the datapath tile-by-tile reproduces the scalar golden
        /// GeMM for random small problems.
        #[test]
        fn matches_reference(
            a in proptest::collection::vec(any::<i8>(), 16),
            b in proptest::collection::vec(any::<i8>(), 16),
            c in proptest::collection::vec(-1000i32..1000, 4),
            k_steps in 1u64..4,
        ) {
            // Problem: M=N=2, K = 2*k_steps, tiled as k_steps MACs.
            let cfg = tiny();
            let k_total = 2 * k_steps as usize;
            let a = &a[..2 * k_total.min(8)];
            let b = &b[..2 * k_total.min(8)];
            // Regenerate with exact sizes.
            let a: Vec<i8> = a.iter().copied().cycle().take(2 * k_total).collect();
            let b: Vec<i8> = b.iter().copied().cycle().take(k_total * 2).collect();
            let golden = gemm_ref(&a, &b, &c, 2, 2, k_total);
            let mut dp = GemmDatapath::new(cfg, k_steps);
            let c_bytes = encode_i32(&c);
            let mut d_out = None;
            for ks in 0..k_steps as usize {
                // Extract the k-step's A (2×2 of columns 2ks..2ks+2) and
                // B (rows 2ks..2ks+2).
                let mut a_tile = Vec::new();
                for r in 0..2 {
                    for kk in 0..2 {
                        a_tile.push(a[r * k_total + 2 * ks + kk] as u8);
                    }
                }
                let mut b_tile = Vec::new();
                for kk in 0..2 {
                    for cc in 0..2 {
                        b_tile.push(b[(2 * ks + kk) * 2 + cc] as u8);
                    }
                }
                let c_arg: Option<&[u8]> = if ks == 0 { Some(&c_bytes) } else { None };
                d_out = dp.step(&a_tile, &b_tile, c_arg);
            }
            let d = d_out.expect("final step produces the tile");
            prop_assert_eq!(decode_i32(&d), golden);
            prop_assert_eq!(dp.tiles_completed(), 1);
        }
    }
}
