//! The Quantization accelerator: `E8 = rescale(D32)`.
//!
//! Rescaling uses the standard integer-only fixed-point scheme: each int32
//! accumulator is multiplied by a per-output-channel int32 multiplier,
//! arithmetic-shifted right (with round-half-up) and saturated to int8 —
//! the same family of operations TFLite-style integer inference uses and
//! what the paper's `Rescale` denotes.

use dm_sim::{Cycle, NextActivity, StableHasher};
use serde::{Deserialize, Serialize};

use crate::word::{decode_i32, encode_i8};

/// Fixed-point rescale parameters for one output channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RescaleParams {
    /// Fixed-point multiplier.
    pub multiplier: i32,
    /// Right-shift amount (0..=62).
    pub shift: u32,
}

impl RescaleParams {
    /// Identity rescale (multiplier 1, shift 0) — saturation only.
    pub const IDENTITY: RescaleParams = RescaleParams {
        multiplier: 1,
        shift: 0,
    };

    /// Applies the rescale to one accumulator value.
    ///
    /// # Examples
    ///
    /// ```
    /// use dm_accel::RescaleParams;
    ///
    /// let p = RescaleParams { multiplier: 1, shift: 4 };
    /// assert_eq!(p.apply(160), 10);
    /// assert_eq!(p.apply(-160), -10);
    /// assert_eq!(RescaleParams::IDENTITY.apply(1000), 127); // saturates
    /// ```
    #[must_use]
    pub fn apply(&self, value: i32) -> i8 {
        let product = i64::from(value) * i64::from(self.multiplier);
        let rounding = 1i64 << self.shift >> 1; // half, 0 when shift == 0
        let shifted = (product + rounding) >> self.shift;
        shifted.clamp(i64::from(i8::MIN), i64::from(i8::MAX)) as i8
    }
}

impl Default for RescaleParams {
    fn default() -> Self {
        RescaleParams::IDENTITY
    }
}

/// The quantization accelerator: rescales `Mu × Nu` int32 tiles to int8
/// tiles using per-column (per-output-channel) parameters.
///
/// # Examples
///
/// ```
/// use dm_accel::{Quantizer, RescaleParams};
/// use dm_accel::word::encode_i32;
///
/// let q = Quantizer::new(2, 2, vec![RescaleParams { multiplier: 1, shift: 1 }; 2]);
/// let d = encode_i32(&[2, 4, 6, 8]);
/// assert_eq!(q.rescale_tile(&d), vec![1, 2, 3, 4]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Quantizer {
    rows: usize,
    cols: usize,
    params: Vec<RescaleParams>,
    tiles_processed: u64,
}

impl Quantizer {
    /// Creates a quantizer for `rows × cols` tiles with per-column
    /// parameters.
    ///
    /// # Panics
    ///
    /// Panics if `params.len() != cols`.
    #[must_use]
    pub fn new(rows: usize, cols: usize, params: Vec<RescaleParams>) -> Self {
        assert_eq!(params.len(), cols, "one rescale parameter per column");
        Quantizer {
            rows,
            cols,
            params,
            tiles_processed: 0,
        }
    }

    /// Creates a quantizer with a single shared parameter for all columns.
    #[must_use]
    pub fn uniform(rows: usize, cols: usize, params: RescaleParams) -> Self {
        Quantizer::new(rows, cols, vec![params; cols])
    }

    /// Tile geometry `(rows, cols)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Per-column parameters.
    #[must_use]
    pub fn params(&self) -> &[RescaleParams] {
        &self.params
    }

    /// Updates the per-column parameters (host CSR write between layers).
    ///
    /// # Panics
    ///
    /// Panics if the length differs from the column count.
    pub fn set_params(&mut self, params: Vec<RescaleParams>) {
        assert_eq!(params.len(), self.cols, "one rescale parameter per column");
        self.params = params;
    }

    /// Rescales one D tile (row-major int32 bytes) into an E tile
    /// (row-major int8 bytes).
    ///
    /// # Panics
    ///
    /// Panics if the input width mismatches the tile geometry.
    #[must_use]
    pub fn rescale_tile(&self, d_tile: &[u8]) -> Vec<u8> {
        assert_eq!(d_tile.len(), self.rows * self.cols * 4, "D tile width");
        let d = decode_i32(d_tile);
        let mut e = Vec::with_capacity(self.rows * self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                e.push(self.params[c].apply(d[r * self.cols + c]));
            }
        }
        encode_i8(&e)
    }

    /// Rescales and counts the tile (the stateful system-facing entry).
    #[must_use]
    pub fn process(&mut self, d_tile: &[u8]) -> Vec<u8> {
        self.tiles_processed += 1;
        self.rescale_tile(d_tile)
    }

    /// Tiles processed via [`process`](Self::process).
    #[must_use]
    pub fn tiles_processed(&self) -> u64 {
        self.tiles_processed
    }
}

impl NextActivity for Quantizer {
    /// Purely reactive (see [`GemmDatapath::next_activity`]): it only runs
    /// inside a firing cycle, and firing cycles are never skipped.
    ///
    /// [`GemmDatapath::next_activity`]: crate::GemmDatapath#method.next_activity
    fn next_activity(&self, _now: Cycle) -> Option<Cycle> {
        None
    }

    fn activity_digest(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_u64(self.tiles_processed);
        h.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::word::encode_i32;
    use proptest::prelude::*;

    #[test]
    fn identity_saturates_only() {
        let p = RescaleParams::IDENTITY;
        assert_eq!(p.apply(5), 5);
        assert_eq!(p.apply(-5), -5);
        assert_eq!(p.apply(300), 127);
        assert_eq!(p.apply(-300), -128);
        assert_eq!(RescaleParams::default(), p);
    }

    #[test]
    fn rounding_is_half_up() {
        let p = RescaleParams {
            multiplier: 1,
            shift: 1,
        };
        assert_eq!(p.apply(3), 2); // 1.5 → 2
        assert_eq!(p.apply(1), 1); // 0.5 → 1
        assert_eq!(p.apply(-1), 0); // -0.5 → 0 (half-up toward +∞)
    }

    #[test]
    fn per_column_params_apply_columnwise() {
        let q = Quantizer::new(
            2,
            2,
            vec![
                RescaleParams {
                    multiplier: 1,
                    shift: 0,
                },
                RescaleParams {
                    multiplier: 2,
                    shift: 0,
                },
            ],
        );
        let d = encode_i32(&[1, 1, 2, 2]);
        assert_eq!(q.rescale_tile(&d), vec![1, 2, 2, 4]);
    }

    #[test]
    fn process_counts_tiles() {
        let mut q = Quantizer::uniform(1, 1, RescaleParams::IDENTITY);
        let _ = q.process(&encode_i32(&[1]));
        let _ = q.process(&encode_i32(&[2]));
        assert_eq!(q.tiles_processed(), 2);
    }

    #[test]
    fn set_params_replaces() {
        let mut q = Quantizer::uniform(1, 2, RescaleParams::IDENTITY);
        q.set_params(vec![
            RescaleParams {
                multiplier: 3,
                shift: 0,
            };
            2
        ]);
        assert_eq!(q.rescale_tile(&encode_i32(&[2, 2])), vec![6, 6]);
    }

    #[test]
    #[should_panic(expected = "one rescale parameter per column")]
    fn wrong_param_count_panics() {
        let _ = Quantizer::new(2, 4, vec![RescaleParams::IDENTITY; 2]);
    }

    proptest! {
        /// Output never exceeds int8 range and is monotone in the input for
        /// positive multipliers.
        #[test]
        fn saturation_and_monotonicity(
            v1 in any::<i32>(),
            v2 in any::<i32>(),
            multiplier in 1i32..1 << 20,
            shift in 0u32..31,
        ) {
            let p = RescaleParams { multiplier, shift };
            let (e1, e2) = (p.apply(v1), p.apply(v2));
            prop_assert!((i8::MIN..=i8::MAX).contains(&e1));
            if v1 <= v2 {
                prop_assert!(e1 <= e2, "monotone: {v1}→{e1}, {v2}→{e2}");
            }
        }

        /// Identity parameters on in-range values are exact.
        #[test]
        fn identity_is_exact_in_range(v in -128i32..=127) {
            prop_assert_eq!(RescaleParams::IDENTITY.apply(v), v as i8);
        }
    }
}
