//! Scalar golden models.
//!
//! Every cycle-accurate system run in this workspace is validated against
//! these straightforward implementations: the simulator must produce
//! byte-identical results, which pins down the entire streaming path
//! (layouts, AGU patterns, extensions, accumulation and rescaling).

use crate::quant::RescaleParams;

/// Golden GeMM: `D[m][n] = C_row[n] broadcast + Σ_k A[m][k]·B[k][n]`
/// with `C` given as a full `m×n` matrix.
///
/// `a` is `m×k` row-major int8, `b` is `k×n` row-major int8, `c` is `m×n`
/// row-major int32 (pass zeros for no bias).
///
/// # Panics
///
/// Panics if the slice lengths do not match the dimensions.
///
/// # Examples
///
/// ```
/// let d = dm_accel::gemm_ref(&[1, 2], &[3, 4], &[10], 1, 1, 2);
/// assert_eq!(d, vec![10 + 1 * 3 + 2 * 4]);
/// ```
#[must_use]
pub fn gemm_ref(a: &[i8], b: &[i8], c: &[i32], m: usize, n: usize, k: usize) -> Vec<i32> {
    assert_eq!(a.len(), m * k, "A must be m*k");
    assert_eq!(b.len(), k * n, "B must be k*n");
    assert_eq!(c.len(), m * n, "C must be m*n");
    let mut d = vec![0i32; m * n];
    for r in 0..m {
        for col in 0..n {
            let mut acc = c[r * n + col];
            for kk in 0..k {
                acc = acc.wrapping_add(i32::from(a[r * k + kk]) * i32::from(b[kk * n + col]));
            }
            d[r * n + col] = acc;
        }
    }
    d
}

/// Golden GeMM with a per-column bias vector broadcast across rows (the
/// form the evaluation system's Broadcaster serves).
#[must_use]
pub fn gemm_bias_ref(a: &[i8], b: &[i8], bias: &[i32], m: usize, n: usize, k: usize) -> Vec<i32> {
    assert_eq!(bias.len(), n, "bias must have one entry per column");
    let c: Vec<i32> = (0..m * n).map(|i| bias[i % n]).collect();
    gemm_ref(a, b, &c, m, n, k)
}

/// Golden quantization: applies per-column rescale parameters to an `m×n`
/// int32 matrix.
///
/// # Panics
///
/// Panics if lengths mismatch.
#[must_use]
pub fn quantize_ref(d: &[i32], params: &[RescaleParams], m: usize, n: usize) -> Vec<i8> {
    assert_eq!(d.len(), m * n, "D must be m*n");
    assert_eq!(params.len(), n, "one parameter per column");
    let mut e = Vec::with_capacity(m * n);
    for r in 0..m {
        for c in 0..n {
            e.push(params[c].apply(d[r * n + c]));
        }
    }
    e
}

/// Golden 2-D convolution over a channels-last int8 tensor.
///
/// * `input` — `h × w × c_in` (row-major, channel innermost), already
///   including any zero padding;
/// * `weights` — `c_out × kh × kw × c_in`;
/// * `bias` — one int32 per output channel;
/// * output — `oh × ow × c_out` with `oh = (h - kh)/stride + 1` etc.
///
/// # Panics
///
/// Panics if the geometry is inconsistent.
#[allow(clippy::too_many_arguments)]
#[must_use]
pub fn conv2d_ref(
    input: &[i8],
    weights: &[i8],
    bias: &[i32],
    h: usize,
    w: usize,
    c_in: usize,
    c_out: usize,
    kh: usize,
    kw: usize,
    stride: usize,
) -> Vec<i32> {
    assert_eq!(input.len(), h * w * c_in, "input geometry");
    assert_eq!(weights.len(), c_out * kh * kw * c_in, "weight geometry");
    assert_eq!(bias.len(), c_out, "bias geometry");
    assert!(stride > 0, "stride must be non-zero");
    assert!(h >= kh && w >= kw, "kernel larger than input");
    let oh = (h - kh) / stride + 1;
    let ow = (w - kw) / stride + 1;
    let mut out = vec![0i32; oh * ow * c_out];
    for oy in 0..oh {
        for ox in 0..ow {
            for co in 0..c_out {
                let mut acc = bias[co];
                for ky in 0..kh {
                    for kx in 0..kw {
                        for ci in 0..c_in {
                            let iy = oy * stride + ky;
                            let ix = ox * stride + kx;
                            let iv = input[(iy * w + ix) * c_in + ci];
                            let wv = weights[((co * kh + ky) * kw + kx) * c_in + ci];
                            acc = acc.wrapping_add(i32::from(iv) * i32::from(wv));
                        }
                    }
                }
                out[(oy * ow + ox) * c_out + co] = acc;
            }
        }
    }
    out
}

/// Golden 2-D max pooling over a channels-last int8 tensor.
///
/// * `input` — `h × w × c` (row-major, channel innermost);
/// * window `k × k`, square `stride`;
/// * output — `oh × ow × c` with `oh = (h - k)/stride + 1` (flooring).
///
/// # Panics
///
/// Panics if the geometry is inconsistent.
#[must_use]
pub fn maxpool2d_ref(
    input: &[i8],
    h: usize,
    w: usize,
    c: usize,
    k: usize,
    stride: usize,
) -> Vec<i8> {
    assert_eq!(input.len(), h * w * c, "input geometry");
    assert!(stride > 0 && k > 0, "window and stride must be non-zero");
    assert!(h >= k && w >= k, "window larger than input");
    let oh = (h - k) / stride + 1;
    let ow = (w - k) / stride + 1;
    let mut out = vec![i8::MIN; oh * ow * c];
    for oy in 0..oh {
        for ox in 0..ow {
            for ci in 0..c {
                let mut best = i8::MIN;
                for ky in 0..k {
                    for kx in 0..k {
                        let v = input[((oy * stride + ky) * w + ox * stride + kx) * c + ci];
                        best = best.max(v);
                    }
                }
                out[(oy * ow + ox) * c + ci] = best;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn gemm_identity() {
        // A = I2, B arbitrary → D = B + C.
        let a = [1, 0, 0, 1];
        let b = [5, -6, 7, 8];
        let c = [1, 1, 1, 1];
        assert_eq!(gemm_ref(&a, &b, &c, 2, 2, 2), vec![6, -5, 8, 9]);
    }

    #[test]
    fn gemm_bias_broadcasts_rows() {
        let a = [0; 4];
        let b = [0; 4];
        let bias = [3, -4];
        assert_eq!(gemm_bias_ref(&a, &b, &bias, 2, 2, 2), vec![3, -4, 3, -4]);
    }

    #[test]
    fn quantize_applies_per_column() {
        let d = [100, 100];
        let params = [
            RescaleParams {
                multiplier: 1,
                shift: 0,
            },
            RescaleParams {
                multiplier: 1,
                shift: 2,
            },
        ];
        assert_eq!(quantize_ref(&d, &params, 1, 2), vec![100, 25]);
    }

    #[test]
    fn conv_1x1_is_pointwise_gemm() {
        // 1×1 kernel, stride 1: conv == per-pixel matmul over channels.
        let input = [1i8, 2, 3, 4]; // 2×1 image, 2 channels
        let weights = [1i8, 1, 1, -1]; // 2 out-channels × 1×1 × 2 in
        let bias = [0, 0];
        let out = conv2d_ref(&input, &weights, &bias, 2, 1, 2, 2, 1, 1, 1);
        assert_eq!(out, vec![3, -1, 7, -1]);
    }

    #[test]
    fn conv_stride_subsamples() {
        // 1 channel 4×1 input, kernel 1×1, stride 2 → picks rows 0 and 2.
        let input = [10i8, 20, 30, 40];
        let weights = [1i8];
        let out = conv2d_ref(&input, &weights, &[0], 4, 1, 1, 1, 1, 1, 2);
        assert_eq!(out, vec![10, 30]);
    }

    #[test]
    fn conv_window_sums() {
        // 3×3 ones kernel over 3×3 ones input, 1 channel → 9 + bias.
        let input = [1i8; 9];
        let weights = [1i8; 9];
        let out = conv2d_ref(&input, &weights, &[100], 3, 3, 1, 1, 3, 3, 1);
        assert_eq!(out, vec![109]);
    }

    #[test]
    fn maxpool_window_picks_maximum() {
        // 2×2 window, stride 2 on a 4×4 single-channel ramp.
        let input: Vec<i8> = (0..16).collect();
        let out = maxpool2d_ref(&input, 4, 4, 1, 2, 2);
        assert_eq!(out, vec![5, 7, 13, 15]);
    }

    #[test]
    fn maxpool_identity_window() {
        let input = [3i8, -7, 0, 5];
        assert_eq!(maxpool2d_ref(&input, 2, 2, 1, 1, 1), input);
    }

    #[test]
    fn maxpool_channels_independent() {
        // 2 channels: max taken per channel.
        let input = [1i8, -1, 2, -2, 3, -3, 4, -4]; // 2×2×2
        assert_eq!(maxpool2d_ref(&input, 2, 2, 2, 2, 2), vec![4, -1]);
    }

    proptest! {
        /// Max pooling output elements are always ≥ every covered input and
        /// equal to one of them.
        #[test]
        fn maxpool_is_a_max(
            input in proptest::collection::vec(any::<i8>(), 4 * 4 * 2),
        ) {
            let out = maxpool2d_ref(&input, 4, 4, 2, 2, 2);
            prop_assert_eq!(out.len(), 2 * 2 * 2);
            for (i, &o) in out.iter().enumerate() {
                prop_assert!(input.contains(&o), "output {i} not from input");
            }
            // The global max must appear somewhere in the output.
            let gmax = input.iter().copied().max().unwrap();
            prop_assert!(out.contains(&gmax));
        }

        /// GeMM respects distributivity over C: gemm(A,B,C) ==
        /// gemm(A,B,0) + C elementwise.
        #[test]
        fn bias_is_additive(
            a in proptest::collection::vec(any::<i8>(), 6),
            b in proptest::collection::vec(any::<i8>(), 6),
            c in proptest::collection::vec(-1000i32..1000, 4),
        ) {
            let with = gemm_ref(&a, &b, &c, 2, 2, 3);
            let without = gemm_ref(&a, &b, &[0; 4], 2, 2, 3);
            for i in 0..4 {
                prop_assert_eq!(with[i], without[i].wrapping_add(c[i]));
            }
        }

        /// A 1×1 stride-1 convolution equals a GeMM over flattened pixels.
        #[test]
        fn conv1x1_equals_gemm(
            input in proptest::collection::vec(any::<i8>(), 12),
            weights in proptest::collection::vec(any::<i8>(), 6),
            bias in proptest::collection::vec(-100i32..100, 2),
        ) {
            // 2×2 image, 3 in-channels, 2 out-channels.
            let conv = conv2d_ref(&input, &weights, &bias, 2, 2, 3, 2, 1, 1, 1);
            // GeMM: A = pixels×cin (4×3), B = cin×cout (3×2) — note the
            // weight layout is cout-major, so B[k][n] = weights[n*3+k].
            let mut b_mat = vec![0i8; 6];
            for k in 0..3 {
                for n in 0..2 {
                    b_mat[k * 2 + n] = weights[n * 3 + k];
                }
            }
            let gemm = gemm_bias_ref(&input, &b_mat, &bias, 4, 2, 3);
            prop_assert_eq!(conv, gemm);
        }
    }
}
