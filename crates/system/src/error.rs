//! System-level error type.

use std::error::Error;
use std::fmt;

use datamaestro::ConfigError;
use dm_compiler::CompileError;
use dm_mem::MemError;

/// Errors raised while building or running the evaluation system.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SystemError {
    /// Workload lowering failed.
    Compile(CompileError),
    /// A streamer rejected its configuration.
    Config(ConfigError),
    /// The memory subsystem rejected an operation.
    Mem(MemError),
    /// The simulation made no forward progress within its cycle budget —
    /// always a modelling bug, never a legitimate outcome.
    Deadlock {
        /// Which phase hung.
        phase: &'static str,
        /// Cycles executed before giving up.
        cycles: u64,
    },
    /// The simulated output did not match the golden reference.
    OutputMismatch {
        /// Byte offset of the first difference within the output region.
        first_diff: usize,
        /// Expected byte.
        expected: u8,
        /// Byte the simulation produced.
        got: u8,
    },
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::Compile(e) => write!(f, "compile error: {e}"),
            SystemError::Config(e) => write!(f, "configuration error: {e}"),
            SystemError::Mem(e) => write!(f, "memory error: {e}"),
            SystemError::Deadlock { phase, cycles } => {
                write!(f, "simulation deadlock in {phase} after {cycles} cycles")
            }
            SystemError::OutputMismatch {
                first_diff,
                expected,
                got,
            } => write!(
                f,
                "output mismatch at byte {first_diff}: expected {expected:#04x}, got {got:#04x}"
            ),
        }
    }
}

impl Error for SystemError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SystemError::Compile(e) => Some(e),
            SystemError::Config(e) => Some(e),
            SystemError::Mem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CompileError> for SystemError {
    fn from(e: CompileError) -> Self {
        SystemError::Compile(e)
    }
}

impl From<ConfigError> for SystemError {
    fn from(e: ConfigError) -> Self {
        SystemError::Config(e)
    }
}

impl From<MemError> for SystemError {
    fn from(e: MemError) -> Self {
        SystemError::Mem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = SystemError::Deadlock {
            phase: "compute",
            cycles: 99,
        };
        assert!(e.to_string().contains("compute"));
        assert!(e.source().is_none());
        let e: SystemError = MemError::UnknownRequester { requester: 1 }.into();
        assert!(e.source().is_some());
        let e = SystemError::OutputMismatch {
            first_diff: 4,
            expected: 1,
            got: 2,
        };
        assert!(e.to_string().contains("byte 4"));
    }
}
