//! The full evaluation system (Fig. 6): five DataMaestros, the GeMM and
//! quantization accelerators, and the banked scratchpad, ticked cycle by
//! cycle.

use datamaestro::{ReadStreamer, StreamerStats, WriteStreamer};
use dm_accel::{GemmArrayConfig, GemmDatapath, Quantizer};
use dm_compiler::{compile, BufferDepths, CompiledWorkload, FeatureSet};
use dm_mem::{Addr, AddressRemapper, MemConfig, MemorySubsystem};
use dm_sim::{
    BlameLeaf, BlamePhase, BlameProfile, CriticalProfile, FastForward, Instrumented,
    MetricsRegistry, NextActivity, OperandPort, Port, StallAttribution, StallCause, Trace,
    TraceEventKind, TraceMode,
};
use dm_workloads::{Workload, WorkloadData};
use serde::{Deserialize, Serialize};
use std::time::Instant;

use crate::copy_engine::CopyEngine;
use crate::error::SystemError;
use crate::provenance::Provenance;

/// Configuration of the evaluation system build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SystemConfig {
    /// Scratchpad geometry.
    pub mem: MemConfig,
    /// GeMM array unrolling (the compiler targets 8×8×8).
    pub array: GemmArrayConfig,
    /// Which DataMaestro features are built in.
    pub features: FeatureSet,
    /// Streamer buffer depths.
    pub depths: BufferDepths,
    /// Route results through the quantization accelerator (E stream, int8)
    /// instead of the raw D stream (int32).
    pub quantized: bool,
    /// Verify the output region against the golden reference after the run.
    pub check_output: bool,
    /// Scratchpad bank read latency in cycles (≥ 1). The DAE architecture's
    /// whole point is tolerating this; see the latency sweep bench.
    pub read_latency: u64,
    /// Event-trace capture for this run ([`TraceMode::Off`] by default;
    /// tracing never affects simulated behaviour, only the report).
    pub trace: TraceMode,
    /// Stamp causal flow events (request issue → bank grant → response
    /// delivery) onto the captured trace. Off by default — every memory
    /// request adds three events, which inflates traces — and a no-op
    /// unless [`SystemConfig::trace`] is enabled. Like tracing itself,
    /// never affects simulated behaviour.
    pub flow_events: bool,
    /// Measure host wall-clock time per tick phase (streamers / memory /
    /// PE array) during the compute loop. Off by default; the timings live
    /// in [`RunReport::host`], never in the metrics registry, so simulated
    /// results stay bit-identical with timing on or off.
    pub time_phases: bool,
    /// Elide provably idle spans of the compute loop in O(1) (on by
    /// default). Every simulated result — cycles, conflicts, utilization,
    /// latency percentiles, FIFO watermarks, stall attribution — is
    /// bit-identical with this on or off; only host wall-clock changes.
    /// Traced runs ([`SystemConfig::trace`] ≠ [`TraceMode::Off`]) fall back
    /// to lockstep so per-cycle trace timestamps are trivially preserved.
    pub fast_forward: bool,
    /// Record the absolute cycle of every PE fire into
    /// [`RunReport::fire_cycles`] (off by default). This is the digest-
    /// period probe of the static performance prover: the fire-gap sequence
    /// is what the prover's steady-state period proof predicts. Fires only
    /// happen in lockstep iterations (fast-forward spans are stall-only),
    /// so the recording is exact with elision on or off, and — like
    /// tracing — it never affects simulated behaviour or the provenance
    /// fingerprint.
    pub record_fire_cycles: bool,
}

impl Default for SystemConfig {
    /// The paper's evaluation system: 32 banks × 64 bit, 8×8×8 array, all
    /// features, quantized output, with golden checking enabled.
    fn default() -> Self {
        SystemConfig {
            mem: MemConfig::default(),
            array: GemmArrayConfig::paper(),
            features: FeatureSet::full(),
            depths: BufferDepths::default(),
            quantized: true,
            check_output: true,
            read_latency: 1,
            trace: TraceMode::Off,
            flow_events: false,
            time_phases: false,
            fast_forward: true,
            record_fire_cycles: false,
        }
    }
}

impl SystemConfig {
    /// Same system with a different feature set (ablation helper).
    #[must_use]
    pub fn with_features(mut self, features: FeatureSet) -> Self {
        self.features = features;
        self
    }
}

/// Why the accelerator could not fire on a given cycle.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StallBreakdown {
    /// A operand not ready.
    pub a: u64,
    /// B operand not ready (A was).
    pub b: u64,
    /// C operand not ready (A and B were).
    pub c: u64,
    /// Output port back-pressured (everything else ready).
    pub out: u64,
}

impl StallBreakdown {
    /// Total stall cycles.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.a + self.b + self.c + self.out
    }
}

/// Host wall-clock time spent per tick phase during the compute loop.
///
/// Collected only when [`SystemConfig::time_phases`] is set. These numbers
/// describe the *simulator host*, not the simulated machine: they answer
/// "where does the simulator spend its time" and feed the regression
/// harness's throughput figure. They are intentionally kept out of the
/// metrics registry so metric snapshots stay deterministic.
///
/// Invariant: `streamers_ns + memory_ns + pe_ns + fastforward_ns ≤
/// compute_loop_ns`. Fast-forward work is its own bucket — folding skipped
/// spans into `compute_loop_ns` slack (or into a simulated phase) would make
/// phase shares incomparable between elided and lockstep runs.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostTimings {
    /// Nanoseconds in streamer phases (`begin_cycle`, address generation
    /// and issue, grant handling) across all four streamers.
    pub streamers_ns: u64,
    /// Nanoseconds in the memory subsystem (response routing, arbitration).
    pub memory_ns: u64,
    /// Nanoseconds in the PE array (handshake decision, datapath step,
    /// quantization).
    pub pe_ns: u64,
    /// Nanoseconds in the fast-forward engine: horizon evaluation (whether
    /// or not a skip happened) and the O(1) replay of skipped spans.
    pub fastforward_ns: u64,
    /// Nanoseconds for the whole compute loop, including bookkeeping not
    /// attributed to a phase.
    pub compute_loop_ns: u64,
    /// Simulated compute cycles the loop executed.
    pub cycles: u64,
}

impl HostTimings {
    /// Host throughput: simulated cycles per wall-clock second.
    #[must_use]
    pub fn cycles_per_sec(&self) -> f64 {
        if self.compute_loop_ns == 0 {
            return 0.0;
        }
        self.cycles as f64 / (self.compute_loop_ns as f64 / 1e9)
    }
}

/// Accumulates wall-clock laps into per-phase buckets; a no-op when the
/// run was configured without host timing.
struct HostPhaseClock {
    last: Option<Instant>,
    timings: HostTimings,
}

enum Phase {
    Streamers,
    Memory,
    Pe,
    Fastforward,
}

impl HostPhaseClock {
    fn new(enabled: bool) -> Self {
        HostPhaseClock {
            last: enabled.then(Instant::now),
            timings: HostTimings::default(),
        }
    }

    /// Restarts the lap timer without attributing the elapsed interval.
    fn start(&mut self) {
        if self.last.is_some() {
            self.last = Some(Instant::now());
        }
    }

    /// Attributes the time since the previous mark to `phase`.
    fn lap(&mut self, phase: Phase) {
        if let Some(last) = self.last {
            let now = Instant::now();
            let ns = now.duration_since(last).as_nanos() as u64;
            match phase {
                Phase::Streamers => self.timings.streamers_ns += ns,
                Phase::Memory => self.timings.memory_ns += ns,
                Phase::Pe => self.timings.pe_ns += ns,
                Phase::Fastforward => self.timings.fastforward_ns += ns,
            }
            self.last = Some(now);
        }
    }

    fn finish(self, loop_start: Option<Instant>, cycles: u64) -> Option<HostTimings> {
        let start = loop_start?;
        let mut timings = self.timings;
        timings.compute_loop_ns = start.elapsed().as_nanos() as u64;
        timings.cycles = cycles;
        Some(timings)
    }
}

/// The outcome of one workload execution.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The workload that ran.
    pub workload: Workload,
    /// Feature set of the system that ran it.
    pub features: FeatureSet,
    /// Stall-free cycle count (the utilization denominator's numerator).
    pub ideal_cycles: u64,
    /// Cycles spent in explicit pre-passes.
    pub prepass_cycles: u64,
    /// Cycles of the compute phase (including pipeline fill and drain).
    pub compute_cycles: u64,
    /// Cycles the PE array actually fired.
    pub active_cycles: u64,
    /// Why it did not fire on the other cycles.
    pub stalls: StallBreakdown,
    /// Granted word reads.
    pub mem_reads: u64,
    /// Granted word writes.
    pub mem_writes: u64,
    /// Bank-conflict events.
    pub conflicts: u64,
    /// Per-streamer statistics: A, B, C, OUT.
    pub streamer_stats: [StreamerStats; 4],
    /// Granted word accesses per physical bank (load-balance heatmap).
    pub per_bank_accesses: Vec<u64>,
    /// Whether the output was verified against the golden reference.
    pub checked: bool,
    /// Classification of every compute-phase cycle: fired or stalled, with
    /// the stall cause taxonomy (`fired + stalled == compute_cycles`).
    pub attribution: StallAttribution,
    /// Causal blame profile: every stalled cycle charged to one component
    /// instance (bank, AGU, sync gate, flush) under its [`StallCause`],
    /// segmented into fill/steady/drain phases. Conserves [`Self::attribution`]
    /// exactly: per cause, `Σ blame leaves == attribution count`.
    pub blame: BlameProfile,
    /// Critical-path composition: every compute cycle charged to the
    /// resource whose dependency edge bound it, plus what-if projections.
    /// Path length equals [`Self::compute_cycles`] and the composition
    /// refines [`Self::attribution`] ([`CriticalProfile::conserves`]).
    pub critical: CriticalProfile,
    /// Snapshot of every instrumented component's metrics, keyed by dotted
    /// component path (`mem.conflicts`, `streamer.A.ch0.granted`, …).
    pub metrics: MetricsRegistry,
    /// Captured event traces, one per component track, in Perfetto track
    /// order. Empty when [`SystemConfig::trace`] is [`TraceMode::Off`].
    pub traces: Vec<(String, Trace)>,
    /// Absolute cycle of every PE fire, in order. Empty unless
    /// [`SystemConfig::record_fire_cycles`] was set. The consecutive-gap
    /// sequence of this digest is what the static prover's steady-state
    /// period proof describes.
    pub fire_cycles: Vec<u64>,
    /// Deterministic identity of this run: fingerprint of the
    /// behaviour-relevant configuration, workload and crate version.
    pub provenance: Provenance,
    /// Host wall-clock phase timings; `None` unless
    /// [`SystemConfig::time_phases`] was set.
    pub host: Option<HostTimings>,
}

impl RunReport {
    /// Total cycles: pre-passes plus compute.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.prepass_cycles + self.compute_cycles
    }

    /// The paper's utilization metric: theoretical stall-free computation
    /// cycles over the active cycles of the run.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.ideal_cycles as f64 / self.total_cycles() as f64
    }

    /// Total memory word accesses (the paper's data access count).
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.mem_reads + self.mem_writes
    }
}

/// Read-only mirror of the compute loop's PE handshake: the port that would
/// block this cycle and the stall cause that would be recorded, or `None`
/// if the array would fire. Must stay in exact lockstep with the handshake
/// chain in [`run_compiled`]; the fast-forward engine uses it to prove that
/// a span of cycles would all stall identically before folding them.
fn pe_would_stall(
    a: &ReadStreamer,
    b: &ReadStreamer,
    c: &ReadStreamer,
    out: &WriteStreamer,
    needs_c: bool,
    produces: bool,
    drained: bool,
) -> Option<(Port, StallCause)> {
    let operand_cause = |blocked: &ReadStreamer, port: OperandPort| {
        if drained {
            StallCause::Drain
        } else if blocked.lost_arbitration() {
            StallCause::BankConflict(port)
        } else {
            StallCause::NoOperand(port)
        }
    };
    if !a.can_pop_wide() {
        Some((Port::A, operand_cause(a, OperandPort::A)))
    } else if !b.can_pop_wide() {
        Some((Port::B, operand_cause(b, OperandPort::B)))
    } else if needs_c && !c.can_pop_wide() {
        Some((Port::C, operand_cause(c, OperandPort::C)))
    } else if produces && !out.can_push_wide() {
        Some((
            Port::Out,
            if drained {
                StallCause::Drain
            } else {
                StallCause::WritebackBackpressure
            },
        ))
    } else {
        None
    }
}

/// Resolves the component-instance blame leaf for one stalled cycle by
/// dispatching the blame-chain walk to the streamer named by `cause`.
///
/// Drain stalls are special: the input FIFOs are legitimately empty, so
/// whichever port the handshake blocked on, the cycle belongs to the write
/// path — a specific bank if one is still draining or arbitrating, the
/// tail flush otherwise.
fn blame_leaf_for(
    cause: StallCause,
    a: &ReadStreamer,
    b: &ReadStreamer,
    c: &ReadStreamer,
    out: &WriteStreamer,
    mem: &MemorySubsystem,
) -> BlameLeaf {
    match cause {
        StallCause::NoOperand(p) | StallCause::BankConflict(p) => match p {
            OperandPort::A => a.blame_leaf(mem),
            OperandPort::B => b.blame_leaf(mem),
            OperandPort::C => c.blame_leaf(mem),
        },
        StallCause::WritebackBackpressure => out.blame_leaf(),
        StallCause::Drain => {
            if out.can_push_wide() {
                BlameLeaf::Flush
            } else {
                match out.blame_leaf() {
                    BlameLeaf::Unattributed => BlameLeaf::Flush,
                    leaf => leaf,
                }
            }
        }
    }
}

/// Compiles and runs one workload on the configured system.
///
/// # Errors
///
/// Returns [`SystemError`] on compilation failure, configuration rejection,
/// simulation deadlock (a bug) or golden-output mismatch.
///
/// # Examples
///
/// ```
/// use dm_system::{run_workload, SystemConfig};
/// use dm_workloads::{GemmSpec, WorkloadData};
///
/// let data = WorkloadData::generate(GemmSpec::new(16, 16, 16).into(), 1);
/// let report = run_workload(&SystemConfig::default(), &data)?;
/// assert!(report.checked);
/// assert!(report.utilization() > 0.5);
/// # Ok::<(), dm_system::SystemError>(())
/// ```
pub fn run_workload(config: &SystemConfig, data: &WorkloadData) -> Result<RunReport, SystemError> {
    let program = compile(
        data,
        &config.features,
        &config.mem,
        config.quantized,
        config.depths,
    )?;
    run_compiled(config, data, &program)
}

/// Runs an already compiled workload.
///
/// # Errors
///
/// See [`run_workload`].
pub fn run_compiled(
    config: &SystemConfig,
    data: &WorkloadData,
    program: &CompiledWorkload,
) -> Result<RunReport, SystemError> {
    assert_eq!(
        (
            config.array.m_unroll,
            config.array.n_unroll,
            config.array.k_unroll
        ),
        (8, 8, 8),
        "the compiler targets the paper's 8x8x8 array"
    );
    let mut mem = MemorySubsystem::new(config.mem);
    mem.set_read_latency(config.read_latency.max(1));
    let mut copier = CopyEngine::new(&mut mem, 4);
    copier.set_fast_forward(config.fast_forward);
    let mut a = ReadStreamer::new(&program.a.design, &program.a.runtime, &mut mem)?;
    let mut b = ReadStreamer::new(&program.b.design, &program.b.runtime, &mut mem)?;
    let mut c = ReadStreamer::new(&program.c.design, &program.c.runtime, &mut mem)?;
    let mut out = WriteStreamer::new(&program.out.design, &program.out.runtime, &mut mem)?;
    let mut sys_trace = config.trace.build();
    if config.trace != TraceMode::Off {
        mem.set_trace_mode(config.trace);
        mem.set_flow_events(config.flow_events);
        a.set_trace_mode(config.trace);
        b.set_trace_mode(config.trace);
        c.set_trace_mode(config.trace);
        out.set_trace_mode(config.trace);
    }

    // Response routing table: requester index → consuming reader.
    #[derive(Clone, Copy, PartialEq)]
    enum Route {
        None,
        A,
        B,
        C,
    }
    let mut routes = vec![Route::None; mem.num_requesters()];
    for id in a.channel_requesters() {
        routes[id.index()] = Route::A;
    }
    for id in b.channel_requesters() {
        routes[id.index()] = Route::B;
    }
    for id in c.channel_requesters() {
        routes[id.index()] = Route::C;
    }

    // Host preload (not simulated; the paper's utilization metric covers
    // DataMaestro-active cycles only).
    for image in &program.images {
        let remap = AddressRemapper::new(&config.mem, image.region.mode)?;
        mem.scratchpad_mut()
            .host_write(&remap, Addr::new(image.region.base), &image.bytes)?;
    }

    // Explicit pre-passes.
    let mut prepass_cycles = 0u64;
    for plan in &program.prepasses {
        sys_trace.emit_with(mem.cycle(), "system", || TraceEventKind::SpanBegin {
            name: format!("prepass:{}", plan.name),
        });
        if plan.read_mode != plan.write_mode {
            sys_trace.emit_with(mem.cycle(), "system", || TraceEventKind::RemapModeSwitch {
                from: plan.read_mode.name().to_owned(),
                to: plan.write_mode.name().to_owned(),
            });
        }
        let stats = copier.run(&mut mem, plan)?;
        prepass_cycles += stats.cycles;
        sys_trace.emit_with(mem.cycle(), "system", || TraceEventKind::SpanEnd {
            name: format!("prepass:{}", plan.name),
        });
    }

    // Compute phase.
    let mut datapath = GemmDatapath::new(config.array, program.k_steps);
    let mut quant = Quantizer::uniform(
        config.array.m_unroll,
        config.array.n_unroll,
        program.rescale,
    );
    let mut stalls = StallBreakdown::default();
    let mut attribution = StallAttribution::new();
    let mut blame = BlameProfile::new(config.mem.num_banks());
    let mut critical = CriticalProfile::new(config.read_latency.max(1));
    let mut compute_cycles = 0u64;
    let mut active_cycles = 0u64;
    let mut fire_cycles = Vec::new();
    let mut tiles_done = 0u64;
    let budget = program.total_steps() * 64 + 100_000;

    sys_trace.emit_with(mem.cycle(), "system", || TraceEventKind::SpanBegin {
        name: "compute".to_owned(),
    });
    let mut clock = HostPhaseClock::new(config.time_phases);
    let loop_start = config.time_phases.then(Instant::now);
    // Tracing needs every per-cycle timestamp, so traced runs stay lockstep.
    let ff_active = config.fast_forward && config.trace == TraceMode::Off;
    while !(a.is_done() && b.is_done() && c.is_done() && out.is_done()) {
        clock.start();
        if ff_active {
            let now = mem.cycle();
            // A cycle is skippable iff no streamer can act on its own, the
            // PE handshake would stall, and no memory response lands this
            // cycle. In that state the whole iteration reduces to occupancy
            // sampling plus one stall tally — replayable in O(1) for the
            // entire span up to the next response's due cycle.
            let all_idle = a.next_activity(now).is_none()
                && b.next_activity(now).is_none()
                && c.next_activity(now).is_none()
                && out.next_activity(now).is_none();
            if all_idle {
                let needs_c = datapath.needs_c();
                let produces = datapath.produces_d();
                let drained = active_cycles == program.total_steps();
                if let Some((port, cause)) =
                    pe_would_stall(&a, &b, &c, &out, needs_c, produces, drained)
                {
                    // Cap so a wedged system fast-forwards to the exact
                    // deadlock diagnostic lockstep would produce.
                    let cap = budget + 1 - compute_cycles;
                    let span = FastForward::span(now, [mem.next_activity(now)], cap);
                    // A span of one saves nothing over a lockstep iteration.
                    if span >= 2 {
                        #[cfg(debug_assertions)]
                        let check = dm_sim::SpanCheck::capture([
                            ("streamer-A", a.activity_digest()),
                            ("streamer-B", b.activity_digest()),
                            ("streamer-C", c.activity_digest()),
                            ("streamer-OUT", out.activity_digest()),
                            ("mem", mem.activity_digest()),
                            ("datapath", datapath.activity_digest()),
                            ("quantizer", quant.activity_digest()),
                        ]);
                        a.sample_occupancy_span(span);
                        b.sample_occupancy_span(span);
                        c.sample_occupancy_span(span);
                        out.sample_occupancy_span(span);
                        match port {
                            Port::A => stalls.a += span,
                            Port::B => stalls.b += span,
                            Port::C => stalls.c += span,
                            Port::Out => stalls.out += span,
                        }
                        attribution.record_stall_n(cause, span);
                        // The blame walk reads only state the span check
                        // proves frozen (and the due-ordered in-flight
                        // queue, untouched until after the span), so the
                        // leaf is constant across the span: one O(1)
                        // replay is bit-identical to per-cycle recording.
                        let phase = if attribution.fired() == 0 {
                            BlamePhase::Fill
                        } else if drained {
                            BlamePhase::Drain
                        } else {
                            BlamePhase::Steady
                        };
                        let leaf = blame_leaf_for(cause, &a, &b, &c, &out, &mem);
                        blame.record_n(phase, cause, leaf, span);
                        // Same frozen-state argument: the binding critical
                        // edge is a pure function of (cause, leaf), so the
                        // whole span charges one class in O(1).
                        critical.record_stall_n(cause, leaf, span);
                        mem.advance_idle(span);
                        compute_cycles += span;
                        #[cfg(debug_assertions)]
                        check.assert_unchanged([
                            ("streamer-A", a.activity_digest()),
                            ("streamer-B", b.activity_digest()),
                            ("streamer-C", c.activity_digest()),
                            ("streamer-OUT", out.activity_digest()),
                            ("mem", mem.activity_digest()),
                            ("datapath", datapath.activity_digest()),
                            ("quantizer", quant.activity_digest()),
                        ]);
                        debug_assert_eq!(
                            attribution.total_cycles(),
                            compute_cycles,
                            "stall attribution must classify every compute cycle"
                        );
                        debug_assert!(
                            blame.conserves(&attribution),
                            "blame profile must conserve the stall attribution"
                        );
                        debug_assert!(
                            critical.conserves(&attribution),
                            "critical-path composition must refine the stall attribution"
                        );
                        clock.lap(Phase::Fastforward);
                        if compute_cycles > budget {
                            return Err(SystemError::Deadlock {
                                phase: "compute",
                                cycles: compute_cycles,
                            });
                        }
                        continue;
                    }
                }
            }
            // Horizon evaluation cost on the non-skip path is fast-forward
            // overhead, not streamer/memory/PE work.
            clock.lap(Phase::Fastforward);
        }
        a.begin_cycle();
        b.begin_cycle();
        c.begin_cycle();
        clock.lap(Phase::Streamers);
        mem.drain_responses(|resp| match routes[resp.requester.index()] {
            Route::A => a.accept_response(resp),
            Route::B => b.accept_response(resp),
            Route::C => c.accept_response(resp),
            Route::None => unreachable!("response for a write/copy port"),
        });
        clock.lap(Phase::Memory);
        // The accelerator handshake: fire when all operand ports are valid
        // and the output port is ready (on tile-completing steps).
        let needs_c = datapath.needs_c();
        let produces = datapath.produces_d();
        let now = mem.cycle();
        // Once every compute step has fired, remaining cycles only flush the
        // write path: the input FIFOs are legitimately empty, not starved.
        let drained = active_cycles == program.total_steps();
        // Phase segmentation: fill until the first fire, drain once every
        // compute step has issued, steady in between. Derived from loop
        // state only, so fast-forwarded and lockstep runs agree exactly.
        let blame_phase = if attribution.fired() == 0 {
            BlamePhase::Fill
        } else if drained {
            BlamePhase::Drain
        } else {
            BlamePhase::Steady
        };
        let operand_cause = |blocked: &ReadStreamer, port: OperandPort| {
            if drained {
                StallCause::Drain
            } else if blocked.lost_arbitration() {
                StallCause::BankConflict(port)
            } else {
                StallCause::NoOperand(port)
            }
        };
        let mut cause = None;
        let fire = if !a.can_pop_wide() {
            stalls.a += 1;
            cause = Some(operand_cause(&a, OperandPort::A));
            a.note_consumer_blocked(now);
            false
        } else if !b.can_pop_wide() {
            stalls.b += 1;
            cause = Some(operand_cause(&b, OperandPort::B));
            b.note_consumer_blocked(now);
            false
        } else if needs_c && !c.can_pop_wide() {
            stalls.c += 1;
            cause = Some(operand_cause(&c, OperandPort::C));
            c.note_consumer_blocked(now);
            false
        } else if produces && !out.can_push_wide() {
            stalls.out += 1;
            cause = Some(if drained {
                StallCause::Drain
            } else {
                StallCause::WritebackBackpressure
            });
            out.note_producer_blocked(now);
            false
        } else {
            true
        };
        if fire {
            attribution.record_fire();
            // A firing cycle is steady by definition: the first fire ends
            // the fill phase, and no fire can happen after drain begins.
            blame.record_fire(BlamePhase::Steady, now.get());
            critical.record_fire();
            if config.record_fire_cycles {
                fire_cycles.push(now.get());
            }
            sys_trace.emit(now, "pe", TraceEventKind::PeFire);
            let a_word = a.pop_wide();
            let b_word = b.pop_wide();
            let c_word = needs_c.then(|| c.pop_wide());
            if let Some(d_tile) = datapath.step(a_word, b_word, c_word) {
                let out_word = if config.quantized {
                    quant.process(&d_tile)
                } else {
                    d_tile
                };
                out.push_wide(&out_word);
                tiles_done += 1;
            }
            active_cycles += 1;
        } else {
            let cause = cause.expect("every non-firing cycle has a stall cause");
            attribution.record_stall(cause);
            let leaf = blame_leaf_for(cause, &a, &b, &c, &out, &mem);
            blame.record(blame_phase, cause, leaf);
            critical.record_stall(cause, leaf);
            sys_trace.emit(now, "pe", TraceEventKind::PeStall { cause });
        }
        clock.lap(Phase::Pe);
        a.generate_and_issue(&mut mem);
        b.generate_and_issue(&mut mem);
        c.generate_and_issue(&mut mem);
        out.generate_and_issue(&mut mem);
        clock.lap(Phase::Streamers);
        let grants = mem.arbitrate();
        clock.lap(Phase::Memory);
        a.handle_grants(grants);
        b.handle_grants(grants);
        c.handle_grants(grants);
        out.handle_grants(grants);
        clock.lap(Phase::Streamers);
        compute_cycles += 1;
        debug_assert_eq!(
            attribution.total_cycles(),
            compute_cycles,
            "stall attribution must classify every compute cycle"
        );
        debug_assert!(
            blame.conserves(&attribution),
            "blame profile must conserve the stall attribution"
        );
        debug_assert!(
            critical.conserves(&attribution),
            "critical-path composition must refine the stall attribution"
        );
        if compute_cycles > budget {
            return Err(SystemError::Deadlock {
                phase: "compute",
                cycles: compute_cycles,
            });
        }
    }
    sys_trace.emit_with(mem.cycle(), "system", || TraceEventKind::SpanEnd {
        name: "compute".to_owned(),
    });
    let host = clock.finish(loop_start, compute_cycles);
    debug_assert_eq!(tiles_done, program.total_output_tiles);
    debug_assert_eq!(active_cycles, program.total_steps());
    assert_eq!(
        attribution.fired(),
        active_cycles,
        "attributed fires must match active cycles"
    );
    assert_eq!(
        attribution.total_cycles(),
        compute_cycles,
        "fired + attributed stalls must cover every compute cycle"
    );
    assert!(
        blame.conserves(&attribution),
        "blame profile must charge every attributed stall to exactly one \
         component leaf under the same cause"
    );
    assert!(
        critical.conserves(&attribution),
        "critical-path composition must refine the stall attribution class \
         by class"
    );
    assert_eq!(
        critical.path_length(),
        compute_cycles,
        "every compute cycle lies on the critical path"
    );

    // Golden verification.
    let mut checked = false;
    if config.check_output {
        if program.output_slices.is_empty() {
            let remap = AddressRemapper::new(&config.mem, program.output_region.mode)?;
            let got = mem.scratchpad().host_read(
                &remap,
                Addr::new(program.output_region.base),
                program.output_region.len as usize,
            )?;
            let expected = program.expected_output_image(data);
            if let Some(first_diff) = got.iter().zip(&expected).position(|(g, e)| g != e) {
                return Err(SystemError::OutputMismatch {
                    first_diff,
                    expected: expected[first_diff],
                    got: got[first_diff],
                });
            }
        } else {
            // Private-bank placement: verify each per-channel slice.
            let expected_slices = program.expected_output_slice_images(data);
            for (region, expected) in program.output_slices.iter().zip(&expected_slices) {
                let remap = AddressRemapper::new(&config.mem, region.mode)?;
                let got = mem.scratchpad().host_read(
                    &remap,
                    Addr::new(region.base),
                    region.len as usize,
                )?;
                if let Some(first_diff) = got.iter().zip(expected).position(|(g, e)| g != e) {
                    return Err(SystemError::OutputMismatch {
                        first_diff,
                        expected: expected[first_diff],
                        got: got[first_diff],
                    });
                }
            }
        }
        checked = true;
    }

    let total_cycles = prepass_cycles + compute_cycles;
    let collect = |registry: &mut MetricsRegistry| {
        registry.with_scope("system", |r| {
            r.set_counter("ideal_cycles", program.total_steps());
            r.set_counter("prepass_cycles", prepass_cycles);
            r.set_counter("compute_cycles", compute_cycles);
            r.set_counter("active_cycles", active_cycles);
            r.set_counter("tiles", tiles_done);
            if total_cycles > 0 {
                r.set_gauge(
                    "utilization",
                    program.total_steps() as f64 / total_cycles as f64,
                );
            }
            r.with_scope("stall", |r| {
                r.set_counter("fired", attribution.fired());
                for cause in StallCause::ALL {
                    r.set_counter(cause.label(), attribution.count(cause));
                }
            });
        });
        registry.with_scope("mem", |r| mem.register_metrics(r));
        registry.with_scope("streamer", |r| {
            r.with_scope("A", |r| a.register_metrics(r));
            r.with_scope("B", |r| b.register_metrics(r));
            r.with_scope("C", |r| c.register_metrics(r));
            r.with_scope("OUT", |r| out.register_metrics(r));
        });
    };
    let mut metrics = MetricsRegistry::new();
    collect(&mut metrics);
    #[cfg(debug_assertions)]
    {
        // Collecting a snapshot must be a pure read: a second pass over the
        // same quiesced system yields an identical registry.
        let mut second = MetricsRegistry::new();
        collect(&mut second);
        assert_eq!(
            metrics, second,
            "metric snapshots must be deterministic and side-effect free"
        );
    }

    let traces = if config.trace == TraceMode::Off {
        Vec::new()
    } else {
        vec![
            ("system".to_owned(), sys_trace),
            ("mem".to_owned(), mem.take_trace()),
            ("streamer-A".to_owned(), a.take_trace()),
            ("streamer-B".to_owned(), b.take_trace()),
            ("streamer-C".to_owned(), c.take_trace()),
            ("streamer-OUT".to_owned(), out.take_trace()),
        ]
    };

    let stats = mem.stats();
    debug_assert_eq!(
        stats.submissions.get(),
        stats.reads.get() + stats.writes.get(),
        "every unique submission must retire exactly once by drain"
    );
    Ok(RunReport {
        workload: program.workload,
        features: program.features,
        ideal_cycles: program.total_steps(),
        prepass_cycles,
        compute_cycles,
        active_cycles,
        stalls,
        attribution,
        blame,
        critical,
        mem_reads: stats.reads.get(),
        mem_writes: stats.writes.get(),
        conflicts: stats.conflicts.get(),
        streamer_stats: [*a.stats(), *b.stats(), *c.stats(), *out.stats()],
        per_bank_accesses: mem.per_bank_accesses().to_vec(),
        metrics,
        traces,
        fire_cycles,
        provenance: Provenance::stamp(config, program.workload),
        host,
        checked,
    })
}
