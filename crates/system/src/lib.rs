//! # The DataMaestro evaluation system
//!
//! This crate wires everything together into the system of Fig. 6 of the
//! paper: a multi-banked scratchpad ([`dm_mem`]), five DataMaestro
//! streamers ([`datamaestro`]), the Tensor-Core-like GeMM accelerator and
//! quantization accelerator ([`dm_accel`]), plus a DMA-style
//! [`CopyEngine`] for the explicit pre-passes that stand in for missing
//! on-the-fly features during the ablation study.
//!
//! The main entry point is [`run_workload`]: compile a [`WorkloadData`]
//! onto the configured system, execute it cycle by cycle, verify the output
//! against the golden reference and return a [`RunReport`] with the
//! utilization, stall and memory-access statistics the paper's figures are
//! built from.
//!
//! # Examples
//!
//! ```
//! use dm_system::{run_workload, SystemConfig};
//! use dm_workloads::{GemmSpec, WorkloadData};
//!
//! // A 32×32×32 GeMM on the fully featured system.
//! let data = WorkloadData::generate(GemmSpec::new(32, 32, 32).into(), 0);
//! let report = run_workload(&SystemConfig::default(), &data)?;
//! // The full feature set sustains near-perfect utilization on GeMM.
//! assert!(report.utilization() > 0.9);
//! assert_eq!(report.ideal_cycles, 64);
//! # Ok::<(), dm_system::SystemError>(())
//! ```
//!
//! [`WorkloadData`]: dm_workloads::WorkloadData

pub mod copy_engine;
pub mod error;
pub mod pool;
pub mod provenance;
pub mod system;

pub use copy_engine::{CopyEngine, CopyStats};
pub use error::SystemError;
pub use pool::{run_pool, PoolReport};
pub use provenance::Provenance;
pub use system::{
    run_compiled, run_workload, HostTimings, RunReport, StallBreakdown, SystemConfig,
};

#[cfg(test)]
mod tests {
    use super::*;
    use dm_compiler::FeatureSet;
    use dm_workloads::{ConvSpec, GemmSpec, WorkloadData};

    fn small_system() -> SystemConfig {
        SystemConfig::default()
    }

    #[test]
    fn gemm_runs_and_verifies() {
        let data = WorkloadData::generate(GemmSpec::new(16, 16, 16).into(), 1);
        let report = run_workload(&small_system(), &data).unwrap();
        assert!(report.checked);
        assert_eq!(report.active_cycles, 8);
        assert_eq!(report.prepass_cycles, 0);
    }

    #[test]
    fn transposed_gemm_runs_and_verifies() {
        let data = WorkloadData::generate(GemmSpec::transposed(16, 24, 16).into(), 2);
        let report = run_workload(&small_system(), &data).unwrap();
        assert!(report.checked);
    }

    #[test]
    fn conv_runs_and_verifies() {
        let data = WorkloadData::generate(ConvSpec::new(10, 10, 8, 16, 3, 3, 1).into(), 3);
        let report = run_workload(&small_system(), &data).unwrap();
        assert!(report.checked);
        assert_eq!(report.ideal_cycles, 8 * 2 * 9);
    }

    #[test]
    fn strided_conv_runs_and_verifies() {
        let data = WorkloadData::generate(ConvSpec::new(17, 17, 8, 8, 3, 3, 2).into(), 4);
        let report = run_workload(&small_system(), &data).unwrap();
        assert!(report.checked);
    }

    #[test]
    fn unquantized_output_is_int32() {
        let cfg = SystemConfig {
            quantized: false,
            ..small_system()
        };
        let data = WorkloadData::generate(GemmSpec::new(16, 16, 8).into(), 5);
        let report = run_workload(&cfg, &data).unwrap();
        assert!(report.checked);
    }

    #[test]
    fn every_ablation_step_verifies_on_all_groups() {
        // Functional correctness must hold regardless of the feature set —
        // features change *when*, never *what*.
        let workloads: Vec<WorkloadData> = vec![
            WorkloadData::generate(GemmSpec::new(16, 16, 16).into(), 10),
            WorkloadData::generate(GemmSpec::transposed(16, 16, 16).into(), 11),
            WorkloadData::generate(ConvSpec::new(10, 10, 8, 8, 3, 3, 1).into(), 12),
        ];
        for step in 1..=6 {
            let cfg = small_system().with_features(FeatureSet::ablation_step(step));
            for data in &workloads {
                let report = run_workload(&cfg, data)
                    .unwrap_or_else(|e| panic!("step {step}, {}: {e}", data.workload));
                assert!(report.checked, "step {step}");
            }
        }
    }

    #[test]
    fn features_improve_utilization_monotonically_enough() {
        let data = WorkloadData::generate(GemmSpec::new(64, 64, 64).into(), 20);
        let baseline = run_workload(
            &small_system().with_features(FeatureSet::ablation_step(1)),
            &data,
        )
        .unwrap();
        let prefetch = run_workload(
            &small_system().with_features(FeatureSet::ablation_step(2)),
            &data,
        )
        .unwrap();
        let full = run_workload(&small_system(), &data).unwrap();
        assert!(
            prefetch.utilization() > baseline.utilization() * 1.4,
            "prefetch {:.3} vs baseline {:.3}",
            prefetch.utilization(),
            baseline.utilization()
        );
        assert!(
            full.utilization() > 0.95,
            "full system reached only {:.3}",
            full.utilization()
        );
    }

    #[test]
    fn prepasses_cost_cycles_and_accesses() {
        let data = WorkloadData::generate(GemmSpec::transposed(32, 32, 32).into(), 21);
        let with_ext = run_workload(&small_system(), &data).unwrap();
        let without_ext = run_workload(
            &small_system().with_features(FeatureSet {
                transposer: false,
                ..FeatureSet::full()
            }),
            &data,
        )
        .unwrap();
        assert_eq!(with_ext.prepass_cycles, 0);
        assert!(without_ext.prepass_cycles > 0);
        assert!(without_ext.accesses() > with_ext.accesses());
        assert!(without_ext.utilization() < with_ext.utilization());
    }

    #[test]
    fn private_bank_nima_placement_runs_conflict_free() {
        use dm_compiler::compile_gemm_private_banks;
        use dm_compiler::BufferDepths;

        let cfg = small_system();
        let data = WorkloadData::generate(GemmSpec::new(32, 32, 32).into(), 30);
        let program =
            compile_gemm_private_banks(&data, &cfg.features, &cfg.mem, BufferDepths::default())
                .unwrap();
        let report = run_compiled(&cfg, &data, &program).unwrap();
        assert!(report.checked, "sliced output verified");
        assert_eq!(report.conflicts, 0, "private banks never conflict");
        assert!(report.utilization() > 0.95, "{:.3}", report.utilization());
    }

    #[test]
    fn report_accounting_is_consistent() {
        let data = WorkloadData::generate(GemmSpec::new(24, 16, 24).into(), 22);
        let report = run_workload(&small_system(), &data).unwrap();
        assert_eq!(
            report.compute_cycles,
            report.active_cycles + report.stalls.total()
        );
        assert_eq!(
            report.total_cycles(),
            report.prepass_cycles + report.compute_cycles
        );
        assert!(report.utilization() <= 1.0 + 1e-9);
        assert!(report.accesses() > 0);
    }
}
