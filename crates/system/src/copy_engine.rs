//! The DMA-style copy engine used for explicit pre-passes.
//!
//! When the built system lacks an on-the-fly feature (Transposer,
//! Broadcaster, implicit im2col), the compiler emits a [`CopyPlan`] — a
//! memory-to-memory transformation the host must run *before* compute,
//! exactly like the standalone data-manipulation units the paper's
//! introduction criticizes. The engine replays the plan cycle by cycle
//! through the same banked memory and crossbar as the streamers, so its
//! cycles and accesses (and the bank conflicts it suffers) are accounted
//! honestly.
//!
//! The engine has `channels` read and `channels` write ports. Reads issue
//! in plan order; a write may issue once every read it depends on has
//! completed (a scoreboard, not a full barrier, so reads and writes
//! overlap).

use dm_compiler::{CopyPlan, WriteSource};
use dm_mem::{Addr, AddressRemapper, MemOp, MemRequest, MemorySubsystem, RequesterId, Word};
use dm_sim::{Cycle, NextActivity, StableHasher};
use serde::{Deserialize, Serialize};

use crate::error::SystemError;

/// Outcome of one copy-plan execution.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CopyStats {
    /// Cycles the pass took.
    pub cycles: u64,
    /// Words read.
    pub words_read: u64,
    /// Words written.
    pub words_written: u64,
}

/// The copy engine. Its crossbar requesters are registered at system build
/// time (design-time port count, like everything else on the crossbar).
#[derive(Debug)]
pub struct CopyEngine {
    read_ports: Vec<RequesterId>,
    write_ports: Vec<RequesterId>,
    /// Fold memory-round-trip idle cycles into one `advance_idle` jump
    /// (bit-identical stats; see the fast-forward engine in `dm-sim`).
    fast_forward: bool,
}

impl CopyEngine {
    /// Registers `channels` read and `channels` write requesters.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    #[must_use]
    pub fn new(mem: &mut MemorySubsystem, channels: usize) -> Self {
        assert!(channels > 0, "copy engine needs at least one channel");
        CopyEngine {
            read_ports: (0..channels)
                .map(|i| mem.register_requester(format!("copy/rd{i}")))
                .collect(),
            write_ports: (0..channels)
                .map(|i| mem.register_requester(format!("copy/wr{i}")))
                .collect(),
            fast_forward: true,
        }
    }

    /// Enables or disables idle-cycle elision (on by default).
    pub fn set_fast_forward(&mut self, enabled: bool) {
        self.fast_forward = enabled;
    }

    /// Number of read (= write) channels.
    #[must_use]
    pub fn channels(&self) -> usize {
        self.read_ports.len()
    }

    /// Executes one plan to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SystemError::Deadlock`] if the pass exceeds its cycle
    /// budget (a modelling bug) and [`SystemError::Mem`] on address
    /// translation failures.
    pub fn run(
        &mut self,
        mem: &mut MemorySubsystem,
        plan: &CopyPlan,
    ) -> Result<CopyStats, SystemError> {
        let mem_cfg = *mem.scratchpad().config();
        let read_remap = AddressRemapper::new(&mem_cfg, plan.read_mode)?;
        let write_remap = AddressRemapper::new(&mem_cfg, plan.write_mode)?;
        let word = mem_cfg.bank_width_bytes();

        let mut read_data: Vec<Option<Word>> = vec![None; plan.reads.len()];
        // Per-channel pending request: Some(read index) awaiting grant.
        let mut read_pending: Vec<Option<usize>> = vec![None; self.read_ports.len()];
        let mut write_pending: Vec<Option<(u64, Word)>> = vec![None; self.write_ports.len()];
        let mut next_read = 0usize;
        let mut next_write = 0usize;
        let mut writes_done = 0usize;
        let mut cycles = 0u64;
        let budget = (plan.reads.len() + plan.writes.len()) as u64 * 20 + 1_000;

        while writes_done < plan.writes.len() || next_read < plan.reads.len() {
            // Land responses.
            mem.drain_responses(|resp| read_data[resp.tag as usize] = Some(resp.data));
            let mut submitted_any = false;
            // Issue reads in order.
            for (ch, port) in self.read_ports.iter().enumerate() {
                if read_pending[ch].is_none() && next_read < plan.reads.len() {
                    read_pending[ch] = Some(next_read);
                    next_read += 1;
                }
                if let Some(idx) = read_pending[ch] {
                    let loc = read_remap.map_byte(Addr::new(plan.reads[idx]))?;
                    mem.submit(MemRequest {
                        requester: *port,
                        loc,
                        tag: idx as u64,
                        op: MemOp::Read,
                    })?;
                    submitted_any = true;
                }
            }
            // Issue writes whose dependencies have landed.
            for (ch, port) in self.write_ports.iter().enumerate() {
                if write_pending[ch].is_none() && next_write < plan.writes.len() {
                    let (addr, source) = &plan.writes[next_write];
                    if let Some(data) = materialize(source, &read_data, word) {
                        write_pending[ch] = Some((*addr, data));
                        next_write += 1;
                    }
                }
                if let Some((addr, data)) = write_pending[ch] {
                    let loc = write_remap.map_byte(Addr::new(addr))?;
                    mem.submit(MemRequest {
                        requester: *port,
                        loc,
                        tag: 0,
                        op: MemOp::Write { data, mask: None },
                    })?;
                    submitted_any = true;
                }
            }
            if self.fast_forward && !submitted_any {
                // Nothing to arbitrate: the engine is waiting for the next
                // in-flight response (or, with nothing in flight, would spin
                // to its deadlock budget). Lockstep would burn one empty
                // `arbitrate` per cycle until that response's due cycle, so
                // jumping straight there is bit-identical — capped so a
                // stuck pass reports the same deadlock cycle count.
                let now = mem.cycle();
                let span = mem
                    .next_activity(now)
                    .map_or(u64::MAX, |at| at.get().saturating_sub(now.get()))
                    .min(budget + 1 - cycles);
                if span >= 1 {
                    mem.advance_idle(span);
                    cycles += span;
                    if cycles > budget {
                        return Err(SystemError::Deadlock {
                            phase: "copy-engine",
                            cycles,
                        });
                    }
                    continue;
                }
            }
            let grants = mem.arbitrate();
            for (ch, port) in self.read_ports.iter().enumerate() {
                if read_pending[ch].is_some() && grants[port.index()] {
                    read_pending[ch] = None;
                }
            }
            for (ch, port) in self.write_ports.iter().enumerate() {
                if write_pending[ch].is_some() && grants[port.index()] {
                    write_pending[ch] = None;
                    writes_done += 1;
                }
            }
            cycles += 1;
            if cycles > budget {
                return Err(SystemError::Deadlock {
                    phase: "copy-engine",
                    cycles,
                });
            }
        }
        // Drain the last in-flight read responses (cheap, no extra cycles:
        // they overlap with whatever runs next).
        mem.drain_responses(|resp| read_data[resp.tag as usize] = Some(resp.data));
        Ok(CopyStats {
            cycles,
            words_read: plan.reads.len() as u64,
            words_written: plan.writes.len() as u64,
        })
    }
}

impl NextActivity for CopyEngine {
    /// Between [`run`](Self::run) calls the engine holds no work; within a
    /// run it drives the clock itself, so it never constrains the system
    /// scheduler.
    fn next_activity(&self, _now: Cycle) -> Option<Cycle> {
        None
    }

    fn activity_digest(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_usize(self.read_ports.len());
        h.write_usize(self.write_ports.len());
        h.finish()
    }
}

/// Builds a write word from completed reads, or `None` if a dependency is
/// still in flight.
fn materialize(source: &WriteSource, read_data: &[Option<Word>], word: usize) -> Option<Word> {
    match source {
        WriteSource::Word(i) => read_data[*i],
        WriteSource::Gather(offsets) => {
            let mut out = Word::zeroed(offsets.len());
            for (i, &off) in offsets.iter().enumerate() {
                let data = read_data[off / word].as_ref()?;
                out[i] = data[off % word];
            }
            Some(out)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_mem::{AddressingMode, MemConfig};

    fn setup() -> (MemorySubsystem, CopyEngine) {
        let mut mem = MemorySubsystem::new(MemConfig::new(8, 8, 128).unwrap());
        let engine = CopyEngine::new(&mut mem, 4);
        (mem, engine)
    }

    fn fima() -> AddressingMode {
        AddressingMode::FullyInterleaved
    }

    #[test]
    fn word_copy_moves_data() {
        let (mut mem, mut engine) = setup();
        let remap = AddressRemapper::new(mem.scratchpad().config(), fima()).unwrap();
        let src: Vec<u8> = (0..32).collect();
        mem.scratchpad_mut()
            .host_write(&remap, Addr::ZERO, &src)
            .unwrap();
        let plan = CopyPlan {
            name: "copy".into(),
            read_mode: fima(),
            write_mode: fima(),
            reads: vec![0, 8, 16, 24],
            writes: (0..4)
                .map(|i| (1024 + i * 8, WriteSource::Word(i as usize)))
                .collect(),
        };
        let stats = engine.run(&mut mem, &plan).unwrap();
        assert_eq!(stats.words_read, 4);
        assert_eq!(stats.words_written, 4);
        assert!(stats.cycles >= 2, "read → write takes at least two cycles");
        let out = mem
            .scratchpad()
            .host_read(&remap, Addr::new(1024), 32)
            .unwrap();
        assert_eq!(out, src);
    }

    #[test]
    fn gather_shuffles_bytes() {
        let (mut mem, mut engine) = setup();
        let remap = AddressRemapper::new(mem.scratchpad().config(), fima()).unwrap();
        mem.scratchpad_mut()
            .host_write(
                &remap,
                Addr::ZERO,
                &[0, 1, 2, 3, 4, 5, 6, 7, 10, 11, 12, 13, 14, 15, 16, 17],
            )
            .unwrap();
        // Interleave bytes of the two source words.
        let gather: Vec<usize> = vec![0, 8, 1, 9, 2, 10, 3, 11];
        let plan = CopyPlan {
            name: "shuffle".into(),
            read_mode: fima(),
            write_mode: fima(),
            reads: vec![0, 8],
            writes: vec![(512, WriteSource::Gather(gather))],
        };
        engine.run(&mut mem, &plan).unwrap();
        let out = mem
            .scratchpad()
            .host_read(&remap, Addr::new(512), 8)
            .unwrap();
        assert_eq!(out, vec![0, 10, 1, 11, 2, 12, 3, 13]);
    }

    #[test]
    fn replication_reads_once_writes_many() {
        let (mut mem, mut engine) = setup();
        let remap = AddressRemapper::new(mem.scratchpad().config(), fima()).unwrap();
        mem.scratchpad_mut()
            .host_write(&remap, Addr::ZERO, &[9; 8])
            .unwrap();
        let plan = CopyPlan {
            name: "replicate".into(),
            read_mode: fima(),
            write_mode: fima(),
            reads: vec![0],
            writes: (0..16)
                .map(|i| (256 + i * 8, WriteSource::Word(0)))
                .collect(),
        };
        let stats = engine.run(&mut mem, &plan).unwrap();
        assert_eq!(stats.words_read, 1);
        assert_eq!(stats.words_written, 16);
        let out = mem
            .scratchpad()
            .host_read(&remap, Addr::new(256), 128)
            .unwrap();
        assert_eq!(out, vec![9; 128]);
    }

    #[test]
    fn cross_view_copy_translates_addresses() {
        let (mut mem, mut engine) = setup();
        let nima = AddressingMode::NonInterleaved;
        let remap_fima = AddressRemapper::new(mem.scratchpad().config(), fima()).unwrap();
        let remap_nima = AddressRemapper::new(mem.scratchpad().config(), nima).unwrap();
        mem.scratchpad_mut()
            .host_write(&remap_fima, Addr::ZERO, &[5; 8])
            .unwrap();
        let plan = CopyPlan {
            name: "cross".into(),
            read_mode: fima(),
            write_mode: nima,
            reads: vec![0],
            writes: vec![(2048, WriteSource::Word(0))],
        };
        engine.run(&mut mem, &plan).unwrap();
        let out = mem
            .scratchpad()
            .host_read(&remap_nima, Addr::new(2048), 8)
            .unwrap();
        assert_eq!(out, vec![5; 8]);
    }

    #[test]
    fn empty_plan_is_free() {
        let (mut mem, mut engine) = setup();
        let plan = CopyPlan {
            name: "noop".into(),
            read_mode: fima(),
            write_mode: fima(),
            reads: vec![],
            writes: vec![],
        };
        let stats = engine.run(&mut mem, &plan).unwrap();
        assert_eq!(stats.cycles, 0);
    }

    #[test]
    fn fast_forward_matches_lockstep_exactly() {
        // High-latency memory exposes long idle spans between the read
        // issue and the dependent writes; elision must not move a single
        // counter.
        let run = |fast_forward: bool| {
            let mut mem = MemorySubsystem::new(MemConfig::new(8, 8, 128).unwrap());
            mem.set_read_latency(16);
            let mut engine = CopyEngine::new(&mut mem, 4);
            engine.set_fast_forward(fast_forward);
            let plan = CopyPlan {
                name: "rt".into(),
                read_mode: fima(),
                write_mode: fima(),
                reads: vec![0, 8, 16, 24],
                writes: (0..4)
                    .map(|i| (1024 + i * 8, WriteSource::Word(i as usize)))
                    .collect(),
            };
            let stats = engine.run(&mut mem, &plan).unwrap();
            (stats, mem.cycle(), *mem.stats())
        };
        let (ff_stats, ff_cycle, ff_mem) = run(true);
        let (ls_stats, ls_cycle, ls_mem) = run(false);
        assert_eq!(ff_stats, ls_stats);
        assert_eq!(ff_cycle, ls_cycle);
        assert_eq!(ff_mem, ls_mem);
        assert!(ff_stats.cycles > 16, "latency actually exposed");
    }

    #[test]
    fn conflicting_plan_still_completes() {
        let (mut mem, mut engine) = setup();
        // All reads and writes hammer bank 0 (NIMA view, one bank's rows).
        let nima = AddressingMode::NonInterleaved;
        let plan = CopyPlan {
            name: "conflict".into(),
            read_mode: nima,
            write_mode: nima,
            reads: (0..8u64).map(|i| i * 8).collect(),
            writes: (0..8)
                .map(|i| (256 + i * 8, WriteSource::Word(i as usize)))
                .collect(),
        };
        let stats = engine.run(&mut mem, &plan).unwrap();
        // 16 single-bank operations need at least 16 cycles.
        assert!(stats.cycles >= 16, "took {} cycles", stats.cycles);
        assert!(mem.stats().conflicts.get() > 0);
    }
}
