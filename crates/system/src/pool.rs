//! A max-pooling accelerator assembled from the same DataMaestro streamers
//! as the GeMM system — the paper's *reusable design* claim, executed.
//!
//! One read streamer walks the pooling windows with the N-D AGU (the same
//! pattern family the convolution A stream uses), an elementwise-max unit
//! reduces `k²` window tiles, and one write streamer scatters the pooled
//! tiles back. Nothing inside the streamers changes; only the ~40-line
//! reduction unit and the pool lowering in `dm-compiler` are new.

use datamaestro::{ReadStreamer, WriteStreamer};
use dm_compiler::{compile_pool, BufferDepths, FeatureSet};
use dm_mem::{Addr, AddressRemapper, MemConfig, MemorySubsystem};
use dm_workloads::PoolSpec;

use crate::error::SystemError;

/// The elementwise-max reduction unit: accumulates `k_steps` tiles.
#[derive(Debug, Clone)]
struct MaxUnit {
    k_steps: u64,
    k_counter: u64,
    acc: Vec<i8>,
}

impl MaxUnit {
    fn new(width: usize, k_steps: u64) -> Self {
        MaxUnit {
            k_steps,
            k_counter: 0,
            acc: vec![i8::MIN; width],
        }
    }

    /// Folds one tile in; returns the finished tile on the last step.
    fn step(&mut self, tile: &[u8]) -> Option<Vec<u8>> {
        assert_eq!(tile.len(), self.acc.len(), "tile width");
        if self.k_counter == 0 {
            self.acc.fill(i8::MIN);
        }
        for (acc, &b) in self.acc.iter_mut().zip(tile) {
            *acc = (*acc).max(b as i8);
        }
        self.k_counter += 1;
        if self.k_counter == self.k_steps {
            self.k_counter = 0;
            Some(self.acc.iter().map(|&v| v as u8).collect())
        } else {
            None
        }
    }
}

/// Outcome of a pooling run.
#[derive(Debug, Clone)]
pub struct PoolReport {
    /// The workload.
    pub spec: PoolSpec,
    /// Stall-free cycles.
    pub ideal_cycles: u64,
    /// Simulated cycles.
    pub cycles: u64,
    /// Memory word accesses.
    pub accesses: u64,
    /// Bank conflicts.
    pub conflicts: u64,
    /// Whether the output matched the golden max-pool reference.
    pub checked: bool,
}

impl PoolReport {
    /// Utilization of the pooling unit.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        self.ideal_cycles as f64 / self.cycles as f64
    }
}

/// Runs a max-pooling workload on the streamer-built pooling system.
///
/// # Errors
///
/// Returns [`SystemError`] on lowering failure, deadlock or output
/// mismatch.
///
/// # Panics
///
/// Panics if `input.len() != h·w·c`.
///
/// # Examples
///
/// ```
/// use dm_mem::MemConfig;
/// use dm_system::pool::run_pool;
/// use dm_workloads::PoolSpec;
///
/// let spec = PoolSpec::new(16, 16, 8, 2, 2);
/// let input: Vec<i8> = (0..16 * 16 * 8).map(|i| (i % 251) as i8).collect();
/// let report = run_pool(
///     &MemConfig::new(32, 8, 4096)?,
///     &dm_compiler::FeatureSet::full(),
///     spec,
///     &input,
/// )?;
/// assert!(report.checked);
/// assert!(report.utilization() > 0.9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn run_pool(
    mem_cfg: &MemConfig,
    features: &FeatureSet,
    spec: PoolSpec,
    input: &[i8],
) -> Result<PoolReport, SystemError> {
    let program = compile_pool(spec, input, features, mem_cfg, BufferDepths::default())?;
    let mut mem = MemorySubsystem::new(*mem_cfg);
    let mut a = ReadStreamer::new(&program.a.design, &program.a.runtime, &mut mem)?;
    let mut out = WriteStreamer::new(&program.out.design, &program.out.runtime, &mut mem)?;
    for image in &program.images {
        let remap = AddressRemapper::new(mem_cfg, image.region.mode)?;
        mem.scratchpad_mut()
            .host_write(&remap, Addr::new(image.region.base), &image.bytes)?;
    }

    let mut unit = MaxUnit::new(a.output_width(), program.k_steps);
    let ideal = program.k_steps * program.total_output_tiles;
    let mut cycles = 0u64;
    let budget = ideal * 64 + 100_000;
    while !(a.is_done() && out.is_done()) {
        a.begin_cycle();
        for resp in mem.take_responses() {
            a.accept_response(resp);
        }
        let produces = unit.k_counter == unit.k_steps - 1;
        if a.can_pop_wide() && (!produces || out.can_push_wide()) {
            let tile = a.pop_wide();
            if let Some(pooled) = unit.step(tile) {
                out.push_wide(&pooled);
            }
        }
        a.generate_and_issue(&mut mem);
        out.generate_and_issue(&mut mem);
        let grants = mem.arbitrate().to_vec();
        a.handle_grants(&grants);
        out.handle_grants(&grants);
        cycles += 1;
        if cycles > budget {
            return Err(SystemError::Deadlock {
                phase: "pool",
                cycles,
            });
        }
    }

    let remap = AddressRemapper::new(mem_cfg, program.output_region.mode)?;
    let got = mem.scratchpad().host_read(
        &remap,
        Addr::new(program.output_region.base),
        program.output_region.len as usize,
    )?;
    let expected = program.expected_output_image(input);
    if let Some(first_diff) = got.iter().zip(&expected).position(|(g, e)| g != e) {
        return Err(SystemError::OutputMismatch {
            first_diff,
            expected: expected[first_diff],
            got: got[first_diff],
        });
    }
    let stats = mem.stats();
    Ok(PoolReport {
        spec,
        ideal_cycles: ideal,
        cycles,
        accesses: stats.total_accesses(),
        conflicts: stats.conflicts.get(),
        checked: true,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_input(len: usize, seed: u64) -> Vec<i8> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(i8::MIN..=i8::MAX)).collect()
    }

    fn mem() -> MemConfig {
        MemConfig::new(32, 8, 4096).unwrap()
    }

    #[test]
    fn pool_2x2_stride2_verifies() {
        let spec = PoolSpec::new(16, 16, 16, 2, 2);
        let input = random_input(16 * 16 * 16, 1);
        let r = run_pool(&mem(), &FeatureSet::full(), spec, &input).unwrap();
        assert!(r.checked);
        assert!(r.utilization() > 0.9, "{:.3}", r.utilization());
    }

    #[test]
    fn pool_3x3_stride1_verifies() {
        let spec = PoolSpec::new(10, 10, 8, 3, 1);
        let input = random_input(10 * 10 * 8, 2);
        let r = run_pool(&mem(), &FeatureSet::full(), spec, &input).unwrap();
        assert!(r.checked);
    }

    #[test]
    fn pool_without_mode_switching_still_verifies() {
        let spec = PoolSpec::new(16, 16, 8, 2, 2);
        let input = random_input(16 * 16 * 8, 3);
        let r = run_pool(&mem(), &FeatureSet::baseline(), spec, &input).unwrap();
        assert!(r.checked);
    }

    #[test]
    fn pool_counts_window_reads() {
        // Non-overlapping 2×2 pooling reads each input word exactly once.
        let spec = PoolSpec::new(16, 16, 8, 2, 2);
        let input = random_input(16 * 16 * 8, 4);
        let r = run_pool(&mem(), &FeatureSet::full(), spec, &input).unwrap();
        let input_words = (16 * 16 * 8 / 8) as u64;
        let output_words = (8 * 8 * 8 / 8) as u64;
        assert_eq!(r.accesses, input_words + output_words);
    }
}
