//! Provenance stamps for run reports.
//!
//! The regression observatory compares `BENCH_*.json` baselines produced at
//! different commits, possibly months apart. A comparison is only meaningful
//! when both runs measured *the same experiment*; [`Provenance`] makes that
//! checkable by construction: every [`RunReport`](crate::RunReport) carries
//! a deterministic fingerprint of the behaviour-relevant system
//! configuration, the workload identity and the crate version. Two reports
//! with equal fingerprints measured the same simulated system on the same
//! workload; `regress diff` refuses to compare entries whose fingerprints
//! were produced by different configurations.
//!
//! The fingerprint deliberately EXCLUDES settings that cannot change
//! simulated behaviour — output checking, trace capture, host phase timing,
//! fast-forward elision, fire-cycle recording — so turning diagnostics on
//! or off does not invalidate a baseline.

use dm_sim::{JsonValue, StableHasher};
use dm_workloads::Workload;

use crate::system::SystemConfig;

/// Deterministic identity of one measured run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Provenance {
    /// 16-hex-digit FNV-1a fingerprint of config × workload × version.
    pub fingerprint: String,
    /// The workspace crate version that produced the report.
    pub crate_version: String,
    /// Workload identity string (its `Display` form, e.g. `gemm 64x64x64`).
    pub workload: String,
}

impl Provenance {
    /// Stamps a run: hashes every behaviour-relevant configuration field,
    /// the workload id and the crate version into one stable fingerprint.
    #[must_use]
    pub fn stamp(config: &SystemConfig, workload: Workload) -> Self {
        let crate_version = env!("CARGO_PKG_VERSION").to_owned();
        let workload = workload.to_string();
        let mut h = StableHasher::new();
        // Memory geometry.
        h.write_usize(config.mem.num_banks());
        h.write_usize(config.mem.bank_width_bytes());
        h.write_usize(config.mem.rows_per_bank());
        // PE array shape.
        h.write_usize(config.array.m_unroll);
        h.write_usize(config.array.n_unroll);
        h.write_usize(config.array.k_unroll);
        // DataMaestro feature set (the fig7 ablation axis).
        h.write_bool(config.features.fine_grained_prefetch);
        h.write_bool(config.features.transposer);
        h.write_bool(config.features.broadcaster);
        h.write_bool(config.features.implicit_im2col);
        h.write_bool(config.features.addr_mode_switching);
        // Buffer depths and datapath options.
        h.write_usize(config.depths.data);
        h.write_usize(config.depths.write_data);
        h.write_usize(config.depths.addr);
        h.write_bool(config.quantized);
        h.write_u64(config.read_latency);
        // Identity of the experiment, not of the hardware.
        h.write_str(&workload);
        h.write_str(&crate_version);
        Provenance {
            fingerprint: h.finish_hex(),
            crate_version,
            workload,
        }
    }

    /// Serializes to a JSON object for `BENCH_*.json` embedding.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            (
                "fingerprint".to_owned(),
                JsonValue::from(self.fingerprint.as_str()),
            ),
            (
                "crate_version".to_owned(),
                JsonValue::from(self.crate_version.as_str()),
            ),
            (
                "workload".to_owned(),
                JsonValue::from(self.workload.as_str()),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_compiler::FeatureSet;
    use dm_sim::TraceMode;
    use dm_workloads::GemmSpec;

    fn workload() -> Workload {
        GemmSpec::new(16, 16, 16).into()
    }

    #[test]
    fn identical_runs_fingerprint_identically() {
        let a = Provenance::stamp(&SystemConfig::default(), workload());
        let b = Provenance::stamp(&SystemConfig::default(), workload());
        assert_eq!(a, b);
        assert_eq!(a.fingerprint.len(), 16);
    }

    #[test]
    fn behavioural_changes_move_the_fingerprint() {
        let base = Provenance::stamp(&SystemConfig::default(), workload());
        let features = Provenance::stamp(
            &SystemConfig::default().with_features(FeatureSet::baseline()),
            workload(),
        );
        assert_ne!(base.fingerprint, features.fingerprint);
        let latency = Provenance::stamp(
            &SystemConfig {
                read_latency: 4,
                ..SystemConfig::default()
            },
            workload(),
        );
        assert_ne!(base.fingerprint, latency.fingerprint);
        let other_workload =
            Provenance::stamp(&SystemConfig::default(), GemmSpec::new(32, 16, 16).into());
        assert_ne!(base.fingerprint, other_workload.fingerprint);
    }

    #[test]
    fn diagnostics_do_not_move_the_fingerprint() {
        let base = Provenance::stamp(&SystemConfig::default(), workload());
        let diagnosed = Provenance::stamp(
            &SystemConfig {
                check_output: false,
                trace: TraceMode::Full,
                flow_events: true,
                time_phases: true,
                fast_forward: false,
                record_fire_cycles: true,
                ..SystemConfig::default()
            },
            workload(),
        );
        assert_eq!(base.fingerprint, diagnosed.fingerprint);
    }

    #[test]
    fn json_embeds_all_fields() {
        let p = Provenance::stamp(&SystemConfig::default(), workload());
        let v = p.to_json();
        assert_eq!(
            v.get("fingerprint").unwrap().as_str().unwrap(),
            p.fingerprint
        );
        assert_eq!(
            v.get("workload").unwrap().as_str().unwrap(),
            "gemm 16x16x16"
        );
        assert!(v.get("crate_version").unwrap().as_str().is_some());
    }
}
