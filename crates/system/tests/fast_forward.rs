//! Differential test for the fast-forward engine: every simulated result
//! must be bit-identical with idle-cycle elision on or off, across the
//! fig.-7 ablation axis and the read-latency sweep where long idle spans
//! actually occur.

use dm_compiler::FeatureSet;
use dm_system::{run_workload, RunReport, SystemConfig};
use dm_workloads::{ConvSpec, GemmSpec, WorkloadData};

/// Compares the full observable surface of two reports: cycle counts,
/// stall taxonomy, memory traffic, per-bank heatmap, and the complete
/// metrics registry (which carries the occupancy/latency histograms and
/// FIFO high-water marks).
fn assert_identical(ff: &RunReport, ls: &RunReport, label: &str) {
    assert_eq!(ff.prepass_cycles, ls.prepass_cycles, "{label}: prepass");
    assert_eq!(ff.compute_cycles, ls.compute_cycles, "{label}: compute");
    assert_eq!(ff.active_cycles, ls.active_cycles, "{label}: active");
    assert_eq!(ff.stalls, ls.stalls, "{label}: stall breakdown");
    assert_eq!(ff.attribution, ls.attribution, "{label}: attribution");
    assert_eq!(ff.blame, ls.blame, "{label}: blame profile");
    assert_eq!(ff.critical, ls.critical, "{label}: critical path");
    assert_eq!(
        ff.critical.to_json().to_json(),
        ls.critical.to_json().to_json(),
        "{label}: critical JSON bytes"
    );
    assert_eq!(
        ff.blame.to_json().to_json(),
        ls.blame.to_json().to_json(),
        "{label}: blame JSON bytes"
    );
    assert_eq!(ff.mem_reads, ls.mem_reads, "{label}: reads");
    assert_eq!(ff.mem_writes, ls.mem_writes, "{label}: writes");
    assert_eq!(ff.conflicts, ls.conflicts, "{label}: conflicts");
    assert_eq!(ff.streamer_stats, ls.streamer_stats, "{label}: streamers");
    assert_eq!(
        ff.per_bank_accesses, ls.per_bank_accesses,
        "{label}: per-bank heatmap"
    );
    assert_eq!(ff.metrics, ls.metrics, "{label}: metric registry");
    assert_eq!(ff.provenance, ls.provenance, "{label}: provenance");
    assert_eq!(ff.checked, ls.checked, "{label}: golden check");
}

#[test]
fn fast_forward_is_bit_identical_across_ablation_and_latency() {
    let workloads = [
        WorkloadData::generate(GemmSpec::new(16, 16, 16).into(), 40),
        WorkloadData::generate(GemmSpec::transposed(16, 16, 16).into(), 41),
        WorkloadData::generate(ConvSpec::new(10, 10, 8, 8, 3, 3, 1).into(), 42),
    ];
    for step in 1..=6 {
        for latency in [1u64, 4, 16] {
            for data in &workloads {
                let config = |fast_forward| SystemConfig {
                    read_latency: latency,
                    fast_forward,
                    ..SystemConfig::default().with_features(FeatureSet::ablation_step(step))
                };
                let label = format!("step {step}, latency {latency}, {}", data.workload);
                let ff = run_workload(&config(true), data)
                    .unwrap_or_else(|e| panic!("{label} (fast-forward): {e}"));
                let ls = run_workload(&config(false), data)
                    .unwrap_or_else(|e| panic!("{label} (lockstep): {e}"));
                assert_identical(&ff, &ls, &label);
            }
        }
    }
}

#[test]
fn traced_runs_match_untraced_fast_forwarded_runs() {
    // Tracing forces lockstep; a traced run and an untraced fast-forwarded
    // run of the same experiment must still agree on everything that is not
    // the trace itself — including every event timestamp being consistent
    // with the elided cycle count (the trace exists only in the traced run,
    // but its final timestamps bound the same compute_cycles).
    let data = WorkloadData::generate(GemmSpec::new(16, 16, 16).into(), 43);
    let base = SystemConfig {
        read_latency: 16,
        ..SystemConfig::default().with_features(FeatureSet::ablation_step(1))
    };
    let ff = run_workload(&base, &data).unwrap();
    let traced = run_workload(
        &SystemConfig {
            trace: dm_sim::TraceMode::Full,
            ..base
        },
        &data,
    )
    .unwrap();
    assert_eq!(ff.compute_cycles, traced.compute_cycles);
    assert_eq!(ff.stalls, traced.stalls);
    assert_eq!(ff.attribution, traced.attribution);
    assert!(ff.traces.is_empty());
    assert!(!traced.traces.is_empty());
}
