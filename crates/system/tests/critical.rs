//! Validation of the critical-path layer against actual re-simulation.
//!
//! Two halves. First, structural invariants over the full ablation ×
//! latency × workload-group grid — these hold in release builds here, not
//! just behind `debug_assert!` in the run loop. Second, the what-if
//! projections: every simulable projection maps to a real configuration
//! change, so we *make* that change, re-simulate, and check the
//! projection's claim — the latency projection lands within 10 % of the
//! actually-simulated latency-1 run where exposed latency dominates, and
//! no committed projection ever predicts a saving that re-simulation
//! contradicts in sign.

use dm_compiler::{BufferDepths, FeatureSet};
use dm_sim::CritClass;
use dm_system::{run_workload, RunReport, SystemConfig};
use dm_workloads::{ConvSpec, GemmSpec, Workload, WorkloadData};

fn groups() -> Vec<WorkloadData> {
    vec![
        WorkloadData::generate(GemmSpec::new(16, 16, 16).into(), 50),
        WorkloadData::generate(GemmSpec::transposed(16, 16, 16).into(), 51),
        WorkloadData::generate(ConvSpec::new(10, 10, 8, 8, 3, 3, 1).into(), 52),
    ]
}

fn config(step: usize, latency: u64) -> SystemConfig {
    SystemConfig {
        read_latency: latency,
        ..SystemConfig::default().with_features(FeatureSet::ablation_step(step))
    }
}

fn run(cfg: &SystemConfig, data: &WorkloadData, label: &str) -> RunReport {
    run_workload(cfg, data).unwrap_or_else(|e| panic!("{label}: {e}"))
}

#[test]
fn path_invariants_hold_across_groups_steps_and_latencies() {
    for step in 1..=6 {
        for latency in [1u64, 4, 16] {
            for data in &groups() {
                let label = format!("step {step}, latency {latency}, {}", data.workload);
                let report = run(&config(step, latency), data, &label);
                let crit = &report.critical;
                let path = crit.path_length();
                let total = report.prepass_cycles + report.compute_cycles;

                // Single-issue in-order: every compute cycle is on the
                // path, no more and no less.
                assert_eq!(path, report.compute_cycles, "{label}: path != compute");
                assert!(path <= total, "{label}: path {path} exceeds total {total}");
                // The path is bounded below by the non-idle work: at least
                // every fired cycle is on it.
                assert!(path >= report.active_cycles, "{label}: path < fires");

                // The per-class composition is exhaustive and refines the
                // stall attribution.
                let sum: u64 = CritClass::ALL.iter().map(|&c| crit.on_path(c)).sum();
                assert_eq!(sum, path, "{label}: composition does not sum to path");
                assert!(
                    crit.conserves(&report.attribution),
                    "{label}: composition does not refine the attribution"
                );
                assert_eq!(crit.read_latency(), latency, "{label}: recorded latency");

                // Projections never overshoot the path and always carry
                // consistent arithmetic.
                for what_if in crit.what_ifs() {
                    assert_eq!(
                        what_if.projected + what_if.delta,
                        path,
                        "{label}: {} arithmetic",
                        what_if.name
                    );
                }
            }
        }
    }
}

#[test]
fn latency_projection_validates_against_actual_resimulation() {
    // The headline what-if: a coupled (step 1) GeMM at read latency 16 is
    // memory-latency bound, and the "read-latency->1" projection must land
    // within 10 % of the compute cycles an actual latency-1 simulation
    // takes. This is the acceptance bar for the projection math — not just
    // sign, magnitude.
    let data = WorkloadData::generate(GemmSpec::new(48, 192, 24).into(), 60);
    let base = run(&config(1, 16), &data, "coupled L16");
    let crit = &base.critical;
    let mem_share = crit.on_path(CritClass::MemLatency) as f64 / crit.path_length().max(1) as f64;
    assert!(
        mem_share > 0.5,
        "precondition: a coupled L16 run must be latency-bound, got {mem_share:.2}"
    );

    let what_if = crit
        .what_ifs()
        .into_iter()
        .find(|w| w.name == "read-latency->1")
        .expect("latency projection is committed");
    assert!(what_if.simulable);

    let actual = run(&config(1, 1), &data, "coupled L1");
    let projected = what_if.projected as f64;
    let observed = actual.compute_cycles as f64;
    let rel_err = (projected - observed).abs() / observed;
    assert!(
        rel_err <= 0.10,
        "latency projection {projected} vs simulated {observed} compute cycles \
         ({:.1}% off, bound 10%)",
        100.0 * rel_err
    );
}

/// Re-simulates the configuration change a simulable what-if names and
/// returns the observed compute cycles.
fn resimulate(name: &str, cfg: &SystemConfig, data: &WorkloadData, label: &str) -> u64 {
    let changed = match name {
        "read-latency->1" => SystemConfig {
            read_latency: 1,
            ..*cfg
        },
        "fifo-depth-2x" => SystemConfig {
            depths: BufferDepths {
                data: cfg.depths.data * 2,
                write_data: cfg.depths.write_data * 2,
                addr: cfg.depths.addr * 2,
            },
            ..*cfg
        },
        other => panic!("no configuration knob for what-if '{other}'"),
    };
    run(&changed, data, label).compute_cycles
}

#[test]
fn simulable_what_ifs_never_predict_a_saving_resimulation_contradicts() {
    // Sign validity: whenever a simulable projection predicts a nonzero
    // saving, actually making the change must not lengthen the run. (The
    // delta itself is an upper bound by design; the sign is the committed
    // contract.)
    let mut exercised = 0u32;
    for step in [1usize, 5, 6] {
        for latency in [1u64, 16] {
            for data in &groups() {
                let label = format!("step {step}, latency {latency}, {}", data.workload);
                let cfg = config(step, latency);
                let base = run(&cfg, data, &label);
                for what_if in base.critical.what_ifs() {
                    if !what_if.simulable || what_if.delta == 0 {
                        continue;
                    }
                    exercised += 1;
                    let observed = resimulate(
                        what_if.name,
                        &cfg,
                        data,
                        &format!("{label} [{}]", what_if.name),
                    );
                    assert!(
                        observed <= base.compute_cycles,
                        "{label}: '{}' predicted a {}-cycle saving but the run \
                         grew from {} to {observed} compute cycles",
                        what_if.name,
                        what_if.delta,
                        base.compute_cycles
                    );
                }
            }
        }
    }
    assert!(
        exercised >= 3,
        "the grid must exercise nonzero simulable projections, got {exercised}"
    );
}

#[test]
fn projections_follow_the_composition_across_the_grid() {
    // Cross-checks the projection table against the composition it is
    // derived from, on every grid point: the latency projection scales
    // exactly with the memory-latency class and the latency itself, and
    // the conflict/fifo projections equal their classes.
    for step in [1usize, 6] {
        for latency in [1u64, 4, 16] {
            let data = WorkloadData::generate(Workload::from(GemmSpec::new(16, 16, 16)), 70);
            let label = format!("step {step}, latency {latency}");
            let report = run(&config(step, latency), &data, &label);
            let crit = &report.critical;
            let mem = crit.on_path(CritClass::MemLatency);
            let by_name = |name: &str| {
                crit.what_ifs()
                    .into_iter()
                    .find(|w| w.name == name)
                    .unwrap_or_else(|| panic!("{label}: missing {name}"))
            };
            let expected = if latency <= 1 {
                0
            } else {
                mem - mem / (2 * latency)
            };
            assert_eq!(
                by_name("read-latency->1").delta,
                expected,
                "{label}: latency delta formula"
            );
            assert_eq!(
                by_name("conflicts-free").delta,
                crit.on_path(CritClass::BankConflict),
                "{label}: conflict delta"
            );
            assert_eq!(
                by_name("fifo-depth-2x").delta,
                crit.on_path(CritClass::FifoCapacity),
                "{label}: fifo delta"
            );
        }
    }
}
