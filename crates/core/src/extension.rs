//! On-the-fly datapath extensions (§III-E, Fig. 2c).
//!
//! Extensions sit between a DataMaestro's FIFO gather point and the
//! accelerator port, cascaded: the output of one feeds the next. Each has an
//! automatically inserted runtime bypass. The paper's evaluation system
//! instantiates two:
//!
//! * **Transposer** — transposes a `rows × cols` element tile inside the
//!   wide word, enabling transposed-GeMM without an explicit transpose pass;
//! * **Broadcaster** — duplicates the wide word across channels, serving
//!   per-output-channel constants (bias, quantization scales) from a single
//!   narrow fetch instead of a materialized full matrix.
//!
//! Extensions are modelled as single-cycle (combinational) transforms on one
//! wide word, matching their hardware cost profile: they change *what* moves
//! through the port, never *when*.

use serde::{Deserialize, Serialize};

use crate::error::ConfigError;

/// A design-time datapath extension descriptor (`DP_ext` in Table II).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ExtensionKind {
    /// Transpose a `rows × cols` tile of `elem_bytes`-sized elements.
    Transposer {
        /// Tile rows at the input.
        rows: usize,
        /// Tile columns at the input.
        cols: usize,
        /// Element size in bytes.
        elem_bytes: usize,
    },
    /// Duplicate the incoming word `factor` times.
    Broadcaster {
        /// Number of copies at the output.
        factor: usize,
    },
}

impl ExtensionKind {
    /// Output width in bytes for a given input width.
    #[must_use]
    pub fn output_width(&self, input_width: usize) -> usize {
        match self {
            ExtensionKind::Transposer { .. } => input_width,
            ExtensionKind::Broadcaster { factor } => input_width * factor,
        }
    }

    /// Validates the extension against the wide-word width it will receive.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError::InvalidParameter`] if the geometry does not
    /// match the width (e.g. a transposer tile that is not exactly one wide
    /// word).
    pub fn validate(&self, input_width: usize) -> Result<(), ConfigError> {
        match self {
            ExtensionKind::Transposer {
                rows,
                cols,
                elem_bytes,
            } => {
                if *rows == 0 || *cols == 0 || *elem_bytes == 0 {
                    return Err(ConfigError::InvalidParameter {
                        parameter: "transposer",
                        reason: "rows, cols and elem_bytes must be non-zero".into(),
                    });
                }
                if rows * cols * elem_bytes != input_width {
                    return Err(ConfigError::InvalidParameter {
                        parameter: "transposer",
                        reason: format!(
                            "tile of {rows}x{cols}x{elem_bytes}B does not fill a {input_width}B word"
                        ),
                    });
                }
                Ok(())
            }
            ExtensionKind::Broadcaster { factor } => {
                if *factor == 0 {
                    return Err(ConfigError::InvalidParameter {
                        parameter: "broadcaster",
                        reason: "factor must be non-zero".into(),
                    });
                }
                Ok(())
            }
        }
    }

    /// Applies the transform to one wide word.
    ///
    /// # Panics
    ///
    /// Panics if the input width does not match the validated geometry.
    #[must_use]
    pub fn apply(&self, input: &[u8]) -> Vec<u8> {
        let mut out = Vec::new();
        self.apply_into(input, &mut out);
        out
    }

    /// Applies the transform, writing the result into `out` (cleared first).
    ///
    /// The buffer retains its capacity across calls, so a warm buffer makes
    /// the transform allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if the input width does not match the validated geometry.
    pub fn apply_into(&self, input: &[u8], out: &mut Vec<u8>) {
        out.clear();
        match self {
            ExtensionKind::Transposer {
                rows,
                cols,
                elem_bytes,
            } => {
                assert_eq!(input.len(), rows * cols * elem_bytes);
                out.resize(input.len(), 0);
                for r in 0..*rows {
                    for c in 0..*cols {
                        let src = (r * cols + c) * elem_bytes;
                        let dst = (c * rows + r) * elem_bytes;
                        out[dst..dst + elem_bytes].copy_from_slice(&input[src..src + elem_bytes]);
                    }
                }
            }
            ExtensionKind::Broadcaster { factor } => {
                out.reserve(input.len() * factor);
                for _ in 0..*factor {
                    out.extend_from_slice(input);
                }
            }
        }
    }

    /// Short name for traces and reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ExtensionKind::Transposer { .. } => "transposer",
            ExtensionKind::Broadcaster { .. } => "broadcaster",
        }
    }
}

impl std::fmt::Display for ExtensionKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExtensionKind::Transposer {
                rows,
                cols,
                elem_bytes,
            } => write!(f, "transposer({rows}x{cols}x{elem_bytes}B)"),
            ExtensionKind::Broadcaster { factor } => write!(f, "broadcaster(x{factor})"),
        }
    }
}

/// A cascade of extensions with per-extension bypass, as instantiated inside
/// one DataMaestro.
///
/// # Examples
///
/// ```
/// use datamaestro::extension::{ExtensionChain, ExtensionKind};
///
/// let chain = ExtensionChain::new(
///     &[ExtensionKind::Broadcaster { factor: 2 }],
///     &[false],
///     4,
/// )?;
/// assert_eq!(chain.output_width(), 8);
/// assert_eq!(chain.process(&[1, 2, 3, 4]), vec![1, 2, 3, 4, 1, 2, 3, 4]);
/// # Ok::<(), datamaestro::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtensionChain {
    stages: Vec<(ExtensionKind, bool)>,
    input_width: usize,
    output_width: usize,
}

impl ExtensionChain {
    /// Builds and validates a cascade.
    ///
    /// `bypass[i]` disables stage `i` at runtime. Missing flags default to
    /// active.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any active stage's geometry mismatches the
    /// width flowing into it.
    pub fn new(
        kinds: &[ExtensionKind],
        bypass: &[bool],
        input_width: usize,
    ) -> Result<Self, ConfigError> {
        let mut width = input_width;
        let mut stages = Vec::with_capacity(kinds.len());
        for (i, kind) in kinds.iter().enumerate() {
            let bypassed = bypass.get(i).copied().unwrap_or(false);
            if !bypassed {
                kind.validate(width)?;
                width = kind.output_width(width);
            }
            stages.push((*kind, bypassed));
        }
        Ok(ExtensionChain {
            stages,
            input_width,
            output_width: width,
        })
    }

    /// Width of wide words entering the chain.
    #[must_use]
    pub fn input_width(&self) -> usize {
        self.input_width
    }

    /// Width of wide words leaving the chain.
    #[must_use]
    pub fn output_width(&self) -> usize {
        self.output_width
    }

    /// Number of stages (including bypassed ones).
    #[must_use]
    pub fn num_stages(&self) -> usize {
        self.stages.len()
    }

    /// Runs one wide word through the cascade.
    ///
    /// Allocates a fresh output; the hot path is
    /// [`process_into`](Self::process_into).
    ///
    /// # Panics
    ///
    /// Panics if the input width differs from the configured width.
    #[must_use]
    pub fn process(&self, input: &[u8]) -> Vec<u8> {
        let mut scratch = ExtensionScratch::default();
        self.process_into(input, &mut scratch).to_vec()
    }

    /// Runs one wide word through the cascade using caller-owned scratch
    /// buffers, avoiding per-word allocation.
    ///
    /// With every stage bypassed (or no stages) the input slice is returned
    /// unchanged — a fully zero-copy path. Otherwise the result lives in
    /// `scratch` until the next call.
    ///
    /// # Panics
    ///
    /// Panics if the input width differs from the configured width.
    pub fn process_into<'a>(&self, input: &'a [u8], scratch: &'a mut ExtensionScratch) -> &'a [u8] {
        assert_eq!(input.len(), self.input_width, "wide word width mismatch");
        let mut active = self.stages.iter().filter(|(_, b)| !b).map(|(k, _)| k);
        let Some(first) = active.next() else {
            return input;
        };
        first.apply_into(input, &mut scratch.next);
        std::mem::swap(&mut scratch.cur, &mut scratch.next);
        for kind in active {
            kind.apply_into(&scratch.cur, &mut scratch.next);
            std::mem::swap(&mut scratch.cur, &mut scratch.next);
        }
        &scratch.cur
    }
}

/// Reusable ping-pong buffers for [`ExtensionChain::process_into`].
///
/// Each active stage writes into one buffer while reading the other; the
/// buffers keep their capacity across wide words, so a streamer processing a
/// long pattern allocates only on the first few words.
#[derive(Debug, Default, Clone)]
pub struct ExtensionScratch {
    cur: Vec<u8>,
    next: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn transposer_transposes_i8_tile() {
        let t = ExtensionKind::Transposer {
            rows: 2,
            cols: 3,
            elem_bytes: 1,
        };
        // [[1,2,3],[4,5,6]] → [[1,4],[2,5],[3,6]]
        assert_eq!(t.apply(&[1, 2, 3, 4, 5, 6]), vec![1, 4, 2, 5, 3, 6]);
    }

    #[test]
    fn transposer_respects_element_size() {
        let t = ExtensionKind::Transposer {
            rows: 2,
            cols: 2,
            elem_bytes: 2,
        };
        // Elements: a=[1,2] b=[3,4] / c=[5,6] d=[7,8] → a c b d.
        assert_eq!(
            t.apply(&[1, 2, 3, 4, 5, 6, 7, 8]),
            vec![1, 2, 5, 6, 3, 4, 7, 8]
        );
    }

    #[test]
    fn square_transpose_is_involution() {
        let t = ExtensionKind::Transposer {
            rows: 8,
            cols: 8,
            elem_bytes: 1,
        };
        let input: Vec<u8> = (0..64).collect();
        assert_eq!(t.apply(&t.apply(&input)), input);
    }

    #[test]
    fn broadcaster_duplicates() {
        let b = ExtensionKind::Broadcaster { factor: 3 };
        assert_eq!(b.apply(&[7, 8]), vec![7, 8, 7, 8, 7, 8]);
        assert_eq!(b.output_width(2), 6);
    }

    #[test]
    fn validation_rejects_bad_geometry() {
        let t = ExtensionKind::Transposer {
            rows: 2,
            cols: 3,
            elem_bytes: 1,
        };
        assert!(t.validate(6).is_ok());
        assert!(t.validate(8).is_err());
        assert!(ExtensionKind::Broadcaster { factor: 0 }
            .validate(4)
            .is_err());
        assert!(ExtensionKind::Transposer {
            rows: 0,
            cols: 3,
            elem_bytes: 1
        }
        .validate(0)
        .is_err());
    }

    #[test]
    fn chain_cascades_widths() {
        let chain = ExtensionChain::new(
            &[
                ExtensionKind::Transposer {
                    rows: 2,
                    cols: 2,
                    elem_bytes: 1,
                },
                ExtensionKind::Broadcaster { factor: 2 },
            ],
            &[],
            4,
        )
        .unwrap();
        assert_eq!(chain.input_width(), 4);
        assert_eq!(chain.output_width(), 8);
        assert_eq!(chain.num_stages(), 2);
        // [[1,2],[3,4]] → transpose [1,3,2,4] → duplicate.
        assert_eq!(chain.process(&[1, 2, 3, 4]), vec![1, 3, 2, 4, 1, 3, 2, 4]);
    }

    #[test]
    fn bypass_skips_stage_and_width() {
        let chain =
            ExtensionChain::new(&[ExtensionKind::Broadcaster { factor: 4 }], &[true], 4).unwrap();
        assert_eq!(chain.output_width(), 4);
        assert_eq!(chain.process(&[9, 9, 9, 9]), vec![9, 9, 9, 9]);
    }

    #[test]
    fn bypassed_stage_geometry_not_validated() {
        // A transposer that would not fit the width is fine while bypassed —
        // the hardware mux routes around it.
        let chain = ExtensionChain::new(
            &[ExtensionKind::Transposer {
                rows: 8,
                cols: 8,
                elem_bytes: 1,
            }],
            &[true],
            4,
        );
        assert!(chain.is_ok());
    }

    #[test]
    fn empty_chain_is_identity() {
        let chain = ExtensionChain::new(&[], &[], 8).unwrap();
        assert_eq!(chain.output_width(), 8);
        assert_eq!(chain.process(&[1; 8]), vec![1; 8]);
    }

    #[test]
    fn process_into_matches_process() {
        let chain = ExtensionChain::new(
            &[
                ExtensionKind::Transposer {
                    rows: 2,
                    cols: 2,
                    elem_bytes: 1,
                },
                ExtensionKind::Broadcaster { factor: 2 },
            ],
            &[],
            4,
        )
        .unwrap();
        let mut scratch = ExtensionScratch::default();
        for word in [[1u8, 2, 3, 4], [9, 8, 7, 6], [0, 0, 1, 1]] {
            let expected = chain.process(&word);
            assert_eq!(chain.process_into(&word, &mut scratch), &expected[..]);
        }
    }

    #[test]
    fn process_into_identity_is_zero_copy() {
        let chain =
            ExtensionChain::new(&[ExtensionKind::Broadcaster { factor: 4 }], &[true], 4).unwrap();
        let input = [5u8; 4];
        let mut scratch = ExtensionScratch::default();
        let out = chain.process_into(&input, &mut scratch);
        assert_eq!(out.as_ptr(), input.as_ptr(), "bypassed chain must not copy");
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn wrong_width_input_panics() {
        let chain = ExtensionChain::new(&[], &[], 8).unwrap();
        let _ = chain.process(&[0; 4]);
    }

    #[test]
    fn display_names() {
        assert_eq!(
            ExtensionKind::Transposer {
                rows: 8,
                cols: 8,
                elem_bytes: 1
            }
            .to_string(),
            "transposer(8x8x1B)"
        );
        assert_eq!(
            ExtensionKind::Broadcaster { factor: 8 }.to_string(),
            "broadcaster(x8)"
        );
    }

    proptest! {
        /// Transposing twice returns the original for arbitrary tiles
        /// (rows ↔ cols swap on the second application).
        #[test]
        fn transpose_involution(
            rows in 1usize..6,
            cols in 1usize..6,
            elem in 1usize..3,
        ) {
            let data: Vec<u8> = (0..rows * cols * elem).map(|i| i as u8).collect();
            let t1 = ExtensionKind::Transposer { rows, cols, elem_bytes: elem };
            let t2 = ExtensionKind::Transposer { rows: cols, cols: rows, elem_bytes: elem };
            prop_assert_eq!(t2.apply(&t1.apply(&data)), data);
        }

        /// Broadcast output is `factor` concatenated copies of the input.
        #[test]
        fn broadcast_copies(
            data in proptest::collection::vec(any::<u8>(), 1..32),
            factor in 1usize..5,
        ) {
            let b = ExtensionKind::Broadcaster { factor };
            let out = b.apply(&data);
            prop_assert_eq!(out.len(), data.len() * factor);
            for chunk in out.chunks(data.len()) {
                prop_assert_eq!(chunk, &data[..]);
            }
        }
    }
}
