//! The read-mode DataMaestro streamer (left half of Fig. 2a).
//!
//! A [`ReadStreamer`] turns scattered memory words into the continuous wide
//! data stream an accelerator port consumes:
//!
//! 1. the temporal AGU emits one temporal address per cycle into per-channel
//!    address buffers (fanned out by the spatial AGU);
//! 2. each channel's MIC issues fine-grained requests independently,
//!    throttled only by its ORM slot reservations;
//! 3. responses land in the per-channel data FIFOs;
//! 4. when *every* channel has its head word, the words are gathered into
//!    one wide word, pushed through the datapath-extension cascade and
//!    handed to the accelerator.
//!
//! With fine-grained prefetch disabled the streamer degrades into a plain
//! data-movement unit: one wide request at a time and no overlap between the
//! memory round-trip and consumption (the ablation baseline ①).

use dm_mem::{
    Addr, AddressRemapper, BankLocation, MemConfig, MemResponse, MemorySubsystem, RequesterId,
};
use dm_sim::{
    BlameLeaf, Counter, Cycle, Instrumented, MetricsRegistry, NextActivity, StableHasher, Trace,
    TraceEventKind, TraceMode,
};
use serde::{Deserialize, Serialize};

use crate::agu::{SpatialAgu, TemporalAgu};
use crate::channel::ReadChannel;
use crate::config::{DesignConfig, RuntimeConfig, StreamerMode};
use crate::error::ConfigError;
use crate::extension::{ExtensionChain, ExtensionScratch};

/// Aggregated statistics for one streamer.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StreamerStats {
    /// Memory requests granted across all channels.
    pub granted: Counter,
    /// Request cycles lost to arbitration (bank conflicts).
    pub retries: Counter,
    /// Wide words delivered to (read) or accepted from (write) the
    /// accelerator.
    pub wide_words: Counter,
    /// Temporal addresses generated.
    pub temporal_addresses: Counter,
}

/// Validates that a runtime pattern is word-aligned and in bounds, returning
/// the constructed remapper.
pub(crate) fn bind_pattern(
    design: &DesignConfig,
    runtime: &RuntimeConfig,
    mem: &MemConfig,
) -> Result<(AddressRemapper, TemporalAgu, SpatialAgu), ConfigError> {
    runtime.validate(design)?;
    let remapper = AddressRemapper::new(mem, runtime.addressing_mode)?;
    let word = mem.bank_width_bytes() as u64;
    // All strides and the base must be word multiples so every generated
    // address is word aligned.
    let aligned = runtime.base.is_multiple_of(word)
        && runtime
            .temporal_strides
            .iter()
            .chain(runtime.spatial_strides.iter())
            .all(|s| s.unsigned_abs() % word == 0);
    if !aligned {
        return Err(ConfigError::UnalignedPattern {
            addr: runtime.base,
            alignment: word,
        });
    }
    let tagu = TemporalAgu::new(
        runtime.base,
        &runtime.temporal_bounds,
        &runtime.temporal_strides,
    );
    let sagu = SpatialAgu::new(design.spatial_bounds(), &runtime.spatial_strides);
    let (t_min, t_max) = tagu.address_range();
    let (s_min, s_max) = sagu.offset_range();
    let min = t_min as i64 + s_min;
    let max = t_max as i64 + s_max + word as i64 - 1;
    let capacity = mem.capacity_bytes();
    if min < 0 || max as u64 >= capacity {
        return Err(ConfigError::PatternOutOfBounds {
            min_addr: min.max(0) as u64,
            max_addr: max as u64,
            capacity,
        });
    }
    Ok((remapper, tagu, sagu))
}

/// A read-mode DataMaestro.
pub struct ReadStreamer {
    name: String,
    remapper: AddressRemapper,
    tagu: TemporalAgu,
    sagu: SpatialAgu,
    channels: Vec<ReadChannel>,
    chain: ExtensionChain,
    /// Requester index of channel 0; channels register contiguously, so a
    /// response's channel is `requester.index() - requester_base` (a direct
    /// route-table lookup instead of a linear scan).
    requester_base: usize,
    /// Reusable gather buffer for [`pop_wide`](Self::pop_wide).
    gather: Vec<u8>,
    /// Reusable extension-cascade buffers for [`pop_wide`](Self::pop_wide).
    ext_scratch: ExtensionScratch,
    fine_grained: bool,
    /// Coarse mode: gate is open while the current wide request may issue.
    coarse_open: bool,
    coarse_started: Vec<bool>,
    stats: StreamerStats,
    trace: Trace,
    /// Whether any channel lost crossbar arbitration in the most recent
    /// grant phase; the system uses this to attribute operand stalls to bank
    /// conflicts rather than plain latency.
    lost_arbitration: bool,
}

impl ReadStreamer {
    /// Builds a read streamer, registering one crossbar requester per
    /// channel.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the design is not read-mode, the runtime
    /// configuration is inconsistent with the design, the pattern is
    /// unaligned or out of bounds, or an extension's geometry mismatches the
    /// wide word.
    pub fn new(
        design: &DesignConfig,
        runtime: &RuntimeConfig,
        mem: &mut MemorySubsystem,
    ) -> Result<Self, ConfigError> {
        if design.mode() != StreamerMode::Read {
            return Err(ConfigError::InvalidParameter {
                parameter: "mode",
                reason: "ReadStreamer requires a read-mode design".into(),
            });
        }
        let mem_cfg = *mem.scratchpad().config();
        let (remapper, tagu, sagu) = bind_pattern(design, runtime, &mem_cfg)?;
        let input_width = design.num_channels() * mem_cfg.bank_width_bytes();
        let chain =
            ExtensionChain::new(design.extensions(), &runtime.extension_bypass, input_width)?;
        let channels = (0..design.num_channels())
            .map(|c| {
                let id = mem.register_requester(format!("{}/ch{c}", design.name()));
                ReadChannel::new(id, design.data_buffer_depth(), design.addr_buffer_depth())
            })
            .collect::<Vec<_>>();
        let n = channels.len();
        let requester_base = channels
            .first()
            .map_or(0, |c: &ReadChannel| c.requester().index());
        Ok(ReadStreamer {
            name: design.name().to_owned(),
            remapper,
            tagu,
            sagu,
            channels,
            chain,
            requester_base,
            gather: Vec::new(),
            ext_scratch: ExtensionScratch::default(),
            fine_grained: design.fine_grained_prefetch(),
            coarse_open: false,
            coarse_started: vec![false; n],
            stats: StreamerStats::default(),
            trace: Trace::new(),
            lost_arbitration: false,
        })
    }

    /// Configures event tracing (disabled by default).
    pub fn set_trace_mode(&mut self, mode: TraceMode) {
        self.trace = mode.build();
    }

    /// Takes the captured event trace, leaving a disabled one behind.
    pub fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.trace)
    }

    /// `true` if any channel lost crossbar arbitration in the most recent
    /// grant phase.
    #[must_use]
    pub fn lost_arbitration(&self) -> bool {
        self.lost_arbitration
    }

    /// Streamer name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Width in bytes of the wide word delivered to the accelerator (after
    /// extensions).
    #[must_use]
    pub fn output_width(&self) -> usize {
        self.chain.output_width()
    }

    /// Requester ids of this streamer's channels, in channel order.
    #[must_use]
    pub fn channel_requesters(&self) -> Vec<RequesterId> {
        self.channels.iter().map(|c| c.requester()).collect()
    }

    /// Phase 1: sample per-channel FIFO occupancy and coarse-mode gating
    /// state (must run before responses are delivered and before the
    /// accelerator pops, so every cycle contributes exactly one occupancy
    /// sample per channel).
    pub fn begin_cycle(&mut self) {
        for channel in &mut self.channels {
            channel.sample_occupancy();
        }
        if self.fine_grained {
            return;
        }
        if !self.coarse_open && self.channels.iter().all(ReadChannel::is_quiescent) {
            self.coarse_open = true;
            self.coarse_started.fill(false);
        }
    }

    /// Phase 2: deliver a memory response belonging to one of this
    /// streamer's channels.
    ///
    /// # Panics
    ///
    /// Panics if the response belongs to no channel of this streamer.
    pub fn accept_response(&mut self, response: MemResponse) {
        let channel = response
            .requester
            .index()
            .checked_sub(self.requester_base)
            .and_then(|c| self.channels.get_mut(c))
            .expect("response routed to wrong streamer");
        channel.handle_response(response);
    }

    /// Phase 4: run the AGU (one temporal address per cycle) and start
    /// channel requests.
    pub fn generate_and_issue(&mut self, mem: &mut MemorySubsystem) {
        // AGU: emit the next temporal address if every channel buffer has
        // room (channels consume the same temporal cadence).
        if !self.tagu.is_done() {
            if self.channels.iter().all(ReadChannel::has_addr_space) {
                if let Some(ta) = self.tagu.next_address() {
                    self.stats.temporal_addresses.inc();
                    for (c, channel) in self.channels.iter_mut().enumerate() {
                        channel.push_addr(self.sagu.channel_address(ta, c));
                    }
                    if let Some(dim) = self.tagu.last_wrap() {
                        self.trace
                            .emit(mem.cycle(), &self.name, TraceEventKind::AguWrap { dim });
                    }
                }
            } else if self.trace.is_enabled() {
                let blocked = self
                    .channels
                    .iter()
                    .position(|c| !c.has_addr_space())
                    .expect("some channel lacks address space");
                self.trace.emit(
                    mem.cycle(),
                    &self.name,
                    TraceEventKind::FifoFull { channel: blocked },
                );
            }
        }
        // RSC: start new requests where allowed, then submit pending ones.
        let remapper = &self.remapper;
        for (c, channel) in self.channels.iter_mut().enumerate() {
            let may_start = self.fine_grained || (self.coarse_open && !self.coarse_started[c]);
            if may_start {
                let started = channel.try_start_request(|addr| map_checked(remapper, addr));
                if started && !self.fine_grained {
                    self.coarse_started[c] = true;
                }
            }
            channel.submit(mem);
        }
        if !self.fine_grained && self.coarse_open && self.coarse_started.iter().all(|&s| s) {
            self.coarse_open = false;
        }
    }

    /// Phase 5: consume the grant flags after crossbar arbitration.
    pub fn handle_grants(&mut self, grants: &[bool]) {
        self.lost_arbitration = false;
        for channel in &mut self.channels {
            let flag = grants[channel.requester().index()];
            let had_pending = channel.has_pending();
            channel.handle_grant(flag);
            if had_pending {
                if flag {
                    self.stats.granted.inc();
                } else {
                    self.stats.retries.inc();
                    self.lost_arbitration = true;
                }
            }
        }
    }

    /// `true` when a full wide word is ready for the accelerator.
    #[must_use]
    pub fn can_pop_wide(&self) -> bool {
        self.channels.iter().all(ReadChannel::has_data)
    }

    /// Walks the dependency chain backwards from a blocked pop and names
    /// the component instance ultimately responsible, for the system's
    /// causal blame profile:
    ///
    /// 1. the streamer lost bank arbitration last grant round → the bank
    ///    the denied request targets;
    /// 2. otherwise the *laggard* (first channel without buffered data,
    ///    matching [`note_consumer_blocked`](Self::note_consumer_blocked))
    ///    is examined: a still-pending request → its target bank; a
    ///    granted in-flight read → the bank serving it (exposed memory
    ///    latency); queued addresses withheld by the coarse-grained sync
    ///    gate → the gate; nothing queued → the AGU's cadence.
    ///
    /// Pure read; called on stalled cycles only (and once per elided span),
    /// so it is off the firing hot path.
    #[must_use]
    pub fn blame_leaf(&self, mem: &MemorySubsystem) -> BlameLeaf {
        if self.lost_arbitration {
            if let Some(bank) = self.channels.iter().find_map(ReadChannel::pending_bank) {
                return BlameLeaf::Bank(bank);
            }
        }
        let Some(idx) = self.channels.iter().position(|ch| !ch.has_data()) else {
            return BlameLeaf::Unattributed;
        };
        let laggard = &self.channels[idx];
        if let Some(bank) = laggard.pending_bank() {
            return BlameLeaf::Bank(bank);
        }
        if laggard.outstanding() > 0 {
            return match mem.oldest_inflight_bank(laggard.requester()) {
                Some(bank) => BlameLeaf::Bank(bank),
                None => BlameLeaf::Unattributed,
            };
        }
        let gated = !self.fine_grained && (!self.coarse_open || self.coarse_started[idx]);
        if laggard.addr_backlog() > 0 && gated {
            return BlameLeaf::Gate;
        }
        BlameLeaf::Agu
    }

    /// Records (into this streamer's trace) that the consumer found the
    /// stream blocked this cycle; the first channel without buffered data
    /// is the laggard holding back the wide word.
    pub fn note_consumer_blocked(&mut self, cycle: Cycle) {
        if !self.trace.is_enabled() {
            return;
        }
        if let Some(channel) = self.channels.iter().position(|ch| !ch.has_data()) {
            self.trace
                .emit(cycle, &self.name, TraceEventKind::FifoEmpty { channel });
        }
    }

    /// Gathers one word from every channel, applies the extension cascade
    /// and returns the accelerator-facing wide word.
    ///
    /// The returned slice borrows internal scratch buffers and is valid
    /// until the next `pop_wide`; callers that need to keep the word copy it
    /// out (`.to_vec()` or into their own buffer). Gathering and the cascade
    /// reuse warm buffers, so steady-state pops are allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if [`can_pop_wide`](Self::can_pop_wide) is false.
    pub fn pop_wide(&mut self) -> &[u8] {
        assert!(self.can_pop_wide(), "wide pop without data in all channels");
        self.gather.clear();
        for channel in &mut self.channels {
            self.gather
                .extend_from_slice(&channel.pop().expect("channel has data"));
        }
        self.stats.wide_words.inc();
        self.chain.process_into(&self.gather, &mut self.ext_scratch)
    }

    /// `true` once the pattern is exhausted and all data has been consumed.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.tagu.is_done() && self.channels.iter().all(ReadChannel::is_drained)
    }

    /// Total wide words this pattern produces.
    #[must_use]
    pub fn total_wide_words(&self) -> u64 {
        self.tagu.total()
    }

    /// Aggregated statistics.
    #[must_use]
    pub fn stats(&self) -> &StreamerStats {
        &self.stats
    }

    /// Peak per-channel FIFO occupancy across channels.
    #[must_use]
    pub fn fifo_high_watermark(&self) -> usize {
        self.channels
            .iter()
            .map(ReadChannel::fifo_high_watermark)
            .max()
            .unwrap_or(0)
    }

    /// Records `span` per-channel occupancy samples at once — the
    /// fast-forward replay of the sampling [`begin_cycle`](Self::begin_cycle)
    /// would have done over a span in which every FIFO is provably frozen.
    pub fn sample_occupancy_span(&mut self, span: u64) {
        for channel in &mut self.channels {
            channel.sample_occupancy_span(span);
        }
    }
}

impl NextActivity for ReadStreamer {
    /// A read streamer can act *this* cycle or not at all: every internal
    /// transition is triggered either by its own queued work (AGU emission,
    /// request start, pending resubmission, coarse-gate movement) or by an
    /// external event — a memory response or an accelerator pop — that the
    /// system accounts for separately. So the horizon is `Some(now)` if any
    /// phase of the streamer's cycle would do more than sample occupancy,
    /// and `None` otherwise.
    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        // Phase 4: the AGU emits whenever every address buffer has room.
        if !self.tagu.is_done() && self.channels.iter().all(ReadChannel::has_addr_space) {
            return Some(now);
        }
        // Phase 4/5: a pending request resubmits every cycle until granted.
        if self.channels.iter().any(ReadChannel::has_pending) {
            return Some(now);
        }
        // Phase 4: a channel may convert a queued address into a request.
        for (c, channel) in self.channels.iter().enumerate() {
            let may_start = self.fine_grained || (self.coarse_open && !self.coarse_started[c]);
            if may_start && channel.can_start_request() {
                return Some(now);
            }
        }
        // Phase 1: the coarse gate would open (all channels quiescent) or —
        // conservatively — close. Either transition mutates gating state, so
        // the cycle is not skippable.
        if !self.fine_grained {
            if !self.coarse_open && self.channels.iter().all(ReadChannel::is_quiescent) {
                return Some(now);
            }
            if self.coarse_open && self.coarse_started.iter().all(|&s| s) {
                return Some(now);
            }
        }
        None
    }

    fn activity_digest(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_u64(self.stats.granted.get());
        h.write_u64(self.stats.retries.get());
        h.write_u64(self.stats.wide_words.get());
        h.write_u64(self.stats.temporal_addresses.get());
        h.write_bool(self.lost_arbitration);
        h.write_bool(self.tagu.is_done());
        h.write_u64(self.tagu.wraps());
        h.write_bool(self.coarse_open);
        for &started in &self.coarse_started {
            h.write_bool(started);
        }
        for channel in &self.channels {
            channel.hash_state(&mut h);
        }
        h.finish()
    }
}

impl Instrumented for ReadStreamer {
    fn register_metrics(&self, registry: &mut MetricsRegistry) {
        registry.set_counter("granted", self.stats.granted.get());
        registry.set_counter("retries", self.stats.retries.get());
        registry.set_counter("wide_words", self.stats.wide_words.get());
        registry.set_counter("temporal_addresses", self.stats.temporal_addresses.get());
        registry.set_counter("agu_wraps", self.tagu.wraps());
        registry.set_counter("fifo_high_watermark", self.fifo_high_watermark() as u64);
        let all_occupancy =
            dm_sim::LatencyHistogram::merged(self.channels.iter().map(ReadChannel::fifo_occupancy));
        registry.set_histogram("fifo_occupancy", &all_occupancy);
        for (c, channel) in self.channels.iter().enumerate() {
            registry.with_scope(&format!("ch{c}"), |r| {
                let stats = channel.stats();
                r.set_counter("granted", stats.granted.get());
                r.set_counter("retries", stats.retries.get());
                r.set_counter("responses", stats.responses.get());
                r.set_counter("fifo_high_watermark", channel.fifo_high_watermark() as u64);
                r.set_histogram("fifo_occupancy", channel.fifo_occupancy());
            });
        }
    }
}

impl std::fmt::Debug for ReadStreamer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReadStreamer")
            .field("name", &self.name)
            .field("channels", &self.channels.len())
            .field("fine_grained", &self.fine_grained)
            .field("stats", &self.stats)
            .finish()
    }
}

/// Maps a validated byte address to its physical location.
///
/// Bounds and alignment were proven at configuration time, so failures here
/// are simulator bugs and panic.
pub(crate) fn map_checked(remapper: &AddressRemapper, addr: u64) -> BankLocation {
    remapper
        .map_byte(Addr::new(addr))
        .expect("pattern address validated at configuration time")
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_mem::AddressingMode;

    fn mem() -> MemorySubsystem {
        MemorySubsystem::new(MemConfig::new(8, 8, 64).unwrap())
    }

    fn design() -> DesignConfig {
        DesignConfig::builder("A", StreamerMode::Read)
            .spatial_bounds([4])
            .temporal_dims(2)
            .build()
            .unwrap()
    }

    fn runtime(base: u64) -> RuntimeConfig {
        RuntimeConfig::builder()
            .base(base)
            .temporal([4], [32])
            .spatial_strides([8])
            .addressing_mode(AddressingMode::FullyInterleaved)
            .build()
    }

    /// Drives the streamer alone for one cycle against the memory.
    fn tick(streamer: &mut ReadStreamer, mem: &mut MemorySubsystem) {
        streamer.begin_cycle();
        for resp in mem.take_responses() {
            streamer.accept_response(resp);
        }
        streamer.generate_and_issue(mem);
        let grants = mem.arbitrate().to_vec();
        streamer.handle_grants(&grants);
    }

    #[test]
    fn streams_the_configured_pattern() {
        let mut mem = mem();
        // Preload: word i (8 bytes) holds value i at every byte.
        let remap =
            AddressRemapper::new(mem.scratchpad().config(), AddressingMode::FullyInterleaved)
                .unwrap();
        for w in 0..64u64 {
            mem.scratchpad_mut()
                .host_write(&remap, Addr::new(w * 8), &[w as u8; 8])
                .unwrap();
        }
        let mut s = ReadStreamer::new(&design(), &runtime(0), &mut mem).unwrap();
        assert_eq!(s.output_width(), 32);
        let mut words = Vec::new();
        for _ in 0..40 {
            tick(&mut s, &mut mem);
            if s.can_pop_wide() {
                words.push(s.pop_wide().to_vec());
            }
            if s.is_done() {
                break;
            }
        }
        assert!(s.is_done());
        assert_eq!(words.len(), 4);
        // Temporal step t starts at word 4t; channels read words 4t..4t+4.
        for (t, word) in words.iter().enumerate() {
            let expected: Vec<u8> = (0..4).flat_map(|c| [(4 * t + c) as u8; 8]).collect();
            assert_eq!(word, &expected, "wide word {t}");
        }
        assert_eq!(s.stats().granted.get(), 16);
        assert_eq!(s.stats().wide_words.get(), 4);
    }

    #[test]
    fn fine_grained_reaches_one_word_per_cycle() {
        let mut mem = mem();
        let d = design();
        // Conflict-free pattern: 4 channels on 4 distinct banks each step.
        let mut s = ReadStreamer::new(&d, &runtime(0), &mut mem).unwrap();
        let mut pops = 0;
        let mut cycles = 0;
        while !s.is_done() && cycles < 100 {
            tick(&mut s, &mut mem);
            cycles += 1;
            if s.can_pop_wide() {
                let _ = s.pop_wide();
                pops += 1;
            }
        }
        assert_eq!(pops, 4);
        // Pipeline fill is ~2 cycles; steady state is 1 word/cycle.
        assert!(cycles <= 8, "took {cycles} cycles for 4 words");
    }

    #[test]
    fn coarse_mode_serializes_round_trips() {
        let mut mem = mem();
        let d = DesignConfig::builder("A", StreamerMode::Read)
            .spatial_bounds([4])
            .temporal_dims(2)
            .fine_grained_prefetch(false)
            .build()
            .unwrap();
        let mut s = ReadStreamer::new(&d, &runtime(0), &mut mem).unwrap();
        let mut pops = 0;
        let mut cycles = 0;
        while !s.is_done() && cycles < 100 {
            tick(&mut s, &mut mem);
            cycles += 1;
            if s.can_pop_wide() {
                let _ = s.pop_wide();
                pops += 1;
            }
        }
        assert_eq!(pops, 4);
        // Coarse mode needs ~2 cycles per word (issue, respond+consume).
        assert!(
            (7..=12).contains(&cycles),
            "coarse mode took {cycles} cycles for 4 words"
        );
    }

    #[test]
    fn rejects_wrong_mode() {
        let mut mem = mem();
        let d = DesignConfig::builder("W", StreamerMode::Write)
            .build()
            .unwrap();
        let err = ReadStreamer::new(&d, &runtime(0), &mut mem).unwrap_err();
        assert!(matches!(err, ConfigError::InvalidParameter { .. }));
    }

    #[test]
    fn rejects_unaligned_pattern() {
        let mut mem = mem();
        let rt = RuntimeConfig::builder()
            .base(4)
            .temporal([4], [32])
            .spatial_strides([8])
            .build();
        let err = ReadStreamer::new(&design(), &rt, &mut mem).unwrap_err();
        assert!(matches!(err, ConfigError::UnalignedPattern { .. }));
    }

    #[test]
    fn rejects_out_of_bounds_pattern() {
        let mut mem = mem();
        let capacity = mem.scratchpad().config().capacity_bytes();
        let err = ReadStreamer::new(&design(), &runtime(capacity - 32), &mut mem).unwrap_err();
        assert!(matches!(err, ConfigError::PatternOutOfBounds { .. }));
    }

    #[test]
    fn trace_and_metrics_capture_streaming() {
        use dm_sim::{TraceEventKind, TraceMode};

        let mut mem = mem();
        let mut s = ReadStreamer::new(&design(), &runtime(0), &mut mem).unwrap();
        s.set_trace_mode(TraceMode::Full);
        let mut cycles = 0;
        while !s.is_done() && cycles < 100 {
            tick(&mut s, &mut mem);
            cycles += 1;
            if s.can_pop_wide() {
                let _ = s.pop_wide();
            }
        }
        assert!(s.is_done());
        let mut reg = dm_sim::MetricsRegistry::new();
        s.register_metrics(&mut reg);
        assert_eq!(reg.get("granted").unwrap().as_f64(), 16.0);
        assert_eq!(reg.get("temporal_addresses").unwrap().as_f64(), 4.0);
        assert!(reg.get("ch3.responses").is_some());
        // The single-dim pattern wraps exactly once, at exhaustion.
        assert_eq!(reg.get("agu_wraps").unwrap().as_f64(), 1.0);
        let trace = s.take_trace();
        assert!(trace
            .iter()
            .any(|e| e.kind == TraceEventKind::AguWrap { dim: 0 }));
    }

    #[test]
    fn horizon_goes_idle_only_when_blocked_on_the_consumer() {
        let mut mem = mem();
        // Shallow FIFOs: the ORM throttles after two in-flight words, so the
        // streamer goes fully inert while blocked on the consumer.
        let d = DesignConfig::builder("A", StreamerMode::Read)
            .spatial_bounds([4])
            .temporal_dims(2)
            .data_buffer_depth(2)
            .build()
            .unwrap();
        let mut s = ReadStreamer::new(&d, &runtime(0), &mut mem).unwrap();
        assert!(
            s.next_activity(mem.cycle()).is_some(),
            "fresh streamer: AGU can emit"
        );
        for _ in 0..50 {
            tick(&mut s, &mut mem);
        }
        // AGU exhausted and FIFOs full: inert until the accelerator pops.
        assert_eq!(s.next_activity(mem.cycle()), None);
        let digest = s.activity_digest();
        tick(&mut s, &mut mem);
        assert_eq!(
            s.activity_digest(),
            digest,
            "an idle-horizon tick must not move observable state"
        );
        let _ = s.pop_wide();
        assert!(
            s.next_activity(mem.cycle()).is_some(),
            "a pop frees an ORM slot; the channel can start a request again"
        );
    }

    #[test]
    fn done_only_after_all_data_consumed() {
        let mut mem = mem();
        let mut s = ReadStreamer::new(&design(), &runtime(0), &mut mem).unwrap();
        for _ in 0..50 {
            tick(&mut s, &mut mem);
        }
        // AGU exhausted but FIFOs full: not done until the accelerator pops.
        assert!(!s.is_done());
        while s.can_pop_wide() {
            let _ = s.pop_wide();
            tick(&mut s, &mut mem);
        }
        for _ in 0..10 {
            tick(&mut s, &mut mem);
            while s.can_pop_wide() {
                let _ = s.pop_wide();
            }
        }
        assert!(s.is_done());
    }
}
