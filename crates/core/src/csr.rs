//! The host-facing CSR programming model.
//!
//! In the paper's evaluation system the RISC-V host programs each
//! DataMaestro's runtime configuration (Table II's runtime half) through
//! memory-mapped CSRs before firing the accelerator. This module defines
//! that register map and the encode/decode between [`RuntimeConfig`] and
//! raw CSR words, so a simulated host can drive streamers exactly the way
//! the real Snitch core does.
//!
//! Register map for a design with `D_t` temporal dims, `D_s` spatial dims
//! and `E` extensions (all 64-bit registers):
//!
//! | index | register |
//! |-------|----------|
//! | 0 | base address |
//! | 1 ..= D_t | temporal bounds (unused outer dims hold 1) |
//! | D_t+1 ..= 2·D_t | temporal strides (two's complement) |
//! | 2·D_t+1 ..= 2·D_t+D_s | spatial strides (two's complement) |
//! | 2·D_t+D_s+1 | addressing-mode select (`R_S`): 0 = FIMA, 1 = NIMA, `g` ≥ 2 = GIMA(g) |
//! | 2·D_t+D_s+2 | extension bypass bitmask (bit `i` bypasses extension `i`) |
//! | 2·D_t+D_s+3 | START (write 1 to launch; reads busy status) |

use dm_mem::AddressingMode;

use crate::config::{DesignConfig, RuntimeConfig};
use crate::error::ConfigError;

/// The CSR register map of one DataMaestro instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CsrMap {
    temporal_dims: usize,
    spatial_dims: usize,
}

impl CsrMap {
    /// Derives the map from a design.
    #[must_use]
    pub fn for_design(design: &DesignConfig) -> Self {
        CsrMap {
            temporal_dims: design.temporal_dims(),
            spatial_dims: design.spatial_dims(),
        }
    }

    /// Index of the base-address register.
    #[must_use]
    pub fn base(&self) -> usize {
        0
    }

    /// Index of temporal bound `d`.
    #[must_use]
    pub fn temporal_bound(&self, d: usize) -> usize {
        1 + d
    }

    /// Index of temporal stride `d`.
    #[must_use]
    pub fn temporal_stride(&self, d: usize) -> usize {
        1 + self.temporal_dims + d
    }

    /// Index of spatial stride `j`.
    #[must_use]
    pub fn spatial_stride(&self, j: usize) -> usize {
        1 + 2 * self.temporal_dims + j
    }

    /// Index of the addressing-mode select register.
    #[must_use]
    pub fn mode_select(&self) -> usize {
        1 + 2 * self.temporal_dims + self.spatial_dims
    }

    /// Index of the extension-bypass bitmask register.
    #[must_use]
    pub fn extension_bypass(&self) -> usize {
        self.mode_select() + 1
    }

    /// Index of the START/status register.
    #[must_use]
    pub fn start(&self) -> usize {
        self.extension_bypass() + 1
    }

    /// Total registers (including START).
    #[must_use]
    pub fn num_csrs(&self) -> usize {
        self.start() + 1
    }

    /// Human-readable register name (for traces).
    #[must_use]
    pub fn name(&self, index: usize) -> String {
        if index == 0 {
            "addr_base".into()
        } else if index <= self.temporal_dims {
            format!("t_bound[{}]", index - 1)
        } else if index <= 2 * self.temporal_dims {
            format!("t_stride[{}]", index - 1 - self.temporal_dims)
        } else if index < self.mode_select() {
            format!("s_stride[{}]", index - 1 - 2 * self.temporal_dims)
        } else if index == self.mode_select() {
            "mode_select".into()
        } else if index == self.extension_bypass() {
            "ext_bypass".into()
        } else if index == self.start() {
            "start".into()
        } else {
            format!("reserved[{index}]")
        }
    }
}

/// Encodes the addressing mode into its `R_S` CSR value.
#[must_use]
pub fn encode_mode(mode: AddressingMode) -> u64 {
    match mode {
        AddressingMode::FullyInterleaved => 0,
        AddressingMode::NonInterleaved => 1,
        AddressingMode::GroupedInterleaved { group_banks } => group_banks as u64,
    }
}

/// Decodes an `R_S` CSR value.
///
/// # Errors
///
/// Rejects group sizes that are not powers of two ≥ 2.
pub fn decode_mode(value: u64) -> Result<AddressingMode, ConfigError> {
    match value {
        0 => Ok(AddressingMode::FullyInterleaved),
        1 => Ok(AddressingMode::NonInterleaved),
        g if g.is_power_of_two() => Ok(AddressingMode::GroupedInterleaved {
            group_banks: g as usize,
        }),
        g => Err(ConfigError::InvalidParameter {
            parameter: "mode_select",
            reason: format!("{g} is not a valid GIMA group size"),
        }),
    }
}

/// Encodes a runtime configuration into the full CSR image (the word the
/// host would write at each index; START is left at 0).
///
/// # Errors
///
/// Returns [`ConfigError`] if the configuration is inconsistent with the
/// design (same checks as [`RuntimeConfig::validate`]).
pub fn encode_runtime(
    design: &DesignConfig,
    runtime: &RuntimeConfig,
) -> Result<Vec<u64>, ConfigError> {
    runtime.validate(design)?;
    let map = CsrMap::for_design(design);
    let mut csrs = vec![0u64; map.num_csrs()];
    csrs[map.base()] = runtime.base;
    for d in 0..design.temporal_dims() {
        csrs[map.temporal_bound(d)] = runtime.temporal_bounds.get(d).copied().unwrap_or(1);
        csrs[map.temporal_stride(d)] = runtime.temporal_strides.get(d).copied().unwrap_or(0) as u64;
    }
    for j in 0..design.spatial_dims() {
        csrs[map.spatial_stride(j)] = runtime.spatial_strides[j] as u64;
    }
    csrs[map.mode_select()] = encode_mode(runtime.addressing_mode);
    let mut bypass = 0u64;
    for (i, &b) in runtime.extension_bypass.iter().enumerate() {
        if b {
            bypass |= 1 << i;
        }
    }
    csrs[map.extension_bypass()] = bypass;
    Ok(csrs)
}

/// Decodes a CSR image back into a runtime configuration.
///
/// Outer temporal dimensions whose bound is 1 and stride is 0 are elided,
/// mirroring how the compiler leaves unused CSRs at their reset values.
///
/// # Errors
///
/// Returns [`ConfigError`] for a short image or an invalid mode value.
pub fn decode_runtime(design: &DesignConfig, csrs: &[u64]) -> Result<RuntimeConfig, ConfigError> {
    let map = CsrMap::for_design(design);
    if csrs.len() < map.num_csrs() {
        return Err(ConfigError::DimensionMismatch {
            what: "csr image",
            expected: map.num_csrs(),
            got: csrs.len(),
        });
    }
    let mut bounds: Vec<u64> = (0..design.temporal_dims())
        .map(|d| csrs[map.temporal_bound(d)])
        .collect();
    let mut strides: Vec<i64> = (0..design.temporal_dims())
        .map(|d| csrs[map.temporal_stride(d)] as i64)
        .collect();
    while bounds.len() > 1 && bounds.last() == Some(&1) && strides.last() == Some(&0) {
        bounds.pop();
        strides.pop();
    }
    let spatial: Vec<i64> = (0..design.spatial_dims())
        .map(|j| csrs[map.spatial_stride(j)] as i64)
        .collect();
    let mode = decode_mode(csrs[map.mode_select()])?;
    let bypass_mask = csrs[map.extension_bypass()];
    let bypass: Vec<bool> = (0..design.extensions().len())
        .map(|i| bypass_mask & (1 << i) != 0)
        .collect();
    let runtime = RuntimeConfig {
        base: csrs[map.base()],
        temporal_bounds: bounds,
        temporal_strides: strides,
        spatial_strides: spatial,
        addressing_mode: mode,
        extension_bypass: bypass,
    };
    runtime.validate(design)?;
    Ok(runtime)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StreamerMode;
    use crate::extension::ExtensionKind;
    use proptest::prelude::*;

    fn design() -> DesignConfig {
        DesignConfig::builder("A", StreamerMode::Read)
            .spatial_bounds([2, 2, 2])
            .temporal_dims(6)
            .extension(ExtensionKind::Transposer {
                rows: 8,
                cols: 8,
                elem_bytes: 1,
            })
            .build()
            .unwrap()
    }

    #[test]
    fn map_indices_are_contiguous_and_named() {
        let map = CsrMap::for_design(&design());
        // 1 base + 6 bounds + 6 strides + 3 spatial + mode + bypass + start.
        assert_eq!(map.num_csrs(), 19);
        assert_eq!(map.name(0), "addr_base");
        assert_eq!(map.name(1), "t_bound[0]");
        assert_eq!(map.name(7), "t_stride[0]");
        assert_eq!(map.name(13), "s_stride[0]");
        assert_eq!(map.name(map.mode_select()), "mode_select");
        assert_eq!(map.name(map.extension_bypass()), "ext_bypass");
        assert_eq!(map.name(map.start()), "start");
    }

    #[test]
    fn mode_encoding_roundtrip() {
        for mode in [
            AddressingMode::FullyInterleaved,
            AddressingMode::NonInterleaved,
            AddressingMode::GroupedInterleaved { group_banks: 8 },
        ] {
            assert_eq!(decode_mode(encode_mode(mode)).unwrap(), mode);
        }
        assert!(decode_mode(6).is_err());
    }

    #[test]
    fn encode_decode_roundtrip_typical_config() {
        let d = design();
        let rt = RuntimeConfig::builder()
            .base(0x4000)
            .temporal([8, 4, 2], [64, 0, 512])
            .spatial_strides([8, 16, 32])
            .addressing_mode(AddressingMode::GroupedInterleaved { group_banks: 8 })
            .extension_bypass([true])
            .build();
        let csrs = encode_runtime(&d, &rt).unwrap();
        let back = decode_runtime(&d, &csrs).unwrap();
        assert_eq!(back.base, rt.base);
        assert_eq!(back.temporal_bounds, rt.temporal_bounds);
        assert_eq!(back.temporal_strides, rt.temporal_strides);
        assert_eq!(back.spatial_strides, rt.spatial_strides);
        assert_eq!(back.addressing_mode, rt.addressing_mode);
        assert_eq!(back.extension_bypass, rt.extension_bypass);
    }

    #[test]
    fn negative_strides_survive_two_complement() {
        let d = design();
        let rt = RuntimeConfig::builder()
            .temporal([4], [-64])
            .base(1024)
            .spatial_strides([8, -16, 32])
            .build();
        let csrs = encode_runtime(&d, &rt).unwrap();
        let back = decode_runtime(&d, &csrs).unwrap();
        assert_eq!(back.temporal_strides, vec![-64]);
        assert_eq!(back.spatial_strides, vec![8, -16, 32]);
    }

    #[test]
    fn short_image_rejected() {
        let d = design();
        assert!(matches!(
            decode_runtime(&d, &[0; 4]),
            Err(ConfigError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn inconsistent_runtime_rejected_at_encode() {
        let d = design();
        let rt = RuntimeConfig::builder()
            .temporal([2; 7], [0; 7]) // more dims than the design has
            .spatial_strides([8, 16, 32])
            .build();
        assert!(encode_runtime(&d, &rt).is_err());
    }

    proptest! {
        /// encode ∘ decode is the identity on valid runtime configurations
        /// (up to elision of trailing unit dimensions).
        #[test]
        fn roundtrip(
            base in (0u64..1 << 20).prop_map(|b| b * 8),
            dims in proptest::collection::vec((1u64..8, -512i64..512), 1..6),
            spatial in proptest::collection::vec(-256i64..256, 3),
            mode_sel in 0usize..3,
            bypass in any::<bool>(),
        ) {
            let d = design();
            let mode = [
                AddressingMode::FullyInterleaved,
                AddressingMode::NonInterleaved,
                AddressingMode::GroupedInterleaved { group_banks: 4 },
            ][mode_sel];
            let rt = RuntimeConfig {
                base,
                temporal_bounds: dims.iter().map(|x| x.0).collect(),
                temporal_strides: dims.iter().map(|x| x.1 * 8).collect(),
                spatial_strides: spatial.iter().map(|s| s * 8).collect(),
                addressing_mode: mode,
                extension_bypass: vec![bypass],
            };
            let csrs = encode_runtime(&d, &rt).unwrap();
            let back = decode_runtime(&d, &csrs).unwrap();
            prop_assert_eq!(back.base, rt.base);
            prop_assert_eq!(back.spatial_strides, rt.spatial_strides);
            prop_assert_eq!(back.addressing_mode, rt.addressing_mode);
            prop_assert_eq!(back.extension_bypass, rt.extension_bypass);
            // Bounds/strides match after normalizing trailing (1, 0) dims.
            let mut nb = rt.temporal_bounds.clone();
            let mut ns = rt.temporal_strides.clone();
            while nb.len() > 1 && nb.last() == Some(&1) && ns.last() == Some(&0) {
                nb.pop();
                ns.pop();
            }
            prop_assert_eq!(back.temporal_bounds, nb);
            prop_assert_eq!(back.temporal_strides, ns);
        }
    }
}
