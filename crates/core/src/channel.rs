//! Per-channel Memory Interface Controllers (§III-C, Fig. 2b).
//!
//! A DataMaestro splits one wide accelerator word across `N_C` independent
//! channels. Each read channel owns a MIC — an Outstanding Request Manager
//! (ORM) that reserves a data-FIFO slot before the Request Side Controller
//! (RSC) may issue, guaranteeing every in-flight response a landing slot —
//! plus the data FIFO itself. Channels run ahead of each other freely; this
//! *fine-grained prefetch* is what hides bank-conflict and latency stalls
//! from the accelerator.

use std::collections::VecDeque;

use dm_mem::{BankLocation, MemOp, MemRequest, MemResponse, MemorySubsystem, RequesterId, Word};
use dm_sim::{Counter, Fifo, LatencyHistogram, ReservedSlot, StableHasher};
use serde::{Deserialize, Serialize};

/// Per-channel event counters.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelStats {
    /// Requests granted by the crossbar.
    pub granted: Counter,
    /// Cycles a request was submitted but lost arbitration (bank conflict).
    pub retries: Counter,
    /// Responses received (read channels only).
    pub responses: Counter,
}

/// A read channel: MIC + data FIFO.
#[derive(Debug)]
pub struct ReadChannel {
    requester: RequesterId,
    fifo: Fifo<Word>,
    addr_queue: VecDeque<u64>,
    addr_capacity: usize,
    /// Request accepted by the RSC but not yet granted by the crossbar.
    pending: Option<(BankLocation, u64)>,
    /// Reserved FIFO slots for the pending + in-flight requests, issue order.
    slots: VecDeque<ReservedSlot>,
    next_tag: u64,
    expected_tag: u64,
    stats: ChannelStats,
    /// Once-per-cycle samples of committed FIFO occupancy (in words).
    occupancy: LatencyHistogram,
}

impl ReadChannel {
    /// Creates a read channel with the given FIFO depth and address-buffer
    /// depth, bound to a registered crossbar requester.
    #[must_use]
    pub fn new(requester: RequesterId, fifo_depth: usize, addr_depth: usize) -> Self {
        ReadChannel {
            requester,
            fifo: Fifo::new(fifo_depth),
            addr_queue: VecDeque::with_capacity(addr_depth),
            addr_capacity: addr_depth,
            pending: None,
            slots: VecDeque::new(),
            next_tag: 0,
            expected_tag: 0,
            stats: ChannelStats::default(),
            occupancy: LatencyHistogram::new(),
        }
    }

    /// The channel's crossbar requester id.
    #[must_use]
    pub fn requester(&self) -> RequesterId {
        self.requester
    }

    /// `true` if the address buffer can take another address.
    #[must_use]
    pub fn has_addr_space(&self) -> bool {
        self.addr_queue.len() < self.addr_capacity
    }

    /// Enqueues a channel address produced by the spatial AGU.
    ///
    /// # Panics
    ///
    /// Panics if the address buffer is full; callers gate on
    /// [`has_addr_space`](Self::has_addr_space).
    pub fn push_addr(&mut self, addr: u64) {
        assert!(self.has_addr_space(), "address buffer overflow");
        self.addr_queue.push_back(addr);
    }

    /// `true` while a request is waiting for a grant.
    #[must_use]
    pub fn has_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// Requests granted but whose responses are still in flight, plus the
    /// pending request if any.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.slots.len()
    }

    /// The bank the pending (not-yet-granted) request targets, if any —
    /// the component the blame walk charges a lost arbitration round to.
    #[must_use]
    pub fn pending_bank(&self) -> Option<usize> {
        self.pending.map(|(loc, _)| loc.bank)
    }

    /// Addresses queued but not yet turned into requests — nonzero while
    /// the coarse-grained sync gate (not the AGU) withholds the channel.
    #[must_use]
    pub fn addr_backlog(&self) -> usize {
        self.addr_queue.len()
    }

    /// `true` if the channel holds no data, no reservations and no pending
    /// or queued work.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.fifo.committed() == 0 && self.pending.is_none() && self.addr_queue.is_empty()
    }

    /// `true` if the channel holds no data and no in-flight requests (its
    /// address queue may still hold future work).
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.fifo.committed() == 0 && self.pending.is_none()
    }

    /// `true` when [`try_start_request`](Self::try_start_request) would
    /// start a request: no request pending, an address queued and an ORM
    /// landing slot reservable. Read-only mirror of that gate, used by the
    /// fast-forward horizon to prove a channel inert.
    #[must_use]
    pub fn can_start_request(&self) -> bool {
        self.pending.is_none() && !self.addr_queue.is_empty() && self.fifo.has_free_slot()
    }

    /// RSC step: if allowed, convert the next queued address into a pending
    /// request, reserving a FIFO slot through the ORM. Returns `true` if a
    /// new request was started.
    pub fn try_start_request(&mut self, map: impl FnOnce(u64) -> BankLocation) -> bool {
        if self.pending.is_some() {
            return false;
        }
        let Some(&addr) = self.addr_queue.front() else {
            return false;
        };
        let Some(slot) = self.fifo.try_reserve() else {
            return false; // ORM throttles: no landing slot available.
        };
        self.addr_queue.pop_front();
        self.slots.push_back(slot);
        let tag = self.next_tag;
        self.next_tag += 1;
        self.pending = Some((map(addr), tag));
        true
    }

    /// Submits the pending request (new or retried) to the crossbar.
    ///
    /// # Panics
    ///
    /// Panics on subsystem protocol violations (unknown requester, double
    /// submission), which indicate simulator bugs.
    pub fn submit(&mut self, mem: &mut MemorySubsystem) {
        if let Some((loc, tag)) = self.pending {
            mem.submit(MemRequest {
                requester: self.requester,
                loc,
                tag,
                op: MemOp::Read,
            })
            .expect("read channel submission accepted");
        }
    }

    /// Consumes the grant flag for this channel after arbitration.
    pub fn handle_grant(&mut self, granted: bool) {
        if self.pending.is_none() {
            return;
        }
        if granted {
            self.pending = None;
            self.stats.granted.inc();
        } else {
            self.stats.retries.inc();
        }
    }

    /// Lands a memory response into the reserved FIFO slot.
    ///
    /// # Panics
    ///
    /// Panics if responses arrive out of order or without a reservation —
    /// both would be simulator bugs given the in-order memory model.
    pub fn handle_response(&mut self, response: MemResponse) {
        assert_eq!(response.requester, self.requester, "misrouted response");
        assert_eq!(
            response.tag, self.expected_tag,
            "read response out of order"
        );
        self.expected_tag += 1;
        let slot = self
            .slots
            .pop_front()
            .expect("response without reserved slot");
        self.fifo.fill_reserved(slot, response.data);
        self.stats.responses.inc();
    }

    /// `true` if a word is ready at the FIFO head.
    #[must_use]
    pub fn has_data(&self) -> bool {
        !self.fifo.is_empty()
    }

    /// Pops the word at the FIFO head.
    #[must_use]
    pub fn pop(&mut self) -> Option<Word> {
        self.fifo.pop()
    }

    /// Channel statistics.
    #[must_use]
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Peak FIFO occupancy observed.
    #[must_use]
    pub fn fifo_high_watermark(&self) -> usize {
        self.fifo.high_watermark()
    }

    /// Records one occupancy sample (committed data words, including
    /// filled-but-blocked slots). The owning streamer calls this once per
    /// simulated cycle, giving a time-weighted occupancy distribution.
    pub fn sample_occupancy(&mut self) {
        self.occupancy.record(self.fifo.committed() as u64);
    }

    /// Records `span` occupancy samples at once. The fast-forward engine
    /// proves the FIFO is frozen across a skipped span, so the replay is
    /// bit-identical to `span` calls to
    /// [`sample_occupancy`](Self::sample_occupancy).
    pub fn sample_occupancy_span(&mut self, span: u64) {
        self.occupancy.record_n(self.fifo.committed() as u64, span);
    }

    /// The sampled occupancy distribution.
    #[must_use]
    pub fn fifo_occupancy(&self) -> &LatencyHistogram {
        &self.occupancy
    }

    /// Folds every piece of channel state the fast-forward engine promises
    /// not to disturb into `hasher` (occupancy samples are excluded: they
    /// are deliberately replayed across a skipped span).
    pub fn hash_state(&self, hasher: &mut StableHasher) {
        hasher.write_usize(self.fifo.committed());
        hasher.write_usize(self.fifo.len());
        hasher.write_usize(self.addr_queue.len());
        hasher.write_bool(self.pending.is_some());
        hasher.write_usize(self.slots.len());
        hasher.write_u64(self.next_tag);
        hasher.write_u64(self.expected_tag);
        hasher.write_u64(self.stats.granted.get());
        hasher.write_u64(self.stats.retries.get());
        hasher.write_u64(self.stats.responses.get());
    }
}

/// A write channel: address/data pairing FIFO plus the write-side MIC.
#[derive(Debug)]
pub struct WriteChannel {
    requester: RequesterId,
    fifo: Fifo<(BankLocation, Word)>,
    addr_queue: VecDeque<u64>,
    addr_capacity: usize,
    stats: ChannelStats,
    /// Once-per-cycle samples of FIFO backlog (in words).
    occupancy: LatencyHistogram,
}

impl WriteChannel {
    /// Creates a write channel.
    #[must_use]
    pub fn new(requester: RequesterId, fifo_depth: usize, addr_depth: usize) -> Self {
        WriteChannel {
            requester,
            fifo: Fifo::new(fifo_depth),
            addr_queue: VecDeque::with_capacity(addr_depth),
            addr_capacity: addr_depth,
            stats: ChannelStats::default(),
            occupancy: LatencyHistogram::new(),
        }
    }

    /// The channel's crossbar requester id.
    #[must_use]
    pub fn requester(&self) -> RequesterId {
        self.requester
    }

    /// `true` if the address buffer can take another address.
    #[must_use]
    pub fn has_addr_space(&self) -> bool {
        self.addr_queue.len() < self.addr_capacity
    }

    /// Enqueues a destination address produced by the AGU.
    ///
    /// # Panics
    ///
    /// Panics if the address buffer is full.
    pub fn push_addr(&mut self, addr: u64) {
        assert!(self.has_addr_space(), "address buffer overflow");
        self.addr_queue.push_back(addr);
    }

    /// `true` if the channel can accept one more data word (needs both a
    /// FIFO slot and a queued destination address).
    #[must_use]
    pub fn can_accept(&self) -> bool {
        self.fifo.has_free_slot() && !self.addr_queue.is_empty()
    }

    /// Accepts one data word, pairing it with the next queued address.
    ///
    /// # Panics
    ///
    /// Panics if [`can_accept`](Self::can_accept) is false.
    pub fn accept(&mut self, data: Word, map: impl FnOnce(u64) -> BankLocation) {
        let addr = self
            .addr_queue
            .pop_front()
            .expect("write accept without queued address");
        let loc = map(addr);
        self.fifo
            .push((loc, data))
            .unwrap_or_else(|_| panic!("write fifo overflow"));
    }

    /// Number of words waiting to drain.
    #[must_use]
    pub fn backlog(&self) -> usize {
        self.fifo.len()
    }

    /// The bank the head (next-to-drain) word targets, if any — the
    /// component the blame walk charges a blocked writeback to.
    #[must_use]
    pub fn head_bank(&self) -> Option<usize> {
        self.fifo.peek().map(|&(loc, _)| loc.bank)
    }

    /// `true` if the channel holds no data and no queued addresses.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.fifo.is_empty() && self.addr_queue.is_empty()
    }

    /// `true` if the channel holds no data (addresses may remain queued).
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.fifo.is_empty()
    }

    /// Submits the head word as a write request, if any.
    ///
    /// # Panics
    ///
    /// Panics on subsystem protocol violations (simulator bugs).
    pub fn submit(&mut self, mem: &mut MemorySubsystem) {
        if let Some(&(loc, data)) = self.fifo.peek() {
            mem.submit(MemRequest {
                requester: self.requester,
                loc,
                tag: 0,
                op: MemOp::Write { data, mask: None },
            })
            .expect("write channel submission accepted");
        }
    }

    /// Consumes the grant flag: a granted write retires the head word.
    pub fn handle_grant(&mut self, granted: bool) {
        if self.fifo.is_empty() {
            return;
        }
        if granted {
            let _ = self.fifo.pop();
            self.stats.granted.inc();
        } else {
            self.stats.retries.inc();
        }
    }

    /// Channel statistics.
    #[must_use]
    pub fn stats(&self) -> &ChannelStats {
        &self.stats
    }

    /// Peak FIFO occupancy observed.
    #[must_use]
    pub fn fifo_high_watermark(&self) -> usize {
        self.fifo.high_watermark()
    }

    /// Records one occupancy sample (backlog words waiting to drain). The
    /// owning streamer calls this once per simulated cycle.
    pub fn sample_occupancy(&mut self) {
        self.occupancy.record(self.fifo.len() as u64);
    }

    /// Records `span` backlog samples at once (fast-forward replay; the
    /// backlog is provably frozen across the span).
    pub fn sample_occupancy_span(&mut self, span: u64) {
        self.occupancy.record_n(self.fifo.len() as u64, span);
    }

    /// The sampled occupancy distribution.
    #[must_use]
    pub fn fifo_occupancy(&self) -> &LatencyHistogram {
        &self.occupancy
    }

    /// Folds every piece of channel state the fast-forward engine promises
    /// not to disturb into `hasher` (occupancy samples excluded; see
    /// [`ReadChannel::hash_state`]).
    pub fn hash_state(&self, hasher: &mut StableHasher) {
        hasher.write_usize(self.fifo.len());
        hasher.write_usize(self.addr_queue.len());
        hasher.write_u64(self.stats.granted.get());
        hasher.write_u64(self.stats.retries.get());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_mem::MemConfig;

    fn mem_with(n: usize) -> (MemorySubsystem, Vec<RequesterId>) {
        let mut mem = MemorySubsystem::new(MemConfig::new(4, 8, 64).unwrap());
        let ids = (0..n)
            .map(|i| mem.register_requester(format!("ch{i}")))
            .collect();
        (mem, ids)
    }

    #[test]
    fn read_channel_full_request_lifecycle() {
        let (mut mem, ids) = mem_with(1);
        mem.scratchpad_mut()
            .write_row_full(BankLocation { bank: 1, row: 0 }, &[42; 8]);
        let mut ch = ReadChannel::new(ids[0], 4, 4);
        ch.push_addr(8); // word 1 → bank 1 under FIMA
        assert!(ch.try_start_request(|a| BankLocation {
            bank: (a / 8 % 4) as usize,
            row: (a / 8 / 4) as usize
        }));
        assert!(ch.has_pending());
        ch.submit(&mut mem);
        let grants = mem.arbitrate().to_vec();
        ch.handle_grant(grants[ids[0].index()]);
        assert!(!ch.has_pending());
        assert_eq!(ch.outstanding(), 1);
        for resp in mem.take_responses() {
            ch.handle_response(resp);
        }
        assert!(ch.has_data());
        assert_eq!(ch.pop().unwrap(), vec![42; 8]);
        assert_eq!(ch.stats().granted.get(), 1);
        assert_eq!(ch.stats().responses.get(), 1);
        assert!(ch.is_drained());
    }

    #[test]
    fn orm_throttles_when_fifo_reserved_out() {
        let (_, ids) = mem_with(1);
        let mut ch = ReadChannel::new(ids[0], 2, 8);
        for i in 0..4 {
            ch.push_addr(i * 8);
        }
        let map = |a: u64| BankLocation {
            bank: (a / 8 % 4) as usize,
            row: 0,
        };
        assert!(ch.try_start_request(map));
        // Pending occupies one reservation; channel can't start another
        // while one is pending…
        assert!(!ch.try_start_request(map));
        // …simulate the grant, then a second can start (second slot)…
        ch.handle_grant(true);
        assert!(ch.try_start_request(map));
        ch.handle_grant(true);
        // …but the third is throttled by the ORM: both slots reserved.
        assert!(!ch.try_start_request(map));
        assert_eq!(ch.outstanding(), 2);
    }

    #[test]
    fn retry_counts_conflicts() {
        let (mut mem, ids) = mem_with(2);
        let mut a = ReadChannel::new(ids[0], 4, 4);
        let mut b = ReadChannel::new(ids[1], 4, 4);
        let map = |_| BankLocation { bank: 0, row: 0 };
        a.push_addr(0);
        b.push_addr(0);
        a.try_start_request(map);
        b.try_start_request(map);
        a.submit(&mut mem);
        b.submit(&mut mem);
        let grants = mem.arbitrate().to_vec();
        a.handle_grant(grants[ids[0].index()]);
        b.handle_grant(grants[ids[1].index()]);
        let retries = a.stats().retries.get() + b.stats().retries.get();
        let granted = a.stats().granted.get() + b.stats().granted.get();
        assert_eq!(retries, 1);
        assert_eq!(granted, 1);
    }

    #[test]
    #[should_panic(expected = "address buffer overflow")]
    fn addr_overflow_panics() {
        let (_, ids) = mem_with(1);
        let mut ch = ReadChannel::new(ids[0], 2, 1);
        ch.push_addr(0);
        ch.push_addr(8);
    }

    #[test]
    fn write_channel_drains_on_grant() {
        let (mut mem, ids) = mem_with(1);
        let mut ch = WriteChannel::new(ids[0], 2, 2);
        ch.push_addr(16);
        assert!(ch.can_accept());
        ch.accept(Word::from_slice(&[7; 8]), |a| BankLocation {
            bank: (a / 8 % 4) as usize,
            row: (a / 8 / 4) as usize,
        });
        assert_eq!(ch.backlog(), 1);
        ch.submit(&mut mem);
        let grants = mem.arbitrate().to_vec();
        ch.handle_grant(grants[ids[0].index()]);
        assert!(ch.is_drained());
        assert_eq!(
            mem.scratchpad().read_row(BankLocation { bank: 2, row: 0 }),
            &[7; 8]
        );
    }

    #[test]
    fn write_channel_needs_addr_and_space() {
        let (_, ids) = mem_with(1);
        let mut ch = WriteChannel::new(ids[0], 1, 2);
        assert!(!ch.can_accept(), "no address queued yet");
        ch.push_addr(0);
        ch.push_addr(8);
        assert!(ch.can_accept());
        ch.accept(Word::from_slice(&[1; 8]), |_| BankLocation {
            bank: 0,
            row: 0,
        });
        assert!(!ch.can_accept(), "fifo full at depth 1");
    }

    #[test]
    fn occupancy_sampling_tracks_fifo_fill() {
        let (mut mem, ids) = mem_with(1);
        let mut ch = ReadChannel::new(ids[0], 4, 4);
        ch.sample_occupancy(); // empty
        ch.push_addr(0);
        let map = |_| BankLocation { bank: 0, row: 0 };
        ch.try_start_request(map);
        ch.submit(&mut mem);
        let grants = mem.arbitrate().to_vec();
        ch.handle_grant(grants[ids[0].index()]);
        for resp in mem.take_responses() {
            ch.handle_response(resp);
        }
        ch.sample_occupancy(); // one committed word
        let occ = ch.fifo_occupancy();
        assert_eq!(occ.count(), 2);
        assert_eq!(occ.min(), 0);
        assert_eq!(occ.max(), 1);

        let mut wch = WriteChannel::new(ids[0], 2, 2);
        wch.sample_occupancy();
        wch.push_addr(0);
        wch.accept(Word::from_slice(&[1; 8]), map);
        wch.sample_occupancy();
        assert_eq!(wch.fifo_occupancy().max(), 1);
    }

    #[test]
    fn write_retry_keeps_head() {
        let (mut mem, ids) = mem_with(2);
        let mut a = WriteChannel::new(ids[0], 2, 2);
        let mut b = WriteChannel::new(ids[1], 2, 2);
        for ch in [&mut a, &mut b] {
            ch.push_addr(0);
            ch.accept(Word::from_slice(&[9; 8]), |_| BankLocation {
                bank: 3,
                row: 1,
            });
        }
        a.submit(&mut mem);
        b.submit(&mut mem);
        let grants = mem.arbitrate().to_vec();
        a.handle_grant(grants[ids[0].index()]);
        b.handle_grant(grants[ids[1].index()]);
        assert_eq!(a.backlog() + b.backlog(), 1, "exactly one retired");
    }
}
