//! Design-time and runtime configuration of a DataMaestro streamer
//! (Table II of the paper).
//!
//! The split mirrors the hardware: *design-time* parameters choose what gets
//! instantiated (channel count, FIFO depths, AGU dimensionality, datapath
//! extensions) and cannot change afterwards; *runtime* parameters are CSR
//! writes the host performs per workload (base address, loop bounds and
//! strides, addressing mode, extension bypasses).

use dm_mem::AddressingMode;
use serde::{Deserialize, Serialize};

use crate::error::ConfigError;
use crate::extension::ExtensionKind;

/// Whether a streamer moves data from memory to the accelerator (read) or
/// back (write). The `Mode_{R/W}` design-time parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StreamerMode {
    /// Memory → accelerator.
    Read,
    /// Accelerator → memory.
    Write,
}

impl std::fmt::Display for StreamerMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StreamerMode::Read => write!(f, "read"),
            StreamerMode::Write => write!(f, "write"),
        }
    }
}

/// Design-time parameters of one DataMaestro instance.
///
/// Construct with [`DesignConfig::builder`]; the defaults match the most
/// common instantiation in the paper's evaluation system (8 channels, depth-8
/// buffers, 3 temporal dimensions, no extensions).
///
/// # Examples
///
/// ```
/// use datamaestro::{DesignConfig, StreamerMode};
///
/// let design = DesignConfig::builder("A", StreamerMode::Read)
///     .spatial_bounds([8])
///     .temporal_dims(6)
///     .data_buffer_depth(16)
///     .build()?;
/// assert_eq!(design.num_channels(), 8);
/// # Ok::<(), datamaestro::ConfigError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DesignConfig {
    name: String,
    mode: StreamerMode,
    spatial_bounds: Vec<usize>,
    temporal_dims: usize,
    addr_buffer_depth: usize,
    data_buffer_depth: usize,
    extensions: Vec<ExtensionKind>,
    fine_grained_prefetch: bool,
}

impl DesignConfig {
    /// Starts building a design configuration.
    #[must_use]
    pub fn builder(name: impl Into<String>, mode: StreamerMode) -> DesignConfigBuilder {
        DesignConfigBuilder {
            name: name.into(),
            mode,
            spatial_bounds: vec![8],
            temporal_dims: 3,
            addr_buffer_depth: 8,
            data_buffer_depth: 8,
            extensions: Vec::new(),
            fine_grained_prefetch: true,
        }
    }

    /// Instance name (used in traces and requester registration).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Read or write mode.
    #[must_use]
    pub fn mode(&self) -> StreamerMode {
        self.mode
    }

    /// Design-time spatial loop bounds `B_s`.
    #[must_use]
    pub fn spatial_bounds(&self) -> &[usize] {
        &self.spatial_bounds
    }

    /// Number of spatial dimensions `D_s`.
    #[must_use]
    pub fn spatial_dims(&self) -> usize {
        self.spatial_bounds.len()
    }

    /// Number of temporal dimensions `D_t`.
    #[must_use]
    pub fn temporal_dims(&self) -> usize {
        self.temporal_dims
    }

    /// Number of memory channels `N_C` (the product of the spatial bounds:
    /// each spatial address is served by its own channel).
    #[must_use]
    pub fn num_channels(&self) -> usize {
        self.spatial_bounds.iter().product()
    }

    /// Address buffer depth `D_ABf` (temporal addresses the AGU may run
    /// ahead).
    #[must_use]
    pub fn addr_buffer_depth(&self) -> usize {
        self.addr_buffer_depth
    }

    /// Per-channel data FIFO depth `D_DBf`.
    #[must_use]
    pub fn data_buffer_depth(&self) -> usize {
        self.data_buffer_depth
    }

    /// Instantiated datapath extensions `DP_ext`, in cascade order.
    #[must_use]
    pub fn extensions(&self) -> &[ExtensionKind] {
        &self.extensions
    }

    /// Whether the MICs issue channels independently (fine-grained prefetch,
    /// §III-C). With this off the streamer degrades to a plain
    /// one-wide-request-at-a-time data movement unit — the paper's ablation
    /// baseline ①.
    #[must_use]
    pub fn fine_grained_prefetch(&self) -> bool {
        self.fine_grained_prefetch
    }
}

/// Builder for [`DesignConfig`].
#[derive(Debug, Clone)]
pub struct DesignConfigBuilder {
    name: String,
    mode: StreamerMode,
    spatial_bounds: Vec<usize>,
    temporal_dims: usize,
    addr_buffer_depth: usize,
    data_buffer_depth: usize,
    extensions: Vec<ExtensionKind>,
    fine_grained_prefetch: bool,
}

impl DesignConfigBuilder {
    /// Sets the spatial loop bounds `B_s` (their product is the channel
    /// count).
    #[must_use]
    pub fn spatial_bounds(mut self, bounds: impl IntoIterator<Item = usize>) -> Self {
        self.spatial_bounds = bounds.into_iter().collect();
        self
    }

    /// Sets the number of temporal dimensions `D_t`.
    #[must_use]
    pub fn temporal_dims(mut self, dims: usize) -> Self {
        self.temporal_dims = dims;
        self
    }

    /// Sets the address buffer depth `D_ABf`.
    #[must_use]
    pub fn addr_buffer_depth(mut self, depth: usize) -> Self {
        self.addr_buffer_depth = depth;
        self
    }

    /// Sets the per-channel data FIFO depth `D_DBf`.
    #[must_use]
    pub fn data_buffer_depth(mut self, depth: usize) -> Self {
        self.data_buffer_depth = depth;
        self
    }

    /// Appends a datapath extension to the cascade.
    #[must_use]
    pub fn extension(mut self, ext: ExtensionKind) -> Self {
        self.extensions.push(ext);
        self
    }

    /// Enables or disables fine-grained (per-channel independent) prefetch.
    #[must_use]
    pub fn fine_grained_prefetch(mut self, enabled: bool) -> Self {
        self.fine_grained_prefetch = enabled;
        self
    }

    /// Validates and builds the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when a bound is zero, the temporal dimension
    /// count is zero, or a buffer depth is zero.
    pub fn build(self) -> Result<DesignConfig, ConfigError> {
        if self.spatial_bounds.is_empty() || self.spatial_bounds.contains(&0) {
            return Err(ConfigError::ZeroBound {
                what: "spatial bounds",
            });
        }
        if self.temporal_dims == 0 {
            return Err(ConfigError::InvalidParameter {
                parameter: "temporal_dims",
                reason: "at least one temporal dimension is required".into(),
            });
        }
        if self.addr_buffer_depth == 0 {
            return Err(ConfigError::InvalidParameter {
                parameter: "addr_buffer_depth",
                reason: "buffer depth must be non-zero".into(),
            });
        }
        if self.data_buffer_depth == 0 {
            return Err(ConfigError::InvalidParameter {
                parameter: "data_buffer_depth",
                reason: "buffer depth must be non-zero".into(),
            });
        }
        Ok(DesignConfig {
            name: self.name,
            mode: self.mode,
            spatial_bounds: self.spatial_bounds,
            temporal_dims: self.temporal_dims,
            addr_buffer_depth: self.addr_buffer_depth,
            data_buffer_depth: self.data_buffer_depth,
            extensions: self.extensions,
            fine_grained_prefetch: self.fine_grained_prefetch,
        })
    }
}

/// Runtime (per-workload) configuration of a DataMaestro instance: the CSR
/// values the host writes before firing the accelerator.
///
/// # Examples
///
/// ```
/// use datamaestro::RuntimeConfig;
/// use dm_mem::AddressingMode;
///
/// let rt = RuntimeConfig::builder()
///     .base(0x1000)
///     .temporal(
///         [8, 4, 4],      // bounds, innermost first
///         [64, 0, 2048],  // byte strides
///     )
///     .spatial_strides([8])
///     .addressing_mode(AddressingMode::FullyInterleaved)
///     .build();
/// assert_eq!(rt.total_temporal_steps(), 128);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RuntimeConfig {
    /// Base byte address `Addr_B`.
    pub base: u64,
    /// Temporal loop bounds `B_t`, innermost dimension first.
    pub temporal_bounds: Vec<u64>,
    /// Temporal byte strides `S_t`, innermost dimension first (signed:
    /// descending walks are legal affine patterns).
    pub temporal_strides: Vec<i64>,
    /// Spatial byte strides `S_s`, one per spatial dimension.
    pub spatial_strides: Vec<i64>,
    /// Addressing mode selection `R_S`.
    pub addressing_mode: AddressingMode,
    /// Per-extension bypass flags (`true` = bypass). Missing entries default
    /// to *not* bypassed.
    pub extension_bypass: Vec<bool>,
}

impl RuntimeConfig {
    /// Starts building a runtime configuration.
    #[must_use]
    pub fn builder() -> RuntimeConfigBuilder {
        RuntimeConfigBuilder {
            config: RuntimeConfig {
                base: 0,
                temporal_bounds: vec![1],
                temporal_strides: vec![0],
                spatial_strides: vec![8],
                addressing_mode: AddressingMode::FullyInterleaved,
                extension_bypass: Vec::new(),
            },
        }
    }

    /// Total number of temporal steps (product of the bounds).
    ///
    /// # Panics
    ///
    /// Panics if the product overflows `u64`;
    /// [`validate`](Self::validate) rejects such nests with
    /// [`ConfigError::PatternTooLarge`] before they reach the AGU.
    #[must_use]
    pub fn total_temporal_steps(&self) -> u64 {
        self.checked_total_temporal_steps()
            .expect("temporal bound product overflows u64 (rejected by validate)")
    }

    /// Total number of temporal steps, or `None` when the product of the
    /// bounds overflows `u64` (a nest that could never complete).
    #[must_use]
    pub fn checked_total_temporal_steps(&self) -> Option<u64> {
        self.temporal_bounds
            .iter()
            .try_fold(1u64, |acc, &bound| acc.checked_mul(bound))
    }

    /// Validates this runtime configuration against a design.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when list lengths do not match the design's
    /// dimensionality, a temporal bound is zero, or the temporal bound
    /// product overflows `u64`. (Runtime dimensionality
    /// may be *smaller* than the design's `D_t`: unused outer dimensions are
    /// simply left at bound 1, exactly as unused CSRs are in hardware.)
    pub fn validate(&self, design: &DesignConfig) -> Result<(), ConfigError> {
        if self.temporal_bounds.len() != self.temporal_strides.len() {
            return Err(ConfigError::DimensionMismatch {
                what: "temporal strides",
                expected: self.temporal_bounds.len(),
                got: self.temporal_strides.len(),
            });
        }
        if self.temporal_bounds.len() > design.temporal_dims() {
            return Err(ConfigError::DimensionMismatch {
                what: "temporal bounds",
                expected: design.temporal_dims(),
                got: self.temporal_bounds.len(),
            });
        }
        if self.temporal_bounds.contains(&0) {
            return Err(ConfigError::ZeroBound {
                what: "temporal bounds",
            });
        }
        if self.checked_total_temporal_steps().is_none() {
            return Err(ConfigError::PatternTooLarge {
                what: "temporal bounds",
            });
        }
        if self.spatial_strides.len() != design.spatial_dims() {
            return Err(ConfigError::DimensionMismatch {
                what: "spatial strides",
                expected: design.spatial_dims(),
                got: self.spatial_strides.len(),
            });
        }
        if self.extension_bypass.len() > design.extensions().len() {
            return Err(ConfigError::DimensionMismatch {
                what: "extension bypass flags",
                expected: design.extensions().len(),
                got: self.extension_bypass.len(),
            });
        }
        Ok(())
    }

    /// Returns whether extension `idx` is bypassed under this configuration.
    #[must_use]
    pub fn is_bypassed(&self, idx: usize) -> bool {
        self.extension_bypass.get(idx).copied().unwrap_or(false)
    }
}

/// Builder for [`RuntimeConfig`].
#[derive(Debug, Clone)]
pub struct RuntimeConfigBuilder {
    config: RuntimeConfig,
}

impl RuntimeConfigBuilder {
    /// Sets the base byte address.
    #[must_use]
    pub fn base(mut self, base: u64) -> Self {
        self.config.base = base;
        self
    }

    /// Sets the temporal bounds and strides together (innermost first).
    #[must_use]
    pub fn temporal(
        mut self,
        bounds: impl IntoIterator<Item = u64>,
        strides: impl IntoIterator<Item = i64>,
    ) -> Self {
        self.config.temporal_bounds = bounds.into_iter().collect();
        self.config.temporal_strides = strides.into_iter().collect();
        self
    }

    /// Sets the spatial strides.
    #[must_use]
    pub fn spatial_strides(mut self, strides: impl IntoIterator<Item = i64>) -> Self {
        self.config.spatial_strides = strides.into_iter().collect();
        self
    }

    /// Sets the addressing mode (`R_S`).
    #[must_use]
    pub fn addressing_mode(mut self, mode: AddressingMode) -> Self {
        self.config.addressing_mode = mode;
        self
    }

    /// Sets per-extension bypass flags.
    #[must_use]
    pub fn extension_bypass(mut self, bypass: impl IntoIterator<Item = bool>) -> Self {
        self.config.extension_bypass = bypass.into_iter().collect();
        self
    }

    /// Finishes building. Structural validation happens when the config is
    /// bound to a design via [`RuntimeConfig::validate`].
    #[must_use]
    pub fn build(self) -> RuntimeConfig {
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design() -> DesignConfig {
        DesignConfig::builder("A", StreamerMode::Read)
            .spatial_bounds([2, 4])
            .temporal_dims(3)
            .build()
            .unwrap()
    }

    #[test]
    fn channel_count_is_spatial_product() {
        assert_eq!(design().num_channels(), 8);
        assert_eq!(design().spatial_dims(), 2);
    }

    #[test]
    fn builder_defaults_are_sane() {
        let d = DesignConfig::builder("x", StreamerMode::Write)
            .build()
            .unwrap();
        assert_eq!(d.num_channels(), 8);
        assert_eq!(d.temporal_dims(), 3);
        assert_eq!(d.addr_buffer_depth(), 8);
        assert_eq!(d.data_buffer_depth(), 8);
        assert!(d.extensions().is_empty());
        assert!(d.fine_grained_prefetch());
        assert_eq!(d.mode(), StreamerMode::Write);
        assert_eq!(d.name(), "x");
    }

    #[test]
    fn zero_parameters_rejected() {
        assert!(DesignConfig::builder("x", StreamerMode::Read)
            .spatial_bounds([4, 0])
            .build()
            .is_err());
        assert!(DesignConfig::builder("x", StreamerMode::Read)
            .temporal_dims(0)
            .build()
            .is_err());
        assert!(DesignConfig::builder("x", StreamerMode::Read)
            .addr_buffer_depth(0)
            .build()
            .is_err());
        assert!(DesignConfig::builder("x", StreamerMode::Read)
            .data_buffer_depth(0)
            .build()
            .is_err());
    }

    #[test]
    fn runtime_validation_checks_lengths() {
        let d = design();
        let ok = RuntimeConfig::builder()
            .temporal([4, 4], [8, 32])
            .spatial_strides([8, 16])
            .build();
        assert!(ok.validate(&d).is_ok());

        let too_many_dims = RuntimeConfig::builder()
            .temporal([2, 2, 2, 2], [1, 2, 3, 4])
            .spatial_strides([8, 16])
            .build();
        assert!(matches!(
            too_many_dims.validate(&d),
            Err(ConfigError::DimensionMismatch { .. })
        ));

        let mismatched_strides = RuntimeConfig::builder()
            .temporal([2, 2], [1])
            .spatial_strides([8, 16])
            .build();
        assert!(mismatched_strides.validate(&d).is_err());

        let zero_bound = RuntimeConfig::builder()
            .temporal([2, 0], [1, 1])
            .spatial_strides([8, 16])
            .build();
        assert!(matches!(
            zero_bound.validate(&d),
            Err(ConfigError::ZeroBound { .. })
        ));

        let wrong_spatial = RuntimeConfig::builder()
            .temporal([2], [1])
            .spatial_strides([8])
            .build();
        assert!(wrong_spatial.validate(&d).is_err());
    }

    #[test]
    fn fewer_runtime_dims_than_design_is_allowed() {
        let d = design();
        let rt = RuntimeConfig::builder()
            .temporal([16], [64])
            .spatial_strides([8, 16])
            .build();
        assert!(rt.validate(&d).is_ok());
        assert_eq!(rt.total_temporal_steps(), 16);
    }

    #[test]
    fn bypass_defaults_to_false() {
        let rt = RuntimeConfig::builder().build();
        assert!(!rt.is_bypassed(0));
        let rt = RuntimeConfig::builder().extension_bypass([true]).build();
        assert!(rt.is_bypassed(0));
        assert!(!rt.is_bypassed(1));
    }

    #[test]
    fn total_steps_is_bound_product() {
        let rt = RuntimeConfig::builder()
            .temporal([3, 5, 2], [1, 1, 1])
            .build();
        assert_eq!(rt.total_temporal_steps(), 30);
    }

    #[test]
    fn overflowing_nest_is_rejected_not_wrapped() {
        // 2^32 · 2^32 · 2 overflows u64; an unchecked product would wrap to
        // zero and make the AGU report itself done before the first step.
        let rt = RuntimeConfig::builder()
            .temporal([1 << 32, 1 << 32, 2], [1, 1, 1])
            .spatial_strides([8, 16])
            .build();
        assert_eq!(rt.checked_total_temporal_steps(), None);
        assert!(matches!(
            rt.validate(&design()),
            Err(ConfigError::PatternTooLarge {
                what: "temporal bounds"
            })
        ));
        // A maximal-but-representable nest still validates.
        let rt = RuntimeConfig::builder()
            .temporal([1 << 32, 1 << 31], [1, 1])
            .spatial_strides([8, 16])
            .build();
        assert_eq!(rt.checked_total_temporal_steps(), Some(1 << 63));
        assert!(rt.validate(&design()).is_ok());
    }

    #[test]
    fn mode_display() {
        assert_eq!(StreamerMode::Read.to_string(), "read");
        assert_eq!(StreamerMode::Write.to_string(), "write");
    }
}
