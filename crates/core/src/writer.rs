//! The write-mode DataMaestro streamer (right half of Fig. 2a).
//!
//! A [`WriteStreamer`] is the mirror image of the read path: the accelerator
//! pushes wide words; the extension cascade (if any) transforms them; the
//! word is split across the per-channel FIFOs, each paired with a
//! destination address from the AGU; the channel MICs drain the FIFOs
//! through the crossbar, retrying on bank conflicts.

use dm_mem::{MemorySubsystem, RequesterId, Word};
use dm_sim::{
    BlameLeaf, Cycle, Instrumented, MetricsRegistry, NextActivity, StableHasher, Trace,
    TraceEventKind, TraceMode,
};

use crate::agu::{SpatialAgu, TemporalAgu};
use crate::channel::WriteChannel;
use crate::config::{DesignConfig, RuntimeConfig, StreamerMode};
use crate::error::ConfigError;
use crate::extension::{ExtensionChain, ExtensionScratch};
use crate::reader::{bind_pattern, map_checked, StreamerStats};
use dm_mem::AddressRemapper;

/// A write-mode DataMaestro.
pub struct WriteStreamer {
    name: String,
    remapper: AddressRemapper,
    tagu: TemporalAgu,
    sagu: SpatialAgu,
    channels: Vec<WriteChannel>,
    chain: ExtensionChain,
    /// Reusable extension-cascade buffers for [`push_wide`](Self::push_wide).
    ext_scratch: ExtensionScratch,
    word_bytes: usize,
    fine_grained: bool,
    stats: StreamerStats,
    trace: Trace,
    /// Whether any channel lost crossbar arbitration in the most recent
    /// grant phase (see [`ReadStreamer::lost_arbitration`]).
    ///
    /// [`ReadStreamer::lost_arbitration`]: crate::ReadStreamer::lost_arbitration
    lost_arbitration: bool,
}

impl WriteStreamer {
    /// Builds a write streamer, registering one crossbar requester per
    /// channel.
    ///
    /// The extension cascade (rarely used on the write side) is applied to
    /// the accelerator's pushed word *before* the channel split, so the
    /// cascade's output width must equal `N_C × W_B`.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] under the same conditions as
    /// [`ReadStreamer::new`](crate::ReadStreamer::new), plus a width
    /// mismatch between the cascade output and the channel array.
    pub fn new(
        design: &DesignConfig,
        runtime: &RuntimeConfig,
        mem: &mut MemorySubsystem,
    ) -> Result<Self, ConfigError> {
        if design.mode() != StreamerMode::Write {
            return Err(ConfigError::InvalidParameter {
                parameter: "mode",
                reason: "WriteStreamer requires a write-mode design".into(),
            });
        }
        let mem_cfg = *mem.scratchpad().config();
        let (remapper, tagu, sagu) = bind_pattern(design, runtime, &mem_cfg)?;
        let word_bytes = mem_cfg.bank_width_bytes();
        let split_width = design.num_channels() * word_bytes;
        // The accelerator-facing width is whatever the chain maps onto the
        // split width; with no extensions the two coincide.
        let mut input_width = split_width;
        for kind in design.extensions().iter().rev() {
            // Invert the width transform stage by stage (exact division is
            // validated by the chain below).
            input_width /= kind.output_width(1);
        }
        let chain =
            ExtensionChain::new(design.extensions(), &runtime.extension_bypass, input_width)?;
        if chain.output_width() != split_width {
            return Err(ConfigError::InvalidParameter {
                parameter: "extensions",
                reason: format!(
                    "write cascade produces {}B, channel array needs {split_width}B",
                    chain.output_width()
                ),
            });
        }
        let channels = (0..design.num_channels())
            .map(|c| {
                let id = mem.register_requester(format!("{}/ch{c}", design.name()));
                WriteChannel::new(id, design.data_buffer_depth(), design.addr_buffer_depth())
            })
            .collect();
        Ok(WriteStreamer {
            name: design.name().to_owned(),
            remapper,
            tagu,
            sagu,
            channels,
            chain,
            ext_scratch: ExtensionScratch::default(),
            word_bytes,
            fine_grained: design.fine_grained_prefetch(),
            stats: StreamerStats::default(),
            trace: Trace::new(),
            lost_arbitration: false,
        })
    }

    /// Configures event tracing (disabled by default).
    pub fn set_trace_mode(&mut self, mode: TraceMode) {
        self.trace = mode.build();
    }

    /// Takes the captured event trace, leaving a disabled one behind.
    pub fn take_trace(&mut self) -> Trace {
        std::mem::take(&mut self.trace)
    }

    /// `true` if any channel lost crossbar arbitration in the most recent
    /// grant phase.
    #[must_use]
    pub fn lost_arbitration(&self) -> bool {
        self.lost_arbitration
    }

    /// Streamer name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Width in bytes of the wide word the accelerator pushes.
    #[must_use]
    pub fn input_width(&self) -> usize {
        self.chain.input_width()
    }

    /// Requester ids of this streamer's channels, in channel order.
    #[must_use]
    pub fn channel_requesters(&self) -> Vec<RequesterId> {
        self.channels.iter().map(|c| c.requester()).collect()
    }

    /// Phase 4: run the AGU and drain channel FIFOs into the crossbar.
    ///
    /// Runs exactly once per simulated cycle, so it doubles as the sampling
    /// point for per-channel FIFO occupancy (the write side has no
    /// `begin_cycle` phase).
    pub fn generate_and_issue(&mut self, mem: &mut MemorySubsystem) {
        for channel in &mut self.channels {
            channel.sample_occupancy();
        }
        if !self.tagu.is_done() {
            if self.channels.iter().all(WriteChannel::has_addr_space) {
                if let Some(ta) = self.tagu.next_address() {
                    self.stats.temporal_addresses.inc();
                    for (c, channel) in self.channels.iter_mut().enumerate() {
                        channel.push_addr(self.sagu.channel_address(ta, c));
                    }
                    if let Some(dim) = self.tagu.last_wrap() {
                        self.trace
                            .emit(mem.cycle(), &self.name, TraceEventKind::AguWrap { dim });
                    }
                }
            } else if self.trace.is_enabled() {
                let blocked = self
                    .channels
                    .iter()
                    .position(|c| !c.has_addr_space())
                    .expect("some channel lacks address space");
                self.trace.emit(
                    mem.cycle(),
                    &self.name,
                    TraceEventKind::FifoFull { channel: blocked },
                );
            }
        }
        for channel in &mut self.channels {
            channel.submit(mem);
        }
    }

    /// Phase 5: consume grant flags; granted writes retire.
    pub fn handle_grants(&mut self, grants: &[bool]) {
        self.lost_arbitration = false;
        for channel in &mut self.channels {
            let had_backlog = channel.backlog() > 0;
            let flag = grants[channel.requester().index()];
            channel.handle_grant(flag);
            if had_backlog {
                if flag {
                    self.stats.granted.inc();
                } else {
                    self.stats.retries.inc();
                    self.lost_arbitration = true;
                }
            }
        }
    }

    /// `true` when the accelerator may push one wide word this cycle.
    ///
    /// In coarse (non-fine-grained) mode a push additionally requires every
    /// channel FIFO to be empty — the plain data-movement unit holds exactly
    /// one wide word at a time.
    #[must_use]
    pub fn can_push_wide(&self) -> bool {
        let ready = self.channels.iter().all(WriteChannel::can_accept);
        if self.fine_grained {
            ready
        } else {
            ready && self.channels.iter().all(WriteChannel::is_quiescent)
        }
    }

    /// Walks the dependency chain backwards from a blocked push and names
    /// the component instance responsible, mirroring
    /// [`ReadStreamer::blame_leaf`](crate::ReadStreamer::blame_leaf):
    ///
    /// 1. lost bank arbitration → the bank the head word is draining to;
    /// 2. otherwise the first channel that cannot accept: a full FIFO →
    ///    the bank its head word targets; an empty address queue → the
    ///    AGU's cadence;
    /// 3. coarse mode blocked on quiescence (all channels individually
    ///    ready) → the bank still draining the previous wide word.
    ///
    /// Pure read; called on stalled cycles only.
    #[must_use]
    pub fn blame_leaf(&self) -> BlameLeaf {
        if self.lost_arbitration {
            if let Some(bank) = self.channels.iter().find_map(WriteChannel::head_bank) {
                return BlameLeaf::Bank(bank);
            }
        }
        if let Some(laggard) = self.channels.iter().find(|ch| !ch.can_accept()) {
            return match laggard.head_bank() {
                Some(bank) => BlameLeaf::Bank(bank),
                None => BlameLeaf::Agu,
            };
        }
        // Coarse-mode quiescence gate: every channel could accept, but the
        // previous wide word has not fully drained yet.
        if let Some(bank) = self.channels.iter().find_map(WriteChannel::head_bank) {
            return BlameLeaf::Bank(bank);
        }
        BlameLeaf::Unattributed
    }

    /// Records (into this streamer's trace) that the producer found the
    /// stream blocked this cycle; the first channel unable to accept a word
    /// is the laggard (coarse-grained mode may also block on quiescence,
    /// in which case no single channel is at fault and nothing is emitted).
    pub fn note_producer_blocked(&mut self, cycle: Cycle) {
        if !self.trace.is_enabled() {
            return;
        }
        if let Some(channel) = self.channels.iter().position(|ch| !ch.can_accept()) {
            self.trace
                .emit(cycle, &self.name, TraceEventKind::FifoFull { channel });
        }
    }

    /// Accepts one wide word from the accelerator.
    ///
    /// # Panics
    ///
    /// Panics if [`can_push_wide`](Self::can_push_wide) is false or the word
    /// width mismatches.
    pub fn push_wide(&mut self, word: &[u8]) {
        assert!(self.can_push_wide(), "wide push without space");
        let transformed = self.chain.process_into(word, &mut self.ext_scratch);
        assert_eq!(
            transformed.len(),
            self.channels.len() * self.word_bytes,
            "cascade output width mismatch"
        );
        let remapper = &self.remapper;
        for (channel, chunk) in self
            .channels
            .iter_mut()
            .zip(transformed.chunks(self.word_bytes))
        {
            channel.accept(Word::from_slice(chunk), |addr| map_checked(remapper, addr));
        }
        self.stats.wide_words.inc();
    }

    /// `true` once the pattern is exhausted and every word has drained to
    /// memory.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.tagu.is_done() && self.channels.iter().all(WriteChannel::is_drained)
    }

    /// `true` when all accepted data has drained (pattern may be unfinished).
    #[must_use]
    pub fn is_quiescent(&self) -> bool {
        self.channels.iter().all(WriteChannel::is_quiescent)
    }

    /// Total wide words this pattern absorbs.
    #[must_use]
    pub fn total_wide_words(&self) -> u64 {
        self.tagu.total()
    }

    /// Aggregated statistics.
    #[must_use]
    pub fn stats(&self) -> &StreamerStats {
        &self.stats
    }

    /// Peak per-channel FIFO occupancy observed.
    #[must_use]
    pub fn fifo_high_watermark(&self) -> usize {
        self.channels
            .iter()
            .map(WriteChannel::fifo_high_watermark)
            .max()
            .unwrap_or(0)
    }

    /// Records `span` per-channel backlog samples at once — the fast-forward
    /// replay of the sampling [`generate_and_issue`](Self::generate_and_issue)
    /// would have done over a span in which every FIFO is provably frozen.
    pub fn sample_occupancy_span(&mut self, span: u64) {
        for channel in &mut self.channels {
            channel.sample_occupancy_span(span);
        }
    }
}

impl NextActivity for WriteStreamer {
    /// Like the read side, a write streamer is either active *now* or inert
    /// until the accelerator pushes a word: with no backlog there is nothing
    /// to submit, and with full address buffers (or an exhausted pattern)
    /// the AGU has nothing to do.
    fn next_activity(&self, now: Cycle) -> Option<Cycle> {
        if !self.tagu.is_done() && self.channels.iter().all(WriteChannel::has_addr_space) {
            return Some(now);
        }
        if self.channels.iter().any(|c| c.backlog() > 0) {
            return Some(now);
        }
        None
    }

    fn activity_digest(&self) -> u64 {
        let mut h = StableHasher::new();
        h.write_u64(self.stats.granted.get());
        h.write_u64(self.stats.retries.get());
        h.write_u64(self.stats.wide_words.get());
        h.write_u64(self.stats.temporal_addresses.get());
        h.write_bool(self.lost_arbitration);
        h.write_bool(self.tagu.is_done());
        h.write_u64(self.tagu.wraps());
        for channel in &self.channels {
            channel.hash_state(&mut h);
        }
        h.finish()
    }
}

impl Instrumented for WriteStreamer {
    fn register_metrics(&self, registry: &mut MetricsRegistry) {
        registry.set_counter("granted", self.stats.granted.get());
        registry.set_counter("retries", self.stats.retries.get());
        registry.set_counter("wide_words", self.stats.wide_words.get());
        registry.set_counter("temporal_addresses", self.stats.temporal_addresses.get());
        registry.set_counter("agu_wraps", self.tagu.wraps());
        registry.set_counter("fifo_high_watermark", self.fifo_high_watermark() as u64);
        let all_occupancy = dm_sim::LatencyHistogram::merged(
            self.channels.iter().map(WriteChannel::fifo_occupancy),
        );
        registry.set_histogram("fifo_occupancy", &all_occupancy);
        for (c, channel) in self.channels.iter().enumerate() {
            registry.with_scope(&format!("ch{c}"), |r| {
                let stats = channel.stats();
                r.set_counter("granted", stats.granted.get());
                r.set_counter("retries", stats.retries.get());
                r.set_counter("fifo_high_watermark", channel.fifo_high_watermark() as u64);
                r.set_histogram("fifo_occupancy", channel.fifo_occupancy());
            });
        }
    }
}

impl std::fmt::Debug for WriteStreamer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WriteStreamer")
            .field("name", &self.name)
            .field("channels", &self.channels.len())
            .field("fine_grained", &self.fine_grained)
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_mem::{Addr, AddressingMode, MemConfig};

    fn mem() -> MemorySubsystem {
        MemorySubsystem::new(MemConfig::new(8, 8, 64).unwrap())
    }

    fn design() -> DesignConfig {
        DesignConfig::builder("D", StreamerMode::Write)
            .spatial_bounds([4])
            .temporal_dims(2)
            .build()
            .unwrap()
    }

    fn runtime() -> RuntimeConfig {
        RuntimeConfig::builder()
            .base(0)
            .temporal([4], [32])
            .spatial_strides([8])
            .addressing_mode(AddressingMode::FullyInterleaved)
            .build()
    }

    fn tick(s: &mut WriteStreamer, mem: &mut MemorySubsystem) {
        s.generate_and_issue(mem);
        let grants = mem.arbitrate().to_vec();
        s.handle_grants(&grants);
    }

    #[test]
    fn writes_land_at_patterned_addresses() {
        let mut mem = mem();
        let mut s = WriteStreamer::new(&design(), &runtime(), &mut mem).unwrap();
        assert_eq!(s.input_width(), 32);
        let mut pushed = 0u8;
        let mut cycles = 0;
        while !s.is_done() && cycles < 100 {
            // Generate addresses first so can_push_wide sees them.
            if pushed < 4 && s.can_push_wide() {
                let word: Vec<u8> = (0..32).map(|i| pushed * 32 + i).collect();
                s.push_wide(&word);
                pushed += 1;
            }
            tick(&mut s, &mut mem);
            cycles += 1;
        }
        assert!(s.is_done(), "writer drained");
        let remap =
            AddressRemapper::new(mem.scratchpad().config(), AddressingMode::FullyInterleaved)
                .unwrap();
        let out = mem.scratchpad().host_read(&remap, Addr::ZERO, 128).unwrap();
        let expected: Vec<u8> = (0..128).map(|i| i as u8).collect();
        assert_eq!(out, expected);
        assert_eq!(s.stats().granted.get(), 16);
        assert_eq!(s.stats().wide_words.get(), 4);
    }

    #[test]
    fn cannot_push_before_addresses_generated() {
        let mut mem = mem();
        let s = WriteStreamer::new(&design(), &runtime(), &mut mem).unwrap();
        assert!(!s.can_push_wide(), "no addresses queued yet");
    }

    #[test]
    fn coarse_mode_holds_one_word() {
        let mut mem = mem();
        let d = DesignConfig::builder("D", StreamerMode::Write)
            .spatial_bounds([4])
            .temporal_dims(2)
            .fine_grained_prefetch(false)
            .build()
            .unwrap();
        let mut s = WriteStreamer::new(&d, &runtime(), &mut mem).unwrap();
        // Prime the address queues.
        tick(&mut s, &mut mem);
        assert!(s.can_push_wide());
        s.push_wide(&[0; 32]);
        // Before draining, a second push is refused in coarse mode.
        assert!(!s.can_push_wide());
        tick(&mut s, &mut mem);
        assert!(s.can_push_wide(), "drained; next word may enter");
    }

    #[test]
    fn rejects_wrong_mode() {
        let mut mem = mem();
        let d = DesignConfig::builder("A", StreamerMode::Read)
            .build()
            .unwrap();
        assert!(WriteStreamer::new(&d, &runtime(), &mut mem).is_err());
    }

    #[test]
    fn write_conflicts_retry_until_drained() {
        let mut mem = mem();
        // All four channels write to the same bank: spatial stride equals
        // the full-rotation stride under FIMA (8 banks × 8 B).
        let rt = RuntimeConfig::builder()
            .base(0)
            .temporal([2], [8])
            .spatial_strides([64])
            .build();
        let mut s = WriteStreamer::new(&design(), &rt, &mut mem).unwrap();
        let mut cycles = 0;
        while !s.is_done() && cycles < 50 {
            if s.can_push_wide() {
                s.push_wide(&[1; 32]);
            }
            tick(&mut s, &mut mem);
            cycles += 1;
        }
        assert!(s.is_done());
        assert!(s.stats().retries.get() > 0, "conflicts occurred");
        assert_eq!(s.stats().granted.get(), 8);
        // Each temporal step's four words serialize through one bank, so the
        // busiest bank needs four grant cycles.
        assert!(cycles >= 5, "took only {cycles} cycles");
    }
}
