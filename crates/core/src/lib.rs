//! # DataMaestro — a versatile data streaming engine (simulated)
//!
//! This crate is the core of a Rust reproduction of *DataMaestro: A
//! Versatile and Efficient Data Streaming Engine Bringing Decoupled Memory
//! Access To Dataflow Accelerators* (DAC 2025). It models, at cycle level,
//! the paper's streaming engine:
//!
//! * an **N-dimensional affine AGU** ([`agu`]) with the paper's dual-counter
//!   microarchitecture: programmable temporal loop nests plus a
//!   multi-channel spatial fan-out (§III-B);
//! * per-channel **Memory Interface Controllers** with outstanding-request
//!   management for fine-grained prefetch ([`channel`], §III-C);
//! * **read and write streamers** ([`ReadStreamer`], [`WriteStreamer`])
//!   gathering channel FIFOs into wide accelerator words and back (Fig. 2);
//! * cascadable **datapath extensions** — Transposer and Broadcaster — with
//!   runtime bypass ([`extension`], §III-E);
//! * the **design-time / runtime configuration split** of Table II
//!   ([`DesignConfig`], [`RuntimeConfig`]).
//!
//! Addressing-mode remapping (§III-D) lives in the [`dm_mem`] crate and is
//! selected per streamer through [`RuntimeConfig::addressing_mode`].
//!
//! # Examples
//!
//! Stream four 32-byte wide words out of a banked scratchpad:
//!
//! ```
//! use datamaestro::{DesignConfig, ReadStreamer, RuntimeConfig, StreamerMode};
//! use dm_mem::{Addr, AddressRemapper, AddressingMode, MemConfig, MemorySubsystem};
//!
//! let mem_cfg = MemConfig::new(8, 8, 64)?;
//! let mut mem = MemorySubsystem::new(mem_cfg);
//! // Preload 128 bytes of ascending values.
//! let view = AddressRemapper::new(&mem_cfg, AddressingMode::FullyInterleaved)?;
//! let data: Vec<u8> = (0..128).map(|i| i as u8).collect();
//! mem.scratchpad_mut().host_write(&view, Addr::ZERO, &data)?;
//!
//! let design = DesignConfig::builder("A", StreamerMode::Read)
//!     .spatial_bounds([4])
//!     .temporal_dims(1)
//!     .build()?;
//! let runtime = RuntimeConfig::builder()
//!     .temporal([4], [32])
//!     .spatial_strides([8])
//!     .build();
//! let mut streamer = ReadStreamer::new(&design, &runtime, &mut mem)?;
//!
//! let mut words = Vec::new();
//! while !streamer.is_done() {
//!     streamer.begin_cycle();
//!     for resp in mem.take_responses() {
//!         streamer.accept_response(resp);
//!     }
//!     if streamer.can_pop_wide() {
//!         words.push(streamer.pop_wide().to_vec());
//!     }
//!     streamer.generate_and_issue(&mut mem);
//!     let grants = mem.arbitrate().to_vec();
//!     streamer.handle_grants(&grants);
//! }
//! assert_eq!(words.len(), 4);
//! assert_eq!(words[0], data[0..32]);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

// The cycle kernel lives here: performance lints are errors, not hints.

pub mod agu;
pub mod channel;
pub mod config;
pub mod csr;
pub mod error;
pub mod extension;
pub mod reader;
pub mod writer;

pub use config::{
    DesignConfig, DesignConfigBuilder, RuntimeConfig, RuntimeConfigBuilder, StreamerMode,
};
pub use csr::{decode_runtime, encode_runtime, CsrMap};
pub use error::ConfigError;
pub use extension::{ExtensionChain, ExtensionKind, ExtensionScratch};
pub use reader::{ReadStreamer, StreamerStats};
pub use writer::WriteStreamer;
