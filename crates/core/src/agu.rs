//! The N-dimensional affine Address Generation Unit (§III-B, Figs. 2d and 4).
//!
//! Address generation follows the nested-loop form of Fig. 4(a):
//!
//! ```text
//! for t_{Dt-1} in 0..B_t[Dt-1]:
//!   ...
//!     for t_0 in 0..B_t[0]:
//!       TA = Addr_B + Σ_d t_d · S_t[d]            // temporal address
//!       for each channel (s_0, …, s_{Ds-1}):
//!         SA = TA + Σ_j s_j · S_s[j]              // spatial addresses
//! ```
//!
//! A naive implementation would divide/modulo a flat counter into loop
//! indices and multiply them by strides every cycle. The hardware instead
//! uses the paper's *dual-counter* structure per dimension: a bound counter
//! holding the loop index and a stride counter accumulating the running
//! offset (incremented by `S_t[d]` on step, cleared on wrap). The software
//! model mirrors this — producing the next temporal address is O(1)
//! amortized with only additions, which is also what makes the simulator
//! fast. A naive reference ([`naive_temporal_addresses`]) is retained for
//! differential testing and the ablation bench.

use serde::{Deserialize, Serialize};

/// The temporal half of the AGU: walks the runtime loop nest and emits one
/// temporal address (byte address) per step.
///
/// # Examples
///
/// ```
/// use datamaestro::agu::TemporalAgu;
///
/// // Fig. 4(b): GeMM A-operand pattern, innermost k (stride 64), then n
/// // (reuse: stride 0), then m (stride 128).
/// let mut agu = TemporalAgu::new(0x0, &[2, 2, 2], &[64, 0, 128]);
/// let addrs: Vec<u64> = std::iter::from_fn(|| agu.next_address()).collect();
/// assert_eq!(addrs, vec![0, 64, 0, 64, 128, 192, 128, 192]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TemporalAgu {
    base: i64,
    bounds: Vec<u64>,
    strides: Vec<i64>,
    /// Bound counters (loop indices), innermost first.
    indices: Vec<u64>,
    /// Stride counters (running offsets), innermost first.
    offsets: Vec<i64>,
    produced: u64,
    total: u64,
    /// Outermost dimension wrapped by the most recent
    /// [`next_address`](Self::next_address) call, if any.
    last_wrap: Option<usize>,
    /// Total dimension wraps since construction or reset.
    wraps: u64,
}

impl TemporalAgu {
    /// Creates a temporal AGU over the given loop nest (innermost first).
    ///
    /// # Panics
    ///
    /// Panics if `bounds` and `strides` differ in length, any bound is
    /// zero, or the bound product overflows `u64` (a silent wrap would
    /// corrupt `total` and the `is_done` check); configurations are
    /// validated upstream by
    /// [`RuntimeConfig::validate`](crate::RuntimeConfig::validate), which
    /// reports these as [`ConfigError`](crate::ConfigError) instead.
    #[must_use]
    pub fn new(base: u64, bounds: &[u64], strides: &[i64]) -> Self {
        assert_eq!(bounds.len(), strides.len(), "bounds/strides mismatch");
        assert!(!bounds.contains(&0), "zero temporal bound");
        let total = bounds
            .iter()
            .try_fold(1u64, |acc, &bound| acc.checked_mul(bound))
            .expect("temporal bound product overflows u64");
        TemporalAgu {
            base: base as i64,
            bounds: bounds.to_vec(),
            strides: strides.to_vec(),
            indices: vec![0; bounds.len()],
            offsets: vec![0; bounds.len()],
            produced: 0,
            total,
            last_wrap: None,
            wraps: 0,
        }
    }

    /// Emits the next temporal address, or `None` when the loop nest is
    /// exhausted.
    pub fn next_address(&mut self) -> Option<u64> {
        if self.produced == self.total {
            return None;
        }
        let addr = self.base + self.offsets.iter().sum::<i64>();
        debug_assert!(addr >= 0, "negative temporal address generated");
        self.produced += 1;
        // Dual-counter increment with carry, innermost dimension first.
        self.last_wrap = None;
        for d in 0..self.bounds.len() {
            self.indices[d] += 1;
            if self.indices[d] < self.bounds[d] {
                self.offsets[d] += self.strides[d];
                break;
            }
            self.indices[d] = 0;
            self.offsets[d] = 0;
            self.last_wrap = Some(d);
            self.wraps += 1;
        }
        Some(addr as u64)
    }

    /// The outermost dimension the most recent [`next_address`](Self::next_address) call
    /// wrapped (carried past its bound), or `None` if it only stepped.
    #[must_use]
    pub fn last_wrap(&self) -> Option<usize> {
        self.last_wrap
    }

    /// Total dimension wraps observed since construction or
    /// [`reset`](Self::reset).
    #[must_use]
    pub fn wraps(&self) -> u64 {
        self.wraps
    }

    /// Addresses produced so far.
    #[must_use]
    pub fn produced(&self) -> u64 {
        self.produced
    }

    /// Total addresses this nest will produce.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// `true` once every address has been emitted.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.produced == self.total
    }

    /// Restarts the loop nest from the beginning.
    pub fn reset(&mut self) {
        self.indices.fill(0);
        self.offsets.fill(0);
        self.produced = 0;
        self.last_wrap = None;
        self.wraps = 0;
    }

    /// The smallest and largest byte addresses this pattern will emit,
    /// computed without iterating (per-dimension extremes are independent
    /// for affine patterns).
    #[must_use]
    pub fn address_range(&self) -> (u64, u64) {
        let mut min = self.base;
        let mut max = self.base;
        for (bound, stride) in self.bounds.iter().zip(&self.strides) {
            let reach = *stride * (*bound as i64 - 1);
            if reach < 0 {
                min += reach;
            } else {
                max += reach;
            }
        }
        assert!(min >= 0, "pattern reaches a negative address");
        (min as u64, max as u64)
    }
}

/// The spatial half of the AGU: a fixed set of per-channel offsets derived
/// from the design-time spatial bounds and the runtime spatial strides.
///
/// Channel `c`'s mixed-radix digits over the spatial bounds select its
/// offset: `offset(c) = Σ_j digit_j(c) · S_s[j]`.
///
/// # Examples
///
/// ```
/// use datamaestro::agu::SpatialAgu;
///
/// // 2×2 spatial unrolling with strides 8 (inner) and 256 (outer).
/// let agu = SpatialAgu::new(&[2, 2], &[8, 256]);
/// assert_eq!(agu.offsets(), &[0, 8, 256, 264]);
/// assert_eq!(agu.channel_address(100, 3), 364);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpatialAgu {
    offsets: Vec<i64>,
}

impl SpatialAgu {
    /// Creates a spatial AGU.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` and `strides` differ in length or a bound is zero.
    #[must_use]
    pub fn new(bounds: &[usize], strides: &[i64]) -> Self {
        assert_eq!(bounds.len(), strides.len(), "bounds/strides mismatch");
        assert!(!bounds.contains(&0), "zero spatial bound");
        let channels: usize = bounds.iter().product();
        let mut offsets = Vec::with_capacity(channels);
        for c in 0..channels {
            let mut rem = c;
            let mut offset = 0i64;
            for (bound, stride) in bounds.iter().zip(strides) {
                let digit = (rem % bound) as i64;
                rem /= bound;
                offset += digit * stride;
            }
            offsets.push(offset);
        }
        SpatialAgu { offsets }
    }

    /// Number of channels (product of the spatial bounds).
    #[must_use]
    pub fn num_channels(&self) -> usize {
        self.offsets.len()
    }

    /// The per-channel byte offsets.
    #[must_use]
    pub fn offsets(&self) -> &[i64] {
        &self.offsets
    }

    /// The address channel `c` accesses for a given temporal address.
    ///
    /// # Panics
    ///
    /// Panics if the result would be negative or `channel` is out of range.
    #[must_use]
    pub fn channel_address(&self, temporal: u64, channel: usize) -> u64 {
        let addr = temporal as i64 + self.offsets[channel];
        assert!(addr >= 0, "negative spatial address");
        addr as u64
    }

    /// The smallest and largest offsets across channels.
    #[must_use]
    pub fn offset_range(&self) -> (i64, i64) {
        let min = self.offsets.iter().copied().min().unwrap_or(0);
        let max = self.offsets.iter().copied().max().unwrap_or(0);
        (min, max)
    }
}

/// Reference implementation: materializes the full temporal address sequence
/// with explicit index arithmetic (divide/multiply), as a naive AGU would.
///
/// Used for differential testing of [`TemporalAgu`] and as the baseline in
/// the AGU micro-benchmark (the paper's argument for the dual-counter
/// structure).
#[must_use]
pub fn naive_temporal_addresses(base: u64, bounds: &[u64], strides: &[i64]) -> Vec<u64> {
    let total = bounds
        .iter()
        .try_fold(1u64, |acc, &bound| acc.checked_mul(bound))
        .expect("temporal bound product overflows u64");
    let mut out = Vec::with_capacity(total as usize);
    for flat in 0..total {
        let mut rem = flat;
        let mut addr = base as i64;
        for (bound, stride) in bounds.iter().zip(strides) {
            let idx = rem % bound;
            rem /= bound;
            addr += idx as i64 * stride;
        }
        out.push(addr as u64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fig4_example_sequence() {
        // The paper's Fig. 4(c): M=N=K=4 GeMM on a 2×2×2 PE array.
        // A-operand temporal addresses, tile = 2×2 int8 = 4 bytes.
        // Loops (inner→outer): k (bound 2, stride 4), n (bound 2, stride 0),
        // m (bound 2, stride 8).
        let mut agu = TemporalAgu::new(0, &[2, 2, 2], &[4, 0, 8]);
        let seq: Vec<u64> = std::iter::from_fn(|| agu.next_address()).collect();
        assert_eq!(seq, vec![0, 4, 0, 4, 8, 12, 8, 12]);
        assert!(agu.is_done());
        assert_eq!(agu.next_address(), None);
    }

    #[test]
    fn single_dimension_walk() {
        let mut agu = TemporalAgu::new(100, &[4], &[8]);
        let seq: Vec<u64> = std::iter::from_fn(|| agu.next_address()).collect();
        assert_eq!(seq, vec![100, 108, 116, 124]);
    }

    #[test]
    fn negative_strides_walk_backwards() {
        let mut agu = TemporalAgu::new(24, &[4], &[-8]);
        let seq: Vec<u64> = std::iter::from_fn(|| agu.next_address()).collect();
        assert_eq!(seq, vec![24, 16, 8, 0]);
        assert_eq!(agu.address_range(), (0, 24));
    }

    #[test]
    fn reset_replays_sequence() {
        let mut agu = TemporalAgu::new(0, &[3, 2], &[1, 10]);
        let first: Vec<u64> = std::iter::from_fn(|| agu.next_address()).collect();
        agu.reset();
        let second: Vec<u64> = std::iter::from_fn(|| agu.next_address()).collect();
        assert_eq!(first, second);
        assert_eq!(first, vec![0, 1, 2, 10, 11, 12]);
    }

    #[test]
    fn progress_accounting() {
        let mut agu = TemporalAgu::new(0, &[2, 2], &[1, 2]);
        assert_eq!(agu.total(), 4);
        assert_eq!(agu.produced(), 0);
        agu.next_address();
        assert_eq!(agu.produced(), 1);
        assert!(!agu.is_done());
    }

    #[test]
    fn wrap_tracking_reports_carries() {
        // 2×2 nest: the inner dim wraps on every second step.
        let mut agu = TemporalAgu::new(0, &[2, 2], &[4, 16]);
        assert_eq!(agu.last_wrap(), None);
        agu.next_address();
        assert_eq!(agu.last_wrap(), None, "first step only increments");
        agu.next_address();
        assert_eq!(agu.last_wrap(), Some(0), "inner bound reached: carry");
        agu.next_address();
        assert_eq!(agu.last_wrap(), None);
        agu.next_address();
        assert_eq!(agu.last_wrap(), Some(1), "both dims wrap at exhaustion");
        // Wrap count: dim0 wrapped twice, dim1 once.
        assert_eq!(agu.wraps(), 3);
        agu.reset();
        assert_eq!(agu.wraps(), 0);
        assert_eq!(agu.last_wrap(), None);
    }

    #[test]
    fn address_range_mixed_signs() {
        let agu = TemporalAgu::new(1000, &[4, 3], &[-8, 100]);
        // min = 1000 - 8*3 = 976; max = 1000 + 100*2 = 1200.
        assert_eq!(agu.address_range(), (976, 1200));
    }

    #[test]
    fn spatial_single_dim() {
        let agu = SpatialAgu::new(&[8], &[8]);
        assert_eq!(agu.num_channels(), 8);
        assert_eq!(agu.offsets(), &[0, 8, 16, 24, 32, 40, 48, 56]);
        assert_eq!(agu.channel_address(64, 2), 80);
    }

    #[test]
    fn spatial_mixed_radix() {
        let agu = SpatialAgu::new(&[2, 3], &[1, 10]);
        assert_eq!(agu.offsets(), &[0, 1, 10, 11, 20, 21]);
        assert_eq!(agu.offset_range(), (0, 21));
    }

    #[test]
    fn spatial_negative_stride() {
        let agu = SpatialAgu::new(&[4], &[-8]);
        assert_eq!(agu.offset_range(), (-24, 0));
        assert_eq!(agu.channel_address(100, 3), 76);
    }

    #[test]
    #[should_panic(expected = "negative spatial address")]
    fn negative_spatial_address_panics() {
        let agu = SpatialAgu::new(&[4], &[-8]);
        let _ = agu.channel_address(0, 1);
    }

    #[test]
    #[should_panic(expected = "overflows u64")]
    fn overflowing_bound_product_panics_instead_of_wrapping() {
        // 2^32 · 2^32 · 2 wraps to zero under unchecked multiplication; a
        // wrapped `total` of zero would make the AGU claim completion
        // immediately.
        let _ = TemporalAgu::new(0, &[1 << 32, 1 << 32, 2], &[1, 1, 1]);
    }

    proptest! {
        /// The dual-counter AGU exactly matches the naive divide/multiply
        /// reference over random loop nests — the paper's microarchitectural
        /// optimization changes the implementation, not the function.
        #[test]
        fn dual_counter_matches_naive(
            dims in proptest::collection::vec((1u64..5, -64i64..64), 1..5),
            base in 0u64..1000,
        ) {
            let bounds: Vec<u64> = dims.iter().map(|d| d.0).collect();
            let strides: Vec<i64> = dims.iter().map(|d| d.1).collect();
            // Keep every address non-negative: shift the base past the
            // deepest negative reach.
            let worst: i64 = bounds.iter().zip(&strides)
                .map(|(b, s)| (*s * (*b as i64 - 1)).min(0))
                .sum();
            let base = base + (-worst) as u64;
            let mut agu = TemporalAgu::new(base, &bounds, &strides);
            let fast: Vec<u64> = std::iter::from_fn(|| agu.next_address()).collect();
            let naive = naive_temporal_addresses(base, &bounds, &strides);
            prop_assert_eq!(fast, naive);
        }

        /// Every emitted address falls inside `address_range`, and the
        /// extremes are actually achieved.
        #[test]
        fn range_is_tight(
            dims in proptest::collection::vec((1u64..5, 0i64..32), 1..4),
            base in 0u64..100,
        ) {
            let bounds: Vec<u64> = dims.iter().map(|d| d.0).collect();
            let strides: Vec<i64> = dims.iter().map(|d| d.1).collect();
            let mut agu = TemporalAgu::new(base, &bounds, &strides);
            let (min, max) = agu.address_range();
            let seq: Vec<u64> = std::iter::from_fn(|| agu.next_address()).collect();
            prop_assert!(seq.iter().all(|&a| a >= min && a <= max));
            prop_assert_eq!(*seq.iter().min().unwrap(), min);
            prop_assert_eq!(*seq.iter().max().unwrap(), max);
        }

        /// The spatial AGU enumerates exactly the mixed-radix offset lattice.
        #[test]
        fn spatial_lattice(
            dims in proptest::collection::vec((1usize..4, 0i64..16), 1..4),
        ) {
            let bounds: Vec<usize> = dims.iter().map(|d| d.0).collect();
            let strides: Vec<i64> = dims.iter().map(|d| d.1).collect();
            let agu = SpatialAgu::new(&bounds, &strides);
            prop_assert_eq!(agu.num_channels(), bounds.iter().product::<usize>());
            // Reference: nested loops, innermost dimension fastest.
            let mut expected = vec![0i64];
            for (bound, stride) in bounds.iter().zip(&strides).rev() {
                let mut next = Vec::new();
                for i in 0..*bound as i64 {
                    for e in &expected {
                        next.push(e + i * stride);
                    }
                }
                expected = next;
            }
            // The reverse construction enumerates outer digits slowest; sort
            // both sides to compare as multisets (offsets may repeat when a
            // stride is zero).
            let mut got = agu.offsets().to_vec();
            got.sort_unstable();
            expected.sort_unstable();
            prop_assert_eq!(got, expected);
        }
    }
}
