//! Error type for DataMaestro configuration and operation.

use std::error::Error;
use std::fmt;

use dm_mem::MemError;

/// Errors raised while configuring or operating a DataMaestro streamer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A design-time list parameter had the wrong length (e.g. runtime
    /// temporal strides not matching the design-time dimension count).
    DimensionMismatch {
        /// What was being configured.
        what: &'static str,
        /// Expected number of entries.
        expected: usize,
        /// Provided number of entries.
        got: usize,
    },
    /// A bound was zero; empty loops are expressed by omitting dimensions,
    /// not by zero bounds.
    ZeroBound {
        /// Which bound list contained the zero.
        what: &'static str,
    },
    /// The product of the loop bounds overflows `u64`: the AGU's total step
    /// count (and therefore its `is_done` check) would silently wrap in a
    /// release build. Such a nest could never complete anyway.
    PatternTooLarge {
        /// Which bound list overflowed.
        what: &'static str,
    },
    /// A design-time structural parameter was invalid.
    InvalidParameter {
        /// Which parameter.
        parameter: &'static str,
        /// Why it was rejected.
        reason: String,
    },
    /// The configured access pattern would touch an address outside the
    /// scratchpad.
    PatternOutOfBounds {
        /// Lowest byte address the pattern touches.
        min_addr: u64,
        /// Highest byte address (inclusive of the word) the pattern touches.
        max_addr: u64,
        /// Scratchpad capacity in bytes.
        capacity: u64,
    },
    /// A generated address was not aligned to the bank word width.
    UnalignedPattern {
        /// The offending byte address.
        addr: u64,
        /// Required alignment.
        alignment: u64,
    },
    /// Underlying memory error (remapper construction, etc.).
    Mem(MemError),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::DimensionMismatch {
                what,
                expected,
                got,
            } => write!(f, "{what} expects {expected} entries, got {got}"),
            ConfigError::ZeroBound { what } => {
                write!(f, "{what} contains a zero bound")
            }
            ConfigError::PatternTooLarge { what } => {
                write!(f, "product of {what} overflows a 64-bit step count")
            }
            ConfigError::InvalidParameter { parameter, reason } => {
                write!(f, "invalid {parameter}: {reason}")
            }
            ConfigError::PatternOutOfBounds {
                min_addr,
                max_addr,
                capacity,
            } => write!(
                f,
                "access pattern spans 0x{min_addr:x}..=0x{max_addr:x}, beyond capacity {capacity}"
            ),
            ConfigError::UnalignedPattern { addr, alignment } => {
                write!(f, "pattern address 0x{addr:x} not {alignment}-byte aligned")
            }
            ConfigError::Mem(e) => write!(f, "memory error: {e}"),
        }
    }
}

impl Error for ConfigError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ConfigError::Mem(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemError> for ConfigError {
    fn from(e: MemError) -> Self {
        ConfigError::Mem(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_meaningful() {
        let e = ConfigError::DimensionMismatch {
            what: "temporal strides",
            expected: 3,
            got: 2,
        };
        assert_eq!(e.to_string(), "temporal strides expects 3 entries, got 2");
        let e = ConfigError::from(MemError::Misaligned {
            addr: 5,
            alignment: 8,
        });
        assert!(e.to_string().contains("memory error"));
    }

    #[test]
    fn source_chains_mem_errors() {
        let e = ConfigError::from(MemError::UnknownRequester { requester: 1 });
        assert!(e.source().is_some());
        let e = ConfigError::ZeroBound { what: "bounds" };
        assert!(e.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_bounds<T: Error + Send + Sync + 'static>() {}
        assert_bounds::<ConfigError>();
    }
}
