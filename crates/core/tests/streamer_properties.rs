//! Property tests of the full read/write streamers against direct
//! address-arithmetic references: for arbitrary (small) affine
//! configurations, the stream delivered to / absorbed from the accelerator
//! port must be exactly the bytes the pattern addresses, in order — under
//! every addressing mode, with and without fine-grained prefetch.

// The vendored `proptest` stand-in discards `proptest!` bodies wholesale, so
// everything referenced only from inside them looks unused to rustc.
#![allow(dead_code, unused_imports)]

use datamaestro::{DesignConfig, ReadStreamer, RuntimeConfig, StreamerMode, WriteStreamer};
use dm_mem::{Addr, AddressRemapper, AddressingMode, MemConfig, MemorySubsystem};
use proptest::prelude::*;

const WORD: u64 = 8;

fn mem_cfg() -> MemConfig {
    MemConfig::new(8, 8, 256).expect("valid geometry")
}

/// A generated affine pattern: bounds/strides for a 2-D temporal nest and a
/// 3-channel-ish spatial fan-out, all word-aligned and in bounds.
#[derive(Debug, Clone)]
struct Pattern {
    base: u64,
    t_bounds: Vec<u64>,
    t_strides: Vec<i64>,
    s_bounds: Vec<usize>,
    s_strides: Vec<i64>,
    mode: AddressingMode,
    fine_grained: bool,
}

fn pattern_strategy() -> impl Strategy<Value = Pattern> {
    let mode = prop_oneof![
        Just(AddressingMode::FullyInterleaved),
        Just(AddressingMode::GroupedInterleaved { group_banks: 2 }),
        Just(AddressingMode::GroupedInterleaved { group_banks: 4 }),
        Just(AddressingMode::NonInterleaved),
    ];
    (
        0u64..8,                                               // base words
        proptest::collection::vec((1u64..4, 0i64..6), 1..3),   // temporal dims (word strides)
        proptest::collection::vec((1usize..3, 0i64..4), 1..3), // spatial dims
        mode,
        any::<bool>(),
    )
        .prop_map(|(base_w, t, s, mode, fine_grained)| Pattern {
            base: base_w * WORD,
            t_bounds: t.iter().map(|x| x.0).collect(),
            t_strides: t.iter().map(|x| x.1 * WORD as i64).collect(),
            s_bounds: s.iter().map(|x| x.0).collect(),
            s_strides: s.iter().map(|x| x.1 * WORD as i64).collect(),
            mode,
            fine_grained,
        })
}

/// All channel addresses of the pattern, in (temporal, channel) order.
fn reference_addresses(p: &Pattern) -> Vec<Vec<u64>> {
    let mut tagu = datamaestro::agu::TemporalAgu::new(p.base, &p.t_bounds, &p.t_strides);
    let sagu = datamaestro::agu::SpatialAgu::new(&p.s_bounds, &p.s_strides);
    let mut out = Vec::new();
    while let Some(ta) = tagu.next_address() {
        out.push(
            (0..sagu.num_channels())
                .map(|c| sagu.channel_address(ta, c))
                .collect(),
        );
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The read streamer delivers, wide word by wide word, exactly the
    /// bytes its affine pattern addresses.
    #[test]
    fn read_stream_matches_reference(p in pattern_strategy()) {
        let cfg = mem_cfg();
        let mut mem = MemorySubsystem::new(cfg);
        // Memory image: byte value = low byte of its linear address * 31.
        let view = AddressRemapper::new(&cfg, p.mode).unwrap();
        let image: Vec<u8> = (0..cfg.capacity_bytes())
            .map(|i| (i.wrapping_mul(31)) as u8)
            .collect();
        mem.scratchpad_mut().host_write(&view, Addr::ZERO, &image).unwrap();

        let design = DesignConfig::builder("p", StreamerMode::Read)
            .spatial_bounds(p.s_bounds.clone())
            .temporal_dims(p.t_bounds.len())
            .fine_grained_prefetch(p.fine_grained)
            .build()
            .unwrap();
        let runtime = RuntimeConfig::builder()
            .base(p.base)
            .temporal(p.t_bounds.clone(), p.t_strides.clone())
            .spatial_strides(p.s_strides.clone())
            .addressing_mode(p.mode)
            .build();
        let mut streamer = match ReadStreamer::new(&design, &runtime, &mut mem) {
            Ok(s) => s,
            // Out-of-bounds patterns are correctly rejected; nothing to test.
            Err(_) => return Ok(()),
        };
        let expected = reference_addresses(&p);
        let mut got = Vec::new();
        let mut guard = 0;
        while !streamer.is_done() {
            streamer.begin_cycle();
            for resp in mem.take_responses() {
                streamer.accept_response(resp);
            }
            if streamer.can_pop_wide() {
                got.push(streamer.pop_wide().to_vec());
            }
            streamer.generate_and_issue(&mut mem);
            let grants = mem.arbitrate().to_vec();
            streamer.handle_grants(&grants);
            guard += 1;
            prop_assert!(guard < 100_000, "streamer hung");
        }
        while streamer.can_pop_wide() {
            got.push(streamer.pop_wide().to_vec());
        }
        prop_assert_eq!(got.len(), expected.len());
        for (word, addrs) in got.iter().zip(&expected) {
            let want: Vec<u8> = addrs
                .iter()
                .flat_map(|&a| (a..a + WORD).map(|b| (b.wrapping_mul(31)) as u8))
                .collect();
            prop_assert_eq!(word.clone(), want);
        }
    }

    /// The write streamer scatters pushed wide words to exactly the
    /// addresses of its affine pattern.
    #[test]
    fn write_stream_matches_reference(p in pattern_strategy()) {
        let cfg = mem_cfg();
        let mut mem = MemorySubsystem::new(cfg);
        let design = DesignConfig::builder("p", StreamerMode::Write)
            .spatial_bounds(p.s_bounds.clone())
            .temporal_dims(p.t_bounds.len())
            .fine_grained_prefetch(p.fine_grained)
            .build()
            .unwrap();
        let runtime = RuntimeConfig::builder()
            .base(p.base)
            .temporal(p.t_bounds.clone(), p.t_strides.clone())
            .spatial_strides(p.s_strides.clone())
            .addressing_mode(p.mode)
            .build();
        let mut streamer = match WriteStreamer::new(&design, &runtime, &mut mem) {
            Ok(s) => s,
            Err(_) => return Ok(()),
        };
        // Overlapping write patterns (zero strides) would make the final
        // image depend on write order; restrict to injective patterns.
        let expected = reference_addresses(&p);
        let mut all: Vec<u64> = expected.iter().flatten().copied().collect();
        let total = all.len();
        all.sort_unstable();
        all.dedup();
        if all.len() != total {
            return Ok(());
        }

        let width = streamer.input_width();
        let total_words = streamer.total_wide_words();
        let mut pushed = 0u64;
        let mut guard = 0;
        while !streamer.is_done() {
            if pushed < total_words && streamer.can_push_wide() {
                let word: Vec<u8> = (0..width)
                    .map(|i| (pushed as usize * width + i) as u8)
                    .collect();
                streamer.push_wide(&word);
                pushed += 1;
            }
            streamer.generate_and_issue(&mut mem);
            let grants = mem.arbitrate().to_vec();
            streamer.handle_grants(&grants);
            guard += 1;
            prop_assert!(guard < 100_000, "writer hung");
        }
        let view = AddressRemapper::new(&cfg, p.mode).unwrap();
        for (t, addrs) in expected.iter().enumerate() {
            for (c, &addr) in addrs.iter().enumerate() {
                let got = mem
                    .scratchpad()
                    .host_read(&view, Addr::new(addr), WORD as usize)
                    .unwrap();
                let want: Vec<u8> = (0..WORD as usize)
                    .map(|i| (t * width + c * WORD as usize + i) as u8)
                    .collect();
                prop_assert_eq!(got, want, "step {} channel {}", t, c);
            }
        }
    }
}
