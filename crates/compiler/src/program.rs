//! The compiler's output: a fully lowered workload program.

use datamaestro::{DesignConfig, RuntimeConfig};
use dm_accel::RescaleParams;
use dm_mem::AddressingMode;
use dm_workloads::{layout, Workload, WorkloadData};
use serde::{Deserialize, Serialize};

use crate::features::FeatureSet;
use crate::placement::Region;

/// An operand image to preload into the scratchpad before the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperandImage {
    /// Operand name (for traces and reports).
    pub name: String,
    /// Where (and under which view) the image lives.
    pub region: Region,
    /// The raw bytes.
    pub bytes: Vec<u8>,
}

/// Where a copied word's bytes come from in a [`CopyPlan`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum WriteSource {
    /// The destination word is a verbatim copy of read number `i`.
    Word(usize),
    /// Each destination byte is gathered from a byte offset into the
    /// concatenation of all read words (byte-level shuffles, e.g.
    /// transposition).
    Gather(Vec<usize>),
}

/// A memory-to-memory transformation pass executed by the system's copy
/// engine when an on-the-fly feature is unavailable (explicit transpose,
/// explicit im2col, bias materialization).
///
/// The plan is word-granular: `reads[i]` is the byte address of the `i`-th
/// word to fetch; each `(addr, source)` in `writes` stores one word whose
/// content derives from completed reads. Cycle cost and access counts come
/// from replaying the plan through the simulated memory subsystem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CopyPlan {
    /// Pass name (e.g. `"explicit-transpose"`).
    pub name: String,
    /// View for the read addresses.
    pub read_mode: AddressingMode,
    /// View for the write addresses.
    pub write_mode: AddressingMode,
    /// Word-aligned byte addresses to read, in issue order.
    pub reads: Vec<u64>,
    /// Destination words.
    pub writes: Vec<(u64, WriteSource)>,
}

impl CopyPlan {
    /// Total words moved (reads + writes) — the pass's memory access count.
    #[must_use]
    pub fn words_moved(&self) -> u64 {
        (self.reads.len() + self.writes.len()) as u64
    }

    /// The highest read index any write depends on, or `None` if there are
    /// no writes. Used by the copy engine's dependency scoreboard.
    #[must_use]
    pub fn max_dependency(&self, write_idx: usize, word_bytes: usize) -> Option<usize> {
        match &self.writes.get(write_idx)?.1 {
            WriteSource::Word(i) => Some(*i),
            WriteSource::Gather(offsets) => offsets.iter().map(|&o| o / word_bytes).max(),
        }
    }
}

/// One stream port's lowered configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StreamPlan {
    /// Design-time instantiation.
    pub design: DesignConfig,
    /// Per-workload runtime configuration.
    pub runtime: RuntimeConfig,
}

/// A fully lowered workload, ready for the evaluation system to execute.
#[derive(Debug, Clone)]
pub struct CompiledWorkload {
    /// The source workload.
    pub workload: Workload,
    /// Features the system was built with.
    pub features: FeatureSet,
    /// Whether the output is quantized through the E stream (int8) or
    /// written raw through the D stream (int32).
    pub quantized: bool,
    /// A-operand stream (activations / left matrix).
    pub a: StreamPlan,
    /// B-operand stream (weights / right matrix).
    pub b: StreamPlan,
    /// C-operand stream (bias).
    pub c: StreamPlan,
    /// Output stream (E when quantized, D otherwise).
    pub out: StreamPlan,
    /// Operand images to preload.
    pub images: Vec<OperandImage>,
    /// Pre-passes to run before the compute phase.
    pub prepasses: Vec<CopyPlan>,
    /// Temporal K steps accumulated per output tile.
    pub k_steps: u64,
    /// Total output tiles produced.
    pub total_output_tiles: u64,
    /// Quantization parameter (host CSR write).
    pub rescale: RescaleParams,
    /// Where the result lands.
    pub output_region: Region,
    /// For private-bank (NIMA) placements: one output region per channel
    /// slice. Empty for the standard contiguous layouts.
    pub output_slices: Vec<Region>,
}

impl CompiledWorkload {
    /// Total temporal compute steps (tiles × k-steps) — equals the ideal
    /// cycle count of the workload.
    #[must_use]
    pub fn total_steps(&self) -> u64 {
        self.total_output_tiles * self.k_steps
    }

    /// For private-bank placements: the golden bytes of each output slice.
    ///
    /// # Panics
    ///
    /// Panics if this program has no output slices or is not a quantized
    /// GeMM (the only workload private-bank placement supports).
    #[must_use]
    pub fn expected_output_slice_images(&self, data: &WorkloadData) -> Vec<Vec<u8>> {
        assert!(!self.output_slices.is_empty(), "not a sliced placement");
        let Workload::Gemm(spec) = self.workload else {
            panic!("sliced placement is GeMM-only");
        };
        crate::nima::expected_output_slices(spec, &data.expected_e())
    }

    /// The golden byte image the output region must hold after a correct
    /// run.
    #[must_use]
    pub fn expected_output_image(&self, data: &WorkloadData) -> Vec<u8> {
        match (self.workload, self.quantized) {
            (Workload::Gemm(g), true) => layout::pack_gemm_e(&data.expected_e(), g.m, g.n),
            (Workload::Gemm(g), false) => layout::pack_gemm_cd(&data.expected_d(), g.m, g.n),
            (Workload::Conv(c), true) => {
                layout::pack_conv_out_i8(&data.expected_e(), c.oh(), c.ow(), c.c_out)
            }
            (Workload::Conv(c), false) => {
                layout::pack_conv_out_i32(&data.expected_d(), c.oh(), c.ow(), c.c_out)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_plan_dependency_tracking() {
        let plan = CopyPlan {
            name: "t".into(),
            read_mode: AddressingMode::FullyInterleaved,
            write_mode: AddressingMode::FullyInterleaved,
            reads: vec![0, 8, 16],
            writes: vec![
                (100, WriteSource::Word(2)),
                (108, WriteSource::Gather(vec![0, 1, 2, 3, 8, 9, 10, 11])),
            ],
        };
        assert_eq!(plan.words_moved(), 5);
        assert_eq!(plan.max_dependency(0, 8), Some(2));
        assert_eq!(plan.max_dependency(1, 8), Some(1));
        assert_eq!(plan.max_dependency(5, 8), None);
    }
}
