//! NIMA (non-interleaved) private-bank placement for GeMM.
//!
//! §III-D of the paper: contemporary dataflow accelerators often favor
//! NIMA — each operand lane gets a *private bank*, like dedicated input /
//! weight / output buffers. This module implements that layout for GeMM:
//! channel `c` of each stream owns one bank, and the operand is sliced
//! row-wise across banks so every access is conflict-free *by
//! construction*.
//!
//! The cost is exactly what the paper says: "the compiler needs to
//! carefully allocate data for maximal performance and it constrains the
//! tilings of the workload to meet the smallest memory requirement" — each
//! slice must fit one bank, so the maximum workload shrinks by the bank
//! count, and the host must scatter operands into per-bank slice images.
//! The `sweeps` benchmark binary contrasts all three modes.

use datamaestro::RuntimeConfig;
use dm_mem::MemConfig;
use dm_workloads::{GemmSpec, Workload, WorkloadData};

use crate::designs::{design_a, design_b, design_c, design_e, BufferDepths};
use crate::error::CompileError;
use crate::features::FeatureSet;
use crate::placement::{BankWindow, Region};
use crate::program::{CompiledWorkload, OperandImage, StreamPlan};

const T: usize = 8;

/// Allocates one single-bank NIMA window per channel, starting at
/// `first_bank`, each holding one `slice_len`-byte image.
fn slice_regions(
    mem: &MemConfig,
    first_bank: usize,
    channels: usize,
    slice_len: u64,
    name: &str,
) -> Result<Vec<Region>, CompileError> {
    (0..channels)
        .map(|c| {
            let mut window = BankWindow::grouped(mem, first_bank + c, 1)?;
            window.alloc(&format!("{name}[{c}]"), slice_len)
        })
        .collect()
}

/// Lowers a plain GeMM with NIMA private-bank placement (quantized output).
///
/// # Errors
///
/// Returns [`CompileError::Unsupported`] for transposed GeMM (the slice
/// transform composes poorly with the Transposer demo) or when the memory
/// has fewer than 28 banks; [`CompileError::Placement`] when a slice
/// exceeds its private bank — the NIMA tiling constraint.
pub fn compile_gemm_private_banks(
    data: &WorkloadData,
    features: &FeatureSet,
    mem: &MemConfig,
    depths: BufferDepths,
) -> Result<CompiledWorkload, CompileError> {
    let Workload::Gemm(spec) = data.workload else {
        return Err(CompileError::Unsupported {
            reason: "private-bank placement is implemented for GeMM".into(),
        });
    };
    if spec.transposed_a {
        return Err(CompileError::Unsupported {
            reason: "private-bank placement does not support transposed A".into(),
        });
    }
    if mem.num_banks() < 28 {
        return Err(CompileError::Unsupported {
            reason: format!(
                "private-bank GeMM needs 28 banks (8 A + 8 B + 4 C + 8 E), \
                 memory has {}",
                mem.num_banks()
            ),
        });
    }
    let (mt, nt, kt) = spec.tiles();
    let (m, n, k) = (spec.m, spec.n, spec.k);
    let bank_bytes = (mem.rows_per_bank() * mem.bank_width_bytes()) as i64;
    let mut images = Vec::new();

    // --- A: bank r holds tile-row r of every tile, ordered (mt, kt) -----
    let a_regions = slice_regions(mem, 0, T, (m * k / T) as u64, "A")?;
    for (r, region) in a_regions.iter().enumerate() {
        let mut bytes = Vec::with_capacity(m * k / T);
        for mt_i in 0..mt {
            for kt_i in 0..kt {
                for col in 0..T {
                    bytes.push(data.a[(mt_i * T + r) * k + kt_i * T + col] as u8);
                }
            }
        }
        images.push(OperandImage {
            name: format!("A[{r}]"),
            region: *region,
            bytes,
        });
    }
    let a_design = design_a(features, depths)?;
    let a_bypass: Vec<bool> = if features.transposer {
        vec![true]
    } else {
        Vec::new()
    };
    let a_runtime = RuntimeConfig::builder()
        .base(a_regions[0].base)
        .temporal([kt as u64, nt as u64, mt as u64], [8, 0, kt as i64 * 8])
        .spatial_strides([bank_bytes, 2 * bank_bytes, 4 * bank_bytes])
        .addressing_mode(a_regions[0].mode)
        .extension_bypass(a_bypass)
        .build();

    // --- B: bank 8+r holds B's tile-row r, ordered (kt, nt) -------------
    let b_regions = slice_regions(mem, 8, T, (k * n / T) as u64, "B")?;
    for (r, region) in b_regions.iter().enumerate() {
        let mut bytes = Vec::with_capacity(k * n / T);
        for kt_i in 0..kt {
            for nt_i in 0..nt {
                for col in 0..T {
                    bytes.push(data.b[(kt_i * T + r) * n + nt_i * T + col] as u8);
                }
            }
        }
        images.push(OperandImage {
            name: format!("B[{r}]"),
            region: *region,
            bytes,
        });
    }
    let b_design = design_b(features, depths)?;
    let b_runtime = RuntimeConfig::builder()
        .base(b_regions[0].base)
        .temporal([kt as u64, nt as u64, mt as u64], [nt as i64 * 8, 8, 0])
        .spatial_strides([bank_bytes, 2 * bank_bytes, 4 * bank_bytes])
        .addressing_mode(b_regions[0].mode)
        .build();

    // --- C: four bias lanes (word j of each n-tile) on banks 16..20 ------
    if !features.broadcaster {
        return Err(CompileError::Unsupported {
            reason: "private-bank placement requires the Broadcaster C port".into(),
        });
    }
    let c_regions = slice_regions(mem, 16, 4, (nt * T) as u64, "bias")?;
    for (j, region) in c_regions.iter().enumerate() {
        let mut bytes = Vec::with_capacity(nt * T);
        for nt_i in 0..nt {
            for half in 0..2 {
                let value = data.bias[nt_i * T + j * 2 + half];
                bytes.extend_from_slice(&value.to_le_bytes());
            }
        }
        images.push(OperandImage {
            name: format!("bias[{j}]"),
            region: *region,
            bytes,
        });
    }
    let c_design = design_c(features, depths)?;
    let c_runtime = RuntimeConfig::builder()
        .base(c_regions[0].base)
        .temporal([nt as u64, mt as u64], [8, 0])
        .spatial_strides([bank_bytes, 2 * bank_bytes])
        .addressing_mode(c_regions[0].mode)
        .extension_bypass([false])
        .build();

    // --- E: bank 20+r receives output tile-row r, ordered (mt, nt) -------
    let e_regions = slice_regions(mem, 20, T, (m * n / T) as u64, "E")?;
    let out_design = design_e(features, depths)?;
    let out_runtime = RuntimeConfig::builder()
        .base(e_regions[0].base)
        .temporal([nt as u64, mt as u64], [8, nt as i64 * 8])
        .spatial_strides([bank_bytes, 2 * bank_bytes, 4 * bank_bytes])
        .addressing_mode(e_regions[0].mode)
        .build();

    Ok(CompiledWorkload {
        workload: data.workload,
        features: *features,
        quantized: true,
        a: StreamPlan {
            design: a_design,
            runtime: a_runtime,
        },
        b: StreamPlan {
            design: b_design,
            runtime: b_runtime,
        },
        c: StreamPlan {
            design: c_design,
            runtime: c_runtime,
        },
        out: StreamPlan {
            design: out_design,
            runtime: out_runtime,
        },
        images,
        prepasses: Vec::new(),
        k_steps: kt as u64,
        total_output_tiles: (mt * nt) as u64,
        rescale: data.rescale,
        output_region: e_regions[0],
        output_slices: e_regions,
    })
}

/// The golden per-bank output slices for a private-bank GeMM: slice `r`
/// holds E's tile-row `r` in (mt, nt) order.
#[must_use]
pub fn expected_output_slices(spec: GemmSpec, expected_e: &[i8]) -> Vec<Vec<u8>> {
    let (mt, nt, _) = spec.tiles();
    (0..T)
        .map(|r| {
            let mut bytes = Vec::with_capacity(spec.m * spec.n / T);
            for mt_i in 0..mt {
                for nt_i in 0..nt {
                    for col in 0..T {
                        bytes.push(expected_e[(mt_i * T + r) * spec.n + nt_i * T + col] as u8);
                    }
                }
            }
            bytes
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_mem::AddressingMode;

    fn mem() -> MemConfig {
        MemConfig::new(32, 8, 4096).unwrap()
    }

    #[test]
    fn private_banks_compile_for_plain_gemm() {
        let data = WorkloadData::generate(GemmSpec::new(32, 32, 32).into(), 1);
        let p =
            compile_gemm_private_banks(&data, &FeatureSet::full(), &mem(), BufferDepths::default())
                .unwrap();
        assert_eq!(p.images.len(), 8 + 8 + 4);
        assert_eq!(p.output_slices.len(), 8);
        for img in &p.images {
            assert_eq!(
                img.region.mode,
                AddressingMode::GroupedInterleaved { group_banks: 1 }
            );
        }
        for plan in [&p.a, &p.b, &p.c, &p.out] {
            plan.runtime.validate(&plan.design).unwrap();
        }
    }

    #[test]
    fn slices_are_bank_private() {
        use dm_mem::AddressRemapper;
        let m = mem();
        let data = WorkloadData::generate(GemmSpec::new(16, 16, 16).into(), 2);
        let p = compile_gemm_private_banks(&data, &FeatureSet::full(), &m, BufferDepths::default())
            .unwrap();
        for (i, img) in p.images.iter().enumerate() {
            let remap = AddressRemapper::new(&m, img.region.mode).unwrap();
            let banks: std::collections::HashSet<usize> = (0..img.bytes.len() as u64 / 8)
                .map(|w| remap.map_word((img.region.base + w * 8) / 8).bank)
                .collect();
            assert_eq!(banks.len(), 1, "image {i} spans multiple banks");
        }
    }

    #[test]
    fn tiling_constraint_is_enforced() {
        // A slice of m·k/8 bytes must fit one bank (4096 rows × 8 B = 32 KiB
        // here): a 1024×512 GeMM needs 64 KiB per slice and must fail.
        let data = WorkloadData::generate(GemmSpec::new(1024, 32, 512).into(), 3);
        let err =
            compile_gemm_private_banks(&data, &FeatureSet::full(), &mem(), BufferDepths::default())
                .unwrap_err();
        assert!(matches!(err, CompileError::Placement { .. }));
    }

    #[test]
    fn unsupported_cases_are_rejected() {
        let t = WorkloadData::generate(GemmSpec::transposed(16, 16, 16).into(), 4);
        assert!(matches!(
            compile_gemm_private_banks(&t, &FeatureSet::full(), &mem(), BufferDepths::default()),
            Err(CompileError::Unsupported { .. })
        ));
        let small = MemConfig::new(16, 8, 4096).unwrap();
        let g = WorkloadData::generate(GemmSpec::new(16, 16, 16).into(), 5);
        assert!(matches!(
            compile_gemm_private_banks(&g, &FeatureSet::full(), &small, BufferDepths::default()),
            Err(CompileError::Unsupported { .. })
        ));
    }

    #[test]
    fn expected_slices_cover_all_outputs() {
        let spec = GemmSpec::new(16, 16, 16);
        let data = WorkloadData::generate(spec.into(), 6);
        let slices = expected_output_slices(spec, &data.expected_e());
        assert_eq!(slices.len(), 8);
        let total: usize = slices.iter().map(Vec::len).sum();
        assert_eq!(total, 16 * 16);
    }
}
