//! Operand placement: bank-group-aware region allocation.
//!
//! With addressing-mode switching enabled (§III-D), the compiler places each
//! operand in its own *bank group* under a GIMA view so that different
//! streams never compete for the same banks. Without switching, everything
//! lives in one linear FIMA space — the conventional layout, where
//! inter-operand bank conflicts are unavoidable.

use dm_mem::{AddressingMode, MemConfig};
use serde::{Deserialize, Serialize};

use crate::error::CompileError;

/// A placed region: a linear address window valid under a specific
/// addressing-mode view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    /// First byte address (in the view's linear space).
    pub base: u64,
    /// Length in bytes.
    pub len: u64,
    /// The view the region's addresses are interpreted under.
    pub mode: AddressingMode,
}

impl Region {
    /// One-past-the-end address.
    #[must_use]
    pub fn end(&self) -> u64 {
        self.base + self.len
    }
}

/// Allocates operand regions inside one addressing-mode window.
///
/// Under a GIMA(`g`) view, the linear span
/// `[group_index·g·rows·W, (group_index+1)·g·rows·W)` maps exactly onto the
/// physical banks `group_index·g .. (group_index+1)·g` — so placing two
/// operands in windows with disjoint physical banks guarantees they never
/// conflict, even across different group sizes.
#[derive(Debug, Clone)]
pub struct BankWindow {
    mode: AddressingMode,
    base: u64,
    len: u64,
    cursor: u64,
    first_bank: usize,
    num_banks: usize,
}

impl BankWindow {
    /// Alignment of every allocation (one 8×8 int32 tile).
    pub const ALIGN: u64 = 256;

    /// Opens the window covering physical banks
    /// `first_bank..first_bank + num_banks` under the GIMA(`num_banks`)
    /// view.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Placement`] if the bank range is not a
    /// power-of-two-sized, aligned slice of the memory.
    pub fn grouped(
        mem: &MemConfig,
        first_bank: usize,
        num_banks: usize,
    ) -> Result<Self, CompileError> {
        if !num_banks.is_power_of_two()
            || !first_bank.is_multiple_of(num_banks)
            || first_bank + num_banks > mem.num_banks()
        {
            return Err(CompileError::Placement {
                reason: format!(
                    "banks {first_bank}..{} not an aligned power-of-two group",
                    first_bank + num_banks
                ),
            });
        }
        let group_bytes = (num_banks * mem.rows_per_bank() * mem.bank_width_bytes()) as u64;
        let group_index = (first_bank / num_banks) as u64;
        Ok(BankWindow {
            mode: AddressingMode::GroupedInterleaved {
                group_banks: num_banks,
            },
            base: group_index * group_bytes,
            len: group_bytes,
            cursor: group_index * group_bytes,
            first_bank,
            num_banks,
        })
    }

    /// Opens the whole memory as one linear FIMA window (the
    /// no-mode-switching layout).
    #[must_use]
    pub fn linear(mem: &MemConfig) -> Self {
        BankWindow {
            mode: AddressingMode::FullyInterleaved,
            base: 0,
            len: mem.capacity_bytes(),
            cursor: 0,
            first_bank: 0,
            num_banks: mem.num_banks(),
        }
    }

    /// The view this window allocates under.
    #[must_use]
    pub fn mode(&self) -> AddressingMode {
        self.mode
    }

    /// Physical banks covered: `(first, count)`.
    #[must_use]
    pub fn banks(&self) -> (usize, usize) {
        (self.first_bank, self.num_banks)
    }

    /// Bytes still available.
    #[must_use]
    pub fn remaining(&self) -> u64 {
        self.base + self.len - self.cursor
    }

    /// Allocates `len` bytes (aligned up to [`ALIGN`](Self::ALIGN)).
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::Placement`] when the window is exhausted —
    /// the workload does not fit its bank group and must be tiled upstream.
    pub fn alloc(&mut self, name: &str, len: u64) -> Result<Region, CompileError> {
        let padded = len.div_ceil(Self::ALIGN) * Self::ALIGN;
        if padded > self.remaining() {
            return Err(CompileError::Placement {
                reason: format!(
                    "operand {name} needs {padded} B, window over banks \
                     {}..{} has {} B left",
                    self.first_bank,
                    self.first_bank + self.num_banks,
                    self.remaining()
                ),
            });
        }
        let region = Region {
            base: self.cursor,
            len,
            mode: self.mode,
        };
        self.cursor += padded;
        Ok(region)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_mem::AddressRemapper;

    fn mem() -> MemConfig {
        MemConfig::new(32, 8, 1024).unwrap()
    }

    #[test]
    fn grouped_window_base_matches_group_index() {
        let mem = mem();
        let w = BankWindow::grouped(&mem, 16, 8).unwrap();
        // Group 2 of GIMA(8): base = 2 × 8 banks × 1024 rows × 8 B.
        assert_eq!(w.base, 2 * 8 * 1024 * 8);
        assert_eq!(w.len, 8 * 1024 * 8);
        assert_eq!(w.banks(), (16, 8));
    }

    #[test]
    fn grouped_window_maps_to_its_banks_only() {
        let mem = mem();
        let mut w = BankWindow::grouped(&mem, 8, 8).unwrap();
        let region = w.alloc("x", 4096).unwrap();
        let remap = AddressRemapper::new(&mem, region.mode).unwrap();
        for word in 0..(region.len / 8) {
            let loc = remap.map_word((region.base + word * 8) / 8);
            assert!(
                (8..16).contains(&loc.bank),
                "word {word} landed in bank {}",
                loc.bank
            );
        }
    }

    #[test]
    fn different_group_sizes_are_physically_disjoint() {
        let mem = mem();
        // GIMA(16) over banks 0..16 and GIMA(8) over banks 16..24.
        let a = BankWindow::grouped(&mem, 0, 16).unwrap();
        let b = BankWindow::grouped(&mem, 16, 8).unwrap();
        let ra = AddressRemapper::new(&mem, a.mode()).unwrap();
        let rb = AddressRemapper::new(&mem, b.mode()).unwrap();
        let banks_a: std::collections::HashSet<usize> = (0..512)
            .map(|w| ra.map_word((a.base + w * 8) / 8).bank)
            .collect();
        let banks_b: std::collections::HashSet<usize> = (0..512)
            .map(|w| rb.map_word((b.base + w * 8) / 8).bank)
            .collect();
        assert!(banks_a.is_disjoint(&banks_b));
    }

    #[test]
    fn alloc_bumps_and_aligns() {
        let mem = mem();
        let mut w = BankWindow::linear(&mem);
        let r1 = w.alloc("a", 100).unwrap();
        let r2 = w.alloc("b", 100).unwrap();
        assert_eq!(r1.base, 0);
        assert_eq!(r2.base, 256, "aligned to 256");
        assert_eq!(r1.end(), 100);
    }

    #[test]
    fn alloc_overflow_is_an_error() {
        let mem = MemConfig::new(4, 8, 16).unwrap();
        let mut w = BankWindow::linear(&mem);
        assert!(w.alloc("big", 10_000).is_err());
        let ok = w.alloc("fits", 512).unwrap();
        assert_eq!(ok.len, 512);
    }

    #[test]
    fn misaligned_group_rejected() {
        let mem = mem();
        assert!(BankWindow::grouped(&mem, 4, 8).is_err(), "unaligned start");
        assert!(BankWindow::grouped(&mem, 0, 3).is_err(), "non power of two");
        assert!(BankWindow::grouped(&mem, 24, 16).is_err(), "past the end");
    }
}
