//! The ablation feature set (§IV-B, Fig. 7: configurations ① through ⑥).

use serde::{Deserialize, Serialize};

/// Which DataMaestro features are present in the built system.
///
/// The paper's ablation enables these cumulatively:
/// ① none (plain data-movement units), ② + fine-grained prefetch,
/// ③ + Transposer, ④ + Broadcaster, ⑤ + implicit im2col,
/// ⑥ + addressing-mode switching (the full system).
///
/// # Examples
///
/// ```
/// use dm_compiler::FeatureSet;
///
/// assert_eq!(FeatureSet::ablation_step(1), FeatureSet::baseline());
/// assert_eq!(FeatureSet::ablation_step(6), FeatureSet::full());
/// assert!(FeatureSet::ablation_step(3).transposer);
/// assert!(!FeatureSet::ablation_step(3).broadcaster);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct FeatureSet {
    /// §III-C: per-channel independent request issue.
    pub fine_grained_prefetch: bool,
    /// §III-E: on-the-fly tile transposition on the A stream.
    pub transposer: bool,
    /// §III-E: on-the-fly duplication on the C (bias/scale) stream.
    pub broadcaster: bool,
    /// §III-B: 6-D temporal AGU performing im2col implicitly.
    pub implicit_im2col: bool,
    /// §III-D: runtime FIMA/GIMA/NIMA selection with bank-group placement.
    pub addr_mode_switching: bool,
}

impl FeatureSet {
    /// The fully featured DataMaestro (⑥).
    #[must_use]
    pub const fn full() -> Self {
        FeatureSet {
            fine_grained_prefetch: true,
            transposer: true,
            broadcaster: true,
            implicit_im2col: true,
            addr_mode_switching: true,
        }
    }

    /// The plain data-movement baseline (①).
    #[must_use]
    pub const fn baseline() -> Self {
        FeatureSet {
            fine_grained_prefetch: false,
            transposer: false,
            broadcaster: false,
            implicit_im2col: false,
            addr_mode_switching: false,
        }
    }

    /// The cumulative ablation configuration for `step` ∈ 1..=6.
    ///
    /// # Panics
    ///
    /// Panics if `step` is outside `1..=6`.
    #[must_use]
    pub fn ablation_step(step: usize) -> Self {
        assert!((1..=6).contains(&step), "ablation steps are 1..=6");
        FeatureSet {
            fine_grained_prefetch: step >= 2,
            transposer: step >= 3,
            broadcaster: step >= 4,
            implicit_im2col: step >= 5,
            addr_mode_switching: step >= 6,
        }
    }

    /// The circled label used in the paper's figures.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match (
            self.fine_grained_prefetch,
            self.transposer,
            self.broadcaster,
            self.implicit_im2col,
            self.addr_mode_switching,
        ) {
            (false, false, false, false, false) => "1:baseline",
            (true, false, false, false, false) => "2:+prefetch",
            (true, true, false, false, false) => "3:+transposer",
            (true, true, true, false, false) => "4:+broadcaster",
            (true, true, true, true, false) => "5:+im2col",
            (true, true, true, true, true) => "6:+mode-switching",
            _ => "custom",
        }
    }
}

impl Default for FeatureSet {
    fn default() -> Self {
        FeatureSet::full()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_is_cumulative() {
        let mut previous = 0;
        for step in 1..=6 {
            let f = FeatureSet::ablation_step(step);
            let count = [
                f.fine_grained_prefetch,
                f.transposer,
                f.broadcaster,
                f.implicit_im2col,
                f.addr_mode_switching,
            ]
            .iter()
            .filter(|&&x| x)
            .count();
            assert_eq!(count, step - 1);
            assert!(count >= previous);
            previous = count;
        }
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> = (1..=6)
            .map(|s| FeatureSet::ablation_step(s).label())
            .collect();
        assert_eq!(labels.len(), 6);
    }

    #[test]
    fn default_is_full() {
        assert_eq!(FeatureSet::default(), FeatureSet::full());
    }

    #[test]
    #[should_panic(expected = "1..=6")]
    fn step_zero_panics() {
        let _ = FeatureSet::ablation_step(0);
    }

    #[test]
    fn custom_combination_labeled_custom() {
        let f = FeatureSet {
            fine_grained_prefetch: false,
            transposer: true,
            broadcaster: false,
            implicit_im2col: false,
            addr_mode_switching: false,
        };
        assert_eq!(f.label(), "custom");
    }
}
