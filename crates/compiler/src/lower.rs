//! Lowering of GeMM and convolution workloads onto the evaluation system.
//!
//! This module is the "customized compiler" of §IV-A: given a workload, the
//! feature set of the built system and the memory geometry, it produces the
//! runtime configurations for all streamers, the operand placement (bank
//! groups under mode switching), and the explicit pre-passes required when
//! an on-the-fly feature is absent.

use datamaestro::RuntimeConfig;
use dm_mem::MemConfig;
use dm_workloads::{layout, ConvSpec, GemmSpec, Workload, WorkloadData};

use crate::designs::{
    design_a, design_b, design_c, design_d, design_e, pixel_spatial_strides, BufferDepths,
};
use crate::error::CompileError;
use crate::features::FeatureSet;
use crate::placement::{BankWindow, Region};
use crate::program::{CompiledWorkload, CopyPlan, OperandImage, StreamPlan, WriteSource};

/// Tile edge (the array's unrolling in every dimension).
const T: usize = 8;
/// Bytes per int8 tile.
const TILE_I8: u64 = 64;
/// Bytes per int32 tile.
const TILE_I32: u64 = 256;

/// Operand-to-window assignment produced by [`make_windows`].
struct Windows {
    windows: Vec<BankWindow>,
    a: usize,
    b: usize,
    out: usize,
    c: usize,
}

impl Windows {
    fn window(&mut self, idx: usize) -> &mut BankWindow {
        &mut self.windows[idx]
    }
}

/// Chooses the operand placement policy.
///
/// * mode switching off → one linear FIMA space shared by everything (the
///   conventional layout);
/// * mode switching on → disjoint bank groups per operand: A, B, OUT and C
///   each get a quarter of the banks under GIMA.
///
/// The hardware remapper only instantiates the bank-group permutations
/// listed in its design-time `N_BG` parameter; as in the paper's
/// evaluation system that list stops at the quarter-size grouping, so the
/// compiler cannot widen A's group for strided convolutions — their
/// non-contiguous spatial fan-out then collides inside the group, which is
/// exactly the "unavoidable bank conflicts" the paper reports for strided
/// layers.
fn make_windows(mem: &MemConfig, features: &FeatureSet) -> Result<Windows, CompileError> {
    if !features.addr_mode_switching {
        return Ok(Windows {
            windows: vec![BankWindow::linear(mem)],
            a: 0,
            b: 0,
            out: 0,
            c: 0,
        });
    }
    let quarter = (mem.num_banks() / 4).max(1);
    Ok(Windows {
        windows: vec![
            BankWindow::grouped(mem, 0, quarter)?,
            BankWindow::grouped(mem, quarter, quarter)?,
            BankWindow::grouped(mem, 2 * quarter, quarter)?,
            BankWindow::grouped(mem, 3 * quarter, quarter)?,
        ],
        a: 0,
        b: 1,
        out: 2,
        c: 3,
    })
}

/// Chooses the `sx × sy` factorization of the 8-pixel output tile for a
/// convolution.
///
/// This is the data-layout/dataflow co-optimization the paper's compiler
/// performs: among the factorizations that divide the output plane, pick
/// the one whose eight spatial addresses spread over the most *distinct*
/// banks of the operand's group (ties prefer the widest `sx`, i.e. the
/// most contiguous accesses). For stride-1 convolutions a conflict-free
/// tiling almost always exists; strided ones often have none — the
/// "unavoidable" conflicts of the paper's §IV-B.
pub(crate) fn choose_pixel_tiling(spec: &ConvSpec, group_banks: usize) -> Option<(usize, usize)> {
    use datamaestro::agu::SpatialAgu;
    let (oh, ow) = (spec.oh(), spec.ow());
    let mut best: Option<(usize, usize, usize)> = None; // (distinct, sx, sy)
    for (sx, sy) in [(8, 1), (4, 2), (2, 4), (1, 8)] {
        if ow % sx != 0 || oh % sy != 0 {
            continue;
        }
        let strides = pixel_spatial_strides(
            sx,
            (spec.stride * T) as i64,
            (spec.stride * spec.w * T) as i64,
        );
        let agu = SpatialAgu::new(&[2, 2, 2], &strides);
        let distinct = agu
            .offsets()
            .iter()
            .map(|o| (o / T as i64).rem_euclid(group_banks as i64))
            .collect::<std::collections::HashSet<_>>()
            .len();
        match best {
            Some((d, x, _)) if (d, x) >= (distinct, sx) => {}
            _ => best = Some((distinct, sx, sy)),
        }
    }
    best.map(|(_, sx, sy)| (sx, sy))
}

/// Lowers a GeMM workload.
pub(crate) fn compile_gemm(
    spec: GemmSpec,
    data: &WorkloadData,
    features: &FeatureSet,
    mem: &MemConfig,
    quantized: bool,
    depths: BufferDepths,
) -> Result<CompiledWorkload, CompileError> {
    let (mt, nt, kt) = spec.tiles();
    let (m, n, k) = (spec.m, spec.n, spec.k);
    let mut w = make_windows(mem, features)?;
    let mut images = Vec::new();
    let mut prepasses = Vec::new();

    // --- A operand -------------------------------------------------------
    let a_bytes = if spec.transposed_a {
        layout::pack_gemm_a_transposed(&data.a, m, k)
    } else {
        layout::pack_gemm_a(&data.a, m, k)
    };
    let ra = w.window(w.a).alloc("A", a_bytes.len() as u64)?;
    images.push(OperandImage {
        name: "A".into(),
        region: ra,
        bytes: a_bytes,
    });
    let a_design = design_a(features, depths)?;
    let a_bypass: Vec<bool> = if features.transposer {
        vec![!spec.transposed_a]
    } else {
        Vec::new()
    };
    let a_runtime = if spec.transposed_a {
        if features.transposer {
            // Read Aᵀ tiles directly; the Transposer flips them on the fly.
            // Tile (kt, mt) lives at (kt·Mt + mt)·64.
            RuntimeConfig::builder()
                .base(ra.base)
                .temporal([kt as u64, nt as u64, mt as u64], [mt as i64 * 64, 0, 64])
                .spatial_strides([8, 16, 32])
                .addressing_mode(ra.mode)
                .extension_bypass(a_bypass.clone())
                .build()
        } else {
            // Explicit transpose pre-pass into a scratch A image.
            let ra2 = w
                .window(w.a)
                .alloc("A-transposed-scratch", (m * k) as u64)?;
            prepasses.push(transpose_plan(ra, ra2, m, k));
            plain_a_runtime(ra2.base, ra2.mode, mt, nt, kt, &a_bypass)
        }
    } else {
        plain_a_runtime(ra.base, ra.mode, mt, nt, kt, &a_bypass)
    };

    // --- B operand -------------------------------------------------------
    let b_bytes = layout::pack_gemm_b(&data.b, k, n);
    let rb = w.window(w.b).alloc("B", b_bytes.len() as u64)?;
    images.push(OperandImage {
        name: "B".into(),
        region: rb,
        bytes: b_bytes,
    });
    let b_design = design_b(features, depths)?;
    let b_runtime = RuntimeConfig::builder()
        .base(rb.base)
        .temporal([kt as u64, nt as u64, mt as u64], [nt as i64 * 64, 64, 0])
        .spatial_strides([8, 16, 32])
        .addressing_mode(rb.mode)
        .build();

    // --- C operand (bias) ------------------------------------------------
    let bias_bytes = layout::pack_bias(&data.bias);
    let rbias = w.window(w.c).alloc("bias", bias_bytes.len() as u64)?;
    images.push(OperandImage {
        name: "bias".into(),
        region: rbias,
        bytes: bias_bytes,
    });
    let c_design = design_c(features, depths)?;
    let c_runtime = if features.broadcaster {
        RuntimeConfig::builder()
            .base(rbias.base)
            .temporal([nt as u64, mt as u64], [32, 0])
            .spatial_strides([8, 16])
            .addressing_mode(rbias.mode)
            .extension_bypass([false])
            .build()
    } else {
        // Without the Broadcaster the bias must live as a fully
        // materialized M×N int32 matrix. Bias is a static weight, so the
        // host replicates it at load time (no runtime pass) — the cost is
        // the 8× memory footprint and the 8× read traffic during compute.
        let rcfull = w.window(w.c).alloc("C-materialized", (m * n * 4) as u64)?;
        let full: Vec<i32> = (0..m * n).map(|i| data.bias[i % n]).collect();
        images.push(OperandImage {
            name: "C-materialized".into(),
            region: rcfull,
            bytes: layout::pack_gemm_cd(&full, m, n),
        });
        RuntimeConfig::builder()
            .base(rcfull.base)
            .temporal(
                [nt as u64, mt as u64],
                [TILE_I32 as i64, nt as i64 * TILE_I32 as i64],
            )
            .spatial_strides([8, 16, 32, 64, 128])
            .addressing_mode(rcfull.mode)
            .build()
    };

    // --- Output ----------------------------------------------------------
    let out_len = if quantized { m * n } else { m * n * 4 };
    let rout = w.window(w.out).alloc("out", out_len as u64)?;
    let (out_design, out_runtime) = if quantized {
        (
            design_e(features, depths)?,
            RuntimeConfig::builder()
                .base(rout.base)
                .temporal(
                    [nt as u64, mt as u64],
                    [TILE_I8 as i64, nt as i64 * TILE_I8 as i64],
                )
                .spatial_strides([8, 16, 32])
                .addressing_mode(rout.mode)
                .build(),
        )
    } else {
        (
            design_d(features, depths)?,
            RuntimeConfig::builder()
                .base(rout.base)
                .temporal(
                    [nt as u64, mt as u64],
                    [TILE_I32 as i64, nt as i64 * TILE_I32 as i64],
                )
                .spatial_strides([8, 16, 32, 64, 128])
                .addressing_mode(rout.mode)
                .build(),
        )
    };

    Ok(CompiledWorkload {
        workload: Workload::Gemm(spec),
        features: *features,
        quantized,
        a: StreamPlan {
            design: a_design,
            runtime: a_runtime,
        },
        b: StreamPlan {
            design: b_design,
            runtime: b_runtime,
        },
        c: StreamPlan {
            design: c_design,
            runtime: c_runtime,
        },
        out: StreamPlan {
            design: out_design,
            runtime: out_runtime,
        },
        images,
        prepasses,
        k_steps: kt as u64,
        total_output_tiles: (mt * nt) as u64,
        rescale: data.rescale,
        output_region: rout,
        output_slices: Vec::new(),
    })
}

fn plain_a_runtime(
    base: u64,
    mode: dm_mem::AddressingMode,
    mt: usize,
    nt: usize,
    kt: usize,
    bypass: &[bool],
) -> RuntimeConfig {
    RuntimeConfig::builder()
        .base(base)
        .temporal([kt as u64, nt as u64, mt as u64], [64, 0, kt as i64 * 64])
        .spatial_strides([8, 16, 32])
        .addressing_mode(mode)
        .extension_bypass(bypass.to_vec())
        .build()
}

/// Builds the explicit-transpose pre-pass: reads the blocked Aᵀ image and
/// writes the blocked A image (byte-level tile transposition).
fn transpose_plan(src: Region, dst: Region, m: usize, k: usize) -> CopyPlan {
    let words = (m * k / T) as u64;
    let reads: Vec<u64> = (0..words).map(|i| src.base + i * 8).collect();
    let (mtiles, ktiles) = (m / T, k / T);
    let mut writes = Vec::with_capacity(words as usize);
    for mt_i in 0..mtiles {
        for kt_i in 0..ktiles {
            for r in 0..T {
                let dst_addr = dst.base + ((mt_i * ktiles + kt_i) * T * T + r * T) as u64;
                // Byte c of this A row is Aᵀ image byte
                // (kt·Mtiles + mt)·64 + c·8 + r.
                let gather: Vec<usize> = (0..T)
                    .map(|c| (kt_i * mtiles + mt_i) * T * T + c * T + r)
                    .collect();
                writes.push((dst_addr, WriteSource::Gather(gather)));
            }
        }
    }
    CopyPlan {
        name: "explicit-transpose".into(),
        read_mode: src.mode,
        write_mode: dst.mode,
        reads,
        writes,
    }
}

/// Lowers a convolution workload.
pub(crate) fn compile_conv(
    spec: ConvSpec,
    data: &WorkloadData,
    features: &FeatureSet,
    mem: &MemConfig,
    quantized: bool,
    depths: BufferDepths,
) -> Result<CompiledWorkload, CompileError> {
    let group_banks = if features.addr_mode_switching {
        (mem.num_banks() / 4).max(1)
    } else {
        mem.num_banks()
    };
    let (sx, sy) =
        choose_pixel_tiling(&spec, group_banks).ok_or_else(|| CompileError::Unsupported {
            reason: format!(
                "output plane {}x{} has no 8-pixel tiling",
                spec.oh(),
                spec.ow()
            ),
        })?;
    let (oh, ow) = (spec.oh(), spec.ow());
    let (h, w_in, s) = (spec.h, spec.w, spec.stride);
    let (cin_t, cout_t) = (spec.c_in / T, spec.c_out / T);
    let (ox_t, oy_t) = (ow / sx, oh / sy);
    let (kh, kw) = (spec.kh, spec.kw);
    let k_steps = (cin_t * kh * kw) as u64;
    let total_tiles = (cout_t * ox_t * oy_t) as u64;

    let mut w = make_windows(mem, features)?;
    let mut images = Vec::new();
    let mut prepasses = Vec::new();

    // --- A operand (input activations) -----------------------------------
    let in_bytes = layout::pack_conv_input(&data.a, h, w_in, spec.c_in);
    let rin = w.window(w.a).alloc("input", in_bytes.len() as u64)?;
    images.push(OperandImage {
        name: "input".into(),
        region: rin,
        bytes: in_bytes,
    });
    let a_design = design_a(features, depths)?;
    let a_bypass: Vec<bool> = if features.transposer {
        vec![true]
    } else {
        Vec::new()
    };
    let a_runtime = if features.implicit_im2col {
        // 6-D implicit im2col walk (innermost first):
        // kx, ky, cin_t, cout_t (reuse), ox_t, oy_t.
        RuntimeConfig::builder()
            .base(rin.base)
            .temporal(
                [
                    kw as u64,
                    kh as u64,
                    cin_t as u64,
                    cout_t as u64,
                    ox_t as u64,
                    oy_t as u64,
                ],
                [
                    8,
                    w_in as i64 * 8,
                    (h * w_in) as i64 * 8,
                    0,
                    (sx * s) as i64 * 8,
                    (sy * s * w_in) as i64 * 8,
                ],
            )
            .spatial_strides(pixel_spatial_strides(
                sx,
                s as i64 * 8,
                (s * w_in) as i64 * 8,
            ))
            .addressing_mode(rin.mode)
            .extension_bypass(a_bypass.clone())
            .build()
    } else {
        // Explicit im2col pre-pass into a stream-ordered tile image.
        let im2col_len = (oh * ow * spec.c_in * kh * kw) as u64;
        let rim = w.window(w.a).alloc("im2col-scratch", im2col_len)?;
        prepasses.push(im2col_plan(&spec, rin, rim, sx, sy));
        let kappa_t = k_steps;
        RuntimeConfig::builder()
            .base(rim.base)
            .temporal(
                [kappa_t, cout_t as u64, ox_t as u64, oy_t as u64],
                [
                    64,
                    0,
                    kappa_t as i64 * 64,
                    ox_t as i64 * kappa_t as i64 * 64,
                ],
            )
            .spatial_strides([8, 16, 32])
            .addressing_mode(rim.mode)
            .extension_bypass(a_bypass.clone())
            .build()
    };

    // --- B operand (weights) ----------------------------------------------
    let b_bytes = layout::pack_conv_weights(&data.b, spec.c_out, kh, kw, spec.c_in);
    let rb = w.window(w.b).alloc("weights", b_bytes.len() as u64)?;
    images.push(OperandImage {
        name: "weights".into(),
        region: rb,
        bytes: b_bytes,
    });
    let b_design = design_b(features, depths)?;
    let b_runtime = RuntimeConfig::builder()
        .base(rb.base)
        .temporal(
            [
                kw as u64,
                kh as u64,
                cin_t as u64,
                cout_t as u64,
                ox_t as u64,
                oy_t as u64,
            ],
            [
                64,
                kw as i64 * 64,
                (kh * kw) as i64 * 64,
                (cin_t * kh * kw) as i64 * 64,
                0,
                0,
            ],
        )
        .spatial_strides([8, 16, 32])
        .addressing_mode(rb.mode)
        .build();

    // --- C operand (bias) --------------------------------------------------
    let bias_bytes = layout::pack_bias(&data.bias);
    let rbias = w.window(w.c).alloc("bias", bias_bytes.len() as u64)?;
    images.push(OperandImage {
        name: "bias".into(),
        region: rbias,
        bytes: bias_bytes,
    });
    let c_design = design_c(features, depths)?;
    let c_runtime = if features.broadcaster {
        RuntimeConfig::builder()
            .base(rbias.base)
            .temporal([cout_t as u64, ox_t as u64, oy_t as u64], [32, 0, 0])
            .spatial_strides([8, 16])
            .addressing_mode(rbias.mode)
            .extension_bypass([false])
            .build()
    } else {
        // Host-materialized bias image in the output-shaped blocked layout
        // (static weight; see the GeMM path for rationale).
        let rcfull = w
            .window(w.c)
            .alloc("C-materialized", (oh * ow * spec.c_out * 4) as u64)?;
        let full: Vec<i32> = (0..oh * ow * spec.c_out)
            .map(|i| data.bias[i % spec.c_out])
            .collect();
        images.push(OperandImage {
            name: "C-materialized".into(),
            region: rcfull,
            bytes: layout::pack_conv_out_i32(&full, oh, ow, spec.c_out),
        });
        let mut spatial = vec![8, 16];
        spatial.extend(pixel_spatial_strides(sx, 32, ow as i64 * 32));
        RuntimeConfig::builder()
            .base(rcfull.base)
            .temporal(
                [cout_t as u64, ox_t as u64, oy_t as u64],
                [(oh * ow) as i64 * 32, sx as i64 * 32, (sy * ow) as i64 * 32],
            )
            .spatial_strides(spatial)
            .addressing_mode(rcfull.mode)
            .build()
    };

    // --- Output -------------------------------------------------------------
    let elem = if quantized { 1usize } else { 4 };
    let rout = w
        .window(w.out)
        .alloc("out", (oh * ow * spec.c_out * elem) as u64)?;
    let pixel_bytes = (T * elem) as i64;
    let out_temporal_bounds = [cout_t as u64, ox_t as u64, oy_t as u64];
    let out_temporal_strides = [
        (oh * ow) as i64 * pixel_bytes,
        sx as i64 * pixel_bytes,
        (sy * ow) as i64 * pixel_bytes,
    ];
    let (out_design, out_runtime) = if quantized {
        (
            design_e(features, depths)?,
            RuntimeConfig::builder()
                .base(rout.base)
                .temporal(out_temporal_bounds, out_temporal_strides)
                .spatial_strides(pixel_spatial_strides(sx, 8, ow as i64 * 8))
                .addressing_mode(rout.mode)
                .build(),
        )
    } else {
        let mut spatial = vec![8, 16];
        spatial.extend(pixel_spatial_strides(sx, 32, ow as i64 * 32));
        (
            design_d(features, depths)?,
            RuntimeConfig::builder()
                .base(rout.base)
                .temporal(out_temporal_bounds, out_temporal_strides)
                .spatial_strides(spatial)
                .addressing_mode(rout.mode)
                .build(),
        )
    };

    Ok(CompiledWorkload {
        workload: Workload::Conv(spec),
        features: *features,
        quantized,
        a: StreamPlan {
            design: a_design,
            runtime: a_runtime,
        },
        b: StreamPlan {
            design: b_design,
            runtime: b_runtime,
        },
        c: StreamPlan {
            design: c_design,
            runtime: c_runtime,
        },
        out: StreamPlan {
            design: out_design,
            runtime: out_runtime,
        },
        images,
        prepasses,
        k_steps,
        total_output_tiles: total_tiles,
        rescale: data.rescale,
        output_region: rout,
        output_slices: Vec::new(),
    })
}

/// Builds the explicit-im2col pre-pass: gathers input pixel blocks into a
/// stream-ordered tile image (tile `(oy_t, ox_t, κ)` at
/// `((oy_t·oxT + ox_t)·κT + κ)·64`, κ = kx + kw·(ky + kh·cin_t)).
fn im2col_plan(spec: &ConvSpec, input: Region, dst: Region, sx: usize, sy: usize) -> CopyPlan {
    let (oh, ow) = (spec.oh(), spec.ow());
    let (ox_tiles, oy_tiles) = (ow / sx, oh / sy);
    let (cin_t, kh, kw, s, h, w) = (spec.c_in / T, spec.kh, spec.kw, spec.stride, spec.h, spec.w);
    let kappa_total = cin_t * kh * kw;
    // The DMA carries a small (16-word) reuse window — a line buffer, not a
    // cache: it captures the heavy kx-overlap between adjacent kernel
    // columns but none of the ky / channel-block reuse, so explicit im2col
    // still pays most of its kh-fold read amplification.
    const REUSE_WINDOW: usize = 16;
    let mut window: std::collections::VecDeque<(u64, usize)> =
        std::collections::VecDeque::with_capacity(REUSE_WINDOW);
    let mut reads = Vec::with_capacity(oy_tiles * ox_tiles * kappa_total * T);
    let mut writes = Vec::with_capacity(oy_tiles * ox_tiles * kappa_total * T);
    for oy_i in 0..oy_tiles {
        for ox_i in 0..ox_tiles {
            for ci in 0..cin_t {
                for ky in 0..kh {
                    for kx in 0..kw {
                        let kappa = kx + kw * (ky + kh * ci);
                        let tile = (oy_i * ox_tiles + ox_i) * kappa_total + kappa;
                        for p in 0..T {
                            let dx = p % sx;
                            let dy = p / sx;
                            let iy = (oy_i * sy + dy) * s + ky;
                            let ix = (ox_i * sx + dx) * s + kx;
                            let src = input.base + (((ci * h + iy) * w + ix) * T) as u64;
                            let idx = match window.iter().find(|(a, _)| *a == src) {
                                Some(&(_, idx)) => idx,
                                None => {
                                    let idx = reads.len();
                                    reads.push(src);
                                    if window.len() == REUSE_WINDOW {
                                        window.pop_front();
                                    }
                                    window.push_back((src, idx));
                                    idx
                                }
                            };
                            writes.push((
                                dst.base + (tile * T * T + p * T) as u64,
                                WriteSource::Word(idx),
                            ));
                        }
                    }
                }
            }
        }
    }
    CopyPlan {
        name: "explicit-im2col".into(),
        read_mode: input.mode,
        write_mode: dst.mode,
        reads,
        writes,
    }
}
