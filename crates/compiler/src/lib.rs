//! The DataMaestro workload compiler (the "customized compiler" of §IV-A).
//!
//! Given a workload, the built system's [`FeatureSet`] and the memory
//! geometry, [`compile`] produces a [`CompiledWorkload`]: design-time and
//! runtime configurations for the A/B/C/output DataMaestros, operand
//! placement (disjoint bank groups under addressing-mode switching),
//! pre-pass plans for features the system lacks (explicit transpose,
//! explicit im2col, bias materialization), and the golden output image for
//! verification.
//!
//! # Examples
//!
//! ```
//! use dm_compiler::{compile, BufferDepths, FeatureSet};
//! use dm_mem::MemConfig;
//! use dm_workloads::{GemmSpec, WorkloadData};
//!
//! let mem = MemConfig::new(32, 8, 4096)?;
//! let data = WorkloadData::generate(GemmSpec::new(16, 16, 16).into(), 7);
//! let program = compile(
//!     &data,
//!     &FeatureSet::full(),
//!     &mem,
//!     true,
//!     BufferDepths::default(),
//! )?;
//! assert_eq!(program.k_steps, 2);
//! assert_eq!(program.total_output_tiles, 4);
//! assert!(program.prepasses.is_empty(), "full feature set needs no pre-pass");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod designs;
pub mod error;
pub mod features;
pub mod lower;
pub mod nima;
pub mod placement;
pub mod pool;
pub mod program;

use dm_mem::MemConfig;
use dm_workloads::{Workload, WorkloadData};

pub use designs::{
    design_a, design_b, design_c, design_d, design_e, pixel_spatial_strides, BufferDepths,
};
pub use error::CompileError;
pub use features::FeatureSet;
pub use nima::compile_gemm_private_banks;
pub use placement::{BankWindow, Region};
pub use pool::{compile_pool, CompiledPool};
pub use program::{CompiledWorkload, CopyPlan, OperandImage, StreamPlan, WriteSource};

/// Lowers a workload onto the evaluation system.
///
/// `quantized` selects the output path: `true` routes the GeMM result
/// through the quantization accelerator onto the E stream (int8), `false`
/// writes raw int32 accumulators through the D stream.
///
/// # Errors
///
/// Returns [`CompileError`] when an operand does not fit its bank-group
/// region or the workload shape cannot be mapped onto the array.
pub fn compile(
    data: &WorkloadData,
    features: &FeatureSet,
    mem: &MemConfig,
    quantized: bool,
    depths: BufferDepths,
) -> Result<CompiledWorkload, CompileError> {
    match data.workload {
        Workload::Gemm(g) => lower::compile_gemm(g, data, features, mem, quantized, depths),
        Workload::Conv(c) => lower::compile_conv(c, data, features, mem, quantized, depths),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dm_mem::{AddressRemapper, AddressingMode};
    use dm_workloads::{ConvSpec, GemmSpec};

    fn mem() -> MemConfig {
        MemConfig::new(32, 8, 4096).unwrap()
    }

    fn gemm_data(m: usize, n: usize, k: usize) -> WorkloadData {
        WorkloadData::generate(GemmSpec::new(m, n, k).into(), 11)
    }

    #[test]
    fn full_feature_gemm_compiles_clean() {
        let p = compile(
            &gemm_data(32, 16, 24),
            &FeatureSet::full(),
            &mem(),
            true,
            BufferDepths::default(),
        )
        .unwrap();
        assert!(p.prepasses.is_empty());
        assert_eq!(p.k_steps, 3);
        assert_eq!(p.total_output_tiles, 4 * 2);
        assert_eq!(p.total_steps(), 24);
        assert_eq!(p.images.len(), 3);
        // Runtime configurations are consistent with their designs.
        for plan in [&p.a, &p.b, &p.c, &p.out] {
            plan.runtime.validate(&plan.design).unwrap();
        }
    }

    #[test]
    fn mode_switching_places_operands_in_disjoint_banks() {
        let mem = mem();
        let p = compile(
            &gemm_data(16, 16, 16),
            &FeatureSet::full(),
            &mem,
            true,
            BufferDepths::default(),
        )
        .unwrap();
        // Collect the physical banks each operand's image touches.
        let mut bank_sets: Vec<std::collections::HashSet<usize>> = Vec::new();
        for img in &p.images {
            let remap = AddressRemapper::new(&mem, img.region.mode).unwrap();
            let banks = (0..img.bytes.len() as u64 / 8)
                .map(|w| remap.map_word((img.region.base + w * 8) / 8).bank)
                .collect();
            bank_sets.push(banks);
        }
        for i in 0..bank_sets.len() {
            for j in i + 1..bank_sets.len() {
                assert!(
                    bank_sets[i].is_disjoint(&bank_sets[j]),
                    "operands {i} and {j} share banks"
                );
            }
        }
    }

    #[test]
    fn no_switching_uses_fima_everywhere() {
        let features = FeatureSet {
            addr_mode_switching: false,
            ..FeatureSet::full()
        };
        let p = compile(
            &gemm_data(16, 16, 16),
            &features,
            &mem(),
            true,
            BufferDepths::default(),
        )
        .unwrap();
        for img in &p.images {
            assert_eq!(img.region.mode, AddressingMode::FullyInterleaved);
        }
        assert_eq!(p.output_region.mode, AddressingMode::FullyInterleaved);
    }

    #[test]
    fn transposed_gemm_without_transposer_gets_prepass() {
        let data = WorkloadData::generate(GemmSpec::transposed(16, 16, 16).into(), 3);
        let features = FeatureSet::ablation_step(2); // prefetch only
        let p = compile(&data, &features, &mem(), true, BufferDepths::default()).unwrap();
        assert_eq!(p.prepasses.len(), 1);
        assert_eq!(p.prepasses[0].name, "explicit-transpose");
        // The pass moves the whole A matrix twice (word reads + writes).
        assert_eq!(p.prepasses[0].words_moved(), 2 * 16 * 16 / 8);
    }

    #[test]
    fn transposed_gemm_with_transposer_activates_extension() {
        let data = WorkloadData::generate(GemmSpec::transposed(16, 16, 16).into(), 3);
        let p = compile(
            &data,
            &FeatureSet::full(),
            &mem(),
            true,
            BufferDepths::default(),
        )
        .unwrap();
        assert!(p.prepasses.is_empty());
        assert_eq!(p.a.runtime.extension_bypass, vec![false]);
    }

    #[test]
    fn plain_gemm_bypasses_transposer() {
        let p = compile(
            &gemm_data(16, 16, 16),
            &FeatureSet::full(),
            &mem(),
            true,
            BufferDepths::default(),
        )
        .unwrap();
        assert_eq!(p.a.runtime.extension_bypass, vec![true]);
    }

    #[test]
    fn no_broadcaster_materializes_bias() {
        let features = FeatureSet {
            broadcaster: false,
            ..FeatureSet::full()
        };
        let data = gemm_data(16, 16, 16);
        let p = compile(&data, &features, &mem(), true, BufferDepths::default()).unwrap();
        // Bias is a static weight: the host preloads the full M×N image
        // (no runtime pass), and the wide C streamer reads all of it.
        let cfull = p
            .images
            .iter()
            .find(|img| img.name == "C-materialized")
            .expect("materialized bias image");
        assert_eq!(cfull.bytes.len(), 16 * 16 * 4);
        assert!(p.prepasses.is_empty());
        assert_eq!(p.c.design.num_channels(), 32);
    }

    #[test]
    fn conv_without_im2col_gets_prepass() {
        let data = WorkloadData::generate(ConvSpec::new(10, 10, 8, 8, 3, 3, 1).into(), 5);
        let features = FeatureSet::ablation_step(4); // im2col off
        let p = compile(&data, &features, &mem(), true, BufferDepths::default()).unwrap();
        assert!(p.prepasses.iter().any(|pp| pp.name == "explicit-im2col"));
        // 4-D temporal pattern over the materialized matrix.
        assert_eq!(p.a.runtime.temporal_bounds.len(), 4);
    }

    #[test]
    fn conv_with_im2col_uses_6d_agu() {
        let data = WorkloadData::generate(ConvSpec::new(10, 10, 8, 8, 3, 3, 1).into(), 5);
        let p = compile(
            &data,
            &FeatureSet::full(),
            &mem(),
            true,
            BufferDepths::default(),
        )
        .unwrap();
        assert!(p.prepasses.is_empty());
        assert_eq!(p.a.runtime.temporal_bounds.len(), 6);
        assert_eq!(p.k_steps, 9);
        assert_eq!(p.total_output_tiles, 8 * 8 / 8);
    }

    #[test]
    fn conv_placement_uses_quarter_groups() {
        // Strided or not, operands live in quarter-size bank groups — the
        // remapper's design-time N_BG list does not include wider
        // permutations (see make_windows), which is why strided access
        // patterns can still conflict inside A's group.
        let mem = mem();
        for spec in [
            ConvSpec::new(18, 18, 8, 8, 3, 3, 2),
            ConvSpec::new(10, 10, 8, 8, 3, 3, 1),
        ] {
            let data = WorkloadData::generate(spec.into(), 5);
            let p = compile(
                &data,
                &FeatureSet::full(),
                &mem,
                true,
                BufferDepths::default(),
            )
            .unwrap();
            let input = &p.images[0];
            assert_eq!(
                input.region.mode,
                AddressingMode::GroupedInterleaved { group_banks: 8 }
            );
        }
    }

    #[test]
    fn oversized_workload_fails_placement() {
        let tiny = MemConfig::new(8, 8, 64).unwrap();
        let err = compile(
            &gemm_data(64, 64, 64),
            &FeatureSet::full(),
            &tiny,
            true,
            BufferDepths::default(),
        )
        .unwrap_err();
        assert!(matches!(err, CompileError::Placement { .. }));
    }

    #[test]
    fn expected_output_image_matches_region_length() {
        let data = gemm_data(16, 24, 8);
        for quantized in [true, false] {
            let p = compile(
                &data,
                &FeatureSet::full(),
                &mem(),
                quantized,
                BufferDepths::default(),
            )
            .unwrap();
            let img = p.expected_output_image(&data);
            assert_eq!(img.len() as u64, p.output_region.len);
        }
    }

    #[test]
    fn total_steps_equals_ideal_cycles() {
        for (workload, seed) in [
            (GemmSpec::new(24, 16, 32).into(), 1u64),
            (ConvSpec::new(10, 10, 16, 8, 3, 3, 1).into(), 2),
        ] {
            let data = WorkloadData::generate(workload, seed);
            let p = compile(
                &data,
                &FeatureSet::full(),
                &mem(),
                true,
                BufferDepths::default(),
            )
            .unwrap();
            assert_eq!(p.total_steps(), data.workload.ideal_cycles());
        }
    }
}
