//! Lowering of max-pooling workloads onto a streamer-built pooling system.
//!
//! This demonstrates the paper's *reusable design* claim with code: the
//! pooling accelerator is assembled from exactly the same [`ReadStreamer`]
//! / [`WriteStreamer`] building blocks as the GeMM system — one 8-channel
//! reader walking the pooling windows with the N-D AGU (the same kind of
//! 5-D pattern the convolution A stream uses), one 8-channel writer, and a
//! trivial elementwise-max unit in between. Only this compiler function
//! and the ~40-line reduction unit are pooling-specific.
//!
//! [`ReadStreamer`]: datamaestro::ReadStreamer
//! [`WriteStreamer`]: datamaestro::WriteStreamer

use datamaestro::{DesignConfig, RuntimeConfig, StreamerMode};
use dm_mem::MemConfig;
use dm_workloads::{layout, PoolSpec};

use crate::designs::{pixel_spatial_strides, BufferDepths};
use crate::error::CompileError;
use crate::features::FeatureSet;
use crate::lower::choose_pixel_tiling;
use crate::placement::{BankWindow, Region};
use crate::program::{OperandImage, StreamPlan};

/// A lowered pooling workload.
#[derive(Debug, Clone)]
pub struct CompiledPool {
    /// The workload.
    pub spec: PoolSpec,
    /// Input stream.
    pub a: StreamPlan,
    /// Output stream.
    pub out: StreamPlan,
    /// Input image to preload.
    pub images: Vec<OperandImage>,
    /// Window steps per output tile (k²).
    pub k_steps: u64,
    /// Output tiles produced.
    pub total_output_tiles: u64,
    /// Where the pooled result lands.
    pub output_region: Region,
}

impl CompiledPool {
    /// The golden output image for verification.
    #[must_use]
    pub fn expected_output_image(&self, input: &[i8]) -> Vec<u8> {
        let golden = dm_accel::maxpool2d_ref(
            input,
            self.spec.h,
            self.spec.w,
            self.spec.c,
            self.spec.k,
            self.spec.stride,
        );
        layout::pack_conv_out_i8(&golden, self.spec.oh(), self.spec.ow(), self.spec.c)
    }
}

/// Lowers a pooling workload over the given channels-last input tensor.
///
/// # Errors
///
/// Returns [`CompileError`] on placement failure or unmappable geometry.
///
/// # Panics
///
/// Panics if `input.len() != h·w·c`.
pub fn compile_pool(
    spec: PoolSpec,
    input: &[i8],
    features: &FeatureSet,
    mem: &MemConfig,
    depths: BufferDepths,
) -> Result<CompiledPool, CompileError> {
    assert_eq!(input.len(), spec.h * spec.w * spec.c, "input geometry");
    let group_banks = if features.addr_mode_switching {
        (mem.num_banks() / 4).max(1)
    } else {
        mem.num_banks()
    };
    let conv_view = spec.as_conv();
    let (sx, sy) =
        choose_pixel_tiling(&conv_view, group_banks).ok_or_else(|| CompileError::Unsupported {
            reason: format!(
                "output plane {}x{} has no 8-pixel tiling",
                spec.oh(),
                spec.ow()
            ),
        })?;
    let (oh, ow) = (spec.oh(), spec.ow());
    let (h, w, s, k) = (spec.h, spec.w, spec.stride, spec.k);
    let cb = spec.c / 8;
    let (ox_t, oy_t) = (ow / sx, oh / sy);

    // Placement: input in the first bank group, output in the second (or
    // both in one linear space without mode switching).
    let in_bytes = layout::pack_conv_input(input, h, w, spec.c);
    let (rin, rout) = if features.addr_mode_switching {
        let quarter = (mem.num_banks() / 4).max(1);
        let mut win_a = BankWindow::grouped(mem, 0, quarter)?;
        let mut win_out = BankWindow::grouped(mem, quarter, quarter)?;
        (
            win_a.alloc("pool-input", in_bytes.len() as u64)?,
            win_out.alloc("pool-output", (oh * ow * spec.c) as u64)?,
        )
    } else {
        let mut linear = BankWindow::linear(mem);
        (
            linear.alloc("pool-input", in_bytes.len() as u64)?,
            linear.alloc("pool-output", (oh * ow * spec.c) as u64)?,
        )
    };
    let images = vec![OperandImage {
        name: "pool-input".into(),
        region: rin,
        bytes: in_bytes,
    }];

    let a_design = DesignConfig::builder("pool-in", StreamerMode::Read)
        .spatial_bounds([2, 2, 2])
        .temporal_dims(5)
        .data_buffer_depth(depths.data)
        .addr_buffer_depth(depths.addr)
        .fine_grained_prefetch(features.fine_grained_prefetch)
        .build()?;
    let a_runtime = RuntimeConfig::builder()
        .base(rin.base)
        .temporal(
            [k as u64, k as u64, ox_t as u64, oy_t as u64, cb as u64],
            [
                8,
                w as i64 * 8,
                (sx * s) as i64 * 8,
                (sy * s * w) as i64 * 8,
                (h * w) as i64 * 8,
            ],
        )
        .spatial_strides(pixel_spatial_strides(sx, s as i64 * 8, (s * w) as i64 * 8))
        .addressing_mode(rin.mode)
        .build();

    let out_design = DesignConfig::builder("pool-out", StreamerMode::Write)
        .spatial_bounds([2, 2, 2])
        .temporal_dims(5)
        .data_buffer_depth(depths.write_data)
        .addr_buffer_depth(depths.addr)
        .fine_grained_prefetch(features.fine_grained_prefetch)
        .build()?;
    let out_runtime = RuntimeConfig::builder()
        .base(rout.base)
        .temporal(
            [ox_t as u64, oy_t as u64, cb as u64],
            [sx as i64 * 8, (sy * ow) as i64 * 8, (oh * ow) as i64 * 8],
        )
        .spatial_strides(pixel_spatial_strides(sx, 8, ow as i64 * 8))
        .addressing_mode(rout.mode)
        .build();

    Ok(CompiledPool {
        spec,
        a: StreamPlan {
            design: a_design,
            runtime: a_runtime,
        },
        out: StreamPlan {
            design: out_design,
            runtime: out_runtime,
        },
        images,
        k_steps: (k * k) as u64,
        total_output_tiles: (cb * ox_t * oy_t) as u64,
        output_region: rout,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_lowering_shapes() {
        let spec = PoolSpec::new(16, 16, 16, 2, 2);
        let input = vec![0i8; 16 * 16 * 16];
        let mem = MemConfig::new(32, 8, 4096).unwrap();
        let p = compile_pool(
            spec,
            &input,
            &FeatureSet::full(),
            &mem,
            BufferDepths::default(),
        )
        .unwrap();
        assert_eq!(p.k_steps, 4);
        assert_eq!(p.total_output_tiles, (2 * 8)); // cb=2, ox_t·oy_t = 8
        p.a.runtime.validate(&p.a.design).unwrap();
        p.out.runtime.validate(&p.out.design).unwrap();
        assert_eq!(p.images.len(), 1);
        assert_eq!(p.output_region.len, 8 * 8 * 16);
    }

    #[test]
    fn pool_uses_disjoint_groups_with_switching() {
        let spec = PoolSpec::new(10, 10, 8, 3, 1);
        let input = vec![1i8; 10 * 10 * 8];
        let mem = MemConfig::new(32, 8, 4096).unwrap();
        let p = compile_pool(
            spec,
            &input,
            &FeatureSet::full(),
            &mem,
            BufferDepths::default(),
        )
        .unwrap();
        assert_ne!(
            p.images[0].region.mode,
            dm_mem::AddressingMode::FullyInterleaved
        );
    }
}
